//! DRAM offloading (§VII-C): simulating circuits whose state exceeds GPU
//! memory by streaming shards between host DRAM and the device.
//!
//! Part 1 runs a real 20-qubit QFT on a simulated single GPU that only
//! holds 2^16 amplitudes (16 shards swap through it) and verifies the
//! amplitudes against the reference simulator.
//!
//! Part 2 reproduces the Fig. 7 setting at paper scale in dry-run mode:
//! qft-30 with 28 local qubits on one GPU, Atlas vs the QDAO-like
//! baseline.
//!
//! ```sh
//! cargo run --release --example dram_offload
//! ```

use atlas::baselines;
use atlas::prelude::*;

fn main() {
    // ---- Part 1: functional offloaded run --------------------------------
    let n = 20;
    let circuit = atlas::circuit::generators::qft(n);
    let spec = MachineSpec {
        nodes: 1,
        gpus_per_node: 1,
        local_qubits: 16,
    };
    assert!(
        spec.offloading(n),
        "16 shards through 1 GPU — offloading engaged"
    );

    let cfg = AtlasConfig::for_validation();
    let out =
        simulate(&circuit, spec, CostModel::default(), &cfg, false).expect("simulation failed");
    let state = out.state.expect("functional run");
    let reference = simulate_reference(&circuit);

    println!("qft-{n} through a single simulated GPU holding 2^16 amplitudes");
    println!("  shards (DRAM)   : {}", spec.num_shards(n));
    println!("  stages          : {}", out.plan.stages.len());
    println!("  swap time       : {:.4} s", out.report.swap_secs);
    println!("  total model time: {:.4} s", out.report.total_secs);
    println!(
        "  max |Δamp| vs reference: {:.2e}",
        state.max_abs_diff(&reference)
    );
    assert!(state.max_abs_diff(&reference) < 1e-9);

    // ---- Part 2: paper-scale model, Atlas vs QDAO (Fig. 7 point) ---------
    let n = 30;
    let circuit = atlas::circuit::generators::qft(n);
    let spec = MachineSpec::single_gpu(28);
    let atlas_out = simulate(
        &circuit,
        spec,
        CostModel::default(),
        &AtlasConfig::default(),
        true, // dry run: clock model only
    )
    .expect("dry run failed");
    let qdao = baselines::qdao_run(&circuit, spec, CostModel::default(), 28, 19)
        .expect("qdao model failed");

    println!("\nqft-{n} beyond GPU memory on 1 GPU (dry-run clock model):");
    println!("  Atlas : {:8.2} s", atlas_out.report.total_secs);
    println!("  QDAO  : {:8.2} s", qdao.report.total_secs);
    println!(
        "  speedup: {:.0}×",
        qdao.report.total_secs / atlas_out.report.total_secs
    );
}
