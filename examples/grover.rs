//! Grover search over a 16-item database (4 data qubits + 2 ancillas),
//! distributed across four simulated GPUs.
//!
//! Builds the oracle and diffusion operators from the public gate API —
//! multi-controlled Z via a Toffoli V-chain through the ancillas — and
//! runs ⌊π/4·√16⌋ = 3 Grover iterations, after which the marked item
//! holds ≈96 % of the probability mass.
//!
//! ```sh
//! cargo run --release --example grover
//! ```

use atlas::prelude::*;

const DATA: u32 = 4; // search space 2^4
const ANC: u32 = 2; // V-chain ancillas
const N: u32 = DATA + ANC;

/// Appends a Z controlled on all four data qubits, using the two ancilla
/// qubits as a Toffoli V-chain: a0 = q0∧q1, a1 = a0∧q2, then CCZ-style
/// phase between a1 and q3, and uncompute.
fn append_mcz(c: &mut Circuit) {
    let (a0, a1) = (DATA, DATA + 1);
    c.add(GateKind::CCX, &[0, 1, a0]);
    c.add(GateKind::CCX, &[2, a0, a1]);
    c.cz(a1, 3);
    c.add(GateKind::CCX, &[2, a0, a1]);
    c.add(GateKind::CCX, &[0, 1, a0]);
}

/// Phase oracle marking `target`: X-conjugation turns the all-ones control
/// into a control on the target bit pattern.
fn append_oracle(c: &mut Circuit, target: u64) {
    for q in 0..DATA {
        if target >> q & 1 == 0 {
            c.x(q);
        }
    }
    append_mcz(c);
    for q in 0..DATA {
        if target >> q & 1 == 0 {
            c.x(q);
        }
    }
}

/// Grover diffusion operator on the data qubits.
fn append_diffusion(c: &mut Circuit) {
    for q in 0..DATA {
        c.h(q);
        c.x(q);
    }
    append_mcz(c);
    for q in 0..DATA {
        c.x(q);
        c.h(q);
    }
}

fn main() {
    let target: u64 = 0b1011; // the marked item
    let mut circuit = Circuit::named(N, "grover_16");
    for q in 0..DATA {
        circuit.h(q);
    }
    let iterations = 3; // ⌊π/4 · √16⌋
    for _ in 0..iterations {
        append_oracle(&mut circuit, target);
        append_diffusion(&mut circuit);
    }

    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: N - 2,
    };
    let cfg = AtlasConfig::for_validation();
    let out =
        simulate(&circuit, spec, CostModel::default(), &cfg, false).expect("simulation failed");
    let state = out.state.expect("functional run");

    println!(
        "Grover search over 16 items, {} iterations, {} gates, {} stages",
        iterations,
        circuit.num_gates(),
        out.plan.stages.len()
    );
    println!("marked item: |{target:04b}⟩\n");
    println!("result distribution over data qubits:");
    let mut found_p = 0.0;
    for item in 0..1u64 << DATA {
        // Ancillas are restored to |00⟩, so the joint index is the item.
        let p = state.probability(item);
        if p > 1e-6 {
            let marker = if item == target { "  ← marked" } else { "" };
            println!("  |{item:04b}⟩  p = {p:.4}{marker}");
        }
        if item == target {
            found_p = p;
        }
    }
    println!("\nsuccess probability: {found_p:.4}");
    assert!(found_p > 0.9, "Grover amplification failed");
}
