//! Synthetic many-client stress harness for the `atlas-serve` session
//! pool.
//!
//! Spawns `TENANTS` client threads that hammer one pool through a
//! deliberately tight queue (capacity 4, 2 workers): every client
//! submits a mix of execute / sample / expect jobs over *two* circuit
//! structures (so the plan cache serves both), cancels every fifth job
//! in flight, and uses blocking submission so backpressure throttles
//! rather than drops. At the end the pool's accounting must balance to
//! the job: submitted = completed + cancelled, zero rejections, queue
//! high-water ≤ capacity, and exactly two PARTITION runs for the whole
//! storm.
//!
//! ```text
//! cargo run --example serve_stress
//! ```

use atlas::prelude::*;
use atlas::serve::{JobOutcome, JobOutput, JobRequest, ServeConfig, SessionPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const TENANTS: usize = 6;
const JOBS_PER_TENANT: usize = 8;

fn main() {
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 7,
    };
    let cfg = AtlasConfig {
        threads: 1,
        ..AtlasConfig::default()
    };
    let pool = Arc::new(
        SessionPool::new(
            spec,
            CostModel::default(),
            cfg,
            ServeConfig {
                workers: 2,
                queue_capacity: 4,
                cache_capacity: 8,
                ..ServeConfig::default()
            },
        )
        .expect("pool"),
    );
    println!(
        "stress  : {TENANTS} client(s) x {JOBS_PER_TENANT} job(s), queue 4, 2 worker(s), 2 circuit structures"
    );

    let qaoa = atlas::circuit::generators::qaoa(10);
    let ghz = atlas::circuit::generators::ghz(10);
    let completed = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    let clients: Vec<_> = (0..TENANTS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let completed = Arc::clone(&completed);
            let cancelled = Arc::clone(&cancelled);
            let (qaoa, ghz) = (qaoa.clone(), ghz.clone());
            std::thread::spawn(move || {
                let tenant = format!("client-{t}");
                for j in 0..JOBS_PER_TENANT {
                    let k = t * JOBS_PER_TENANT + j;
                    // Alternate structures; shift parameters so every
                    // job is a distinct sweep point of its structure.
                    let circuit = if k.is_multiple_of(2) { &qaoa } else { &ghz }
                        .map_params(|_, _, p| p + 0.01 * k as f64);
                    let request = match k % 3 {
                        0 => JobRequest::Execute,
                        1 => JobRequest::Sample {
                            shots: 32,
                            seed: k as u64,
                        },
                        _ => JobRequest::Expect {
                            pauli: "ZIIIIIIIIZ".parse().expect("valid Pauli"),
                        },
                    };
                    let handle = pool
                        .submit_blocking(&tenant, circuit, request)
                        .expect("blocking submit");
                    if k.is_multiple_of(5) {
                        handle.cancel();
                    }
                    match handle.wait().expect("typed job failure") {
                        JobOutcome::Cancelled | JobOutcome::DeadlineExceeded => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        JobOutcome::Output(out) => {
                            if let JobOutput::Executed { norm, .. } = &out {
                                assert!((norm - 1.0).abs() < 1e-9, "norm drifted: {norm}");
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();

    let pool = Arc::into_inner(pool).expect("all clients joined");
    let stats = pool.shutdown();
    let total = (TENANTS * JOBS_PER_TENANT) as u64;
    println!(
        "done    : {total} job(s) in {wall:.3} s ({:.1} jobs/s): {} ok, {} cancelled",
        total as f64 / wall,
        stats.jobs_completed,
        stats.jobs_cancelled,
    );
    println!(
        "cache   : {} hit(s) / {} lookup(s) ({} plan(s) compiled, {} resident)",
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stats.cache_misses,
        stats.cache_entries,
    );
    println!(
        "queue   : peak depth {} (capacity 4), {} rejection(s)",
        stats.max_queued, stats.jobs_rejected
    );

    // The accounting must balance exactly — this is the harness's
    // pass/fail criterion.
    assert_eq!(stats.jobs_submitted, total);
    assert_eq!(stats.jobs_completed + stats.jobs_cancelled, total);
    assert_eq!(stats.jobs_completed, completed.load(Ordering::Relaxed));
    assert_eq!(stats.jobs_cancelled, cancelled.load(Ordering::Relaxed));
    assert_eq!(stats.jobs_rejected, 0, "blocking submits never reject");
    assert!(stats.max_queued <= 4, "queue overran its bound");
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(
        stats.cache_misses, 2,
        "two structures => exactly two PARTITION runs"
    );
    println!("PASS    : accounting balanced; 2 structures planned once each");
}
