//! Quickstart: simulate a GHZ circuit on a simulated multi-GPU cluster and
//! inspect both the amplitudes and the machine's clock report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atlas::prelude::*;

fn main() {
    // 12-qubit GHZ state on 2 nodes × 2 GPUs, 9 local qubits per GPU
    // (8 shards of 512 amplitudes).
    let n = 12;
    let circuit = atlas::circuit::generators::ghz(n);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 9,
    };
    let cfg = AtlasConfig::for_validation();

    let out =
        simulate(&circuit, spec, CostModel::default(), &cfg, false).expect("simulation failed");
    let state = out
        .state
        .as_ref()
        .expect("functional run returns the state");

    println!("GHZ({n}) on {} simulated GPUs", spec.num_gpus());
    println!("  stages            : {}", out.plan.stages.len());
    println!("  staging cost (Eq2): {}", out.plan.staging_cost);
    println!(
        "  kernels           : {}",
        out.plan
            .stages
            .iter()
            .map(|s| s.kernels.len())
            .sum::<usize>()
    );
    println!("  model time        : {:.6} s", out.report.total_secs);
    println!(
        "  comm fraction     : {:.1} %",
        100.0 * out.report.comm_fraction()
    );

    println!("\ntop basis states:");
    for (idx, p) in state.top_probabilities(4) {
        println!("  |{idx:0width$b}⟩  p = {p:.6}", width = n as usize);
    }

    // Sanity: the GHZ state is (|0…0⟩ + |1…1⟩)/√2.
    let all_ones = (1u64 << n) - 1;
    assert!((state.probability(0) - 0.5).abs() < 1e-9);
    assert!((state.probability(all_ones) - 0.5).abs() < 1e-9);

    // Cross-check against the single-threaded reference simulator.
    let reference = simulate_reference(&circuit);
    println!(
        "\nmax |Δamplitude| vs reference: {:.2e}",
        state.max_abs_diff(&reference)
    );
}
