//! QAOA for MaxCut on a 12-node ring graph, depth p = 2 — the variational
//! workload class the paper's introduction motivates (vqc/qsvm families).
//!
//! Builds the cost layer from `RZZ` couplers and the mixer from `RX`
//! rotations, runs the distributed simulation, and reports the expected
//! cut value plus the machine's communication profile.
//!
//! ```sh
//! cargo run --release --example qaoa_maxcut
//! ```

use atlas::prelude::*;

const N: u32 = 12;

fn ring_edges() -> Vec<(u32, u32)> {
    (0..N).map(|i| (i, (i + 1) % N)).collect()
}

fn qaoa_circuit(gammas: &[f64], betas: &[f64]) -> Circuit {
    let mut c = Circuit::named(N, "qaoa_maxcut_ring12");
    for q in 0..N {
        c.h(q);
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        // Cost layer e^{-iγ Z_a Z_b} per edge = RZZ(2γ).
        for &(a, b) in &ring_edges() {
            c.add(GateKind::RZZ(2.0 * gamma), &[a, b]);
        }
        // Mixer e^{-iβ X_q} = RX(2β).
        for q in 0..N {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

fn cut_value(bits: u64) -> u32 {
    ring_edges()
        .iter()
        .filter(|&&(a, b)| (bits >> a & 1) != (bits >> b & 1))
        .count() as u32
}

fn main() {
    // The p=1 ring-graph optimum under this gate convention:
    // (γ, β) = (3π/8, π/8) reaches the known ratio of 3/4 (verified by a
    // parameter scan against the reference simulator).
    let gammas = [3.0 * std::f64::consts::PI / 8.0];
    let betas = [std::f64::consts::PI / 8.0];
    let circuit = qaoa_circuit(&gammas, &betas);

    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 9,
    };
    let cfg = AtlasConfig::for_validation();
    let out =
        simulate(&circuit, spec, CostModel::default(), &cfg, false).expect("simulation failed");
    let state = out.state.expect("functional run");

    let expected_cut: f64 = state
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(i, a)| a.norm_sqr() * f64::from(cut_value(i as u64)))
        .sum();

    println!(
        "QAOA MaxCut, ring graph n={N}, p={}, {} gates, {} stages",
        gammas.len(),
        circuit.num_gates(),
        out.plan.stages.len()
    );
    println!("max cut (exact)      : {N}");
    println!("⟨cut⟩ from QAOA state: {expected_cut:.3}");
    println!("approximation ratio  : {:.3}", expected_cut / f64::from(N));

    println!("\nmost likely assignments:");
    for (bits, p) in state.top_probabilities(5) {
        println!("  |{bits:012b}⟩  cut = {:2}  p = {p:.5}", cut_value(bits));
    }

    println!("\nmachine profile:");
    println!("  model time    : {:.6} s", out.report.total_secs);
    println!(
        "  comm fraction : {:.1} %",
        100.0 * out.report.comm_fraction()
    );
    println!("  kernels       : {}", out.report.kernels);

    assert!(
        expected_cut / f64::from(N) > 0.74,
        "p=1 ring optimum reaches 3/4"
    );
}
