//! Anatomy of a partition: run PARTITION (staging ILP + kernelization DP)
//! on a QFT circuit and print the full hierarchical plan — stages, qubit
//! partitions, kernels and their kinds — the structure of the paper's
//! Fig. 1.
//!
//! ```sh
//! cargo run --release --example partition_anatomy
//! ```

use atlas::core::exec;
use atlas::core::plan::KernelKind;
use atlas::prelude::*;

fn main() {
    let n = 12;
    let l = 7;
    let g = 2;
    let circuit = atlas::circuit::generators::qft(n);
    let cost = CostModel::default();
    let cfg = AtlasConfig::default();

    let plan = exec::plan(&circuit, l, g, &cost, &cfg).expect("planning failed");

    println!(
        "PARTITION(qft-{n}) with L={l} local, R={} regional, G={g} global qubits",
        n - l - g
    );
    println!(
        "stages: {}   staging cost (Eq. 2): {}   kernel cost (Eq. 12): {:.4} ns/amp\n",
        plan.stages.len(),
        plan.staging_cost,
        plan.kernel_cost
    );

    for (k, sp) in plan.stages.iter().enumerate() {
        let p = &sp.stage.partition;
        println!("── stage {k} ──────────────────────────────────────");
        println!("  local    qubits: {:?}", p.local);
        println!("  regional qubits: {:?}", p.regional);
        println!("  global   qubits: {:?}", p.global);
        println!(
            "  gates: {} total, {} with local content, {} reduced to per-shard scalars",
            sp.stage.gates.len(),
            sp.templates.len(),
            sp.scalars.len()
        );
        for (ki, kernel) in sp.kernels.iter().enumerate() {
            let kind = match kernel.kind {
                KernelKind::Fusion => "fusion",
                KernelKind::SharedMemory => "shm   ",
            };
            println!(
                "    K{ki:<2} [{kind}] {:2} gates on physical bits {:?}",
                kernel.gates.len(),
                kernel.qubits
            );
        }
    }

    println!("\n(Every CP gate of the QFT is all-insular — Definition 2 — which is");
    println!("why whole phase ladders become per-shard scalars or reduced 1-qubit");
    println!("gates, and the staging ILP only has to localize the H gates.)");
}
