//! Depolarizing noise as Pauli-twirled stochastic trajectories.
//!
//! A depolarizing channel of strength `p` after each gate is simulated
//! by its Pauli twirl: with probability `p`, inject a uniformly random
//! X/Y/Z on each qubit the gate touched. Averaging measurement
//! statistics over trajectories converges to the channel's output.
//!
//! The load-bearing design point is **plan-once**: every trajectory
//! shares one [`CircuitFingerprint`] and therefore one compiled plan.
//! [`noisy_template`] inserts an identity [`PauliNoise`] slot after
//! each gate on each touched qubit; [`trajectory`] re-draws only the
//! slot *selectors* via [`Circuit::map_params`], and `PauliNoise`'s
//! insularity is selector-independent by construction (see
//! `atlas_circuit::insular`), so the structural fingerprint never
//! moves. A noisy N-trajectory sweep pays PARTITION exactly once, on
//! any backend.
//!
//! Determinism: trajectory `i`'s selector draws come from
//! `CounterRng::new(seed).split(SELECTOR_STREAM).split(i)` and its
//! sampling seed from `CounterRng::new(seed).split(SAMPLE_STREAM)
//! .u64_at(i)` — pure functions of `(seed, i)`, independent of thread
//! count, shard layout and serve-pool worker count.
//!
//! [`CircuitFingerprint`]: crate::session::CircuitFingerprint
//! [`PauliNoise`]: GateKind::PauliNoise

use crate::backend::{BackendPlan, BackendRun, SimulatorBackend};
use atlas_circuit::{Circuit, GateKind};
use atlas_error::AtlasError;
use atlas_sampler::CounterRng;
use std::collections::BTreeMap;

/// RNG stream tag for per-trajectory Pauli selector draws.
const SELECTOR_STREAM: u64 = 0x6e6f_6973; // "nois"
/// RNG stream tag for per-trajectory sampling seeds.
const SAMPLE_STREAM: u64 = 0x7368_6f74; // "shot"

/// Builds the noisy template of `circuit`: after every gate, one
/// identity `PauliNoise(0)` slot per touched qubit. The template is
/// what gets planned; trajectories only re-parameterize it.
pub fn noisy_template(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::named(circuit.num_qubits(), format!("{}_noisy", circuit.name()));
    for g in circuit.gates() {
        out.push(*g);
        for q in g.qubits.iter() {
            out.add(GateKind::PauliNoise(0.0), &[q]);
        }
    }
    out
}

/// Instantiates trajectory `traj` of a noisy template: each `PauliNoise`
/// slot draws, from the pure function of `(seed, traj, slot index)`,
/// either the identity (probability `1 − noise`) or a uniform X/Y/Z.
/// All other gate parameters pass through untouched.
pub fn trajectory(template: &Circuit, noise: f64, seed: u64, traj: u64) -> Circuit {
    let rng = CounterRng::new(seed).split(SELECTOR_STREAM).split(traj);
    let mut slot = 0u64;
    template.map_params(|gi, _, p| {
        if !matches!(template.gates()[gi].kind, GateKind::PauliNoise(_)) {
            return p;
        }
        let k = slot;
        slot += 1;
        if rng.f64_at(2 * k) < noise {
            // 1 = X, 2 = Y, 3 = Z, uniformly.
            1.0 + (rng.u64_at(2 * k + 1) % 3) as f64
        } else {
            0.0
        }
    })
}

/// Aggregated output of a noisy trajectory sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoisyOutcome {
    /// Shot counts per bit-packed outcome, ascending by bitstring —
    /// summed across all trajectories.
    pub counts: Vec<(Vec<u64>, u64)>,
    /// Trajectories executed.
    pub trajectories: usize,
    /// Total shots drawn (across trajectories).
    pub shots: usize,
}

/// Runs a noisy sweep through one compiled plan: `trajectories`
/// re-parameterizations of `template` (from the plan's config), each
/// executed under `plan` and sampled for its share of
/// `shots` (trajectory `t` gets `shots/k` plus one of the remainder).
///
/// Errors with [`AtlasError::InvalidConfig`] if the plan's config has
/// `noise = 0` — build the plan from a config with `noise > 0`.
pub fn run_noisy(
    plan: &BackendPlan,
    template: &Circuit,
    shots: usize,
) -> Result<NoisyOutcome, AtlasError> {
    let cfg = plan.config().clone();
    if cfg.noise == 0.0 {
        return Err(AtlasError::invalid_config(
            "run_noisy needs a plan compiled with noise > 0",
        ));
    }
    let k = cfg.trajectories.max(1);
    let sample_seeds = CounterRng::new(cfg.seed).split(SAMPLE_STREAM);
    let mut counts: BTreeMap<Vec<u64>, u64> = BTreeMap::new();
    for t in 0..k {
        let traj_shots = shots / k + usize::from(t < shots % k);
        if traj_shots == 0 {
            continue;
        }
        let circuit = trajectory(template, cfg.noise, cfg.seed, t as u64);
        let run: BackendRun = plan.run(&circuit)?;
        for s in run.sample_words(traj_shots, sample_seeds.u64_at(t as u64)) {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    Ok(NoisyOutcome {
        counts: counts.into_iter().collect(),
        trajectories: k,
        shots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AtlasConfig, BackendKind};
    use crate::session::{CircuitFingerprint, Planner};
    use atlas_circuit::generators;
    use atlas_machine::{CostModel, MachineSpec};

    fn noisy_planner(backend: BackendKind, noise: f64, seed: u64) -> Planner {
        let cfg = AtlasConfig {
            backend,
            noise,
            trajectories: 6,
            seed,
            ..AtlasConfig::default()
        };
        Planner::new(MachineSpec::single_gpu(5), CostModel::default(), cfg)
    }

    #[test]
    fn template_inserts_one_slot_per_touched_qubit() {
        let c = generators::ghz(5); // 1 H + 4 CX = 1 + 4·2 = 9 slots
        let t = noisy_template(&c);
        assert_eq!(t.num_gates(), c.num_gates() + 9);
        let slots = t
            .gates()
            .iter()
            .filter(|g| matches!(g.kind, GateKind::PauliNoise(_)))
            .count();
        assert_eq!(slots, 9);
    }

    #[test]
    fn trajectories_share_the_template_fingerprint() {
        let t = noisy_template(&generators::qaoa(6));
        let base = CircuitFingerprint::of(&t);
        for traj in 0..8 {
            let c = trajectory(&t, 0.3, 11, traj);
            assert_eq!(
                CircuitFingerprint::of(&c),
                base,
                "trajectory {traj} broke plan-once"
            );
        }
    }

    #[test]
    fn trajectory_draws_are_pure_functions_of_seed_and_index() {
        let t = noisy_template(&generators::clifford(4));
        let a = trajectory(&t, 0.2, 7, 3);
        let b = trajectory(&t, 0.2, 7, 3);
        assert_eq!(a.gates().len(), b.gates().len());
        for (x, y) in a.gates().iter().zip(b.gates()) {
            assert_eq!(x.kind.params(), y.kind.params());
        }
        // A different trajectory index draws differently somewhere.
        let c = trajectory(&t, 0.9, 7, 4);
        let differs = a
            .gates()
            .iter()
            .zip(c.gates())
            .any(|(x, y)| x.kind.params() != y.kind.params());
        assert!(differs);
    }

    #[test]
    fn zero_noise_trajectory_is_all_identity() {
        let t = noisy_template(&generators::ghz(4));
        let c = trajectory(&t, 0.0, 5, 0);
        for g in c.gates() {
            if let GateKind::PauliNoise(sel) = g.kind {
                assert_eq!(sel, 0.0);
            }
        }
    }

    #[test]
    fn noisy_sweep_is_deterministic_and_plan_once() {
        let template = noisy_template(&generators::ghz(6));
        let planner = noisy_planner(BackendKind::Auto, 0.1, 13);
        let plan = planner.plan_backend(&template).unwrap();
        // GHZ + Pauli noise is all-Clifford: the tableau runs it.
        assert_eq!(plan.backend_name(), "stabilizer");
        let a = run_noisy(&plan, &template, 100).unwrap();
        let b = run_noisy(&plan, &template, 100).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shots, 100);
        assert_eq!(a.trajectories, 6);
        assert_eq!(a.counts.iter().map(|(_, c)| c).sum::<u64>(), 100);
        // Noise must actually corrupt some shots at p = 0.1 over 9
        // slots: the noiseless GHZ support is exactly {0…0, 1…1}.
        assert!(a.counts.len() > 2, "expected corrupted outcomes");
    }

    #[test]
    fn statevec_and_stabilizer_agree_on_noisy_trajectory_distributions() {
        // Shot-level draws are engine-specific (inverse-CDF vs
        // measurement cascade), so the cross-engine contract is exact
        // distribution equality per trajectory, not byte-equal shots.
        let template = noisy_template(&generators::ghz(6));
        let sv_plan = noisy_planner(BackendKind::Statevec, 0.15, 21)
            .plan_backend(&template)
            .unwrap();
        let st_plan = noisy_planner(BackendKind::Stabilizer, 0.15, 21)
            .plan_backend(&template)
            .unwrap();
        for t in 0..4u64 {
            let c = trajectory(&template, 0.15, 21, t);
            let (a, b) = (sv_plan.run(&c).unwrap(), st_plan.run(&c).unwrap());
            for idx in 0..(1u64 << 6) {
                assert!(
                    (a.probability_of_bits(&[idx]) - b.probability_of_bits(&[idx])).abs() < 1e-9,
                    "trajectory {t}: p({idx}) differs"
                );
            }
        }
    }

    #[test]
    fn run_noisy_rejects_noiseless_plans() {
        let template = noisy_template(&generators::ghz(6));
        let planner = Planner::new(
            MachineSpec::single_gpu(5),
            CostModel::default(),
            AtlasConfig::default(),
        );
        let plan = planner.plan_backend(&template).unwrap();
        assert!(matches!(
            run_noisy(&plan, &template, 8),
            Err(AtlasError::InvalidConfig { .. })
        ));
    }
}
