//! Plan data types shared by staging, kernelization and execution.

use atlas_circuit::Circuit;
use atlas_error::AtlasError;

/// A stage's partition of *logical* qubits into local / regional / global
/// classes (Definition 1). `|local| = L`, `|global| = G`, the rest are
/// regional.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QubitPartition {
    /// Logical qubits mapped to local physical qubits (bits `0..L`).
    pub local: Vec<u32>,
    /// Logical qubits mapped to regional physical qubits (bits `L..L+R`).
    pub regional: Vec<u32>,
    /// Logical qubits mapped to global physical qubits (bits `L+R..n`).
    pub global: Vec<u32>,
}

impl QubitPartition {
    /// Total number of qubits across all classes.
    pub fn num_qubits(&self) -> usize {
        self.local.len() + self.regional.len() + self.global.len()
    }

    /// Bitmask of local qubits.
    pub fn local_mask(&self) -> u64 {
        self.local.iter().fold(0u64, |m, &q| m | (1 << q))
    }

    /// Bitmask of global qubits.
    pub fn global_mask(&self) -> u64 {
        self.global.iter().fold(0u64, |m, &q| m | (1 << q))
    }

    /// Checks the partition covers `0..n` exactly once with the required
    /// class sizes.
    pub fn validate(&self, n: u32, l: u32, g: u32) -> Result<(), AtlasError> {
        if self.local.len() != l as usize {
            return Err(AtlasError::invalid_plan(format!(
                "|local| = {} ≠ L = {l}",
                self.local.len()
            )));
        }
        if self.global.len() != g as usize {
            return Err(AtlasError::invalid_plan(format!(
                "|global| = {} ≠ G = {g}",
                self.global.len()
            )));
        }
        if self.num_qubits() != n as usize {
            return Err(AtlasError::invalid_plan(format!(
                "partition covers {} ≠ n = {n}",
                self.num_qubits()
            )));
        }
        let mut seen = vec![false; n as usize];
        for &q in self.local.iter().chain(&self.regional).chain(&self.global) {
            if q >= n || seen[q as usize] {
                return Err(AtlasError::invalid_plan(format!(
                    "qubit {q} out of range or duplicated"
                )));
            }
            seen[q as usize] = true;
        }
        Ok(())
    }
}

/// One stage: the indices (into the circuit's gate sequence) of the gates
/// it executes, and its qubit partition.
#[derive(Clone, Debug, PartialEq)]
pub struct Stage {
    /// Gate indices in program order.
    pub gates: Vec<usize>,
    /// The stage's qubit partition.
    pub partition: QubitPartition,
}

/// The kind of GPU kernel a gate group compiles to (§VI-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Gates pre-multiplied into one dense matrix (cuQuantum-style apply).
    Fusion,
    /// Gates executed one-by-one inside GPU shared memory (HyQuas
    /// SHM-GROUPING style).
    SharedMemory,
}

/// A kernel: an ordered group of stage gates executed as one GPU launch.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Indices into the *stage's* gate list, in execution order.
    pub gates: Vec<usize>,
    /// Fusion or shared-memory.
    pub kind: KernelKind,
    /// The kernel's qubit set (local physical bit positions at execution
    /// time; logical ids during planning), ascending.
    pub qubits: Vec<u32>,
}

/// The full execution plan: kernelized stages (the output of the paper's
/// `PARTITION`, Algorithm 1 lines 1–8).
#[derive(Clone, Debug)]
pub struct StagedKernels {
    /// Per-stage: the stage metadata and its kernel sequence.
    pub stages: Vec<(Stage, Vec<Kernel>)>,
    /// Total staging communication cost (Eq. 2 value).
    pub staging_cost: i64,
    /// Whether the staging solver proved optimality.
    pub staging_optimal: bool,
    /// Total kernel cost in model units (Eq. 12 value, summed over stages).
    pub kernel_cost: f64,
}

/// Validates a staging result against the staging problem's constraints:
/// every gate appears exactly once, in an order consistent with
/// dependencies, and each gate's non-insular qubits are local in its stage.
pub fn validate_stages(
    circuit: &Circuit,
    stages: &[Stage],
    l: u32,
    g: u32,
) -> Result<(), AtlasError> {
    let n = circuit.num_qubits();
    let masks = circuit.staging_masks();
    let mut assigned = vec![usize::MAX; circuit.num_gates()];
    for (k, stage) in stages.iter().enumerate() {
        stage.partition.validate(n, l, g)?;
        let local_mask = stage.partition.local_mask();
        for &gi in &stage.gates {
            if gi >= circuit.num_gates() {
                return Err(AtlasError::invalid_plan(format!(
                    "stage {k}: gate index {gi} out of range"
                )));
            }
            if assigned[gi] != usize::MAX {
                return Err(AtlasError::invalid_plan(format!(
                    "gate {gi} assigned to two stages"
                )));
            }
            assigned[gi] = k;
            if masks[gi] & !local_mask != 0 {
                return Err(AtlasError::invalid_plan(format!(
                    "stage {k}: gate {gi} has non-insular qubits {:#b} outside local set {:#b}",
                    masks[gi], local_mask
                )));
            }
        }
    }
    if let Some(gi) = assigned.iter().position(|&s| s == usize::MAX) {
        return Err(AtlasError::invalid_plan(format!(
            "gate {gi} not assigned to any stage"
        )));
    }
    // Dependency order: for every dependency (a, b), stage(a) ≤ stage(b),
    // and within a stage, program order is preserved by construction
    // (stage gate lists are ascending).
    for (a, b) in circuit.dependencies() {
        if assigned[a] > assigned[b] {
            return Err(AtlasError::invalid_plan(format!(
                "dependency violated: gate {a} (stage {}) must precede gate {b} (stage {})",
                assigned[a], assigned[b]
            )));
        }
    }
    for stage in stages {
        if stage.gates.windows(2).any(|w| w[0] >= w[1]) {
            return Err(AtlasError::invalid_plan(
                "stage gate list not in program order",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_validation() {
        let p = QubitPartition {
            local: vec![0, 2],
            regional: vec![1],
            global: vec![3],
        };
        assert!(p.validate(4, 2, 1).is_ok());
        assert!(p.validate(4, 3, 1).is_err());
        let dup = QubitPartition {
            local: vec![0, 0],
            regional: vec![1],
            global: vec![3],
        };
        assert!(dup.validate(4, 2, 1).is_err());
    }

    #[test]
    fn stage_validation_catches_nonlocal_gate() {
        let mut c = Circuit::new(3);
        c.h(0).h(2);
        let p_ok = QubitPartition {
            local: vec![0, 2],
            regional: vec![1],
            global: vec![],
        };
        let stage = Stage {
            gates: vec![0, 1],
            partition: p_ok,
        };
        assert!(validate_stages(&c, std::slice::from_ref(&stage), 2, 0).is_ok());
        let p_bad = QubitPartition {
            local: vec![0, 1],
            regional: vec![2],
            global: vec![],
        };
        let bad = Stage {
            gates: vec![0, 1],
            partition: p_bad,
        };
        assert!(validate_stages(&c, &[bad], 2, 0).is_err());
    }

    #[test]
    fn stage_validation_catches_missing_gate() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let p = QubitPartition {
            local: vec![0, 1],
            regional: vec![],
            global: vec![],
        };
        let stage = Stage {
            gates: vec![0],
            partition: p,
        };
        assert!(validate_stages(&c, &[stage], 2, 0).is_err());
    }
}
