//! Backend dispatch: one planning entry point
//! ([`Planner::plan_backend`]), three engines behind a common
//! [`SimulatorBackend`] trait.
//!
//! The session flow (plan once → execute many → sample/expect) is
//! engine-agnostic: what varies is *how* a circuit runs, not how plans
//! are keyed (the [`CircuitFingerprint`]) or how results are queried
//! (shots, Pauli expectations, basis-state probabilities). This module
//! factors that flow into a trait and adds two engines next to the
//! sharded statevector:
//!
//! * **Stabilizer** ([`StabilizerPlan`]): all-Clifford circuits replay
//!   on the CHP tableau in polynomial time — thousands of qubits where
//!   the statevector engine caps at 63.
//! * **Hybrid** ([`HybridPlan`]): a circuit with a Clifford *prefix*
//!   fast-forwards the prefix on the tableau, converts the stabilizer
//!   state to amplitudes, and hands off to the statevector engine for
//!   the non-Clifford suffix — PARTITION only ever sees (and pays for)
//!   the suffix.
//!
//! [`BackendKind::Auto`] picks among them structurally; `Statevec` and
//! `Stabilizer` force an engine and fail with a typed
//! [`AtlasError::InvalidConfig`] when the circuit does not fit it.

use crate::config::{AtlasConfig, BackendKind};
use crate::session::{CircuitFingerprint, CompiledPlan, Execution, Planner};
use atlas_circuit::Circuit;
use atlas_error::AtlasError;
use atlas_sampler::{CounterRng, PauliString};
use atlas_stabilizer::Tableau;

/// Minimum Clifford-prefix length (in gates) for [`BackendKind::Auto`]
/// to choose the hybrid path: shorter prefixes are not worth the
/// tableau→statevector conversion.
pub const HYBRID_MIN_PREFIX: usize = 4;

/// Widest circuit the hybrid handoff accepts: the tableau→statevector
/// conversion materializes `2^n` amplitudes.
pub const HYBRID_MAX_QUBITS: u32 = 30;

/// The engine-agnostic session flow: a compiled plan that fingerprints
/// one circuit structure and executes any circuit matching it.
///
/// Implemented by [`CompiledPlan`] (statevector), [`StabilizerPlan`]
/// (tableau), [`HybridPlan`] (tableau prefix + statevector suffix) and
/// the [`BackendPlan`] dispatcher.
pub trait SimulatorBackend {
    /// The structural fingerprint this plan was compiled from.
    fn fingerprint(&self) -> &CircuitFingerprint;

    /// The CLI name of the engine that will run the circuit.
    fn backend_name(&self) -> &'static str;

    /// Whether `circuit` may run under this plan (same structure, any
    /// gate parameters).
    fn accepts(&self, circuit: &Circuit) -> bool {
        CircuitFingerprint::of(circuit) == *self.fingerprint()
    }

    /// Executes a structure-matching circuit, returning the unified
    /// query surface.
    fn run(&self, circuit: &Circuit) -> Result<BackendRun, AtlasError>;
}

impl SimulatorBackend for CompiledPlan {
    fn fingerprint(&self) -> &CircuitFingerprint {
        CompiledPlan::fingerprint(self)
    }

    fn backend_name(&self) -> &'static str {
        "statevec"
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, AtlasError> {
        self.execute(circuit)
            .map(|e| BackendRun::Statevec(Box::new(e)))
    }
}

/// A compiled stabilizer-backend plan: the fingerprint plus the run
/// configuration. There is no PARTITION stage — tableau replay needs no
/// staging, kernelization or machine shape — so "planning" is
/// fingerprinting, and `run` replays the (structure-matching) circuit
/// on a fresh tableau.
#[derive(Clone, Debug)]
pub struct StabilizerPlan {
    fingerprint: CircuitFingerprint,
    cfg: AtlasConfig,
}

impl StabilizerPlan {
    /// Compiles a plan for `circuit` (which must be all-Clifford when
    /// later executed — checked at `run`, not here, since only the
    /// structure is captured).
    pub fn new(circuit: &Circuit, cfg: AtlasConfig) -> Self {
        StabilizerPlan {
            fingerprint: CircuitFingerprint::of(circuit),
            cfg,
        }
    }

    /// The configuration the plan runs under.
    pub fn config(&self) -> &AtlasConfig {
        &self.cfg
    }
}

impl SimulatorBackend for StabilizerPlan {
    fn fingerprint(&self) -> &CircuitFingerprint {
        &self.fingerprint
    }

    fn backend_name(&self) -> &'static str {
        "stabilizer"
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, AtlasError> {
        if !self.accepts(circuit) {
            return Err(AtlasError::PlanMismatch {
                reason: format!(
                    "circuit hash {:#018x} does not match the planned hash {:#018x}",
                    CircuitFingerprint::of(circuit).hash(),
                    self.fingerprint.hash(),
                ),
            });
        }
        let rec = &self.cfg.recorder;
        let t = rec.start();
        let tableau = Tableau::from_circuit(circuit)?;
        rec.span(
            "stabilizer.run",
            t,
            true,
            0,
            0,
            0,
            &[
                ("qubits", circuit.num_qubits() as u64),
                ("gates", circuit.num_gates() as u64),
            ],
        );
        let samples = (self.cfg.shots > 0).then(|| {
            let t = rec.start();
            let rng = CounterRng::new(self.cfg.seed);
            let samples = (0..self.cfg.shots as u64)
                .map(|shot| tableau.sample_words(&rng, shot))
                .collect();
            rec.span(
                "sample.draw",
                t,
                true,
                0,
                0,
                0,
                &[("shots", self.cfg.shots as u64), ("seed", self.cfg.seed)],
            );
            samples
        });
        rec.flush();
        Ok(BackendRun::Stabilizer(StabilizerRun { tableau, samples }))
    }
}

/// A hybrid plan: the circuit's Clifford prefix replays on the tableau,
/// its suffix runs under a statevector [`CompiledPlan`] seeded with the
/// converted prefix state. PARTITION ran on the suffix only.
#[derive(Clone, Debug)]
pub struct HybridPlan {
    fingerprint: CircuitFingerprint,
    prefix_len: usize,
    suffix: CompiledPlan,
}

impl HybridPlan {
    /// Number of leading gates handled by the tableau.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The statevector plan covering the non-Clifford suffix.
    pub fn suffix_plan(&self) -> &CompiledPlan {
        &self.suffix
    }
}

impl SimulatorBackend for HybridPlan {
    fn fingerprint(&self) -> &CircuitFingerprint {
        &self.fingerprint
    }

    fn backend_name(&self) -> &'static str {
        "hybrid"
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, AtlasError> {
        if !self.accepts(circuit) {
            return Err(AtlasError::PlanMismatch {
                reason: format!(
                    "circuit hash {:#018x} does not match the planned hash {:#018x}",
                    CircuitFingerprint::of(circuit).hash(),
                    self.fingerprint.hash(),
                ),
            });
        }
        let (prefix, suffix) = split_circuit(circuit, self.prefix_len);
        let tableau = Tableau::from_circuit(&prefix)?;
        let state = tableau.to_statevector()?;
        self.suffix
            .execute_from(&suffix, &state)
            .map(|e| BackendRun::Statevec(Box::new(e)))
    }
}

/// The dispatcher: whichever plan [`Planner::plan_backend`] chose.
#[derive(Clone, Debug)]
pub enum BackendPlan {
    /// The sharded statevector engine end to end.
    Statevec(CompiledPlan),
    /// The CHP tableau end to end.
    Stabilizer(StabilizerPlan),
    /// Tableau prefix, statevector suffix.
    Hybrid(HybridPlan),
}

impl BackendPlan {
    /// The configuration the plan runs under.
    pub fn config(&self) -> &AtlasConfig {
        match self {
            BackendPlan::Statevec(p) => p.config(),
            BackendPlan::Stabilizer(p) => p.config(),
            BackendPlan::Hybrid(p) => p.suffix.config(),
        }
    }
}

impl SimulatorBackend for BackendPlan {
    fn fingerprint(&self) -> &CircuitFingerprint {
        match self {
            BackendPlan::Statevec(p) => SimulatorBackend::fingerprint(p),
            BackendPlan::Stabilizer(p) => p.fingerprint(),
            BackendPlan::Hybrid(p) => p.fingerprint(),
        }
    }

    fn backend_name(&self) -> &'static str {
        match self {
            BackendPlan::Statevec(_) => "statevec",
            BackendPlan::Stabilizer(_) => "stabilizer",
            BackendPlan::Hybrid(_) => "hybrid",
        }
    }

    fn run(&self, circuit: &Circuit) -> Result<BackendRun, AtlasError> {
        match self {
            BackendPlan::Statevec(p) => p.run(circuit),
            BackendPlan::Stabilizer(p) => p.run(circuit),
            BackendPlan::Hybrid(p) => p.run(circuit),
        }
    }
}

/// A finished stabilizer-backend execution: the final tableau plus any
/// pre-drawn shots.
#[derive(Clone, Debug)]
pub struct StabilizerRun {
    /// The post-circuit tableau — every exact query runs against it.
    pub tableau: Tableau,
    /// Pre-drawn bit-packed shots when the config requested them.
    pub samples: Option<Vec<Vec<u64>>>,
}

/// One finished backend execution, queryable the same way regardless of
/// which engine produced it. Bitstrings are bit-packed `u64` words —
/// bit `q % 64` of word `q / 64` is qubit `q` — so results scale past
/// 64 qubits on the stabilizer side; statevector results always occupy
/// a single word.
#[derive(Debug)]
pub enum BackendRun {
    /// A statevector [`Execution`] (report, measurements engine, state).
    /// Boxed: an `Execution` is hundreds of bytes, a `StabilizerRun` a
    /// fraction of that, and runs are handled through `&self` queries.
    Statevec(Box<Execution>),
    /// A stabilizer [`StabilizerRun`].
    Stabilizer(StabilizerRun),
}

impl BackendRun {
    /// Words per bitstring for this run's width.
    pub fn num_words(&self) -> usize {
        match self {
            BackendRun::Statevec(_) => 1,
            BackendRun::Stabilizer(r) => r.tableau.num_words(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        match self {
            BackendRun::Statevec(e) => e.measurements.num_qubits(),
            BackendRun::Stabilizer(r) => r.tableau.num_qubits() as u32,
        }
    }

    /// The underlying statevector execution, when there is one.
    pub fn as_execution(&self) -> Option<&Execution> {
        match self {
            BackendRun::Statevec(e) => Some(e),
            BackendRun::Stabilizer(_) => None,
        }
    }

    /// The pre-drawn shots from the run's config, as bit-packed words.
    pub fn samples_words(&self) -> Option<Vec<Vec<u64>>> {
        match self {
            BackendRun::Statevec(e) => e
                .samples
                .as_ref()
                .map(|s| s.iter().map(|&v| vec![v]).collect()),
            BackendRun::Stabilizer(r) => r.samples.clone(),
        }
    }

    /// Draws `shots` fresh samples with `seed` (shot `i` is a pure
    /// function of `(seed, i)` on both engines).
    pub fn sample_words(&self, shots: usize, seed: u64) -> Vec<Vec<u64>> {
        match self {
            BackendRun::Statevec(e) => e
                .measurements
                .sample(shots, seed)
                .into_iter()
                .map(|v| vec![v])
                .collect(),
            BackendRun::Stabilizer(r) => {
                let rng = CounterRng::new(seed);
                (0..shots as u64)
                    .map(|shot| r.tableau.sample_words(&rng, shot))
                    .collect()
            }
        }
    }

    /// The expectation `⟨ψ|P|ψ⟩` of a Pauli string over logical qubits.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        match self {
            BackendRun::Statevec(e) => e.measurements.expectation(p),
            BackendRun::Stabilizer(r) => r.tableau.expectation(p),
        }
    }

    /// Probability of the basis state packed in `bits`.
    pub fn probability_of_bits(&self, bits: &[u64]) -> f64 {
        match self {
            BackendRun::Statevec(e) => e.measurements.probability(bits[0]),
            BackendRun::Stabilizer(r) => r.tableau.probability_of_bits(bits),
        }
    }

    /// Probability that measuring qubit `q` yields `1`.
    pub fn marginal_one(&self, q: u32) -> f64 {
        match self {
            BackendRun::Statevec(e) => e.measurements.marginal(&[q])[1],
            BackendRun::Stabilizer(r) => r.tableau.marginal_one_prob(q as usize),
        }
    }
}

/// Splits a circuit at gate index `k` into (prefix, suffix) circuits on
/// the same qubit count.
fn split_circuit(c: &Circuit, k: usize) -> (Circuit, Circuit) {
    let mut prefix = Circuit::named(c.num_qubits(), format!("{}_prefix", c.name()));
    let mut suffix = Circuit::named(c.num_qubits(), format!("{}_suffix", c.name()));
    for (i, g) in c.gates().iter().enumerate() {
        if i < k { &mut prefix } else { &mut suffix }.push(*g);
    }
    (prefix, suffix)
}

impl Planner {
    /// PARTITION with backend dispatch: compiles `circuit` for the
    /// engine selected by [`AtlasConfig::backend`].
    ///
    /// * `Auto` — all-Clifford circuits get a [`StabilizerPlan`];
    ///   circuits with a Clifford prefix of at least
    ///   [`HYBRID_MIN_PREFIX`] gates (and at most [`HYBRID_MAX_QUBITS`]
    ///   qubits) get a [`HybridPlan`] whose PARTITION covers only the
    ///   suffix; everything else gets the statevector [`CompiledPlan`].
    /// * `Statevec` — always the statevector plan; circuits wider than
    ///   63 qubits are rejected with [`AtlasError::InvalidConfig`].
    /// * `Stabilizer` — always the tableau; non-Clifford circuits are
    ///   rejected with [`AtlasError::InvalidConfig`] naming the first
    ///   offending gate.
    pub fn plan_backend(&self, circuit: &Circuit) -> Result<BackendPlan, AtlasError> {
        self.config().validate()?;
        match self.config().backend {
            BackendKind::Statevec => Ok(BackendPlan::Statevec(self.plan(circuit)?)),
            BackendKind::Stabilizer => {
                if !circuit.is_clifford() {
                    let at = circuit.clifford_prefix_len();
                    return Err(AtlasError::invalid_config(format!(
                        "backend = stabilizer requires an all-Clifford circuit, \
                         but gate {at} is '{}'; use backend = auto to dispatch \
                         mixed circuits",
                        circuit.gates()[at].kind.name()
                    )));
                }
                Ok(BackendPlan::Stabilizer(StabilizerPlan::new(
                    circuit,
                    self.config().clone(),
                )))
            }
            BackendKind::Auto => {
                if circuit.is_clifford() {
                    return Ok(BackendPlan::Stabilizer(StabilizerPlan::new(
                        circuit,
                        self.config().clone(),
                    )));
                }
                let prefix_len = circuit.clifford_prefix_len();
                if prefix_len >= HYBRID_MIN_PREFIX && circuit.num_qubits() <= HYBRID_MAX_QUBITS {
                    let (_, suffix) = split_circuit(circuit, prefix_len);
                    let suffix_plan = self.plan(&suffix)?;
                    return Ok(BackendPlan::Hybrid(HybridPlan {
                        fingerprint: CircuitFingerprint::of(circuit),
                        prefix_len,
                        suffix: suffix_plan,
                    }));
                }
                Ok(BackendPlan::Statevec(self.plan(circuit)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators;
    use atlas_machine::{CostModel, MachineSpec};
    use atlas_sampler::PauliOp;

    fn planner(backend: BackendKind) -> Planner {
        let cfg = AtlasConfig {
            backend,
            final_unpermute: true,
            ..AtlasConfig::default()
        };
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 5,
        };
        Planner::new(spec, CostModel::default(), cfg)
    }

    #[test]
    fn auto_routes_clifford_circuits_to_the_tableau() {
        let c = generators::clifford(8);
        let plan = planner(BackendKind::Auto).plan_backend(&c).unwrap();
        assert!(matches!(plan, BackendPlan::Stabilizer(_)));
        assert_eq!(plan.backend_name(), "stabilizer");
        assert!(plan.accepts(&c));
    }

    #[test]
    fn auto_routes_nonclifford_to_statevec_or_hybrid() {
        // QAOA opens with a wall of H gates — a Clifford prefix — so it
        // dispatches to the hybrid plan.
        let qaoa = generators::qaoa(8);
        assert!(qaoa.clifford_prefix_len() >= HYBRID_MIN_PREFIX);
        let plan = planner(BackendKind::Auto).plan_backend(&qaoa).unwrap();
        assert!(
            matches!(plan, BackendPlan::Hybrid(_)),
            "{}",
            plan.backend_name()
        );
        // A circuit that opens non-Clifford goes straight to statevec.
        let mut c = Circuit::new(8);
        c.t(0);
        for q in 0..8 {
            c.h(q);
        }
        let plan = planner(BackendKind::Auto).plan_backend(&c).unwrap();
        assert!(matches!(plan, BackendPlan::Statevec(_)));
    }

    #[test]
    fn hybrid_run_matches_pure_statevec() {
        let c = generators::qaoa(8);
        let auto = planner(BackendKind::Auto).plan_backend(&c).unwrap();
        let sv = planner(BackendKind::Statevec).plan_backend(&c).unwrap();
        assert!(matches!(auto, BackendPlan::Hybrid(_)));
        let (ra, rs) = (auto.run(&c).unwrap(), sv.run(&c).unwrap());
        for q in 0..8 {
            assert!(
                (ra.marginal_one(q) - rs.marginal_one(q)).abs() < 1e-9,
                "marginal({q}) differs"
            );
        }
        for ops in [
            vec![(0u32, PauliOp::Z), (5, PauliOp::Z)],
            vec![(1, PauliOp::X), (2, PauliOp::X)],
            vec![(3, PauliOp::Y), (7, PauliOp::Z)],
        ] {
            let p = PauliString::from_ops(8, &ops);
            assert!(
                (ra.expectation(&p) - rs.expectation(&p)).abs() < 1e-9,
                "⟨{ops:?}⟩ differs"
            );
        }
        for idx in 0..(1u64 << 8) {
            assert!(
                (ra.probability_of_bits(&[idx]) - rs.probability_of_bits(&[idx])).abs() < 1e-9,
                "p({idx}) differs"
            );
        }
    }

    #[test]
    fn forced_backends_reject_unfit_circuits() {
        let qaoa = generators::qaoa(8);
        match planner(BackendKind::Stabilizer).plan_backend(&qaoa) {
            Err(AtlasError::InvalidConfig { reason }) => {
                assert!(reason.contains("all-Clifford"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let wide = generators::ghz(200);
        match planner(BackendKind::Statevec).plan_backend(&wide) {
            Err(AtlasError::InvalidConfig { reason }) => {
                assert!(reason.contains("63"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn wide_clifford_circuit_plans_and_samples_through_the_session() {
        // The acceptance bar: a 200-qubit all-Clifford circuit plans and
        // samples through Planner::plan_backend.
        let c = generators::ghz(200);
        let planner = {
            let cfg = AtlasConfig {
                shots: 32,
                seed: 9,
                ..AtlasConfig::default()
            };
            Planner::new(MachineSpec::single_gpu(5), CostModel::default(), cfg)
        };
        let plan = planner.plan_backend(&c).unwrap();
        assert_eq!(plan.backend_name(), "stabilizer");
        let run = plan.run(&c).unwrap();
        assert_eq!(run.num_qubits(), 200);
        let samples = run.samples_words().unwrap();
        assert_eq!(samples.len(), 32);
        let zeros = vec![0u64; run.num_words()];
        let ones = {
            let mut v = vec![u64::MAX; 3];
            v.push((1u64 << (200 - 192)) - 1);
            v
        };
        for s in &samples {
            assert!(*s == zeros || *s == ones, "GHZ shot must be all-0 or all-1");
        }
        let zz = PauliString::from_ops(200, &[(0, PauliOp::Z), (199, PauliOp::Z)]);
        assert_eq!(run.expectation(&zz), 1.0);
    }

    #[test]
    fn stabilizer_plan_rejects_structure_mismatch() {
        let c = generators::clifford(6);
        let plan = planner(BackendKind::Auto).plan_backend(&c).unwrap();
        let mut other = generators::clifford(6);
        other.h(0);
        assert!(!plan.accepts(&other));
        assert!(matches!(
            plan.run(&other),
            Err(AtlasError::PlanMismatch { .. })
        ));
    }

    use atlas_circuit::Circuit;
}
