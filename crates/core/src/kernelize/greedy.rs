//! The greedy kernelization baseline of §VII-E: walk the gate sequence,
//! packing gates into fusion kernels of up to `max_qubits` (5 is the most
//! cost-efficient size under the default cost model); start a new kernel
//! whenever the next gate would overflow.

use super::{mask_to_qubits, KGate, KernelCost, Kernelization};
use crate::plan::{Kernel, KernelKind};

/// Runs the greedy *hybrid* packer (HyQuas-style): groups gates
/// contiguously up to `max_qubits`, then realizes each group as whichever
/// of fusion / shared-memory is cheaper.
pub fn run_hybrid(gates: &[KGate], cost: &KernelCost, max_qubits: u32) -> Kernelization {
    let max_qubits = max_qubits.min(cost.max_shm.max(cost.max_fusion));
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut mask = 0u64;
    let mut shm_sum = 0.0;
    let mut total = 0.0;
    let mut flush = |cur: &mut Vec<usize>, mask: &mut u64, shm_sum: &mut f64, total: &mut f64| {
        if !cur.is_empty() {
            let q = mask.count_ones();
            let f = (q <= cost.max_fusion).then(|| cost.fusion(q));
            let s = (q <= cost.max_shm).then(|| cost.shm(*shm_sum));
            let (kind, c) = match (f, s) {
                (Some(a), Some(b)) if a <= b => (KernelKind::Fusion, a),
                (_, Some(b)) => (KernelKind::SharedMemory, b),
                (Some(a), None) => (KernelKind::Fusion, a),
                (None, None) => unreachable!("group capacity enforced"),
            };
            *total += c;
            kernels.push(Kernel {
                gates: std::mem::take(cur),
                kind,
                qubits: mask_to_qubits(*mask),
            });
            *mask = 0;
            *shm_sum = 0.0;
        }
    };
    for (j, gate) in gates.iter().enumerate() {
        if (mask | gate.mask).count_ones() > max_qubits {
            flush(&mut cur, &mut mask, &mut shm_sum, &mut total);
        }
        mask |= gate.mask;
        shm_sum += gate.shm_ns;
        cur.push(j);
    }
    flush(&mut cur, &mut mask, &mut shm_sum, &mut total);
    Kernelization {
        kernels,
        cost: total,
    }
}

/// Runs the greedy packer.
pub fn run(gates: &[KGate], cost: &KernelCost, max_qubits: u32) -> Kernelization {
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut mask = 0u64;
    let mut total = 0.0;
    let mut flush = |cur: &mut Vec<usize>, mask: &mut u64, total: &mut f64| {
        if !cur.is_empty() {
            *total += cost.fusion(mask.count_ones());
            kernels.push(Kernel {
                gates: std::mem::take(cur),
                kind: KernelKind::Fusion,
                qubits: mask_to_qubits(*mask),
            });
            *mask = 0;
        }
    };
    for (j, gate) in gates.iter().enumerate() {
        if (mask | gate.mask).count_ones() > max_qubits {
            flush(&mut cur, &mut mask, &mut total);
        }
        mask |= gate.mask;
        cur.push(j);
    }
    flush(&mut cur, &mut mask, &mut total);
    Kernelization {
        kernels,
        cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kc() -> KernelCost {
        KernelCost::from_machine(&atlas_machine::CostModel::default())
    }

    #[test]
    fn packs_up_to_limit() {
        let gates: Vec<KGate> = (0..10)
            .map(|q| KGate {
                mask: 1 << q,
                shm_ns: 0.004,
            })
            .collect();
        let out = run(&gates, &kc(), 5);
        assert_eq!(out.kernels.len(), 2);
        assert_eq!(out.kernels[0].qubits.len(), 5);
    }

    #[test]
    fn repeated_qubits_pack_into_one() {
        let gates: Vec<KGate> = (0..30)
            .map(|i| KGate {
                mask: 0b11 << (i % 2),
                shm_ns: 0.004,
            })
            .collect();
        let out = run(&gates, &kc(), 5);
        assert_eq!(out.kernels.len(), 1, "all gates fit in a 3-qubit kernel");
    }
}
