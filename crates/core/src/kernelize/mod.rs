//! Circuit kernelization (§V): partition a stage's gate sequence into
//! fusion / shared-memory kernels minimizing total execution cost
//! (Problem 1, Eq. 12).
//!
//! Three algorithms, as in the paper's evaluation:
//!
//! * [`kernelize`] — the KERNELIZE dynamic program (Algorithms 3–4) under
//!   Constraint 1 (weak convexity + monotonicity), with the Appendix-B
//!   optimizations: single-qubit gate attachment, subsumption fast path,
//!   deferred merging of unrestricted kernels, greedy post-processing
//!   packing, and the pruning threshold `T`;
//! * [`kernelize_ordered`] — ORDERED KERNELIZE (Algorithm 5), the `O(|C|²)`
//!   contiguous-segment DP ("Atlas-Naive" in the appendix figures);
//! * [`kernelize_greedy`] — the §VII-E baseline greedily packing gates
//!   into fusion kernels of up to 5 qubits.

pub mod dp;
pub mod greedy;
pub mod ordered;

use crate::plan::{Kernel, KernelKind};
use atlas_error::AtlasError;
use atlas_machine::CostModel;

/// Kernelizer view of one stage gate: its qubit mask (over whatever qubit
/// space the stage uses — logical ids at planning time) and its
/// shared-memory per-amplitude cost.
#[derive(Clone, Copy, Debug)]
pub struct KGate {
    /// Qubit mask of the (insular-reduced) gate.
    pub mask: u64,
    /// Per-amplitude shared-memory cost (ns) from the cost model.
    pub shm_ns: f64,
}

/// Result of a kernelization.
#[derive(Clone, Debug)]
pub struct Kernelization {
    /// Kernels in a dependency-valid execution order.
    pub kernels: Vec<Kernel>,
    /// Total cost (Eq. 12) in per-amplitude nanoseconds.
    pub cost: f64,
}

/// Cost parameters the kernelizer needs, extracted from the machine model.
#[derive(Clone, Debug)]
pub struct KernelCost {
    /// Fusion kernel cost by qubit count (index = qubit count).
    pub fusion_ns: Vec<f64>,
    /// Shared-memory kernel fixed cost α.
    pub shm_alpha_ns: f64,
    /// Max fusion kernel qubits.
    pub max_fusion: u32,
    /// Max shared-memory kernel qubits (conservatively excludes the three
    /// reserved low qubits the executor always adds to the active set).
    pub max_shm: u32,
}

impl KernelCost {
    /// Derives the kernelizer constants from the machine cost model.
    pub fn from_machine(cm: &CostModel) -> Self {
        let max_fusion = cm.max_fusion_qubits;
        let fusion_ns = (0..=max_fusion).map(|k| cm.fusion_unit_ns(k)).collect();
        KernelCost {
            fusion_ns,
            shm_alpha_ns: cm.shm_alpha_ns,
            max_fusion,
            max_shm: cm.max_shm_qubits - cm.shm_required_low_qubits,
        }
    }

    /// Cost of a fusion kernel over `k` qubits.
    #[inline]
    pub fn fusion(&self, k: u32) -> f64 {
        self.fusion_ns[k as usize]
    }

    /// Cost of a shared-memory kernel with accumulated gate cost `sum`.
    #[inline]
    pub fn shm(&self, sum: f64) -> f64 {
        self.shm_alpha_ns + sum
    }

    /// Cost of a kernel of the given kind.
    pub fn of_kind(&self, kind: KernelKind, qubits: u32, shm_sum: f64) -> f64 {
        match kind {
            KernelKind::Fusion => self.fusion(qubits),
            KernelKind::SharedMemory => self.shm(shm_sum),
        }
    }

    /// Capacity of a kernel kind in qubits.
    pub fn capacity(&self, kind: KernelKind) -> u32 {
        match kind {
            KernelKind::Fusion => self.max_fusion,
            KernelKind::SharedMemory => self.max_shm,
        }
    }
}

/// A DP item: a multi-qubit host gate plus attached single-qubit gates
/// (Appendix B-d), or a standalone gate.
#[derive(Clone, Debug)]
pub struct DpItem {
    /// Union mask of the host and attachments.
    pub mask: u64,
    /// Stage-gate indices in program order.
    pub gates: Vec<usize>,
    /// Summed shared-memory cost of all member gates.
    pub shm_ns: f64,
}

/// Attaches single-qubit gates to adjacent multi-qubit gates (Appendix
/// B-d), producing the DP item sequence.
///
/// `max_item_qubits` bounds each item's mask (the largest kernel any
/// algorithm can build): an attachment that would push a host past the
/// bound leaves the gate as its own standalone item instead. Without the
/// bound, a stage whose single-qubit gates sit on qubits no host touches
/// (e.g. Grover's data register between V-chain sweeps) inflates one
/// host beyond every kernel capacity and the DP has no legal placement.
pub fn attach_single_qubit_gates(gates: &[KGate], max_item_qubits: u32) -> Vec<DpItem> {
    let mut items: Vec<DpItem> = Vec::new();
    let mut host_positions: Vec<usize> = Vec::new(); // stage index per item
    for (j, g) in gates.iter().enumerate() {
        if g.mask.count_ones() >= 2 {
            host_positions.push(j);
            items.push(DpItem {
                mask: g.mask,
                gates: vec![j],
                shm_ns: g.shm_ns,
            });
        }
    }
    if items.is_empty() {
        // No multi-qubit gates: every gate is its own item.
        return gates
            .iter()
            .enumerate()
            .map(|(j, g)| DpItem {
                mask: g.mask,
                gates: vec![j],
                shm_ns: g.shm_ns,
            })
            .collect();
    }
    let mut appended_fallback = false;
    // For each qubit, the items (hosts) touching it, in sequence order.
    let mut hosts_on_qubit: crate::detmap::DetMap<u32, Vec<usize>> = Default::default();
    for (it, &pos) in host_positions.iter().enumerate() {
        let mut m = gates[pos].mask;
        while m != 0 {
            let q = m.trailing_zeros();
            m &= m - 1;
            hosts_on_qubit.entry(q).or_default().push(it);
        }
    }
    for (j, g) in gates.iter().enumerate() {
        if g.mask.count_ones() >= 2 {
            continue;
        }
        let q = g.mask.trailing_zeros();
        let target = match hosts_on_qubit.get(&q) {
            // Closest host on the same qubit (before or after).
            Some(hs) => *hs
                .iter()
                .min_by_key(|&&it| host_positions[it].abs_diff(j))
                .expect("non-empty host list"),
            // Isolated chain: nearest host overall.
            None => (0..items.len())
                .min_by_key(|&it| host_positions[it].abs_diff(j))
                .expect("items non-empty"),
        };
        if (items[target].mask | g.mask).count_ones() > max_item_qubits {
            // Attachment would overflow every kernel capacity; keep the
            // gate standalone.
            host_positions.push(j);
            items.push(DpItem {
                mask: g.mask,
                gates: vec![j],
                shm_ns: g.shm_ns,
            });
            appended_fallback = true;
            continue;
        }
        items[target].mask |= g.mask;
        items[target].gates.push(j);
        items[target].shm_ns += g.shm_ns;
    }
    if appended_fallback {
        // Standalone fallbacks were appended out of order; restore
        // program order (hosts were already ascending).
        let mut keyed: Vec<(usize, DpItem)> = host_positions.into_iter().zip(items).collect();
        keyed.sort_by_key(|&(pos, _)| pos);
        items = keyed.into_iter().map(|(_, it)| it).collect();
    }
    for item in &mut items {
        item.gates.sort_unstable();
    }
    items
}

/// Orders kernels into a dependency-valid sequence: kernel A precedes B
/// when some gate of A precedes a qubit-sharing gate of B. Constraint 1
/// guarantees acyclicity (Theorem 2); a cycle panics (it would indicate a
/// kernelizer bug, and the functional-equivalence tests would catch it).
pub fn toposort_kernels(gates: &[KGate], mut kernels: Vec<Kernel>) -> Vec<Kernel> {
    let nk = kernels.len();
    let mut kernel_of_gate = vec![usize::MAX; gates.len()];
    for (ki, k) in kernels.iter().enumerate() {
        for &g in &k.gates {
            kernel_of_gate[g] = ki;
        }
    }
    let mut edges: crate::detmap::DetSet<(usize, usize)> = Default::default();
    let mut last_on_qubit: crate::detmap::DetMap<u32, usize> = Default::default();
    for (j, g) in gates.iter().enumerate() {
        let kj = kernel_of_gate[j];
        debug_assert_ne!(kj, usize::MAX, "gate {j} not covered by any kernel");
        let mut m = g.mask;
        while m != 0 {
            let q = m.trailing_zeros();
            m &= m - 1;
            if let Some(&prev) = last_on_qubit.get(&q) {
                let kp = kernel_of_gate[prev];
                if kp != kj {
                    edges.insert((kp, kj));
                }
            }
            last_on_qubit.insert(q, j);
        }
    }
    let mut indeg = vec![0usize; nk];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nk];
    for &(a, b) in &edges {
        succ[a].push(b);
        indeg[b] += 1;
    }
    // Kahn's algorithm; ready kernels emitted by first-gate position.
    let first_gate: Vec<usize> = kernels
        .iter()
        .map(|k| k.gates.first().copied().unwrap_or(usize::MAX))
        .collect();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> = (0..nk)
        .filter(|&k| indeg[k] == 0)
        .map(|k| std::cmp::Reverse((first_gate[k], k)))
        .collect();
    let mut order = Vec::with_capacity(nk);
    while let Some(std::cmp::Reverse((_, k))) = ready.pop() {
        order.push(k);
        for &s in &succ[k] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(std::cmp::Reverse((first_gate[s], s)));
            }
        }
    }
    assert_eq!(
        order.len(),
        nk,
        "kernel dependency cycle — Constraint 1 violated"
    );
    let mut taken: Vec<Option<Kernel>> = kernels.drain(..).map(Some).collect();
    order
        .into_iter()
        .map(|k| taken[k].take().expect("kernel emitted twice"))
        .collect()
}

/// Converts a qubit mask to an ascending qubit list.
pub fn mask_to_qubits(mask: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        v.push(m.trailing_zeros());
        m &= m - 1;
    }
    v
}

/// KERNELIZE (Algorithms 3–4 + Appendix B). `threshold` is the pruning
/// parameter `T` (paper default 500).
///
/// Theorem 6 (KERNELIZE ≤ ORDERED KERNELIZE) holds for the pure DP, but
/// the Appendix B-d single-qubit *attachment* heuristic — which the paper
/// also employs to bound the DP state population — can occasionally glue a
/// gate to a host that excludes the optimal contiguous segmentation
/// (property testing found 6-gate counterexamples; see the regression test
/// in `dp.rs`). KERNELIZE therefore also computes the Algorithm-5
/// certificate and returns whichever is cheaper, restoring the theorem
/// unconditionally at a small preprocessing cost (Algorithm 5's inner loop
/// exits early once a segment overflows every kernel capacity).
pub fn kernelize(gates: &[KGate], cost: &KernelCost, threshold: usize) -> Kernelization {
    let dp = dp::run(gates, cost, threshold);
    let certificate = ordered::run(gates, cost);
    if certificate.cost + 1e-12 < dp.cost {
        certificate
    } else {
        dp
    }
}

/// ORDERED KERNELIZE (Algorithm 5) — contiguous segments only.
pub fn kernelize_ordered(gates: &[KGate], cost: &KernelCost) -> Kernelization {
    ordered::run(gates, cost)
}

/// Greedy §VII-E baseline: pack gates into fusion kernels of up to
/// `max_qubits` (5 = the most cost-efficient size under the default model).
pub fn kernelize_greedy(gates: &[KGate], cost: &KernelCost, max_qubits: u32) -> Kernelization {
    greedy::run(gates, cost, max_qubits)
}

/// Dispatches to a kernelization algorithm per the config enum.
pub fn kernelize_with(
    algo: crate::config::KernelAlgo,
    threshold: usize,
    gates: &[KGate],
    cost: &KernelCost,
) -> Kernelization {
    use crate::config::KernelAlgo::*;
    match algo {
        Dp => kernelize(gates, cost, threshold),
        Ordered => kernelize_ordered(gates, cost),
        Greedy(m) => kernelize_greedy(gates, cost, m),
        GreedyHybrid(m) => greedy::run_hybrid(gates, cost, m),
    }
}

/// Validates that a kernelization covers every gate exactly once and that
/// every gate fits inside its kernel's qubit set.
pub fn validate_cover(gates: &[KGate], kernels: &[Kernel]) -> Result<(), AtlasError> {
    let mut seen = vec![false; gates.len()];
    for k in kernels {
        let kmask = k.qubits.iter().fold(0u64, |m, &q| m | (1 << q));
        for &g in &k.gates {
            if g >= gates.len() {
                return Err(AtlasError::invalid_plan(format!(
                    "gate index {g} out of range"
                )));
            }
            if seen[g] {
                return Err(AtlasError::invalid_plan(format!("gate {g} in two kernels")));
            }
            seen[g] = true;
            if gates[g].mask & !kmask != 0 {
                return Err(AtlasError::invalid_plan(format!(
                    "gate {g} outside kernel qubit set"
                )));
            }
        }
    }
    if let Some(g) = seen.iter().position(|&s| !s) {
        return Err(AtlasError::invalid_plan(format!("gate {g} not covered")));
    }
    Ok(())
}
