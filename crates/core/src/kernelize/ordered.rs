//! ORDERED KERNELIZE (Appendix A, Algorithm 5): the `O(|C|²)` dynamic
//! program over *contiguous* gate segments — "Atlas-Naive" in the
//! appendix figures. Optimal for Problem 1 restricted to the given gate
//! ordering (and therefore an upper bound certificate for KERNELIZE,
//! Theorem 6).

use super::{mask_to_qubits, KGate, KernelCost, Kernelization};
use crate::plan::{Kernel, KernelKind};

/// Cheapest realization (kind, cost) of the segment summary, if any.
fn segment_cost(cost: &KernelCost, qubits: u32, shm_sum: f64) -> Option<(KernelKind, f64)> {
    let f = (qubits <= cost.max_fusion).then(|| cost.fusion(qubits));
    let s = (qubits <= cost.max_shm).then(|| cost.shm(shm_sum));
    match (f, s) {
        (Some(a), Some(b)) if a <= b => Some((KernelKind::Fusion, a)),
        (_, Some(b)) => Some((KernelKind::SharedMemory, b)),
        (Some(a), None) => Some((KernelKind::Fusion, a)),
        (None, None) => None,
    }
}

/// Runs Algorithm 5.
pub fn run(gates: &[KGate], cost: &KernelCost) -> Kernelization {
    let n = gates.len();
    if n == 0 {
        return Kernelization {
            kernels: Vec::new(),
            cost: 0.0,
        };
    }
    let mut dp = vec![f64::INFINITY; n + 1];
    let mut choice: Vec<(usize, KernelKind)> = vec![(0, KernelKind::Fusion); n + 1];
    dp[0] = 0.0;
    for i in 1..=n {
        // Extend the segment [j, i) backwards from j = i-1.
        let mut mask = 0u64;
        let mut shm = 0.0;
        for j in (0..i).rev() {
            mask |= gates[j].mask;
            shm += gates[j].shm_ns;
            let q = mask.count_ones();
            match segment_cost(cost, q, shm) {
                Some((kind, c)) => {
                    if dp[j] + c < dp[i] {
                        dp[i] = dp[j] + c;
                        choice[i] = (j, kind);
                    }
                }
                None => break, // wider segments only get worse
            }
        }
    }
    let mut kernels = Vec::new();
    let mut i = n;
    while i > 0 {
        let (j, kind) = choice[i];
        let mask = gates[j..i].iter().fold(0u64, |m, g| m | g.mask);
        kernels.push(Kernel {
            gates: (j..i).collect(),
            kind,
            qubits: mask_to_qubits(mask),
        });
        i = j;
    }
    kernels.reverse();
    Kernelization {
        kernels,
        cost: dp[n],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kc() -> KernelCost {
        KernelCost::from_machine(&atlas_machine::CostModel::default())
    }

    fn g(mask: u64) -> KGate {
        KGate {
            mask,
            shm_ns: 0.004,
        }
    }

    #[test]
    fn single_gate_single_kernel() {
        let out = run(&[g(0b1)], &kc());
        assert_eq!(out.kernels.len(), 1);
        assert!(out.cost > 0.0);
    }

    #[test]
    fn fusing_disjoint_gates_beats_separate_kernels() {
        // Five 1-qubit gates on distinct qubits fuse into one 5-qubit
        // kernel at the cost of a single pass.
        let gates: Vec<KGate> = (0..5).map(|q| g(1 << q)).collect();
        let out = run(&gates, &kc());
        assert_eq!(out.kernels.len(), 1);
        let single: f64 = gates.iter().map(|_| kc().fusion(1)).sum();
        assert!(out.cost < single);
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        // Exhaustive segmentation of 8 gates: DP must equal the best.
        let gates: Vec<KGate> = [
            0b11u64, 0b110, 0b1001, 0b1, 0b11000, 0b100000, 0b110000, 0b1,
        ]
        .iter()
        .map(|&m| g(m))
        .collect();
        let cost = kc();
        let n = gates.len();
        // Enumerate all 2^(n-1) segmentations via cut bitmasks.
        let mut best = f64::INFINITY;
        for cuts in 0..(1u32 << (n - 1)) {
            let mut total = 0.0;
            let mut start = 0;
            let mut ok = true;
            for end in 1..=n {
                let boundary = end == n || cuts >> (end - 1) & 1 == 1;
                if boundary {
                    let mask = gates[start..end].iter().fold(0u64, |m, x| m | x.mask);
                    let shm: f64 = gates[start..end].iter().map(|x| x.shm_ns).sum();
                    match segment_cost(&cost, mask.count_ones(), shm) {
                        Some((_, c)) => total += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                    start = end;
                }
            }
            if ok {
                best = best.min(total);
            }
        }
        let out = run(&gates, &cost);
        assert!(
            (out.cost - best).abs() < 1e-12,
            "dp {} vs brute {best}",
            out.cost
        );
    }

    #[test]
    fn kernels_partition_the_sequence() {
        let gates: Vec<KGate> = (0..20).map(|i| g(1 << (i % 7))).collect();
        let out = run(&gates, &kc());
        let mut covered: Vec<usize> = out.kernels.iter().flat_map(|k| k.gates.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..20).collect::<Vec<_>>());
    }
}
