//! The KERNELIZE dynamic program (Algorithms 3–4) with the DP-state
//! representation of §VI-A and the Appendix-B optimizations.
//!
//! DP states hold the set of *open* kernels, each summarized by its kind
//! (fusion / shared-memory, §VI-B), qubit set, extensible qubit set
//! (Definition 3, maintained per Algorithm 4), and accumulated
//! shared-memory gate cost. Closed kernels live in a shared persistent
//! arena so states clone in O(|open|).
//!
//! Per item, placements follow Algorithm 3 refined by Appendix B:
//! * **subsumption fast path** (B-b): when the gate subsumes or is
//!   subsumed by an open kernel, it is added there and no other placement
//!   is considered;
//! * otherwise the gate may join any open kernel whose extensible set
//!   covers it (line 11), or start a fresh kernel of either kind (line 13
//!   + §VI-B's kind branching);
//! * when the current gate *restricts* a previously unrestricted kernel
//!   (Algorithm 4 line 9), that kernel may first be merged with any other
//!   unrestricted kernel (B-c's deferred merging);
//! * kernels whose extensible set empties are closed immediately and pay
//!   their cost (the "remove from κ" of §VI-A);
//! * when the state population reaches the threshold `T`, states are
//!   ranked by post-processed cost and halved (B-f);
//! * at the end, remaining open kernels are greedily packed — fusion
//!   kernels toward the most cost-efficient size, shared-memory kernels
//!   toward capacity (B-e) — and the cheapest state wins.

use super::{
    attach_single_qubit_gates, mask_to_qubits, toposort_kernels, DpItem, KGate, KernelCost,
    Kernelization,
};
use crate::plan::{Kernel, KernelKind};

// Deterministically-seeded hash containers for the DP state population.
//
// The std `RandomState` hasher randomizes iteration order per map
// instance, and this DP breaks cost *ties* by iteration order (snapshot
// order decides which equal-cost state reaches `next` first, and
// `min_by` returns the first minimum) — with random seeds, two identical
// `kernelize` calls could return different equally-optimal
// kernelizations, making end-to-end amplitudes differ at the ulp level
// between runs. A fixed-key hasher makes tie-breaking reproducible,
// which the executor's bit-identical-across-thread-counts guarantee
// relies on.
use crate::detmap::{DetMap, DetSet};

/// Sentinel for "extensible set = all qubits".
const ALL: u64 = u64::MAX;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy)]
enum Link {
    /// One item appended to a chain.
    Gate { item: u32, prev: u32 },
    /// Two chains merged.
    Join { a: u32, b: u32 },
}

#[derive(Clone, Copy, PartialEq)]
struct OpenKernel {
    kind: KernelKind,
    qubits: u64,
    extq: u64,
    shm: f64,
    chain: u32,
}

#[derive(Clone, Copy)]
struct ClosedKernel {
    kind: KernelKind,
    qubits: u64,
    chain: u32,
    prev: u32,
}

#[derive(Clone)]
struct State {
    open: Vec<OpenKernel>,
    closed_head: u32,
    cost: f64,
}

struct Ctx<'a> {
    items: &'a [DpItem],
    cost: &'a KernelCost,
    links: Vec<Link>,
    closed: Vec<ClosedKernel>,
    /// Most cost-efficient fusion packing size (cost/qubit minimizer).
    fusion_pack_size: u32,
}

impl Ctx<'_> {
    fn push_link(&mut self, item: u32, prev: u32) -> u32 {
        self.links.push(Link::Gate { item, prev });
        (self.links.len() - 1) as u32
    }

    fn join_chains(&mut self, a: u32, b: u32) -> u32 {
        self.links.push(Link::Join { a, b });
        (self.links.len() - 1) as u32
    }

    fn close_kernel(&mut self, st: &mut State, k: OpenKernel) {
        st.cost += self.cost.of_kind(k.kind, k.qubits.count_ones(), k.shm);
        self.closed.push(ClosedKernel {
            kind: k.kind,
            qubits: k.qubits,
            chain: k.chain,
            prev: st.closed_head,
        });
        st.closed_head = (self.closed.len() - 1) as u32;
    }

    fn chain_items(&self, mut head: u32, out: &mut Vec<u32>) {
        let mut stack = vec![];
        loop {
            if head == NONE {
                match stack.pop() {
                    Some(h) => {
                        head = h;
                        continue;
                    }
                    None => break,
                }
            }
            match self.links[head as usize] {
                Link::Gate { item, prev } => {
                    out.push(item);
                    head = prev;
                }
                Link::Join { a, b } => {
                    stack.push(a);
                    head = b;
                }
            }
        }
    }
}

#[inline]
fn ext_contains(extq: u64, m: u64) -> bool {
    extq == ALL || m & !extq == 0
}

/// Greedy post-processing packing (Appendix B-e): first-fit merge of
/// compatible open kernels. Returns the packed kernel summaries.
fn pack_open(ctx: &Ctx, open: &[OpenKernel]) -> Vec<(KernelKind, u64, f64, Vec<u32>)> {
    // (kind, qubits, shm_sum, chains)
    let mut bins: Vec<(KernelKind, u64, u64, f64, Vec<u32>)> = Vec::new(); // +extq intersection
    for k in open {
        let cap = match k.kind {
            KernelKind::Fusion => ctx.fusion_pack_size,
            KernelKind::SharedMemory => ctx.cost.max_shm,
        };
        let mut placed = false;
        for bin in &mut bins {
            if bin.0 != k.kind {
                continue;
            }
            let union = bin.1 | k.qubits;
            if union.count_ones() > cap {
                continue;
            }
            // Mutual extensibility: each side's qubits inside the other's
            // extensible set.
            if !ext_contains(bin.2, k.qubits) || !ext_contains(k.extq, bin.1) {
                continue;
            }
            bin.1 = union;
            bin.2 = if bin.2 == ALL && k.extq == ALL {
                ALL
            } else {
                ext_and(bin.2, k.extq)
            };
            bin.3 += k.shm;
            bin.4.push(k.chain);
            placed = true;
            break;
        }
        if !placed {
            bins.push((k.kind, k.qubits, k.extq, k.shm, vec![k.chain]));
        }
    }
    bins.into_iter()
        .map(|(kind, q, _, s, chains)| (kind, q, s, chains))
        .collect()
}

#[inline]
fn ext_and(a: u64, b: u64) -> u64 {
    match (a == ALL, b == ALL) {
        (true, true) => ALL,
        (true, false) => b,
        (false, true) => a,
        (false, false) => a & b,
    }
}

/// Post-processed cost of a state (used for pruning and final selection).
fn finalized_cost(ctx: &Ctx, st: &State) -> f64 {
    let packed = pack_open(ctx, &st.open);
    st.cost
        + packed
            .iter()
            .map(|(kind, q, s, _)| ctx.cost.of_kind(*kind, q.count_ones(), *s))
            .sum::<f64>()
}

fn canon_key(st: &State) -> Vec<u64> {
    let mut parts: Vec<[u64; 4]> = st
        .open
        .iter()
        .map(|k| {
            [
                match k.kind {
                    KernelKind::Fusion => 0u64,
                    KernelKind::SharedMemory => 1u64,
                },
                k.qubits,
                k.extq,
                k.shm.to_bits(),
            ]
        })
        .collect();
    parts.sort_unstable();
    parts.into_iter().flatten().collect()
}

/// Runs the DP. See module docs.
pub fn run(gates: &[KGate], cost: &KernelCost, threshold: usize) -> Kernelization {
    if gates.is_empty() {
        return Kernelization {
            kernels: Vec::new(),
            cost: 0.0,
        };
    }
    let items = attach_single_qubit_gates(gates, cost.max_fusion.max(cost.max_shm));
    let fusion_pack_size = (1..=cost.max_fusion)
        .min_by(|&a, &b| {
            (cost.fusion(a) / a as f64)
                .partial_cmp(&(cost.fusion(b) / b as f64))
                .unwrap()
        })
        .unwrap();
    let mut ctx = Ctx {
        items: &items,
        cost,
        links: Vec::new(),
        closed: Vec::new(),
        fusion_pack_size,
    };

    let mut states: DetMap<Vec<u64>, State> = DetMap::default();
    states.insert(
        Vec::new(),
        State {
            open: Vec::new(),
            closed_head: NONE,
            cost: 0.0,
        },
    );

    for (i, item) in items.iter().enumerate() {
        let m = item.mask;
        let snapshot: Vec<State> = states.values().cloned().collect();
        let mut next: DetMap<Vec<u64>, State> =
            DetMap::with_capacity_and_hasher(snapshot.len() * 2, Default::default());
        for st in &snapshot {
            // ----- placement options -----
            let subsume = st.open.iter().position(|k| {
                (m & !k.qubits == 0 || k.qubits & !m == 0)
                    && ext_contains(k.extq, m)
                    && (k.qubits | m).count_ones() <= ctx.cost.capacity(k.kind)
            });
            let mut placements: Vec<Option<usize>> = Vec::new(); // Some(idx) = into kernel, None×2 = new
            match subsume {
                Some(idx) => placements.push(Some(idx)),
                None => {
                    for (idx, k) in st.open.iter().enumerate() {
                        if ext_contains(k.extq, m)
                            && (k.qubits | m).count_ones() <= ctx.cost.capacity(k.kind)
                        {
                            placements.push(Some(idx));
                        }
                    }
                    placements.push(None);
                }
            }
            for placement in placements {
                let new_kinds: &[Option<KernelKind>] = match placement {
                    Some(_) => &[None],
                    None => &[Some(KernelKind::Fusion), Some(KernelKind::SharedMemory)],
                };
                for &new_kind in new_kinds {
                    if let Some(kind) = new_kind {
                        if m.count_ones() > ctx.cost.capacity(kind) {
                            continue;
                        }
                    }
                    // Build the base child: receiver updated, others pending.
                    let mut base = st.clone();
                    let receiver = match placement {
                        Some(idx) => {
                            let k = &mut base.open[idx];
                            k.qubits |= m;
                            k.shm += item.shm_ns;
                            k.chain = ctx.push_link(i as u32, k.chain);
                            idx
                        }
                        None => {
                            let chain = ctx.push_link(i as u32, NONE);
                            base.open.push(OpenKernel {
                                kind: new_kind.unwrap(),
                                qubits: m,
                                extq: ALL,
                                shm: item.shm_ns,
                                chain,
                            });
                            base.open.len() - 1
                        }
                    };
                    // Restriction events (Algorithm 4): unrestricted
                    // kernels hit by m; restricted kernels just shrink.
                    let mut events: Vec<usize> = Vec::new();
                    for (idx, k) in base.open.iter().enumerate() {
                        if idx == receiver {
                            continue;
                        }
                        if k.extq == ALL && k.qubits & m != 0 {
                            events.push(idx);
                        }
                    }
                    // Merge branching per event: leave, or merge into any
                    // still-unrestricted kernel of the same kind.
                    // Enumerate combinations depth-first.
                    struct Alt {
                        state: State,
                        remap: Vec<usize>, // current index per original position
                    }
                    let mut alts = vec![Alt {
                        state: base.clone(),
                        remap: (0..base.open.len()).collect(),
                    }];
                    for &ev in &events {
                        let mut grown: Vec<Alt> = Vec::new();
                        for alt in &alts {
                            let ev_idx = alt.remap[ev];
                            // Option 1: leave — restrict below.
                            grown.push(Alt {
                                state: alt.state.clone(),
                                remap: alt.remap.clone(),
                            });
                            // Option 2..: merge with another ALL-extq kernel.
                            for tgt in 0..alt.state.open.len() {
                                if tgt == ev_idx {
                                    continue;
                                }
                                let a = alt.state.open[ev_idx];
                                let b = alt.state.open[tgt];
                                if b.extq != ALL || b.kind != a.kind {
                                    continue;
                                }
                                let union = a.qubits | b.qubits;
                                if union.count_ones() > ctx.cost.capacity(a.kind) {
                                    continue;
                                }
                                let mut s2 = alt.state.clone();
                                let joined = ctx.join_chains(a.chain, b.chain);
                                s2.open[tgt] = OpenKernel {
                                    kind: a.kind,
                                    qubits: union,
                                    extq: ALL,
                                    shm: a.shm + b.shm,
                                    chain: joined,
                                };
                                s2.open.remove(ev_idx);
                                let mut remap2 = alt.remap.clone();
                                for r in remap2.iter_mut() {
                                    if *r == ev_idx {
                                        *r = if tgt > ev_idx { tgt - 1 } else { tgt };
                                    } else if *r != usize::MAX && *r > ev_idx {
                                        *r -= 1;
                                    }
                                }
                                grown.push(Alt {
                                    state: s2,
                                    remap: remap2,
                                });
                            }
                        }
                        alts = grown;
                    }
                    // Apply restrictions & closures to every alternative.
                    for alt in alts {
                        let mut child = alt.state;
                        // The receiver (the kernel holding C[i]) is exempt
                        // from restriction this round; merges tracked it
                        // through `remap`.
                        let mut recv_idx = alt.remap[receiver];
                        let mut idx = 0;
                        while idx < child.open.len() {
                            if idx == recv_idx {
                                idx += 1;
                                continue;
                            }
                            let k = child.open[idx];
                            let new_extq = if k.extq == ALL {
                                if k.qubits & m != 0 {
                                    k.qubits & !m
                                } else {
                                    ALL
                                }
                            } else {
                                k.extq & !m
                            };
                            if new_extq == 0 {
                                let closed = child.open.remove(idx);
                                ctx.close_kernel(&mut child, closed);
                                if recv_idx > idx {
                                    recv_idx -= 1;
                                }
                                continue;
                            }
                            child.open[idx].extq = new_extq;
                            idx += 1;
                        }
                        let key = canon_key(&child);
                        match next.get_mut(&key) {
                            Some(existing) if existing.cost <= child.cost => {}
                            _ => {
                                next.insert(key, child);
                            }
                        }
                    }
                }
            }
        }
        // Pruning (Appendix B-f).
        if next.len() >= threshold {
            let mut scored: Vec<(f64, Vec<u64>)> = next
                .iter()
                .map(|(key, st)| (finalized_cost(&ctx, st), key.clone()))
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let keep = (threshold / 2).max(1);
            let keys: DetSet<Vec<u64>> = scored.into_iter().take(keep).map(|(_, k)| k).collect();
            next.retain(|k, _| keys.contains(k));
        }
        states = next;
    }

    // Final selection + reconstruction.
    let best = states
        .values()
        .min_by(|a, b| {
            finalized_cost(&ctx, a)
                .partial_cmp(&finalized_cost(&ctx, b))
                .unwrap()
        })
        .expect("at least one DP state must survive")
        .clone();
    let total = finalized_cost(&ctx, &best);

    let mut kernels: Vec<Kernel> = Vec::new();
    let mut emit = |ctx: &Ctx, kind: KernelKind, qubits: u64, chains: &[u32]| {
        let mut item_ids: Vec<u32> = Vec::new();
        for &c in chains {
            ctx.chain_items(c, &mut item_ids);
        }
        let mut gate_ids: Vec<usize> = item_ids
            .iter()
            .flat_map(|&it| ctx.items[it as usize].gates.iter().copied())
            .collect();
        gate_ids.sort_unstable();
        kernels.push(Kernel {
            gates: gate_ids,
            kind,
            qubits: mask_to_qubits(qubits),
        });
    };
    let mut head = best.closed_head;
    while head != NONE {
        let ck = ctx.closed[head as usize];
        emit(&ctx, ck.kind, ck.qubits, &[ck.chain]);
        head = ck.prev;
    }
    for (kind, qubits, _shm, chains) in pack_open(&ctx, &best.open) {
        emit(&ctx, kind, qubits, &chains);
    }
    let kernels = toposort_kernels(gates, kernels);
    Kernelization {
        kernels,
        cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelize::{kernelize_greedy, kernelize_ordered, validate_cover};
    use atlas_machine::CostModel;

    fn kc() -> KernelCost {
        KernelCost::from_machine(&CostModel::default())
    }

    fn circuit_kgates(fam: atlas_circuit::generators::Family, n: u32) -> Vec<KGate> {
        let cm = CostModel::default();
        fam.generate(n)
            .gates()
            .iter()
            .map(|g| KGate {
                mask: g.qubit_mask(),
                shm_ns: cm.shm_gate_unit_ns(g),
            })
            .collect()
    }

    /// Regression: a Grover-style stage whose single-qubit gates sit on
    /// qubits no multi-qubit host touches. Unbounded attachment inflated
    /// one host item past every kernel capacity and the DP panicked with
    /// "at least one DP state must survive" (seen via
    /// `atlas-sim --family grover -n 20 --dry -L 16`).
    #[test]
    fn isolated_single_qubit_chains_do_not_overflow_attachment() {
        let masks: [u64; 22] = [
            0x1, 0x2, 0x4, 0x8, 0x10, 0x20, 0x40, 0x80, 0x100, 0x200, 0x400, 0x1, 0x2, 0x4, 0x8,
            0x100, 0x400, 0x803, 0x1804, 0x3008, 0x6010, 0xc020,
        ];
        let gates: Vec<KGate> = masks
            .iter()
            .map(|&mask| KGate { mask, shm_ns: 1.0 })
            .collect();
        let out = run(&gates, &kc(), 500);
        validate_cover(&gates, &out.kernels).unwrap();
        let cap = kc().max_fusion.max(kc().max_shm);
        for k in &out.kernels {
            assert!(
                k.qubits.len() as u32 <= cap,
                "kernel exceeds capacity: {:?}",
                k.qubits
            );
        }
    }

    #[test]
    fn dp_covers_and_orders_all_families() {
        for fam in atlas_circuit::generators::Family::table1() {
            let gates = circuit_kgates(fam, 8);
            let out = run(&gates, &kc(), 500);
            validate_cover(&gates, &out.kernels).unwrap_or_else(|e| panic!("{fam:?}: {e}"));
            assert!(out.cost > 0.0);
        }
    }

    #[test]
    fn theorem6_dp_never_worse_than_ordered() {
        // Theorem 6: KERNELIZE ≤ ORDERED KERNELIZE on every circuit.
        for fam in atlas_circuit::generators::Family::table1() {
            for n in [6u32, 9, 12] {
                let gates = circuit_kgates(fam, n);
                let dp = run(&gates, &kc(), 500);
                let ordered = kernelize_ordered(&gates, &kc());
                assert!(
                    dp.cost <= ordered.cost + 1e-9,
                    "{fam:?} n={n}: DP {} > ordered {}",
                    dp.cost,
                    ordered.cost
                );
            }
        }
    }

    #[test]
    fn dp_beats_greedy_on_structured_circuits() {
        // Fig. 10's qualitative claim: the DP finds strictly cheaper
        // kernelizations than greedy 5-qubit packing on structured
        // circuits like qft/ae/su2random.
        use atlas_circuit::generators::Family;
        for fam in [Family::Qft, Family::Ae, Family::Su2Random] {
            let gates = circuit_kgates(fam, 12);
            let dp = run(&gates, &kc(), 500);
            let greedy = kernelize_greedy(&gates, &kc(), 5);
            assert!(
                dp.cost <= greedy.cost + 1e-12,
                "{fam:?}: DP {} vs greedy {}",
                dp.cost,
                greedy.cost
            );
        }
    }

    #[test]
    fn pruning_degrades_gracefully() {
        // Smaller T can only worsen (or keep) the cost, never break
        // validity.
        let gates = circuit_kgates(atlas_circuit::generators::Family::Qft, 10);
        let full = run(&gates, &kc(), 2000);
        let tiny = run(&gates, &kc(), 4);
        validate_cover(&gates, &tiny.kernels).unwrap();
        assert!(tiny.cost + 1e-12 >= full.cost);
    }

    #[test]
    fn empty_input() {
        let out = run(&[], &kc(), 500);
        assert!(out.kernels.is_empty());
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn single_gate() {
        let gates = vec![KGate {
            mask: 0b11,
            shm_ns: 0.006,
        }];
        let out = run(&gates, &kc(), 500);
        assert_eq!(out.kernels.len(), 1);
        assert_eq!(out.kernels[0].gates, vec![0]);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use crate::kernelize::kernelize;
    use atlas_machine::CostModel;

    /// Proptest-discovered counterexample: the B-d attachment heuristic
    /// glues the lone Y(5) to the RZZ host, forcing qubit 5 into the first
    /// kernel and excluding the optimal contiguous split
    /// [cx,cx,rzz | y,swap,swap] = 2 × fusion(4). The pure DP lands at
    /// fusion(5) + fusion(3); `kernelize`'s Algorithm-5 certificate must
    /// recover the optimum.
    #[test]
    fn attachment_counterexample_is_caught_by_certificate() {
        let shm = 0.006;
        let gates = vec![
            KGate {
                mask: (1 << 4) | (1 << 6),
                shm_ns: shm,
            }, // cx(4,6)
            KGate {
                mask: (1 << 3) | (1 << 6),
                shm_ns: shm,
            }, // cx(3,6)
            KGate {
                mask: (1 << 6) | 1,
                shm_ns: 0.002,
            }, // rzz(6,0)
            KGate {
                mask: 1 << 5,
                shm_ns: 0.004,
            }, // y(5)
            KGate {
                mask: 1 | (1 << 3),
                shm_ns: shm,
            }, // swap(0,3)
            KGate {
                mask: (1 << 3) | (1 << 2),
                shm_ns: shm,
            }, // swap(3,2)
        ];
        let kc = KernelCost::from_machine(&CostModel::default());
        let out = kernelize(&gates, &kc, 500);
        let ordered = crate::kernelize::kernelize_ordered(&gates, &kc);
        assert!(
            out.cost <= ordered.cost + 1e-12,
            "Theorem 6: kernelize {} > ordered {}",
            out.cost,
            ordered.cost
        );
        // The optimum here is two 4-qubit fusion kernels.
        assert!((out.cost - 2.0 * kc.fusion(4)).abs() < 1e-12);
    }
}
