//! PARTITION + EXECUTE (Algorithm 1): compile a staged circuit into
//! per-stage qubit mappings, insular-specialized kernels and scalar
//! schedules, then run them on the (simulated) machine.
//!
//! ## Physical layout
//!
//! A stage maps logical qubit `q` to physical bit `mapping[q]`: local
//! qubits to bits `0..L`, regional to `L..L+R`, global to `L+R..n`.
//! Between stages the state is re-laid-out with one all-to-all
//! (`Machine::permute_state`), the only communication in the whole run —
//! the paper's central property.
//!
//! ## Insular specialization (Appendix B-a)
//!
//! Gates whose non-local qubits are insular are specialized per shard: the
//! shard index fixes the values of all non-local bits, so each such qubit
//! is eliminated from the gate's unitary ([`atlas_circuit::insular`]),
//! leaving a smaller local gate, or — when every qubit is non-local — a
//! pure scalar. Anti-diagonal single-qubit gates (X/Y) on non-local qubits
//! become shard-bit *relabels* ("flips") folded into the next all-to-all
//! for free, plus a per-shard scalar.

use crate::config::AtlasConfig;
use crate::detmap::DetMap;
use crate::kernelize::{self, KGate, KernelCost, Kernelization};
use crate::plan::{Kernel, KernelKind, Stage};
use crate::staging::{self, StagingOutcome};
use atlas_circuit::{insular, Circuit, Gate};
use atlas_error::AtlasError;
use atlas_machine::{CostModel, Machine, ShardOp, ShardProgram};
use atlas_qmath::{Complex64, Matrix, QubitPermutation};
use atlas_statevec::{classify_kernel, FastKernel, Pool};
use std::sync::Arc;

/// One non-local (insular) qubit of a gate, read per shard.
#[derive(Clone, Copy, Debug)]
pub struct ReadBit {
    /// Qubit position within the gate (matrix bit index).
    pub pos: u32,
    /// Physical bit (`≥ L`).
    pub phys: u32,
    /// Flip state of this physical bit at the gate's stage position.
    pub flip_snap: bool,
}

/// One gate of a stage, reduced to its local content.
#[derive(Clone, Debug)]
pub struct GateTemplate {
    /// Index of the gate in the circuit.
    pub circuit_gate: usize,
    /// Local physical bits (each `< L`), in the gate's own qubit order
    /// restricted to local qubits.
    pub local_phys: Vec<u32>,
    /// Non-local qubits the gate reads (insular), in gate-position order.
    pub reads: Vec<ReadBit>,
    /// Shared-memory cost of the original gate (per amplitude, ns).
    pub shm_ns: f64,
}

/// A fully-reduced gate: contributes only a per-shard scalar (and possibly
/// shard-bit flips).
#[derive(Clone, Debug)]
pub struct ScalarTemplate {
    /// Index of the gate in the circuit.
    pub circuit_gate: usize,
    /// Non-local qubits read, in gate-position order.
    pub reads: Vec<ReadBit>,
}

/// The compiled form of one stage.
#[derive(Clone, Debug)]
pub struct StagePlan {
    /// The staging-level stage (gates + logical partition).
    pub stage: Stage,
    /// Logical qubit → physical bit.
    pub mapping: Vec<u32>,
    /// Templates for gates with local content, in stage order.
    pub templates: Vec<GateTemplate>,
    /// Fully-reduced scalar gates, in stage order.
    pub scalars: Vec<ScalarTemplate>,
    /// Shard-bit flips accumulated across the stage (physical mask) —
    /// folded into the next all-to-all.
    pub flips: u64,
    /// Kernels over `templates` indices.
    pub kernels: Vec<Kernel>,
    /// Eq. 12 cost of this stage's kernelization.
    pub kernel_cost: f64,
}

/// The full execution plan (the output of PARTITION).
#[derive(Clone, Debug)]
pub struct FullPlan {
    /// Compiled stages.
    pub stages: Vec<StagePlan>,
    /// Eq. 2 staging cost.
    pub staging_cost: i64,
    /// Whether staging proved stage-count minimality.
    pub staging_optimal: bool,
    /// The generic ILP's decisive solve status when that staging
    /// algorithm produced the plan (`Feasible` = a node/time budget cut
    /// the optimality proof short — the plan is valid but possibly not
    /// cost-minimal). `None` under the search and SnuQS solvers.
    pub solve_status: Option<atlas_ilp::SolveStatus>,
    /// Σ kernel cost over stages.
    pub kernel_cost: f64,
    /// L and G used.
    pub l: u32,
    /// Number of global qubits.
    pub g: u32,
    /// Number of circuit qubits the plan was compiled for.
    pub n: u32,
}

impl FullPlan {
    /// The logical→physical qubit layout the machine is left in after
    /// EXECUTE: the identity when the run unpermutes at the end
    /// (`final_unpermute`), otherwise the last stage's mapping
    /// (outstanding X/Y relabel flips are already applied by `execute`).
    ///
    /// The single source of truth for the post-EXECUTE layout — the
    /// session API's [`Execution`](crate::session::Execution) and the
    /// [`simulate`](crate::simulate::simulate) shim both hand this to
    /// the measurement engine.
    pub fn final_mapping(&self, final_unpermute: bool) -> Vec<u32> {
        if final_unpermute {
            return (0..self.n).collect();
        }
        self.stages
            .last()
            .map(|sp| sp.mapping.clone())
            .unwrap_or_else(|| (0..self.n).collect())
    }
}

/// Builds the logical→physical mapping for a stage, keeping qubits at
/// their previous position whenever their class's physical range allows.
fn build_mapping(
    partition: &crate::plan::QubitPartition,
    prev: Option<&[u32]>,
    n: u32,
    l: u32,
    g: u32,
) -> Vec<u32> {
    let r = n - l - g;
    let ranges = [(0u32, l), (l, l + r), (l + r, n)];
    let classes: [&[u32]; 3] = [&partition.local, &partition.regional, &partition.global];
    let mut mapping = vec![u32::MAX; n as usize];
    let mut used = vec![false; n as usize];
    // First pass: keep stable positions.
    for (class, &(lo, hi)) in classes.iter().zip(&ranges) {
        for &q in *class {
            if let Some(pm) = prev {
                let p = pm[q as usize];
                if p >= lo && p < hi && !used[p as usize] {
                    mapping[q as usize] = p;
                    used[p as usize] = true;
                }
            }
        }
    }
    // Second pass: fill the rest in ascending order.
    for (class, &(lo, hi)) in classes.iter().zip(&ranges) {
        let mut next = lo;
        for &q in *class {
            if mapping[q as usize] != u32::MAX {
                continue;
            }
            while used[next as usize] {
                next += 1;
            }
            debug_assert!(next < hi);
            mapping[q as usize] = next;
            used[next as usize] = true;
        }
    }
    mapping
}

/// Compiles one stage: insular reduction, flip tracking, kernelization.
fn compile_stage(
    circuit: &Circuit,
    stage: Stage,
    mapping: Vec<u32>,
    l: u32,
    cost: &CostModel,
    kc: &KernelCost,
    cfg: &AtlasConfig,
) -> StagePlan {
    let mut templates = Vec::new();
    let mut scalars = Vec::new();
    let mut flips = 0u64;
    for &gi in &stage.gates {
        let gate = &circuit.gates()[gi];
        let ins = insular::gate_insularity(gate);
        let mut local_phys = Vec::new();
        let mut reads = Vec::new();
        let mut flip_mask = 0u64;
        for (t, q) in gate.qubits.iter().enumerate() {
            let p = mapping[q as usize];
            if p < l {
                local_phys.push(p);
            } else {
                debug_assert!(
                    ins[t].is_insular(),
                    "staging must keep non-insular qubits local (gate {gi})"
                );
                reads.push(ReadBit {
                    pos: t as u32,
                    phys: p,
                    flip_snap: flips >> p & 1 == 1,
                });
                if ins[t] == insular::InsularKind::AntiDiagonal {
                    flip_mask |= 1u64 << p;
                }
            }
        }
        if local_phys.is_empty() {
            scalars.push(ScalarTemplate {
                circuit_gate: gi,
                reads,
            });
        } else {
            debug_assert_eq!(flip_mask, 0, "mixed gates never flip non-local bits");
            templates.push(GateTemplate {
                circuit_gate: gi,
                local_phys,
                reads,
                shm_ns: cost.shm_gate_unit_ns(gate),
            });
        }
        flips ^= flip_mask;
    }
    // Kernelize the local content.
    let kgates: Vec<KGate> = templates
        .iter()
        .map(|t| KGate {
            mask: t.local_phys.iter().fold(0u64, |m, &p| m | (1 << p)),
            shm_ns: t.shm_ns,
        })
        .collect();
    let Kernelization {
        kernels,
        cost: kernel_cost,
    } = kernelize::kernelize_with(cfg.kernelizer, cfg.pruning_threshold, &kgates, kc);
    StagePlan {
        stage,
        mapping,
        templates,
        scalars,
        flips,
        kernels,
        kernel_cost,
    }
}

/// PARTITION (Algorithm 1, lines 1–8): stage, map, reduce, kernelize.
pub fn plan(
    circuit: &Circuit,
    l: u32,
    g: u32,
    cost: &CostModel,
    cfg: &AtlasConfig,
) -> Result<FullPlan, AtlasError> {
    let t = cfg.recorder.start();
    let StagingOutcome {
        stages,
        cost: staging_cost,
        optimal,
        solve_status,
    } = staging::stage_circuit(circuit, l, g, cfg)?;
    cfg.recorder.span(
        "plan.stage",
        t,
        true,
        0,
        0,
        0,
        &[
            ("stages", stages.len() as u64),
            ("cost", staging_cost.max(0) as u64),
            ("optimal", optimal as u64),
        ],
    );
    let mut plan = plan_from_stages(circuit, stages, staging_cost, optimal, l, g, cost, cfg)?;
    plan.solve_status = solve_status;
    Ok(plan)
}

/// PARTITION from a pre-computed staging (used to plan with baseline
/// staging algorithms for ablations).
#[allow(clippy::too_many_arguments)]
pub fn plan_from_stages(
    circuit: &Circuit,
    stages: Vec<Stage>,
    staging_cost: i64,
    staging_optimal: bool,
    l: u32,
    g: u32,
    cost: &CostModel,
    cfg: &AtlasConfig,
) -> Result<FullPlan, AtlasError> {
    let n = circuit.num_qubits();
    let kc = KernelCost::from_machine(cost);
    let t = cfg.recorder.start();
    let mut plans = Vec::with_capacity(stages.len());
    let mut prev_mapping: Option<Vec<u32>> = None;
    let mut kernel_cost = 0.0;
    for stage in stages {
        let mapping = build_mapping(&stage.partition, prev_mapping.as_deref(), n, l, g);
        let sp = compile_stage(circuit, stage, mapping, l, cost, &kc, cfg);
        kernel_cost += sp.kernel_cost;
        prev_mapping = Some(sp.mapping.clone());
        plans.push(sp);
    }
    let kernels: u64 = plans.iter().map(|sp| sp.kernels.len() as u64).sum();
    cfg.recorder.span(
        "plan.kernelize",
        t,
        true,
        0,
        0,
        0,
        &[("stages", plans.len() as u64), ("kernels", kernels)],
    );
    cfg.recorder.flush();
    Ok(FullPlan {
        stages: plans,
        staging_cost,
        staging_optimal,
        // Pre-computed stagings carry no solver status; `plan` overwrites
        // this for the GenericIlp path.
        solve_status: None,
        kernel_cost,
        l,
        g,
        n,
    })
}

/// Reduces a gate's unitary for a specific shard: fixes every non-local
/// (insular) qubit to its known value (shard bit XOR flip snapshot),
/// returning the matrix over the remaining (local) positions — a `1×1`
/// scalar if none remain. Positions are fixed from highest to lowest so
/// lower indices stay valid as the matrix shrinks.
fn reduce_for_pattern(gate: &Gate, reads: &[ReadBit], shard_bits: u64, l: u32) -> Matrix {
    let mut m = gate.matrix();
    for rb in reads.iter().rev() {
        let b = ((shard_bits >> (rb.phys - l)) & 1) as u8 ^ u8::from(rb.flip_snap);
        let reduced = insular::fix_qubit(&m, rb.pos, b).expect("non-local qubit must be insular");
        m = reduced.matrix;
    }
    m
}

/// EXECUTE (Algorithm 1, lines 9–17).
///
/// The machine must have been initialized with the `|0…0⟩` state (any bit
/// layout represents it identically) or pre-permuted into stage 0's
/// layout by the caller.
///
/// In functional mode with `cfg.threads > 1`, a persistent worker pool is
/// spawned for the whole run: each stage's independent shard kernels
/// execute concurrently across the workers, and the all-to-all reshuffles
/// between stages act as barriers (they run on this thread while the
/// workers are parked). Amplitudes are bit-identical for every thread
/// count.
pub fn execute(machine: &mut Machine, circuit: &Circuit, plan: &FullPlan, cfg: &AtlasConfig) {
    let done = execute_with(machine, circuit, plan, cfg, &|| false);
    debug_assert!(done, "a never-stop probe cannot interrupt EXECUTE");
}

/// EXECUTE with a cooperative interruption probe, polled at every stage
/// barrier — the natural deterministic preemption point: a stage's
/// kernels either all ran or none did, so abandoning between stages
/// leaves no half-applied kernel group.
///
/// Returns `true` when the run completed and `false` when the probe
/// stopped it; an interrupted machine holds a partial state and must be
/// dropped, not measured. A probe that always answers `false` makes this
/// byte-identical to [`execute`] — the poll reads nothing from the state
/// and writes nothing to it, so the presence of a (never-firing) probe
/// can never perturb results.
pub fn execute_with(
    machine: &mut Machine,
    circuit: &Circuit,
    plan: &FullPlan,
    cfg: &AtlasConfig,
    should_stop: &dyn Fn() -> bool,
) -> bool {
    // Dry runs never touch amplitudes, so the pool would only idle.
    let threads = if machine.is_dry() {
        1
    } else {
        cfg.threads.max(1)
    };
    if threads > 1 && machine.num_shards() >= threads {
        // Enough independent shards to keep every worker busy.
        atlas_statevec::with_pool(threads, |pool| {
            execute_on(machine, Some(circuit), plan, cfg, pool, should_stop)
        })
    } else {
        // Fewer shards than threads (or serial): no workers to park —
        // shards run inline and each kernel spends the budget on
        // intra-shard group parallelism instead.
        execute_on(
            machine,
            Some(circuit),
            plan,
            cfg,
            &Pool::inline(threads),
            should_stop,
        )
    }
}

/// EXECUTE in dry-run (clock model only) mode, without the circuit.
///
/// A dry walk charges kernels and all-to-alls purely from the compiled
/// [`FullPlan`] — gate matrices are never built — so a
/// [`CompiledPlan`](crate::session::CompiledPlan) can replay its cost
/// model without retaining the circuit it was planned from. The machine
/// must have been created with `dry = true`.
pub fn execute_dry(machine: &mut Machine, plan: &FullPlan, cfg: &AtlasConfig) {
    assert!(machine.is_dry(), "execute_dry needs a dry-mode machine");
    execute_on(machine, None, plan, cfg, &Pool::inline(1), &|| false);
}

/// The body of [`execute`] / [`execute_dry`], parameterized on the
/// worker pool. `circuit` is only read on the functional path (dry
/// stages charge costs straight from the plan). Returns `false` when
/// `should_stop` interrupted the run at a stage barrier.
fn execute_on(
    machine: &mut Machine,
    circuit: Option<&Circuit>,
    plan: &FullPlan,
    cfg: &AtlasConfig,
    pool: &Pool,
    should_stop: &dyn Fn() -> bool,
) -> bool {
    let n = plan.n;
    let l = plan.l;
    let num_shards = machine.num_shards();
    let mut carried_flips = 0u64;
    let mut prev_mapping: Option<&[u32]> = None;

    for sp in &plan.stages {
        // Stage-barrier preemption point: between stages the state is a
        // consistent (if partially evolved) vector, so an interrupted run
        // simply stops before the next stage's relayout and kernels.
        if should_stop() {
            return false;
        }
        // Stage transition: relayout + fold pending flips.
        if let Some(pm) = prev_mapping {
            let mut perm_map = vec![0u32; n as usize];
            for q in 0..n as usize {
                perm_map[pm[q] as usize] = sp.mapping[q];
            }
            let perm = QubitPermutation::from_map(perm_map);
            let f = permute_mask(&perm, carried_flips);
            machine.permute_state(&perm, f);
            carried_flips = 0;
        }

        execute_stage(machine, circuit, sp, l, num_shards, pool);
        carried_flips ^= sp.flips;
        machine.stage_barrier();
        prev_mapping = Some(&sp.mapping);
    }

    // Final unpermute to the identity layout (validation runs).
    if cfg.final_unpermute {
        if let Some(pm) = prev_mapping {
            let mut perm_map = vec![0u32; n as usize];
            for q in 0..n as usize {
                perm_map[pm[q] as usize] = q as u32;
            }
            let perm = QubitPermutation::from_map(perm_map);
            let f = permute_mask(&perm, carried_flips);
            machine.permute_state(&perm, f);
        }
    } else if carried_flips != 0 && !machine.is_dry() {
        // Apply outstanding relabels so gathered state is consistent with
        // the final mapping.
        machine.permute_state(&QubitPermutation::identity(n as usize), carried_flips);
    }
    true
}

/// Applies a bit permutation to a bitmask.
fn permute_mask(perm: &QubitPermutation, mask: u64) -> u64 {
    let mut out = 0u64;
    let mut m = mask;
    while m != 0 {
        let b = m.trailing_zeros();
        m &= m - 1;
        out |= 1u64 << perm.dst(b);
    }
    out
}

fn execute_stage(
    machine: &mut Machine,
    circuit: Option<&Circuit>,
    sp: &StagePlan,
    l: u32,
    num_shards: usize,
    pool: &Pool,
) {
    if machine.is_dry() {
        // Dry runs only need the clock charges — skip matrix construction
        // entirely (paper-scale shapes have millions of shard-kernels).
        for kernel in &sp.kernels {
            match kernel.kind {
                KernelKind::Fusion => {
                    for s in 0..num_shards {
                        machine.run_fusion_kernel_dry(s, kernel.qubits.len() as u32);
                    }
                }
                KernelKind::SharedMemory => {
                    let per_amp: f64 = kernel.gates.iter().map(|&t| sp.templates[t].shm_ns).sum();
                    let active = shm_active_set(&kernel.qubits, l);
                    for s in 0..num_shards {
                        machine.run_shm_kernel_parts(s, &active, &[], per_amp);
                    }
                }
            }
        }
        return;
    }
    let circuit = circuit.expect("functional execution needs the circuit");
    let programs = build_stage_programs(circuit, sp, l, num_shards);
    machine.run_shard_programs(&programs, pool);
}

/// Compiles one stage into a per-shard instruction sequence: insular
/// specialization per shard pattern, fused-matrix structure classification
/// ([`classify_kernel`]) shared across shards with equal patterns, and the
/// per-shard scalar folded into the first kernel that accepts it.
///
/// This is deliberately independent of the thread count — serial and
/// parallel execution run the *same* programs, which is what makes the
/// engine's output bit-identical across thread counts.
///
/// Public so `atlas-analyze` can effect-type the exact instruction
/// sequences the machine will run (and so tests can corrupt them):
/// the verifier proves per-shard write-set disjointness on this
/// output, not on a re-derivation of it.
pub fn build_stage_programs(
    circuit: &Circuit,
    sp: &StagePlan,
    l: u32,
    num_shards: usize,
) -> Vec<ShardProgram> {
    // Per-shard scalar from the fully-reduced gates.
    let mut shard_scalars: Vec<Complex64> = vec![Complex64::ONE; num_shards];
    let mut cache: DetMap<(usize, u64), Complex64> = DetMap::default();
    for (si, st) in sp.scalars.iter().enumerate() {
        let gate = &circuit.gates()[st.circuit_gate];
        for (s, acc) in shard_scalars.iter_mut().enumerate() {
            let key_bits = pattern_bits(&st.reads, s as u64, l);
            let scalar = *cache.entry((si, key_bits)).or_insert_with(|| {
                let m = reduce_for_pattern(gate, &st.reads, s as u64, l);
                debug_assert_eq!(m.rows(), 1);
                m[(0, 0)]
            });
            *acc *= scalar;
        }
    }
    let mut scalar_pending: Vec<bool> = shard_scalars
        .iter()
        .map(|sc| !sc.approx_eq(Complex64::ONE, 0.0))
        .collect();

    let mut programs: Vec<ShardProgram> = vec![Vec::new(); num_shards];
    for kernel in &sp.kernels {
        match kernel.kind {
            KernelKind::Fusion => {
                let qubits = Arc::new(kernel.qubits.clone());
                let mut compiled: DetMap<u64, Arc<FastKernel>> = DetMap::default();
                for (s, prog) in programs.iter_mut().enumerate() {
                    let key = kernel_pattern(sp, kernel, s as u64, l);
                    let fk = compiled
                        .entry(key)
                        .or_insert_with(|| {
                            Arc::new(classify_kernel(&build_fused(
                                circuit, sp, kernel, s as u64, l,
                            )))
                        })
                        .clone();
                    // Fold the shard scalar into the first kernel whose
                    // fast form accepts it for free.
                    let mut scale = Complex64::ONE;
                    if scalar_pending[s] && fk.can_fold_scale() {
                        scale = shard_scalars[s];
                        scalar_pending[s] = false;
                    }
                    prog.push(ShardOp::Fusion {
                        qubits: qubits.clone(),
                        kernel: fk,
                        scale,
                    });
                }
            }
            KernelKind::SharedMemory => {
                let per_amp: f64 = kernel.gates.iter().map(|&t| sp.templates[t].shm_ns).sum();
                // Shards with equal insular bit patterns specialize to the
                // same part list — build each distinct list once and share
                // it by Arc (the per-shard scalar stays a separate field
                // precisely so the parts can be shared).
                let mut compiled: DetMap<u64, Arc<atlas_machine::ShmPartList>> = DetMap::default();
                for (s, prog) in programs.iter_mut().enumerate() {
                    let key = kernel_pattern(sp, kernel, s as u64, l);
                    let parts = compiled
                        .entry(key)
                        .or_insert_with(|| {
                            let mut parts: Vec<(Vec<u32>, Matrix)> = Vec::new();
                            for &t in &kernel.gates {
                                let tp = &sp.templates[t];
                                let gate = &circuit.gates()[tp.circuit_gate];
                                let m = reduce_for_pattern(gate, &tp.reads, s as u64, l);
                                debug_assert!(tp.local_phys.iter().all(|&q| q < l));
                                parts.push((tp.local_phys.clone(), m));
                            }
                            Arc::new(parts)
                        })
                        .clone();
                    let mut scale = Complex64::ONE;
                    if scalar_pending[s] {
                        scale = shard_scalars[s];
                        scalar_pending[s] = false;
                    }
                    prog.push(ShardOp::ShmParts {
                        parts,
                        per_amp_ns: per_amp,
                        scale,
                    });
                }
            }
        }
    }
    // Shards whose scalar never got folded (stage without eligible
    // kernels): a standalone scale pass.
    for (s, prog) in programs.iter_mut().enumerate() {
        if scalar_pending[s] {
            prog.push(ShardOp::Scale(shard_scalars[s]));
        }
    }
    programs
}

/// The pattern key of a kernel for one shard: the raw shard bits of every
/// non-local bit any member gate reads.
fn kernel_pattern(sp: &StagePlan, kernel: &Kernel, shard_bits: u64, l: u32) -> u64 {
    let mut key = 0u64;
    for &t in &kernel.gates {
        key |= pattern_bits(&sp.templates[t].reads, shard_bits, l);
    }
    key
}

fn pattern_bits(reads: &[ReadBit], shard_bits: u64, l: u32) -> u64 {
    let mut key = 0u64;
    for rb in reads {
        key |= ((shard_bits >> (rb.phys - l)) & 1) << (rb.phys - l);
    }
    key
}

/// Builds the fused matrix of a fusion kernel for one shard.
fn build_fused(
    circuit: &Circuit,
    sp: &StagePlan,
    kernel: &Kernel,
    shard_bits: u64,
    l: u32,
) -> Matrix {
    let mut acc = Matrix::identity(1 << kernel.qubits.len());
    for &t in &kernel.gates {
        let tp = &sp.templates[t];
        let gate = &circuit.gates()[tp.circuit_gate];
        let m = reduce_for_pattern(gate, &tp.reads, shard_bits, l);
        let expanded = atlas_statevec::expand_to_kernel(&kernel.qubits, &tp.local_phys, &m);
        acc = &expanded * &acc;
    }
    acc
}

/// Shared-memory active set: the kernel's qubits plus the required three
/// least significant local qubits (§VI-B footnote: 128-byte coalesced
/// loads).
fn shm_active_set(qubits: &[u32], l: u32) -> Vec<u32> {
    let mut active: Vec<u32> = qubits.to_vec();
    for q in 0..3u32.min(l) {
        if !active.contains(&q) {
            active.push(q);
        }
    }
    active.sort_unstable();
    active
}
