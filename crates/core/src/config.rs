//! Tunable parameters of the Atlas pipeline, with the paper's defaults,
//! and the validating [`AtlasConfig::builder`] that rejects incoherent
//! combinations at construction time.

use atlas_error::AtlasError;
use atlas_telemetry::Recorder;
use std::time::Duration;

/// Which algorithm picks the stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingAlgo {
    /// Atlas: the ILP model solved by the structure-exploiting search
    /// (default — see `staging::search`).
    IlpSearch,
    /// Atlas: the ILP model solved by the generic `atlas-ilp`
    /// branch-and-bound. Exact but only tractable for small circuits.
    GenericIlp,
    /// The SnuQS greedy heuristic (§VII-D baseline).
    Snuqs,
}

/// Which simulation engine runs the circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Dispatch on circuit structure: all-Clifford circuits run on the
    /// stabilizer tableau, circuits with a long Clifford prefix
    /// fast-forward on the tableau and hand off to the statevector
    /// engine, everything else runs on the statevector engine (default).
    #[default]
    Auto,
    /// Force the sharded statevector engine (≤ 63 qubits).
    Statevec,
    /// Force the stabilizer tableau (all-Clifford circuits only, up to
    /// thousands of qubits).
    Stabilizer,
}

impl BackendKind {
    /// The CLI spelling of the variant.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Auto => "auto",
            BackendKind::Statevec => "statevec",
            BackendKind::Stabilizer => "stabilizer",
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = AtlasError;

    fn from_str(s: &str) -> Result<Self, AtlasError> {
        match s {
            "auto" => Ok(BackendKind::Auto),
            "statevec" => Ok(BackendKind::Statevec),
            "stabilizer" => Ok(BackendKind::Stabilizer),
            other => Err(AtlasError::invalid_config(format!(
                "unknown backend '{other}' (expected auto|statevec|stabilizer)"
            ))),
        }
    }
}

/// A peak-memory admission budget for functional EXECUTE requests.
///
/// A functional run of an `n`-qubit circuit allocates, at peak, the
/// sharded state (`2^n` amplitudes × 16 bytes), the ping-pong spare used
/// by state reshuffles (a full second copy), and one shard of local
/// scratch (`2^L` amplitudes × 16 bytes). The budget computes that peak
/// **before** any allocation and rejects the request with a typed
/// [`AtlasError::ResourceExhausted`] instead of letting the allocator
/// abort the process — the admission gate of the session API, the serve
/// pool and the CLI.
///
/// Dry runs never allocate amplitudes and are never gated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: u64,
}

impl MemoryBudget {
    /// The sharded engine's own functional ceiling: 30 qubits at any
    /// shard layout (state + spare + one full-width scratch shard =
    /// 3 × 2^30 × 16 bytes = 48 GiB). Budgets above this are clamped —
    /// the engine cannot index wider functional states regardless of
    /// available RAM.
    pub const ENGINE_CEILING: u64 = 3 * 16 * (1 << 30);

    /// The single-host default used by the `atlas-sim` CLI: 3 GiB of
    /// peak state, which admits exactly the circuits the historical
    /// `n > 26` auto-dry heuristic admitted (26 qubits at any `L ≤ 26`).
    pub const SINGLE_HOST: u64 = 3 * 16 * (1 << 26);

    /// A budget of `bytes` peak bytes per functional request.
    pub fn bytes(bytes: u64) -> Self {
        MemoryBudget { bytes }
    }

    /// The configured limit in bytes (before the engine-ceiling clamp).
    pub fn limit(&self) -> u64 {
        self.bytes
    }

    /// Peak bytes a functional `n`-qubit run allocates under `L` local
    /// qubits per device: state + ping-pong spare + one scratch shard.
    /// Saturates at `u64::MAX` for unrepresentable widths.
    pub fn peak_bytes(n: u32, local_qubits: u32) -> u64 {
        let amp = |q: u32| -> u128 { 16u128 << q.min(63) };
        let peak = 2 * amp(n) + amp(local_qubits.min(n));
        u64::try_from(peak).unwrap_or(u64::MAX)
    }

    /// The budget actually enforced: the configured limit clamped to
    /// [`ENGINE_CEILING`](MemoryBudget::ENGINE_CEILING).
    pub fn enforced(&self) -> u64 {
        self.bytes.min(Self::ENGINE_CEILING)
    }

    /// Whether an `n`-qubit functional run fits the budget.
    pub fn admits(&self, n: u32, local_qubits: u32) -> bool {
        Self::peak_bytes(n, local_qubits) <= self.enforced()
    }

    /// Gates an `n`-qubit functional run: `Ok(())` when it fits,
    /// [`AtlasError::ResourceExhausted`] with the exact peak and budget
    /// otherwise.
    pub fn admit(&self, n: u32, local_qubits: u32) -> Result<(), AtlasError> {
        if self.admits(n, local_qubits) {
            Ok(())
        } else {
            Err(AtlasError::ResourceExhausted {
                needed: Self::peak_bytes(n, local_qubits),
                budget: self.enforced(),
            })
        }
    }

    /// The widest circuit the budget admits under `L` local qubits per
    /// device (`0` when even one qubit is over budget) — what the CLI
    /// reports as "the functional limit".
    pub fn max_functional_qubits(&self, local_qubits: u32) -> u32 {
        (1..=63u32)
            .take_while(|&n| self.admits(n, local_qubits))
            .last()
            .unwrap_or(0)
    }
}

impl Default for MemoryBudget {
    /// Defaults to the engine ceiling — the session API behaves exactly
    /// as before (any `n ≤ 30` runs), except that wider requests now
    /// return a typed error instead of asserting.
    fn default() -> Self {
        MemoryBudget {
            bytes: Self::ENGINE_CEILING,
        }
    }
}

/// Which algorithm groups a stage's gates into kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelAlgo {
    /// Atlas: the KERNELIZE DP (Algorithms 3–4), with pruning threshold T.
    Dp,
    /// ORDERED KERNELIZE (Algorithm 5) — "Atlas-Naive".
    Ordered,
    /// Greedy fusion packing up to the given qubit count (§VII-E
    /// baseline; 5 is the most cost-efficient size).
    Greedy(u32),
    /// Greedy hybrid packing choosing fusion or shared-memory per group
    /// (HyQuas-style SHM-GROUPING / TransMM selection).
    GreedyHybrid(u32),
}

/// Configuration for staging, kernelization and execution.
#[derive(Clone, Debug)]
pub struct AtlasConfig {
    /// Inter-node communication cost factor `c` in the staging objective
    /// (Eq. 2). The paper sets 3 (§VI-C).
    pub inter_node_cost_factor: i64,
    /// Kernelization DP pruning threshold `T` (Appendix B-f). The paper
    /// sets 500.
    pub pruning_threshold: usize,
    /// Maximum number of stages Algorithm 2 will try before giving up.
    /// Deep circuits genuinely need many stages — a 20-qubit Grover's
    /// repeated multi-controlled-Z sweeps demand one or two per
    /// amplification round — so this is a runaway bound, not a typical
    /// operating point.
    pub max_stages: usize,
    /// Node budget for the generic ILP solver per `s` attempt — the
    /// **sole default budget**. Node counts are a pure function of the
    /// model, so the chosen plan is identical on every machine.
    pub ilp_node_limit: u64,
    /// Opt-in wall-clock budget for the generic ILP solver per `s`
    /// attempt. `None` (the default) disables it. Setting a time limit
    /// **breaks plan reproducibility**: the solver's incumbent at the
    /// cutoff depends on machine speed and load, so the same circuit can
    /// stage differently across hosts or runs — never rely on
    /// byte-identical plans (or plan-cache determinism) with this set.
    pub ilp_time_limit: Option<Duration>,
    /// Beam width of the staging search solver.
    pub staging_beam_width: usize,
    /// Staging algorithm.
    pub staging: StagingAlgo,
    /// Kernelization algorithm.
    pub kernelizer: KernelAlgo,
    /// Unpermute the final state back to the identity qubit layout after
    /// the last stage (needed when reading amplitudes out; benchmarks that
    /// reproduce the paper's timing leave it off, as the paper reports the
    /// simulation time with the final layout in place).
    pub final_unpermute: bool,
    /// Host threads the functional executor may use: independent shard
    /// kernels run concurrently across this many workers (one per
    /// simulated GPU), falling back to intra-shard group parallelism when
    /// shards are fewer than threads. `1` (the default) is fully serial.
    /// Amplitudes are bit-identical for every value — only wall-clock
    /// changes. Dry-run mode ignores it (the clock model is not threaded).
    pub threads: usize,
    /// Measurement shots to draw after a functional run (`0` = none).
    /// Sampling runs on the sharded state and the bitstrings land in
    /// `SimulationOutput::samples`; with a fixed [`seed`] they are
    /// byte-identical for every thread count and machine shape. (More
    /// shots can always be drawn later through
    /// `SimulationOutput::measurements`.)
    ///
    /// [`seed`]: AtlasConfig::seed
    pub shots: usize,
    /// Seed of the counter-based measurement RNG (shot `i` draws a pure
    /// function of `(seed, i)`). With [`noise`](AtlasConfig::noise) it
    /// additionally seeds the trajectory selector draws.
    pub seed: u64,
    /// Depolarizing error probability per gate-touched qubit (`0.0` =
    /// noiseless). Each noisy run is a Pauli-twirled stochastic
    /// trajectory: with probability `noise` a uniformly random X/Y/Z is
    /// injected after the gate on each qubit it touches. Trajectory `i`
    /// is a pure function of ([`seed`](AtlasConfig::seed)`, i`), so
    /// results are byte-identical across thread and worker counts.
    pub noise: f64,
    /// Number of stochastic trajectories to average when
    /// [`noise`](AtlasConfig::noise)` > 0` (ignored when noiseless).
    pub trajectories: usize,
    /// Which simulation engine runs the circuit.
    pub backend: BackendKind,
    /// Peak-memory admission budget for functional EXECUTE requests.
    /// Checked *before* any amplitude allocation by the session API, the
    /// serve pool's submission path and the CLI; an over-budget request
    /// returns [`AtlasError::ResourceExhausted`] instead of aborting.
    /// Defaults to the engine's own functional ceiling (48 GiB ≙ 30
    /// qubits), which preserves the historical behavior for every
    /// admissible width.
    pub memory_budget: MemoryBudget,
    /// Telemetry handle threaded through planning, execution, sampling
    /// and the serve pool. Disabled by default — every recording call in
    /// the pipeline is then a single-branch no-op. Enabling it never
    /// changes model-level output (amplitudes, samples, simulated
    /// seconds): wall-clock rides the trace channel only.
    pub recorder: Recorder,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            inter_node_cost_factor: 3,
            pruning_threshold: 500,
            max_stages: 512,
            ilp_node_limit: 2_000_000,
            ilp_time_limit: None,
            staging_beam_width: 64,
            staging: StagingAlgo::IlpSearch,
            kernelizer: KernelAlgo::Dp,
            final_unpermute: false,
            threads: 1,
            shots: 0,
            seed: 0,
            noise: 0.0,
            trajectories: 1,
            backend: BackendKind::Auto,
            memory_budget: MemoryBudget::default(),
            recorder: Recorder::default(),
        }
    }
}

impl AtlasConfig {
    /// Starts a validating builder pre-loaded with the paper defaults.
    ///
    /// Unlike struct-literal construction, [`AtlasConfigBuilder::build`]
    /// rejects incoherent combinations (`threads = 0`, a sampling seed
    /// without shots, a zero solver budget for the chosen staging
    /// algorithm, …) with a typed [`AtlasError::InvalidConfig`] — so a
    /// bad configuration fails at the API boundary instead of deep
    /// inside the pipeline or via ad-hoc CLI checks.
    ///
    /// ```
    /// use atlas_core::AtlasConfig;
    /// let cfg = AtlasConfig::builder().threads(8).shots(1024).build().unwrap();
    /// assert_eq!((cfg.threads, cfg.shots), (8, 1024));
    /// assert!(AtlasConfig::builder().threads(0).build().is_err());
    /// ```
    pub fn builder() -> AtlasConfigBuilder {
        AtlasConfigBuilder {
            cfg: AtlasConfig::default(),
            seed_set: false,
        }
    }

    /// Checks an assembled configuration for incoherent combinations —
    /// the same rules [`AtlasConfigBuilder::build`] enforces. [`Planner`]
    /// re-validates through this, so hand-built struct literals cannot
    /// smuggle an invalid configuration past the builder.
    ///
    /// [`Planner`]: crate::session::Planner
    pub fn validate(&self) -> Result<(), AtlasError> {
        if self.threads == 0 {
            return Err(AtlasError::invalid_config(
                "threads = 0: the executor needs at least one host thread",
            ));
        }
        if self.seed != 0 && self.shots == 0 && self.noise == 0.0 {
            return Err(AtlasError::invalid_config(format!(
                "seed {} set without shots or noise: the seed only affects \
                 shot sampling and noise-trajectory draws",
                self.seed
            )));
        }
        if !(0.0..=1.0).contains(&self.noise) || self.noise.is_nan() {
            return Err(AtlasError::invalid_config(format!(
                "noise = {}: the per-qubit error probability must lie in [0, 1]",
                self.noise
            )));
        }
        if self.noise > 0.0 && self.trajectories == 0 {
            return Err(AtlasError::invalid_config(
                "trajectories = 0 with noise > 0: a noisy run needs at least \
                 one stochastic trajectory",
            ));
        }
        if self.max_stages == 0 {
            return Err(AtlasError::invalid_config(
                "max_stages = 0: staging needs room for at least one stage",
            ));
        }
        // `inter_node_cost_factor = 0` is a legitimate ablation
        // (communication-cost-blind staging); negative factors would make
        // the Eq. 2 objective reward extra communication.
        if self.inter_node_cost_factor < 0 {
            return Err(AtlasError::invalid_config(format!(
                "inter_node_cost_factor = {}: a negative Eq. 2 factor rewards \
                 communication",
                self.inter_node_cost_factor
            )));
        }
        if self.staging == StagingAlgo::IlpSearch && self.staging_beam_width == 0 {
            return Err(AtlasError::invalid_config(
                "staging_beam_width = 0: the staging search keeps no candidates",
            ));
        }
        if self.staging == StagingAlgo::GenericIlp
            && (self.ilp_node_limit == 0 || self.ilp_time_limit.is_some_and(|t| t.is_zero()))
        {
            return Err(AtlasError::invalid_config(
                "GenericIlp staging with a zero node/time budget can never \
                 return a plan",
            ));
        }
        if self.memory_budget.limit() == 0 {
            return Err(AtlasError::invalid_config(
                "memory_budget = 0 bytes: no functional request could ever \
                 be admitted",
            ));
        }
        match self.kernelizer {
            KernelAlgo::Dp if self.pruning_threshold == 0 => {
                return Err(AtlasError::invalid_config(
                    "pruning_threshold = 0: the kernelize DP would prune every \
                     candidate kernel",
                ));
            }
            KernelAlgo::Greedy(0) | KernelAlgo::GreedyHybrid(0) => {
                return Err(AtlasError::invalid_config(
                    "greedy kernelizer with max_qubits = 0 cannot hold any gate",
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Configuration for functional-correctness runs: exact solvers where
    /// affordable and a final unpermute so amplitudes are directly
    /// comparable to the reference simulator.
    pub fn for_validation() -> Self {
        AtlasConfig {
            final_unpermute: true,
            ..Default::default()
        }
    }

    /// HyQuas-style configuration: SnuQS-like greedy staging plus greedy
    /// hybrid (fusion / shared-memory) grouping. Used by
    /// `atlas-baselines`.
    pub fn hyquas_like() -> Self {
        AtlasConfig {
            staging: StagingAlgo::Snuqs,
            kernelizer: KernelAlgo::GreedyHybrid(6),
            ..Default::default()
        }
    }
}

/// Validating builder for [`AtlasConfig`], started by
/// [`AtlasConfig::builder`].
///
/// Setters are chainable and loose (any value is accepted);
/// [`AtlasConfigBuilder::build`] is where coherence is enforced, so one
/// `Result` covers the whole construction.
#[derive(Clone, Debug)]
pub struct AtlasConfigBuilder {
    cfg: AtlasConfig,
    /// `seed()` was called — lets `build` reject an explicit seed (even
    /// `0`) without shots, which the struct-level validate cannot see.
    seed_set: bool,
}

impl AtlasConfigBuilder {
    /// Sets the inter-node communication cost factor `c` (Eq. 2).
    pub fn inter_node_cost_factor(mut self, c: i64) -> Self {
        self.cfg.inter_node_cost_factor = c;
        self
    }

    /// Sets the kernelization DP pruning threshold `T` (Appendix B-f).
    pub fn pruning_threshold(mut self, t: usize) -> Self {
        self.cfg.pruning_threshold = t;
        self
    }

    /// Sets the maximum number of stages Algorithm 2 will try.
    pub fn max_stages(mut self, s: usize) -> Self {
        self.cfg.max_stages = s;
        self
    }

    /// Sets the generic ILP solver's node budget per stage-count attempt.
    pub fn ilp_node_limit(mut self, nodes: u64) -> Self {
        self.cfg.ilp_node_limit = nodes;
        self
    }

    /// Opts in to a wall-clock budget per stage-count attempt for the
    /// generic ILP solver.
    ///
    /// **Breaks plan reproducibility**: the incumbent at a wall-clock
    /// cutoff depends on machine speed and load, so the same circuit
    /// can stage differently across hosts or runs. The deterministic
    /// [`ilp_node_limit`](AtlasConfigBuilder::ilp_node_limit) is the
    /// default budget; reach for this only when latency control
    /// outweighs determinism (and never in front of a shared plan
    /// cache).
    pub fn ilp_time_limit(mut self, limit: Duration) -> Self {
        self.cfg.ilp_time_limit = Some(limit);
        self
    }

    /// Sets the beam width of the staging search solver.
    pub fn staging_beam_width(mut self, w: usize) -> Self {
        self.cfg.staging_beam_width = w;
        self
    }

    /// Picks the staging algorithm.
    pub fn staging(mut self, algo: StagingAlgo) -> Self {
        self.cfg.staging = algo;
        self
    }

    /// Picks the kernelization algorithm.
    pub fn kernelizer(mut self, algo: KernelAlgo) -> Self {
        self.cfg.kernelizer = algo;
        self
    }

    /// Unpermute the final state back to the identity layout after the
    /// last stage (validation-style runs).
    pub fn final_unpermute(mut self, yes: bool) -> Self {
        self.cfg.final_unpermute = yes;
        self
    }

    /// Sets the host-thread budget of the functional executor.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Sets the number of measurement shots to pre-draw after a
    /// functional run.
    pub fn shots(mut self, shots: usize) -> Self {
        self.cfg.shots = shots;
        self
    }

    /// Sets the seed of the counter-based measurement RNG. Requires
    /// [`shots`](AtlasConfigBuilder::shots) `> 0` or
    /// [`noise`](AtlasConfigBuilder::noise) `> 0` at build time — a seed
    /// with nothing to draw is an [`AtlasError::InvalidConfig`].
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self.seed_set = true;
        self
    }

    /// Sets the per-qubit depolarizing error probability (Pauli-twirled
    /// stochastic trajectories).
    pub fn noise(mut self, p: f64) -> Self {
        self.cfg.noise = p;
        self
    }

    /// Sets the number of stochastic trajectories averaged under noise.
    pub fn trajectories(mut self, k: usize) -> Self {
        self.cfg.trajectories = k;
        self
    }

    /// Picks the simulation backend.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Sets the peak-memory admission budget for functional EXECUTE
    /// requests (checked before any amplitude allocation).
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.cfg.memory_budget = budget;
        self
    }

    /// Attaches a telemetry recorder (spans, counters, metrics). The
    /// default — a disabled handle — records nothing at zero cost.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.cfg.recorder = recorder;
        self
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// Rejected combinations (each a distinct
    /// [`AtlasError::InvalidConfig`] message): zero threads, a seed
    /// without shots or noise, a noise probability outside `[0, 1]`,
    /// zero trajectories under noise, zero `max_stages`, a negative
    /// Eq. 2 cost factor
    /// (zero stays legal as the communication-cost-blind ablation), a
    /// zero beam width under `IlpSearch`, a zero ILP budget
    /// under `GenericIlp`, and a degenerate kernelizer (`Dp` with
    /// `pruning_threshold = 0`, greedy packers with `max_qubits = 0`).
    pub fn build(self) -> Result<AtlasConfig, AtlasError> {
        if self.seed_set && self.cfg.shots == 0 && self.cfg.noise == 0.0 {
            return Err(AtlasError::invalid_config(format!(
                "seed {} set without shots or noise: the seed only affects \
                 shot sampling and noise-trajectory draws",
                self.cfg.seed
            )));
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = AtlasConfig::builder().build().unwrap();
        let default = AtlasConfig::default();
        assert_eq!(built.inter_node_cost_factor, default.inter_node_cost_factor);
        // The wall-clock ILP budget is opt-in: a default-on time limit
        // would make the chosen plan depend on machine load.
        assert_eq!(built.ilp_time_limit, None);
        assert_eq!(default.ilp_time_limit, None);
        assert_eq!(built.pruning_threshold, default.pruning_threshold);
        assert_eq!(built.max_stages, default.max_stages);
        assert_eq!(built.staging, default.staging);
        assert_eq!(built.kernelizer, default.kernelizer);
        assert_eq!(built.threads, default.threads);
        assert_eq!(built.shots, default.shots);
        assert_eq!(built.seed, default.seed);
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = AtlasConfig::builder()
            .inter_node_cost_factor(5)
            .pruning_threshold(100)
            .max_stages(32)
            .ilp_node_limit(1000)
            .ilp_time_limit(Duration::from_secs(2))
            .staging_beam_width(8)
            .staging(StagingAlgo::Snuqs)
            .kernelizer(KernelAlgo::Greedy(5))
            .final_unpermute(true)
            .threads(8)
            .shots(1024)
            .seed(7)
            .memory_budget(MemoryBudget::bytes(1 << 20))
            .recorder(Recorder::enabled())
            .build()
            .unwrap();
        assert!(cfg.recorder.is_enabled());
        assert_eq!(cfg.memory_budget, MemoryBudget::bytes(1 << 20));
        assert_eq!(cfg.inter_node_cost_factor, 5);
        assert_eq!(cfg.pruning_threshold, 100);
        assert_eq!(cfg.max_stages, 32);
        assert_eq!(cfg.ilp_node_limit, 1000);
        assert_eq!(cfg.ilp_time_limit, Some(Duration::from_secs(2)));
        assert_eq!(cfg.staging_beam_width, 8);
        assert_eq!(cfg.staging, StagingAlgo::Snuqs);
        assert_eq!(cfg.kernelizer, KernelAlgo::Greedy(5));
        assert!(cfg.final_unpermute);
        assert_eq!((cfg.threads, cfg.shots, cfg.seed), (8, 1024, 7));
    }

    /// Every invalid combination must be rejected with
    /// `AtlasError::InvalidConfig` (the variant the CLI maps to a usage
    /// error), each with a message naming the offending knob.
    #[test]
    fn builder_rejects_incoherent_combinations() {
        use atlas_error::AtlasError;
        let cases: Vec<(AtlasConfigBuilder, &str)> = vec![
            (AtlasConfig::builder().threads(0), "threads"),
            (AtlasConfig::builder().seed(3), "seed"),
            // An explicit zero seed without shots is still incoherent.
            (AtlasConfig::builder().seed(0), "seed"),
            (AtlasConfig::builder().max_stages(0), "max_stages"),
            (AtlasConfig::builder().noise(-0.1), "noise"),
            (AtlasConfig::builder().noise(1.5), "noise"),
            (AtlasConfig::builder().noise(f64::NAN), "noise"),
            (
                AtlasConfig::builder().noise(0.05).trajectories(0),
                "trajectories",
            ),
            (
                AtlasConfig::builder().inter_node_cost_factor(-1),
                "inter_node_cost_factor",
            ),
            (
                AtlasConfig::builder()
                    .staging(StagingAlgo::IlpSearch)
                    .staging_beam_width(0),
                "staging_beam_width",
            ),
            (
                AtlasConfig::builder()
                    .staging(StagingAlgo::GenericIlp)
                    .ilp_node_limit(0),
                "budget",
            ),
            (
                AtlasConfig::builder()
                    .staging(StagingAlgo::GenericIlp)
                    .ilp_time_limit(Duration::ZERO),
                "budget",
            ),
            (
                AtlasConfig::builder()
                    .kernelizer(KernelAlgo::Dp)
                    .pruning_threshold(0),
                "pruning_threshold",
            ),
            (
                AtlasConfig::builder().kernelizer(KernelAlgo::Greedy(0)),
                "max_qubits",
            ),
            (
                AtlasConfig::builder().kernelizer(KernelAlgo::GreedyHybrid(0)),
                "max_qubits",
            ),
            (
                AtlasConfig::builder().memory_budget(MemoryBudget::bytes(0)),
                "memory_budget",
            ),
        ];
        for (builder, needle) in cases {
            match builder.clone().build() {
                Err(AtlasError::InvalidConfig { reason }) => assert!(
                    reason.contains(needle),
                    "expected reason mentioning '{needle}', got: {reason}"
                ),
                other => panic!("{builder:?} should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn seed_is_coherent_with_noise_alone() {
        // A noisy run draws trajectory selectors from the seed even with
        // zero shots, so seed + noise (no shots) must build.
        let cfg = AtlasConfig::builder()
            .seed(11)
            .noise(0.02)
            .trajectories(4)
            .build()
            .unwrap();
        assert_eq!((cfg.seed, cfg.noise, cfg.trajectories), (11, 0.02, 4));
        // Boundary probabilities are legal.
        assert!(AtlasConfig::builder().noise(0.0).build().is_ok());
        assert!(AtlasConfig::builder().noise(1.0).shots(1).build().is_ok());
    }

    #[test]
    fn backend_kind_parses_and_round_trips() {
        use std::str::FromStr;
        for kind in [
            BackendKind::Auto,
            BackendKind::Statevec,
            BackendKind::Stabilizer,
        ] {
            assert_eq!(BackendKind::from_str(kind.name()).unwrap(), kind);
        }
        assert!(matches!(
            BackendKind::from_str("tensor"),
            Err(AtlasError::InvalidConfig { .. })
        ));
        assert_eq!(BackendKind::default(), BackendKind::Auto);
    }

    #[test]
    fn incoherence_is_judged_at_build_not_per_setter() {
        // seed-then-shots is fine: only the final combination counts.
        let cfg = AtlasConfig::builder().seed(9).shots(16).build().unwrap();
        assert_eq!((cfg.seed, cfg.shots), (9, 16));
        // Zero beam width is fine for solvers that don't use it.
        let cfg = AtlasConfig::builder()
            .staging(StagingAlgo::Snuqs)
            .staging_beam_width(0)
            .build()
            .unwrap();
        assert_eq!(cfg.staging_beam_width, 0);
        // Zero pruning threshold is fine off the DP kernelizer.
        assert!(AtlasConfig::builder()
            .kernelizer(KernelAlgo::Ordered)
            .pruning_threshold(0)
            .build()
            .is_ok());
    }

    /// The budget formula is the machine's actual allocation profile:
    /// state + ping-pong spare (two full copies) + one scratch shard.
    #[test]
    fn memory_budget_peak_formula_and_admission() {
        // n = 10, L = 5: 2·2^10·16 + 2^5·16 bytes.
        assert_eq!(MemoryBudget::peak_bytes(10, 5), 2 * 16 * 1024 + 16 * 32);
        // Scratch is one shard, never wider than the state itself.
        assert_eq!(MemoryBudget::peak_bytes(10, 30), 3 * 16 * 1024);
        // The single-host default admits exactly the historical 26-qubit
        // functional limit, at any shard layout.
        let single = MemoryBudget::bytes(MemoryBudget::SINGLE_HOST);
        assert!(single.admits(26, 26));
        assert!(single.admits(26, 5));
        assert!(!single.admits(27, 5));
        assert_eq!(single.max_functional_qubits(5), 26);
        // The default budget is the engine ceiling: 30 qubits, typed
        // rejection (not an assert) beyond it.
        let default = MemoryBudget::default();
        assert!(default.admits(30, 30));
        match default.admit(31, 5) {
            Err(AtlasError::ResourceExhausted { needed, budget }) => {
                assert_eq!(needed, MemoryBudget::peak_bytes(31, 5));
                assert_eq!(budget, MemoryBudget::ENGINE_CEILING);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        // Budgets above the ceiling are clamped: RAM cannot buy qubits
        // the engine cannot index.
        assert!(!MemoryBudget::bytes(u64::MAX).admits(31, 5));
        // Saturating peak for very wide requests.
        assert_eq!(MemoryBudget::peak_bytes(63, 63), u64::MAX);
    }

    #[test]
    fn struct_level_validate_catches_nonzero_seed_without_shots() {
        let cfg = AtlasConfig {
            seed: 5,
            ..AtlasConfig::default()
        };
        assert!(cfg.validate().is_err());
        assert!(AtlasConfig::default().validate().is_ok());
        assert!(AtlasConfig::for_validation().validate().is_ok());
        assert!(AtlasConfig::hyquas_like().validate().is_ok());
    }
}
