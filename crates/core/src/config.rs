//! Tunable parameters of the Atlas pipeline, with the paper's defaults.

use std::time::Duration;

/// Which algorithm picks the stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingAlgo {
    /// Atlas: the ILP model solved by the structure-exploiting search
    /// (default — see `staging::search`).
    IlpSearch,
    /// Atlas: the ILP model solved by the generic `atlas-ilp`
    /// branch-and-bound. Exact but only tractable for small circuits.
    GenericIlp,
    /// The SnuQS greedy heuristic (§VII-D baseline).
    Snuqs,
}

/// Which algorithm groups a stage's gates into kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelAlgo {
    /// Atlas: the KERNELIZE DP (Algorithms 3–4), with pruning threshold T.
    Dp,
    /// ORDERED KERNELIZE (Algorithm 5) — "Atlas-Naive".
    Ordered,
    /// Greedy fusion packing up to the given qubit count (§VII-E
    /// baseline; 5 is the most cost-efficient size).
    Greedy(u32),
    /// Greedy hybrid packing choosing fusion or shared-memory per group
    /// (HyQuas-style SHM-GROUPING / TransMM selection).
    GreedyHybrid(u32),
}

/// Configuration for staging, kernelization and execution.
#[derive(Clone, Debug)]
pub struct AtlasConfig {
    /// Inter-node communication cost factor `c` in the staging objective
    /// (Eq. 2). The paper sets 3 (§VI-C).
    pub inter_node_cost_factor: i64,
    /// Kernelization DP pruning threshold `T` (Appendix B-f). The paper
    /// sets 500.
    pub pruning_threshold: usize,
    /// Maximum number of stages Algorithm 2 will try before giving up.
    /// Deep circuits genuinely need many stages — a 20-qubit Grover's
    /// repeated multi-controlled-Z sweeps demand one or two per
    /// amplification round — so this is a runaway bound, not a typical
    /// operating point.
    pub max_stages: usize,
    /// Node budget for the generic ILP solver per `s` attempt.
    pub ilp_node_limit: u64,
    /// Time budget for the generic ILP solver per `s` attempt.
    pub ilp_time_limit: Duration,
    /// Beam width of the staging search solver.
    pub staging_beam_width: usize,
    /// Staging algorithm.
    pub staging: StagingAlgo,
    /// Kernelization algorithm.
    pub kernelizer: KernelAlgo,
    /// Unpermute the final state back to the identity qubit layout after
    /// the last stage (needed when reading amplitudes out; benchmarks that
    /// reproduce the paper's timing leave it off, as the paper reports the
    /// simulation time with the final layout in place).
    pub final_unpermute: bool,
    /// Host threads the functional executor may use: independent shard
    /// kernels run concurrently across this many workers (one per
    /// simulated GPU), falling back to intra-shard group parallelism when
    /// shards are fewer than threads. `1` (the default) is fully serial.
    /// Amplitudes are bit-identical for every value — only wall-clock
    /// changes. Dry-run mode ignores it (the clock model is not threaded).
    pub threads: usize,
    /// Measurement shots to draw after a functional run (`0` = none).
    /// Sampling runs on the sharded state and the bitstrings land in
    /// `SimulationOutput::samples`; with a fixed [`seed`] they are
    /// byte-identical for every thread count and machine shape. (More
    /// shots can always be drawn later through
    /// `SimulationOutput::measurements`.)
    ///
    /// [`seed`]: AtlasConfig::seed
    pub shots: usize,
    /// Seed of the counter-based measurement RNG (shot `i` draws a pure
    /// function of `(seed, i)`).
    pub seed: u64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            inter_node_cost_factor: 3,
            pruning_threshold: 500,
            max_stages: 512,
            ilp_node_limit: 2_000_000,
            ilp_time_limit: Duration::from_secs(20),
            staging_beam_width: 64,
            staging: StagingAlgo::IlpSearch,
            kernelizer: KernelAlgo::Dp,
            final_unpermute: false,
            threads: 1,
            shots: 0,
            seed: 0,
        }
    }
}

impl AtlasConfig {
    /// Configuration for functional-correctness runs: exact solvers where
    /// affordable and a final unpermute so amplitudes are directly
    /// comparable to the reference simulator.
    pub fn for_validation() -> Self {
        AtlasConfig {
            final_unpermute: true,
            ..Default::default()
        }
    }

    /// HyQuas-style configuration: SnuQS-like greedy staging plus greedy
    /// hybrid (fusion / shared-memory) grouping. Used by
    /// `atlas-baselines`.
    pub fn hyquas_like() -> Self {
        AtlasConfig {
            staging: StagingAlgo::Snuqs,
            kernelizer: KernelAlgo::GreedyHybrid(6),
            ..Default::default()
        }
    }
}
