//! The paper's staging ILP (Eqs. 3–11), built verbatim on the reduced
//! problem and solved with the generic `atlas-ilp` branch-and-bound.
//!
//! This is the reference implementation of §IV-b: exact and faithful, used
//! for validation and small circuits. The default pipeline uses the
//! structure-exploiting search in [`super::search`], which explores the
//! same model with the `F`/`S`/`T` variables eliminated by propagation.

use super::prep::StagingProblem;
use super::RawStaging;
use atlas_ilp::{Model, Solution, SolveStatus, SolverConfig, VarId};

/// Variable handles of the built model.
pub struct IlpVars {
    /// `a[k][q]`: logical qubit `q` is local in stage `k`.
    pub a: Vec<Vec<VarId>>,
    /// `b[k][q]`: logical qubit `q` is global in stage `k`.
    pub b: Vec<Vec<VarId>>,
    /// `f[k][g]`: item `g` finished by end of stage `k`.
    pub f: Vec<Vec<VarId>>,
    /// `s_up[k][q]`: qubit `q` became local between stages `k` and `k+1`.
    pub s_up: Vec<Vec<VarId>>,
    /// `t_up[k][q]`: qubit `q` became global between stages `k` and `k+1`.
    pub t_up: Vec<Vec<VarId>>,
}

/// Builds the ILP for exactly `s` stages.
pub fn build_ilp(p: &StagingProblem, s: usize) -> (Model, IlpVars) {
    let n = p.n as usize;
    let ng = p.items.len();
    let mut m = Model::new();
    let a: Vec<Vec<VarId>> = (0..s)
        .map(|k| (0..n).map(|q| m.add_var(format!("A_{q}_{k}"))).collect())
        .collect();
    let b: Vec<Vec<VarId>> = (0..s)
        .map(|k| (0..n).map(|q| m.add_var(format!("B_{q}_{k}"))).collect())
        .collect();
    let f: Vec<Vec<VarId>> = (0..s)
        .map(|k| (0..ng).map(|g| m.add_var(format!("F_{g}_{k}"))).collect())
        .collect();
    let s_up: Vec<Vec<VarId>> = (0..s.saturating_sub(1))
        .map(|k| (0..n).map(|q| m.add_var(format!("S_{q}_{k}"))).collect())
        .collect();
    let t_up: Vec<Vec<VarId>> = (0..s.saturating_sub(1))
        .map(|k| (0..n).map(|q| m.add_var(format!("T_{q}_{k}"))).collect())
        .collect();

    // Objective (3): min Σ_k Σ_q S + c·T.
    for k in 0..s.saturating_sub(1) {
        for q in 0..n {
            m.set_objective(s_up[k][q], 1);
            m.set_objective(t_up[k][q], p.c_factor);
        }
    }
    // Branch on the partition variables, earliest stages first.
    for k in 0..s {
        let prio = (s - k) as i32;
        for q in 0..n {
            m.set_priority(a[k][q], prio * 2 + 1);
            m.set_priority(b[k][q], prio * 2);
        }
    }

    for q in 0..n {
        for k in 0..s - 1 {
            // (4): A[q,k+1] ≤ A[q,k] + S[q,k]
            m.le([(a[k + 1][q], 1), (a[k][q], -1), (s_up[k][q], -1)], 0);
            // (5): B[q,k+1] ≤ B[q,k] + T[q,k]
            m.le([(b[k + 1][q], 1), (b[k][q], -1), (t_up[k][q], -1)], 0);
        }
        for k in 0..s {
            // (10): A + B ≤ 1
            m.le([(a[k][q], 1), (b[k][q], 1)], 1);
        }
    }
    for g in 0..ng {
        for fk in f.windows(2) {
            // (6): F[g,k] ≤ F[g,k+1]
            m.le([(fk[0][g], 1), (fk[1][g], -1)], 0);
        }
        // (7): F[g,k] ≤ F[g,k-1] + A[q,k] per non-insular qubit q.
        let mut mask = p.items[g].mask;
        while mask != 0 {
            let q = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            for k in 0..s {
                if k == 0 {
                    m.le([(f[0][g], 1), (a[0][q], -1)], 0);
                } else {
                    m.le([(f[k][g], 1), (f[k - 1][g], -1), (a[k][q], -1)], 0);
                }
            }
        }
        // (9): F[g,s-1] = 1
        m.fix(f[s - 1][g], true);
    }
    // (8): F[g1,k] ≥ F[g2,k] for dependencies (g1 before g2).
    for &(g1, g2) in &p.deps {
        for fk in f.iter() {
            m.ge([(fk[g1], 1), (fk[g2], -1)], 0);
        }
    }
    // (11): Σ_q A = L, Σ_q B = G per stage.
    for k in 0..s {
        m.eq((0..n).map(|q| (a[k][q], 1)), p.l as i64);
        m.eq((0..n).map(|q| (b[k][q], 1)), p.g as i64);
    }
    (
        m,
        IlpVars {
            a,
            b,
            f,
            s_up,
            t_up,
        },
    )
}

/// Extracts a staging from an ILP solution.
pub fn extract_raw(p: &StagingProblem, s: usize, vars: &IlpVars, sol: &Solution) -> RawStaging {
    let n = p.n as usize;
    let mut partitions = Vec::with_capacity(s);
    for k in 0..s {
        let mut lm = 0u64;
        let mut gm = 0u64;
        for q in 0..n {
            if sol.value(vars.a[k][q]) {
                lm |= 1 << q;
            }
            if sol.value(vars.b[k][q]) {
                gm |= 1 << q;
            }
        }
        partitions.push((lm, gm));
    }
    let item_stage: Vec<usize> = (0..p.items.len())
        .map(|g| {
            (0..s)
                .find(|&k| sol.value(vars.f[k][g]))
                .expect("item never finishes")
        })
        .collect();
    RawStaging {
        partitions,
        item_stage,
        cost: sol.objective.unwrap_or(0),
    }
}

/// Solves the `s`-stage model. Returns the status plus the staging when
/// feasible.
pub fn solve_ilp(
    p: &StagingProblem,
    s: usize,
    cfg: &SolverConfig,
) -> (SolveStatus, Option<RawStaging>) {
    let (model, vars) = build_ilp(p, s);
    let sol = atlas_ilp::solve(&model, cfg);
    let raw = sol
        .assignment
        .as_ref()
        .map(|_| extract_raw(p, s, &vars, &sol));
    (sol.status, raw)
}
