//! Staging presolve: reduce the circuit to the gates that actually
//! constrain staging.
//!
//! Gates whose qubits are all insular (CZ, CP, T, RZ, …) impose no locality
//! constraint — they can run in any stage their dependencies allow — so
//! they are dropped from the optimization model and re-inserted during
//! extraction. Dependencies are projected onto the kept gates transitively
//! through dropped ones. Adjacent kept gates with identical non-insular
//! masks (separated only by dropped gates acting inside their qubit sets)
//! are merged, which is cost- and feasibility-preserving.

use atlas_circuit::Circuit;

/// One optimization item: a (possibly merged) run of kept gates sharing a
/// non-insular qubit mask.
#[derive(Clone, Debug)]
pub struct StagingItem {
    /// Non-insular qubit mask (never 0 for kept items).
    pub mask: u64,
    /// Original gate indices folded into this item.
    pub orig: Vec<usize>,
}

/// The reduced staging problem.
#[derive(Clone, Debug)]
pub struct StagingProblem {
    /// Circuit width.
    pub n: u32,
    /// Local qubit count.
    pub l: u32,
    /// Global qubit count.
    pub g: u32,
    /// Inter-node cost factor `c` of Eq. 2.
    pub c_factor: i64,
    /// Kept items in program order.
    pub items: Vec<StagingItem>,
    /// Dependency edges between items (earlier, later), transitively closed
    /// through dropped gates; deduplicated.
    pub deps: Vec<(usize, usize)>,
    /// Per-gate non-insular masks of the *original* circuit (for
    /// extraction and validation).
    pub gate_masks: Vec<u64>,
}

impl StagingProblem {
    /// Builds the reduced problem. `R` is implied (`n - l - g`).
    pub fn build(circuit: &Circuit, l: u32, g: u32, c_factor: i64) -> Self {
        let n = circuit.num_qubits();
        assert!(l + g <= n, "L + G must not exceed n");
        let gate_masks = circuit.staging_masks();
        for (gi, &m) in gate_masks.iter().enumerate() {
            assert!(
                m.count_ones() <= l,
                "gate {gi} needs {} local qubits but L = {l}",
                m.count_ones()
            );
        }

        // Kept gates and merge pass. `pending_between` tracks the union of
        // qubits of gates seen since the last kept gate; a new kept gate
        // merges into the previous item only when its mask matches and
        // everything in between acted inside the merged item's qubit span.
        let mut items: Vec<StagingItem> = Vec::new();
        let mut last_item_full_qubits: u64 = 0;
        let mut between: u64 = 0;
        // For dependency projection: per qubit, the set of items that the
        // next gate on this qubit depends on.
        let mut lastk: Vec<Vec<usize>> = vec![Vec::new(); n as usize];
        let mut deps: Vec<(usize, usize)> = Vec::new();

        for (gi, gate) in circuit.gates().iter().enumerate() {
            let mask = gate_masks[gi];
            let qmask = gate.qubit_mask();
            if mask == 0 {
                // Dropped: chain dependencies through it.
                let mut union: Vec<usize> = Vec::new();
                for q in gate.qubits.iter() {
                    for &it in &lastk[q as usize] {
                        if !union.contains(&it) {
                            union.push(it);
                        }
                    }
                }
                for q in gate.qubits.iter() {
                    lastk[q as usize] = union.clone();
                }
                between |= qmask;
                continue;
            }
            // Mergeable into the previous item? Requires an identical mask
            // and that everything since that item acted inside the merged
            // qubit span (so the merge cannot reorder across other items).
            let mergeable = items
                .last()
                .map(|it| it.mask == mask && between & !(last_item_full_qubits | qmask) == 0)
                .unwrap_or(false);
            if mergeable {
                let idx = items.len() - 1;
                // The gate may still depend on older items through qubits
                // the previous item did not touch — record those edges.
                for q in gate.qubits.iter() {
                    for &prev in &lastk[q as usize] {
                        if prev != idx {
                            deps.push((prev, idx));
                        }
                    }
                }
                items[idx].orig.push(gi);
                last_item_full_qubits |= qmask;
                for q in gate.qubits.iter() {
                    lastk[q as usize] = vec![idx];
                }
                between = 0;
                continue;
            }
            let idx = items.len();
            for q in gate.qubits.iter() {
                for &prev in &lastk[q as usize] {
                    if prev != idx {
                        deps.push((prev, idx));
                    }
                }
            }
            items.push(StagingItem {
                mask,
                orig: vec![gi],
            });
            last_item_full_qubits = qmask;
            between = 0;
            for q in gate.qubits.iter() {
                lastk[q as usize] = vec![idx];
            }
        }
        deps.sort_unstable();
        deps.dedup();
        StagingProblem {
            n,
            l,
            g,
            c_factor,
            items,
            deps,
            gate_masks,
        }
    }

    /// The union of all non-insular qubits (qubits that must become local
    /// at some point).
    pub fn demanded_qubits(&self) -> u64 {
        self.items.iter().fold(0u64, |m, it| m | it.mask)
    }

    /// Computes the maximal closure: starting from `done` (a bitset over
    /// items), marks every item executable with `local_mask` as done,
    /// honouring dependencies. `succs` must come from
    /// [`StagingProblem::successors`]; `indeg[i]` is the number of
    /// unfinished predecessors and is updated in place. Returns the newly
    /// finished item indices in program order.
    pub fn closure(
        &self,
        done: &mut [u64],
        indeg: &mut [u32],
        succs: &[Vec<usize>],
        local_mask: u64,
    ) -> Vec<usize> {
        let mut finished = Vec::new();
        let mut ready: Vec<usize> = (0..self.items.len())
            .filter(|&i| !bit(done, i) && indeg[i] == 0 && self.items[i].mask & !local_mask == 0)
            .collect();
        while let Some(i) = ready.pop() {
            if bit(done, i) {
                continue;
            }
            set_bit(done, i);
            finished.push(i);
            for &j in &succs[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 && !bit(done, j) && self.items[j].mask & !local_mask == 0 {
                    ready.push(j);
                }
            }
        }
        finished.sort_unstable();
        finished
    }

    /// Per-item successor lists (cached on first use would need interior
    /// mutability; callers that loop should call once and reuse).
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut s = vec![Vec::new(); self.items.len()];
        for &(a, b) in &self.deps {
            s[a].push(b);
        }
        s
    }

    /// Initial in-degrees.
    pub fn indegrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.items.len()];
        for &(_, b) in &self.deps {
            d[b] += 1;
        }
        d
    }
}

/// Bitset helpers over `Vec<u64>`.
pub fn bit(bs: &[u64], i: usize) -> bool {
    bs[i >> 6] >> (i & 63) & 1 == 1
}

/// Sets bit `i`.
pub fn set_bit(bs: &mut [u64], i: usize) {
    bs[i >> 6] |= 1 << (i & 63);
}

/// An all-zero bitset able to hold `len` bits.
pub fn zero_bits(len: usize) -> Vec<u64> {
    vec![0u64; len.div_ceil(64)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators;

    #[test]
    fn all_insular_gates_are_dropped() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 1).t(2).cp(0.3, 1, 3).h(1);
        let p = StagingProblem::build(&c, 2, 1, 3);
        // Kept: h(0), h(1). cz/t/cp are all-insular.
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.items[0].mask, 1 << 0);
        assert_eq!(p.items[1].mask, 1 << 1);
        // h(1) depends on h(0) through cz(0,1).
        assert_eq!(p.deps, vec![(0, 1)]);
    }

    #[test]
    fn ising_triplets_merge() {
        // cx(0,1) rz(1) cx(0,1): the two cx share a mask {1} and the rz
        // in between acts inside the span → one item.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.5, 1).cx(0, 1);
        let p = StagingProblem::build(&c, 1, 0, 3);
        assert_eq!(p.items.len(), 1);
        assert_eq!(p.items[0].orig, vec![0, 2]);
    }

    #[test]
    fn qft_reduces_to_h_items() {
        let c = generators::qft(8);
        let p = StagingProblem::build(&c, 4, 2, 3);
        // All CP gates are all-insular; only the 8 H gates remain.
        assert_eq!(p.items.len(), 8);
        assert!(p.items.iter().all(|it| it.mask.count_ones() == 1));
    }

    #[test]
    fn closure_respects_locality_and_deps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).h(2);
        let p = StagingProblem::build(&c, 1, 0, 3);
        assert_eq!(p.items.len(), 3);
        let mut done = zero_bits(p.items.len());
        let mut indeg = p.indegrees();
        let succs = p.successors();
        // Local = {0}: only h(0) can run (cx target 1 is non-local).
        let fin = p.closure(&mut done, &mut indeg, &succs, 1 << 0);
        assert_eq!(fin, vec![0]);
        // Local = {1}: now cx can run.
        let fin = p.closure(&mut done, &mut indeg, &succs, 1 << 1);
        assert_eq!(fin, vec![1]);
        // h(2) still blocked until qubit 2 local.
        let fin = p.closure(&mut done, &mut indeg, &succs, 1 << 2);
        assert_eq!(fin, vec![2]);
    }

    #[test]
    #[should_panic(expected = "local qubits but L")]
    fn oversized_gate_rejected() {
        let mut c = Circuit::new(3);
        c.swap(0, 1); // 2 non-insular qubits
        let _ = StagingProblem::build(&c, 1, 0, 3);
    }
}
