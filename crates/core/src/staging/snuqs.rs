//! The SnuQS staging heuristic (the paper's §VII-D baseline).
//!
//! "Greedily selects the qubits with more gates operating on non-local
//! gates to form a stage and uses the number of total gates as a
//! tiebreaker" (Park et al., ICS'22, as characterized by the Atlas paper).
//! One deviation for termination: the earliest dependency-ready gate's
//! non-insular qubits are always included in the local set, guaranteeing
//! progress every stage (the greedy count ranking alone can livelock on
//! adversarial circuits).

use super::prep::{bit, zero_bits, StagingProblem};
use super::search::transition_cost;
use super::RawStaging;

/// Runs the SnuQS-style greedy staging.
pub fn solve_snuqs(p: &StagingProblem) -> RawStaging {
    let nitems = p.items.len();
    let succs = p.successors();
    let mut done = zero_bits(nitems);
    let mut indeg = p.indegrees();
    let mut finished = 0usize;
    let mut partitions: Vec<(u64, u64)> = Vec::new();
    let mut item_stage = vec![0usize; nitems];
    let mut cost = 0i64;
    let mut prev: Option<(u64, u64)> = None;

    // Total gate count per qubit — the tiebreaker.
    let mut total_on_qubit = vec![0u64; p.n as usize];
    for item in &p.items {
        let mut m = item.mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            total_on_qubit[q] += item.orig.len() as u64;
            m &= m - 1;
        }
    }

    while finished < nitems || partitions.is_empty() {
        // Rank qubits: # remaining non-insular gates desc, total gates desc.
        let mut counts = vec![0u64; p.n as usize];
        for (i, item) in p.items.iter().enumerate() {
            if bit(&done, i) {
                continue;
            }
            let mut m = item.mask;
            while m != 0 {
                let q = m.trailing_zeros() as usize;
                counts[q] += item.orig.len() as u64;
                m &= m - 1;
            }
        }
        let mut ranked: Vec<u32> = (0..p.n).collect();
        ranked.sort_by_key(|&q| {
            (
                std::cmp::Reverse(counts[q as usize]),
                std::cmp::Reverse(total_on_qubit[q as usize]),
                q,
            )
        });
        // Progress guarantee: force the earliest ready gate's qubits.
        let forced = (0..nitems)
            .find(|&i| !bit(&done, i) && indeg[i] == 0)
            .map(|i| p.items[i].mask)
            .unwrap_or(0);
        let mut lmask = forced;
        for &q in &ranked {
            if lmask.count_ones() >= p.l {
                break;
            }
            lmask |= 1 << q;
        }
        let fin = p.closure(&mut done, &mut indeg, &succs, lmask);
        let k = partitions.len();
        for &i in &fin {
            item_stage[i] = k;
        }
        finished += fin.len();
        // Global choice: same policy as the Atlas executor (keep old
        // globals, then furthest-need) so the comparison isolates the
        // *local-set* selection strategy.
        let gmask = super::search::choose_global_pub(p, &done, lmask, prev.map_or(0, |x| x.1));
        if let Some((ol, og)) = prev {
            cost += transition_cost(ol, og, lmask, gmask, p.c_factor);
        }
        partitions.push((lmask, gmask));
        prev = Some((lmask, gmask));
        if fin.is_empty() && finished < nitems {
            unreachable!("forced inclusion guarantees progress");
        }
        if nitems == 0 {
            break;
        }
    }
    RawStaging {
        partitions,
        item_stage,
        cost,
    }
}
