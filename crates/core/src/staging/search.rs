//! The structure-exploiting staging solver.
//!
//! This solver searches the same space as the paper's ILP (Eqs. 3–11) but
//! branches only on the per-stage qubit partition and derives the gate
//! variables `F` by *maximal-closure propagation*, which is without loss of
//! generality: enlarging `F` (finishing more gates in an earlier stage)
//! never violates constraints (6)–(9) and never increases the objective,
//! since `F` does not appear in it. `S`/`T` are likewise determined by the
//! partitions.
//!
//! The stage count is minimized first (Algorithm 2's outer loop emerges
//! from breadth-first deepening: the first depth at which a state finishes
//! all items is the minimum reachable stage count), then the transition
//! cost of Eq. 2 among plans at that depth.
//!
//! Exactness caveat: per state the solver expands a *candidate set* of
//! partitions (need-ordered, SnuQS-ranked, keep-previous variants) and
//! keeps a beam of the best states. The SnuQS trajectory is always among
//! the candidates, so the result is never worse than the SnuQS heuristic
//! (§VII-D), and on small instances the result is cross-validated against
//! the exhaustive generic ILP (see the staging tests).

use super::prep::{bit, zero_bits, StagingProblem};
use super::RawStaging;

#[derive(Clone)]
struct State {
    done: Vec<u64>,
    indeg: Vec<u32>,
    finished: usize,
    lmask: u64,
    gmask: u64,
    cost: i64,
    /// Per stage: (local mask, global mask, items finished in the stage).
    trace: Vec<(u64, u64, Vec<usize>)>,
}

/// Ranks qubits for locality: first-need position ascending (qubits needed
/// by earlier unfinished items come first), with `prefer` (e.g. previously
/// local) breaking ties, then index.
fn rank_by_need(p: &StagingProblem, done: &[u64], prefer: u64) -> Vec<u32> {
    let inf = usize::MAX;
    let mut first_need = vec![inf; p.n as usize];
    for (i, item) in p.items.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        let mut m = item.mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            if first_need[q] == inf {
                first_need[q] = i;
            }
            m &= m - 1;
        }
    }
    let mut qs: Vec<u32> = (0..p.n).collect();
    qs.sort_by_key(|&q| {
        (
            first_need[q as usize],
            if prefer >> q & 1 == 1 { 0u8 } else { 1u8 },
            q,
        )
    });
    qs
}

/// Ranks qubits SnuQS-style: by the number of unfinished items that need
/// them (descending), tiebroken by total item count then index.
fn rank_by_count(p: &StagingProblem, done: &[u64]) -> Vec<u32> {
    let mut counts = vec![0u32; p.n as usize];
    for (i, item) in p.items.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        let mut m = item.mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            counts[q] += 1;
            m &= m - 1;
        }
    }
    let mut qs: Vec<u32> = (0..p.n).collect();
    qs.sort_by_key(|&q| (std::cmp::Reverse(counts[q as usize]), q));
    qs
}

/// Earliest unfinished item whose dependencies are all satisfied.
fn earliest_ready(p: &StagingProblem, done: &[u64], indeg: &[u32]) -> Option<usize> {
    (0..p.items.len()).find(|&i| !bit(done, i) && indeg[i] == 0)
}

/// Builds a local mask of exactly `L` qubits: forced qubits first, then the
/// ranked list.
fn build_local(p: &StagingProblem, forced: u64, ranked: &[u32]) -> u64 {
    let l = p.l;
    let mut mask = forced;
    debug_assert!(forced.count_ones() <= l);
    for &q in ranked {
        if mask.count_ones() >= l {
            break;
        }
        mask |= 1 << q;
    }
    mask
}

/// Chooses the global set among non-local qubits: previously global qubits
/// stay global (zero transition cost), remaining slots go to the qubits
/// whose next non-insular use is furthest away.
fn choose_global(p: &StagingProblem, done: &[u64], lmask: u64, prev_gmask: u64) -> u64 {
    let g = p.g;
    if g == 0 {
        return 0;
    }
    let inf = usize::MAX;
    let mut first_need = vec![inf; p.n as usize];
    for (i, item) in p.items.iter().enumerate() {
        if bit(done, i) {
            continue;
        }
        let mut m = item.mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            if first_need[q] == inf {
                first_need[q] = i;
            }
            m &= m - 1;
        }
    }
    let mut candidates: Vec<u32> = (0..p.n).filter(|&q| lmask >> q & 1 == 0).collect();
    // Old globals first (free), then furthest-need.
    candidates.sort_by_key(|&q| {
        (
            if prev_gmask >> q & 1 == 1 { 0u8 } else { 1u8 },
            std::cmp::Reverse(first_need[q as usize]),
            q,
        )
    });
    candidates
        .iter()
        .take(g as usize)
        .fold(0u64, |m, &q| m | (1 << q))
}

/// Public wrapper for the global-set policy, shared with the SnuQS
/// baseline so that Fig. 9's comparison isolates local-set selection.
pub fn choose_global_pub(p: &StagingProblem, done: &[u64], lmask: u64, prev_gmask: u64) -> u64 {
    choose_global(p, done, lmask, prev_gmask)
}

/// Transition cost of Eq. 2 for one stage boundary.
pub fn transition_cost(old_l: u64, old_g: u64, new_l: u64, new_g: u64, c_factor: i64) -> i64 {
    let became_local = (new_l & !old_l).count_ones() as i64;
    let became_global = (new_g & !old_g).count_ones() as i64;
    became_local + c_factor * became_global
}

/// Runs the staging search. Returns `None` only if `max_stages` is
/// exhausted (which indicates a malformed instance, since `L ≥` any gate's
/// non-insular arity guarantees progress per stage).
pub fn solve_search(
    p: &StagingProblem,
    beam_width: usize,
    max_stages: usize,
) -> Option<RawStaging> {
    let nitems = p.items.len();
    let succs = p.successors();
    if nitems == 0 {
        // No locality constraints at all: one stage, identity-ish layout.
        let ranked: Vec<u32> = (0..p.n).collect();
        let lmask = build_local(p, 0, &ranked);
        let gmask = choose_global(p, &[], lmask, 0);
        return Some(RawStaging {
            partitions: vec![(lmask, gmask)],
            item_stage: Vec::new(),
            cost: 0,
        });
    }

    let init = State {
        done: zero_bits(nitems),
        indeg: p.indegrees(),
        finished: 0,
        lmask: 0,
        gmask: 0,
        cost: 0,
        trace: Vec::new(),
    };
    let mut frontier = vec![init];

    for depth in 0..max_stages {
        let mut children: Vec<State> = Vec::new();
        let mut completed: Vec<State> = Vec::new();
        for state in &frontier {
            // Candidate local sets for the next stage.
            let forced = earliest_ready(p, &state.done, &state.indeg)
                .map(|i| p.items[i].mask)
                .unwrap_or(0);
            let by_need = rank_by_need(p, &state.done, 0);
            let by_need_keep = rank_by_need(p, &state.done, state.lmask);
            let by_count = rank_by_count(p, &state.done);
            let mut cand_masks = vec![
                build_local(p, forced, &by_need),
                build_local(p, forced, &by_need_keep),
                build_local(p, forced, &by_count),
            ];
            if depth > 0 {
                cand_masks.push(state.lmask); // keep layout, zero cost
            }
            cand_masks.sort_unstable();
            cand_masks.dedup();
            for lmask in cand_masks {
                if lmask.count_ones() != p.l {
                    continue;
                }
                let mut done = state.done.clone();
                let mut indeg = state.indeg.clone();
                let fin = p.closure(&mut done, &mut indeg, &succs, lmask);
                if fin.is_empty() {
                    continue; // no progress with this layout
                }
                let gmask = choose_global(p, &done, lmask, state.gmask);
                let cost = state.cost
                    + if depth == 0 {
                        0
                    } else {
                        transition_cost(state.lmask, state.gmask, lmask, gmask, p.c_factor)
                    };
                let mut trace = state.trace.clone();
                let finished = state.finished + fin.len();
                trace.push((lmask, gmask, fin));
                let child = State {
                    done,
                    indeg,
                    finished,
                    lmask,
                    gmask,
                    cost,
                    trace,
                };
                if finished == nitems {
                    completed.push(child);
                } else {
                    children.push(child);
                }
            }
        }
        if !completed.is_empty() {
            // Minimum stage count reached at this depth; take cheapest.
            let best = completed
                .into_iter()
                .min_by_key(|s| s.cost)
                .expect("non-empty");
            let mut item_stage = vec![0usize; nitems];
            let mut partitions = Vec::new();
            for (k, (lm, gm, fin)) in best.trace.iter().enumerate() {
                partitions.push((*lm, *gm));
                for &i in fin {
                    item_stage[i] = k;
                }
            }
            return Some(RawStaging {
                partitions,
                item_stage,
                cost: best.cost,
            });
        }
        // Beam selection: half by progress, half by cost.
        children.sort_by_key(|s| (std::cmp::Reverse(s.finished), s.cost));
        let mut kept: Vec<State> = Vec::with_capacity(beam_width);
        let mut taken = vec![false; children.len()];
        for (i, s) in children.iter().enumerate().take(beam_width.div_ceil(2)) {
            kept.push(s.clone());
            taken[i] = true;
        }
        let mut by_cost: Vec<usize> = (0..children.len()).filter(|&i| !taken[i]).collect();
        by_cost.sort_by_key(|&i| (children[i].cost, std::cmp::Reverse(children[i].finished)));
        for &i in by_cost.iter().take(beam_width - kept.len().min(beam_width)) {
            kept.push(children[i].clone());
        }
        if kept.is_empty() {
            return None;
        }
        frontier = kept;
    }
    None
}
