//! Circuit staging (§IV): partition the circuit into stages with
//! local/regional/global qubit assignments so every gate's non-insular
//! qubits are local in its stage, minimizing the stage count first
//! (Theorem 1) and then the communication cost of Eq. 2.

pub mod ilp_model;
pub mod prep;
pub mod search;
pub mod snuqs;

use crate::config::AtlasConfig;
use crate::plan::{QubitPartition, Stage};
use atlas_circuit::Circuit;
use atlas_error::AtlasError;
use atlas_ilp::{SolveStatus, SolverConfig};
use prep::StagingProblem;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global count of staging-solver invocations (every
/// [`stage_circuit`] / [`stage_circuit_snuqs`] call increments it).
///
/// This is the observability hook behind the session API's
/// plan-once/run-many guarantee: PARTITION is the expensive phase, so
/// tests and benchmarks assert that an N-point parameter sweep moves
/// this counter by exactly one. See [`staging_invocations`].
static STAGING_INVOCATIONS: AtomicUsize = AtomicUsize::new(0);

/// Number of staging-solver invocations since process start
/// (monotonically increasing, shared by every thread).
///
/// Take a snapshot before a workload and diff afterwards to observe how
/// many times the expensive PARTITION phase actually ran — the
/// plan-once/run-many tests are built on this.
pub fn staging_invocations() -> usize {
    STAGING_INVOCATIONS.load(Ordering::Relaxed)
}

/// A staging in solver-internal form: per-stage qubit masks plus the stage
/// index of every optimization item.
#[derive(Clone, Debug)]
pub struct RawStaging {
    /// Per stage: (local qubit mask, global qubit mask).
    pub partitions: Vec<(u64, u64)>,
    /// Stage index per [`prep::StagingItem`].
    pub item_stage: Vec<usize>,
    /// Eq. 2 objective value.
    pub cost: i64,
}

/// The result of staging a circuit.
#[derive(Clone, Debug)]
pub struct StagingOutcome {
    /// The stages: gate assignments plus qubit partitions.
    pub stages: Vec<Stage>,
    /// Total communication cost (Eq. 2).
    pub cost: i64,
    /// Whether the stage count is provably minimal.
    pub optimal: bool,
    /// The generic ILP solver's decisive [`SolveStatus`] (`Optimal`, or
    /// `Feasible` when a budget cut the optimality proof short), so a
    /// budget-hit plan is visible instead of silent. `None` for the
    /// search and SnuQS solvers, which report through
    /// [`optimal`](StagingOutcome::optimal) alone.
    pub solve_status: Option<SolveStatus>,
}

impl StagingOutcome {
    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Converts a raw staging back to full [`Stage`]s over the original
/// circuit: every dropped (all-insular) gate is placed at the earliest
/// stage its dependencies allow.
fn extract_stages(circuit: &Circuit, p: &StagingProblem, raw: &RawStaging) -> Vec<Stage> {
    let s = raw.partitions.len();
    // Map original gate index → item index for kept gates.
    let mut item_of = vec![usize::MAX; circuit.num_gates()];
    for (i, item) in p.items.iter().enumerate() {
        for &gi in &item.orig {
            item_of[gi] = i;
        }
    }
    let mut min_stage = vec![0usize; circuit.num_qubits() as usize];
    let mut gate_stage = vec![0usize; circuit.num_gates()];
    for (gi, gate) in circuit.gates().iter().enumerate() {
        let dep_floor = gate
            .qubits
            .iter()
            .map(|q| min_stage[q as usize])
            .max()
            .unwrap_or(0);
        let k = if item_of[gi] != usize::MAX {
            let k = raw.item_stage[item_of[gi]];
            debug_assert!(
                k >= dep_floor,
                "solver staged a gate before its dependencies"
            );
            k
        } else {
            dep_floor
        };
        gate_stage[gi] = k;
        for q in gate.qubits.iter() {
            min_stage[q as usize] = k;
        }
    }
    let mut stages: Vec<Stage> = raw
        .partitions
        .iter()
        .map(|&(lm, gm)| Stage {
            gates: Vec::new(),
            partition: masks_to_partition(circuit.num_qubits(), lm, gm),
        })
        .collect();
    for (gi, &k) in gate_stage.iter().enumerate() {
        stages[k.min(s - 1)].gates.push(gi);
    }
    stages
}

/// Expands (local mask, global mask) into an explicit partition.
pub fn masks_to_partition(n: u32, lmask: u64, gmask: u64) -> QubitPartition {
    let mut local = Vec::new();
    let mut regional = Vec::new();
    let mut global = Vec::new();
    for q in 0..n {
        if lmask >> q & 1 == 1 {
            local.push(q);
        } else if gmask >> q & 1 == 1 {
            global.push(q);
        } else {
            regional.push(q);
        }
    }
    QubitPartition {
        local,
        regional,
        global,
    }
}

/// Atlas staging (Algorithm 2): minimize the number of stages, then the
/// communication cost. `l` local and `g` global qubits; `R = n - l - g`.
///
/// Dispatches on [`AtlasConfig::staging`]: the structure-exploiting search
/// (default), the generic ILP, or the SnuQS heuristic.
pub fn stage_circuit(
    circuit: &Circuit,
    l: u32,
    g: u32,
    cfg: &AtlasConfig,
) -> Result<StagingOutcome, AtlasError> {
    use crate::config::StagingAlgo;
    STAGING_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let p = StagingProblem::build(circuit, l, g, cfg.inter_node_cost_factor);
    match cfg.staging {
        StagingAlgo::GenericIlp => {
            let (raw, optimal, status) = stage_generic_ilp(&p, cfg)?;
            finish(circuit, &p, raw, optimal, Some(status), l, g)
        }
        StagingAlgo::IlpSearch => {
            let raw = search::solve_search(&p, cfg.staging_beam_width, cfg.max_stages).ok_or_else(
                || AtlasError::StagingFailed {
                    algo: "IlpSearch",
                    reason: format!("search exhausted max_stages = {}", cfg.max_stages),
                },
            )?;
            let optimal = raw.partitions.len() == 1;
            finish(circuit, &p, raw, optimal, None, l, g)
        }
        StagingAlgo::Snuqs => {
            let raw = snuqs::solve_snuqs(&p);
            finish(circuit, &p, raw, false, None, l, g)
        }
    }
}

/// SnuQS-heuristic staging (the §VII-D baseline), on the same problem
/// reduction and cost accounting.
pub fn stage_circuit_snuqs(
    circuit: &Circuit,
    l: u32,
    g: u32,
    cfg: &AtlasConfig,
) -> Result<StagingOutcome, AtlasError> {
    STAGING_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let p = StagingProblem::build(circuit, l, g, cfg.inter_node_cost_factor);
    let raw = snuqs::solve_snuqs(&p);
    finish(circuit, &p, raw, false, None, l, g)
}

fn finish(
    circuit: &Circuit,
    p: &StagingProblem,
    raw: RawStaging,
    optimal: bool,
    solve_status: Option<SolveStatus>,
    l: u32,
    g: u32,
) -> Result<StagingOutcome, AtlasError> {
    let stages = extract_stages(circuit, p, &raw);
    crate::plan::validate_stages(circuit, &stages, l, g)?;
    Ok(StagingOutcome {
        stages,
        cost: raw.cost,
        optimal,
        solve_status,
    })
}

/// Algorithm 2 with the generic ILP: try `s = 1, 2, …` until feasible.
/// Returns the raw staging, whether the stage-count minimality proof is
/// intact, and the decisive solver status at the accepted `s`.
fn stage_generic_ilp(
    p: &StagingProblem,
    cfg: &AtlasConfig,
) -> Result<(RawStaging, bool, SolveStatus), AtlasError> {
    let solver_cfg = SolverConfig {
        node_limit: cfg.ilp_node_limit,
        time_limit: cfg.ilp_time_limit,
    };
    let mut proof_intact = true;
    for s in 1..=cfg.max_stages {
        let (status, raw) = ilp_model::solve_ilp(p, s, &solver_cfg);
        match status {
            SolveStatus::Optimal => {
                return Ok((
                    raw.expect("optimal without plan"),
                    proof_intact,
                    SolveStatus::Optimal,
                ))
            }
            SolveStatus::Feasible => {
                return Ok((
                    raw.expect("feasible without plan"),
                    false,
                    SolveStatus::Feasible,
                ))
            }
            SolveStatus::Infeasible => continue,
            SolveStatus::Unknown => {
                // Can't prove infeasibility at this s: minimality proof lost.
                proof_intact = false;
                continue;
            }
        }
    }
    // Exhaustion after an Unknown means the per-attempt budget is what
    // stopped us (a bigger budget might find a plan); exhaustion on pure
    // Infeasible answers means the model genuinely has no plan within
    // max_stages.
    if proof_intact {
        Err(AtlasError::StagingFailed {
            algo: "GenericIlp",
            reason: format!("no feasible staging within max_stages = {}", cfg.max_stages),
        })
    } else {
        Err(AtlasError::IlpBudgetExceeded {
            max_stages: cfg.max_stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators::{self, Family};

    fn cfg() -> AtlasConfig {
        AtlasConfig::default()
    }

    #[test]
    fn single_stage_when_everything_fits() {
        let c = generators::ghz(6);
        let out = stage_circuit(&c, 6, 0, &cfg()).unwrap();
        assert_eq!(out.num_stages(), 1);
        assert_eq!(out.cost, 0);
        assert!(out.optimal);
        // The search solver reports through `optimal` alone.
        assert_eq!(out.solve_status, None);
    }

    #[test]
    fn ghz_needs_two_stages_at_half_width() {
        // GHZ chain CX targets walk 1..n; with L = n/2 two stages suffice
        // (prefix then suffix) and one cannot (targets exceed L qubits).
        let c = generators::ghz(8);
        let out = stage_circuit(&c, 4, 1, &cfg()).unwrap();
        assert_eq!(out.num_stages(), 2);
    }

    #[test]
    fn search_matches_generic_ilp_stage_count_on_small_circuits() {
        // Theorem 1 cross-check: the search solver must find the same
        // minimal stage count as the exact ILP.
        for fam in [
            Family::Ghz,
            Family::Dj,
            Family::GraphState,
            Family::WState,
            Family::Qft,
        ] {
            for n in [6u32, 8] {
                for l in [3u32, 4, 5] {
                    let c = fam.generate(n);
                    let g = 1.min(n - l);
                    let search = stage_circuit(&c, l, g, &cfg()).unwrap();
                    let mut icfg = cfg();
                    icfg.staging = crate::config::StagingAlgo::GenericIlp;
                    let ilp = stage_circuit(&c, l, g, &icfg).unwrap();
                    assert_eq!(
                        search.num_stages(),
                        ilp.num_stages(),
                        "{fam:?} n={n} L={l}: search {} vs ILP {}",
                        search.num_stages(),
                        ilp.num_stages()
                    );
                    assert!(
                        search.cost <= ilp.cost || search.num_stages() == 1,
                        "{fam:?} n={n} L={l}: search cost {} worse than ILP optimal {}",
                        search.cost,
                        ilp.cost
                    );
                }
            }
        }
    }

    #[test]
    fn atlas_never_worse_than_snuqs() {
        // §VII-D: the ILP "always outperforms SnuQS' approach".
        for fam in Family::table1() {
            let c = fam.generate(10);
            for l in [4u32, 6, 8] {
                let atlas = stage_circuit(&c, l, 1, &cfg()).unwrap();
                let snuqs = stage_circuit_snuqs(&c, l, 1, &cfg()).unwrap();
                assert!(
                    atlas.num_stages() <= snuqs.num_stages(),
                    "{fam:?} L={l}: atlas {} > snuqs {}",
                    atlas.num_stages(),
                    snuqs.num_stages()
                );
            }
        }
    }

    #[test]
    fn stages_validate_for_all_families() {
        for fam in Family::table1() {
            let c = fam.generate(9);
            let out = stage_circuit(&c, 5, 2, &cfg()).unwrap();
            // validate_stages already ran inside; sanity on shape:
            assert!(out.num_stages() >= 1);
            for st in &out.stages {
                assert!(st.partition.validate(9, 5, 2).is_ok());
            }
        }
    }

    #[test]
    fn more_local_qubits_never_increase_stages() {
        // The guarantee SnuQS lacks (Fig. 9's L=23→24 anomaly): Atlas stage
        // counts are non-increasing in L.
        for fam in [Family::Qft, Family::Su2Random, Family::Ae] {
            let c = fam.generate(10);
            let mut prev = usize::MAX;
            for l in 4..=10u32 {
                let g = 1.min(10 - l);
                let out = stage_circuit(&c, l, g, &cfg()).unwrap();
                assert!(
                    out.num_stages() <= prev,
                    "{fam:?}: stages increased from {prev} to {} at L={l}",
                    out.num_stages()
                );
                prev = out.num_stages();
            }
        }
    }

    #[test]
    fn generic_ilp_minimizes_cost() {
        // On a circuit engineered to have a cheap and an expensive staging,
        // the ILP must find the cheap one.
        let mut c = Circuit::new(4);
        // Stage A needs {0,1}, stage B needs {2,3} — with L=2, 2 stages.
        c.h(0).h(1).cx(0, 1).h(2).h(3).cx(2, 3);
        let mut icfg = cfg();
        icfg.staging = crate::config::StagingAlgo::GenericIlp;
        let out = stage_circuit(&c, 2, 1, &icfg).unwrap();
        assert_eq!(out.num_stages(), 2);
        assert!(out.optimal);
        assert_eq!(out.solve_status, Some(SolveStatus::Optimal));
        // Transition: both locals change (cost 2). With G=1 the global is
        // forced to move too — stage 1's global must be a former local —
        // adding c=3. Total 5.
        assert_eq!(out.cost, 5);
        // With G=0 no global exists, so the optimum drops to 2.
        let out0 = stage_circuit(&c, 2, 0, &icfg).unwrap();
        assert_eq!(out0.num_stages(), 2);
        assert_eq!(out0.cost, 2, "ILP must avoid any avoidable cost");
        // The search solver must find the same optimum here.
        let sr = stage_circuit(&c, 2, 0, &cfg()).unwrap();
        assert_eq!((sr.num_stages(), sr.cost), (2, 2));
    }

    use atlas_circuit::Circuit;
}
