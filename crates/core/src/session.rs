//! The typed simulation session: [`Planner`] → [`CompiledPlan`] →
//! [`Execution`].
//!
//! Atlas's whole value proposition is that PARTITION (the staging ILP
//! plus the KERNELIZE DP, Algorithm 1 lines 1–8) is expensive and
//! EXECUTE (lines 9–17) is where the time should go. The session API
//! makes that split first-class:
//!
//! 1. [`Planner::new`] captures the machine shape, cost model and
//!    configuration;
//! 2. [`Planner::plan`] runs PARTITION **once**, producing a
//!    [`CompiledPlan`] that owns the [`FullPlan`], the per-stage qubit
//!    mappings, and a [`CircuitFingerprint`] of the planned circuit;
//! 3. [`CompiledPlan::execute`] runs EXECUTE — **as many times as you
//!    like** — against any circuit whose structural fingerprint matches
//!    (same gate graph, different gate parameters), returning an
//!    [`Execution`] with the clock report, the sharded
//!    [`Measurements`] engine, pre-drawn samples, and (optionally) the
//!    gathered state. [`CompiledPlan::dry_run`] replays the clock model
//!    alone at any scale.
//!
//! An N-point VQC/QAOA parameter sweep therefore pays for staging and
//! kernelization exactly once (`atlas_core::staging::staging_invocations`
//! observes this; `tests/plan_once.rs` enforces it), which is how the
//! extended Atlas paper (arXiv:2408.09055) amortizes partitioning across
//! same-structure circuits.
//!
//! ## Why parameter changes are safe
//!
//! The plan depends on the circuit only through (a) each gate's qubit
//! indices, (b) each gate's *insularity signature* (diagonal /
//! anti-diagonal / non-insular per qubit position — what staging and
//! specialization key on), and (c) each gate's cost-model class (its
//! [`GateKind`] discriminant). Gate *matrices* are rebuilt from the
//! circuit handed to [`CompiledPlan::execute`] on every run. The
//! fingerprint hashes exactly (a)–(c), so a match guarantees the plan is
//! valid for the new circuit and a mismatch is rejected with
//! [`AtlasError::PlanMismatch`] before any state is allocated.
//!
//! [`GateKind`]: atlas_circuit::GateKind

use crate::config::AtlasConfig;
use crate::exec::{self, FullPlan};
use atlas_circuit::{insular, Circuit};
use atlas_error::AtlasError;
use atlas_machine::{CostModel, Machine, MachineReport, MachineSpec};
use atlas_sampler::Measurements;
use atlas_statevec::StateVector;

/// Structural fingerprint of a circuit: everything PARTITION's output
/// depends on, and nothing it doesn't.
///
/// Two circuits with equal fingerprints have the same qubit count and
/// the same gate sequence up to *parameter values* — same gate kinds on
/// the same qubits with the same insularity signatures — so a plan
/// compiled for one executes the other correctly. Parameterized
/// rotations with generic angles (`RZ(0.3)` vs `RZ(0.7)`) fingerprint
/// identically; a parameter that crosses an insularity special case
/// (`RX(θ)` → `RX(π)` is anti-diagonal) changes the fingerprint, which
/// is exactly right because the plan's specialization templates would
/// no longer apply.
///
/// Implements `Hash`, so it can key a shared plan cache directly (the
/// `atlas-serve` session pool does). Every hashed token is
/// domain-tagged — see [`CircuitFingerprint::of`]'s `fp_domain`
/// constants — so distinct value classes (qubit indices, insularity
/// kinds, mnemonic bytes, the gate separator) can never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CircuitFingerprint {
    hash: u64,
    num_qubits: u32,
    num_gates: usize,
}

/// FNV-1a step over one 64-bit value (hand-rolled: no external hashing
/// deps, and the value must be stable across runs for snapshot tests).
#[inline]
fn fnv_mix(h: u64, v: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 16, 32, 48] {
        h ^= (v >> shift) & 0xffff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Domain tags for the fingerprint's token classes. Every value is
/// mixed as `(domain << 48) | value`, so tokens from different classes
/// can **never** be equal (values are `< 2^48` by construction: qubit
/// indices are `u32`, name bytes are `u8`).
///
/// The pre-fix scheme used overlapping ad-hoc offsets — qubits mixed as
/// `0x100 + q`, which collided with the insularity tags `0x201–0x203`
/// at `q = 257..=259` and the gate separator `0x300` at `q = 512`. That
/// aliasing is latent territory today (gate-kind mnemonics happen to
/// delimit every gate and fix its arity), but becomes a plan-cache
/// poisoning vector the moment circuits reach hundreds of qubits or a
/// gate class without that grammar invariant appears. Explicit domains
/// make class disjointness structural instead of coincidental.
mod fp_domain {
    /// Circuit width (`num_qubits`), mixed once up front.
    pub const NUM_QUBITS: u64 = 1;
    /// One token per byte of the gate-kind mnemonic.
    pub const NAME_BYTE: u64 = 2;
    /// One token per qubit index, in gate-position order.
    pub const QUBIT: u64 = 3;
    /// One token per per-position insularity kind.
    pub const INSULARITY: u64 = 4;
    /// Gate separator, mixed once per gate.
    pub const SEPARATOR: u64 = 5;
}

/// Builds a domain-separated fingerprint token: `(domain << 48) | value`.
#[inline]
fn fp_token(domain: u64, value: u64) -> u64 {
    debug_assert!(value < 1 << 48, "token value must leave the tag bits free");
    (domain << 48) | value
}

/// Numeric encoding of an insularity kind inside the
/// [`fp_domain::INSULARITY`] domain.
#[inline]
fn fp_insularity_value(kind: insular::InsularKind) -> u64 {
    match kind {
        insular::InsularKind::Diagonal => 0,
        insular::InsularKind::AntiDiagonal => 1,
        insular::InsularKind::NonInsular => 2,
    }
}

impl CircuitFingerprint {
    /// Fingerprints a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv_mix(
            h,
            fp_token(fp_domain::NUM_QUBITS, circuit.num_qubits() as u64),
        );
        for gate in circuit.gates() {
            // (c) cost-model class: the gate-kind mnemonic.
            for b in gate.kind.name().bytes() {
                h = fnv_mix(h, fp_token(fp_domain::NAME_BYTE, b as u64));
            }
            // (a) qubit indices, in gate-position order.
            for q in gate.qubits.iter() {
                h = fnv_mix(h, fp_token(fp_domain::QUBIT, q as u64));
            }
            // (b) insularity signature per qubit position (numeric, so
            // parameter special cases like RX(π) are captured).
            for kind in insular::gate_insularity(gate) {
                h = fnv_mix(
                    h,
                    fp_token(fp_domain::INSULARITY, fp_insularity_value(kind)),
                );
            }
            h = fnv_mix(h, fp_token(fp_domain::SEPARATOR, 0));
        }
        CircuitFingerprint {
            hash: h,
            num_qubits: circuit.num_qubits(),
            num_gates: circuit.num_gates(),
        }
    }

    /// The 64-bit structural hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of qubits of the fingerprinted circuit.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of gates of the fingerprinted circuit.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }
}

/// Phase 1 of a session: captures the machine shape, cost model and
/// configuration, and turns circuits into [`CompiledPlan`]s.
///
/// ```
/// use atlas_core::session::Planner;
/// use atlas_core::AtlasConfig;
/// use atlas_machine::{CostModel, MachineSpec};
///
/// let circuit = atlas_circuit::generators::ghz(8);
/// let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: 5 };
/// let planner = Planner::new(spec, CostModel::default(), AtlasConfig::default());
/// let compiled = planner.plan(&circuit).unwrap();
/// let run = compiled.execute(&circuit).unwrap();
/// assert!((run.measurements.probability(0) - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct Planner {
    spec: MachineSpec,
    cost: CostModel,
    cfg: AtlasConfig,
}

impl Planner {
    /// Creates a planner for one machine shape + cost model + config.
    ///
    /// Construction is infallible; [`Planner::plan`] validates the
    /// configuration (so a hand-built struct literal cannot bypass
    /// [`AtlasConfig::builder`]'s rules) and the circuit/shape fit.
    pub fn new(spec: MachineSpec, cost: CostModel, cfg: AtlasConfig) -> Self {
        Planner { spec, cost, cfg }
    }

    /// The machine shape this planner targets.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The configuration this planner plans under.
    pub fn config(&self) -> &AtlasConfig {
        &self.cfg
    }

    /// The cost model plans are priced under (the `atlas-analyze`
    /// verifier replays it to prove clock-model conservation).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// PARTITION (Algorithm 1 lines 1–8): stage, map, specialize and
    /// kernelize `circuit`, returning a reusable [`CompiledPlan`].
    ///
    /// Errors: [`AtlasError::InvalidConfig`] for an incoherent
    /// configuration, [`AtlasError::CircuitTooSmall`] when
    /// `n < L + G`, and the staging/kernelization failures of
    /// [`exec::plan`].
    pub fn plan(&self, circuit: &Circuit) -> Result<CompiledPlan, AtlasError> {
        self.cfg.validate()?;
        let n = circuit.num_qubits();
        // The sharded engine indexes amplitudes and qubit masks with
        // `u64`, so 63 qubits is its hard ceiling. Reject wider circuits
        // with a typed error *before* any mask arithmetic — the circuit
        // type itself allows thousands of qubits for the stabilizer
        // backend (`Planner::plan_backend` routes those).
        if n > 63 {
            return Err(AtlasError::invalid_config(format!(
                "{n} qubits exceed the statevector backend's 63-qubit \
                 limit; all-Clifford circuits this wide run on the \
                 stabilizer backend (backend = auto or stabilizer)"
            )));
        }
        let l = self.spec.local_qubits;
        let g = self.spec.global_qubits();
        if n < l + g {
            return Err(AtlasError::CircuitTooSmall {
                qubits: n,
                local: l,
                global: g,
            });
        }
        let plan = exec::plan(circuit, l, g, &self.cost, &self.cfg)?;
        Ok(CompiledPlan {
            plan,
            spec: self.spec,
            cost: self.cost.clone(),
            cfg: self.cfg.clone(),
            fingerprint: CircuitFingerprint::of(circuit),
        })
    }
}

/// Phase 2 of a session: a PARTITION result bound to the machine shape
/// it was planned for, executable many times.
///
/// Owns the [`FullPlan`] (stages, per-stage qubit mappings, insular
/// specialization templates, kernel lists) and the
/// [`CircuitFingerprint`] of the planned circuit. [`execute`] accepts
/// any circuit with a matching fingerprint — same gate graph, different
/// gate parameters — so a parameter sweep plans once and runs N times.
///
/// [`execute`]: CompiledPlan::execute
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    plan: FullPlan,
    spec: MachineSpec,
    cost: CostModel,
    cfg: AtlasConfig,
    fingerprint: CircuitFingerprint,
}

impl CompiledPlan {
    /// The underlying execution plan.
    pub fn plan(&self) -> &FullPlan {
        &self.plan
    }

    /// The structural fingerprint of the circuit this plan was compiled
    /// from — the acceptance test of [`CompiledPlan::execute`].
    pub fn fingerprint(&self) -> &CircuitFingerprint {
        &self.fingerprint
    }

    /// The machine shape the plan targets.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The configuration the plan was compiled under.
    pub fn config(&self) -> &AtlasConfig {
        &self.cfg
    }

    /// The cost model the plan was priced under.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.plan.stages.len()
    }

    /// Consumes the session wrapper and returns the bare [`FullPlan`]
    /// (the [`simulate`](crate::simulate::simulate) shim's output keeps
    /// exposing the plan this way).
    pub fn into_plan(self) -> FullPlan {
        self.plan
    }

    /// Checks that `circuit` may run under this plan.
    pub fn accepts(&self, circuit: &Circuit) -> bool {
        CircuitFingerprint::of(circuit) == self.fingerprint
    }

    /// EXECUTE (Algorithm 1 lines 9–17) on a fresh `|0…0⟩` machine.
    ///
    /// Callable any number of times. `circuit` must match the plan's
    /// structural fingerprint (gate matrices are re-read from *this*
    /// circuit, so sweep points with different rotation angles reuse the
    /// plan); otherwise [`AtlasError::PlanMismatch`] is returned before
    /// any state is allocated.
    pub fn execute(&self, circuit: &Circuit) -> Result<Execution, AtlasError> {
        let run = self.execute_with(circuit, &|| false)?;
        Ok(run.expect("a never-stop probe cannot interrupt EXECUTE"))
    }

    /// [`execute`](CompiledPlan::execute) with a cooperative
    /// interruption probe, polled at every stage barrier of EXECUTE —
    /// the serve pool's cancellation and deadline hook.
    ///
    /// Returns `Ok(None)` when the probe stopped the run (the partial
    /// state is dropped; nothing is measured), `Ok(Some(_))` on
    /// completion. A probe that never fires is unobservable: results are
    /// byte-identical to [`execute`](CompiledPlan::execute).
    pub fn execute_with(
        &self,
        circuit: &Circuit,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<Option<Execution>, AtlasError> {
        let fp = CircuitFingerprint::of(circuit);
        if fp != self.fingerprint {
            return Err(AtlasError::PlanMismatch {
                reason: format!(
                    "circuit ({} qubits, {} gates, hash {:#018x}) does not match \
                     the planned structure ({} qubits, {} gates, hash {:#018x}); \
                     plans are reusable across same-structure circuits only — \
                     re-plan for a structurally different circuit",
                    fp.num_qubits,
                    fp.num_gates,
                    fp.hash,
                    self.fingerprint.num_qubits,
                    self.fingerprint.num_gates,
                    self.fingerprint.hash,
                ),
            });
        }
        // Admission control: compute the run's peak bytes (state +
        // ping-pong spare + scratch) *before* allocating anything.
        self.cfg
            .memory_budget
            .admit(self.plan.n, self.spec.local_qubits)?;
        let machine = Machine::new(self.spec, self.cost.clone(), self.plan.n, false);
        self.run_on(machine, circuit, false, should_stop)
    }

    /// EXECUTE starting from a caller-supplied state instead of
    /// `|0…0⟩` — the stabilizer→statevector hybrid handoff. `initial`
    /// is given in the identity qubit layout (index bit `q` = qubit
    /// `q`); it is loaded into the sharded machine and pre-permuted into
    /// the plan's stage-0 layout before the kernels run (a fresh
    /// `|0…0⟩` machine can skip that because the all-zero state is
    /// layout-invariant).
    pub fn execute_from(
        &self,
        circuit: &Circuit,
        initial: &StateVector,
    ) -> Result<Execution, AtlasError> {
        let fp = CircuitFingerprint::of(circuit);
        if fp != self.fingerprint {
            return Err(AtlasError::PlanMismatch {
                reason: format!(
                    "circuit hash {:#018x} does not match the planned hash {:#018x}",
                    fp.hash, self.fingerprint.hash,
                ),
            });
        }
        if initial.num_qubits() != self.plan.n {
            return Err(AtlasError::invalid_plan(format!(
                "initial state has {} qubits, plan expects {}",
                initial.num_qubits(),
                self.plan.n
            )));
        }
        self.cfg
            .memory_budget
            .admit(self.plan.n, self.spec.local_qubits)?;
        let machine = Machine::with_state(self.spec, self.cost.clone(), initial);
        let run = self.run_on(machine, circuit, true, &|| false)?;
        Ok(run.expect("a never-stop probe cannot interrupt EXECUTE"))
    }

    /// Shared EXECUTE body of [`execute`](CompiledPlan::execute) and
    /// [`execute_from`](CompiledPlan::execute_from). `Ok(None)` means
    /// `should_stop` interrupted the run at a stage barrier.
    fn run_on(
        &self,
        mut machine: Machine,
        circuit: &Circuit,
        permute_in: bool,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<Option<Execution>, AtlasError> {
        machine.set_recorder(self.cfg.recorder.clone());
        if permute_in {
            if let Some(sp0) = self.plan.stages.first() {
                let perm = atlas_qmath::QubitPermutation::from_map(sp0.mapping.clone());
                if !perm.is_identity() {
                    machine.permute_state(&perm, 0);
                }
            }
        }
        if !exec::execute_with(&mut machine, circuit, &self.plan, &self.cfg, should_stop) {
            // Interrupted at a stage barrier: the state is partial —
            // drop it unmeasured.
            return Ok(None);
        }
        let state = self.cfg.final_unpermute.then(|| machine.gather_state());
        let report = machine.report();
        let mapping = self.plan.final_mapping(self.cfg.final_unpermute);
        let measurements = Measurements::new(machine, mapping, self.cfg.threads.max(1));
        let samples = (self.cfg.shots > 0).then(|| {
            let rec = &self.cfg.recorder;
            let t = rec.start();
            let samples = measurements.sample(self.cfg.shots, self.cfg.seed);
            rec.span(
                "sample.draw",
                t,
                true,
                0,
                0,
                0,
                &[("shots", self.cfg.shots as u64), ("seed", self.cfg.seed)],
            );
            rec.flush();
            samples
        });
        Ok(Some(Execution {
            report,
            state,
            measurements,
            samples,
        }))
    }

    /// Replays the clock model alone (no amplitudes, any qubit count) —
    /// the paper-scale dry-run mode. Needs no circuit: dry costs are
    /// charged straight from the plan.
    pub fn dry_run(&self) -> MachineReport {
        let mut machine = Machine::new(self.spec, self.cost.clone(), self.plan.n, true);
        machine.set_recorder(self.cfg.recorder.clone());
        exec::execute_dry(&mut machine, &self.plan, &self.cfg);
        machine.report()
    }
}

/// Phase 3 of a session: one finished functional EXECUTE.
///
/// Carries the clock/traffic report and the sharded [`Measurements`]
/// engine (which owns the machine's shard buffers); `state` is only
/// populated when the run's config set
/// [`final_unpermute`](AtlasConfig::final_unpermute), and `samples` only
/// when it set [`shots`](AtlasConfig::shots)` > 0`.
#[derive(Debug)]
pub struct Execution {
    /// Machine clock and traffic report for this run.
    pub report: MachineReport,
    /// The gathered final state in the identity qubit layout (only with
    /// [`AtlasConfig::final_unpermute`]; sweeps leave it off and read
    /// through `measurements`).
    pub state: Option<StateVector>,
    /// Measurement engine over the sharded final state: shots,
    /// marginals, Pauli expectations and top outcomes, all in place.
    pub measurements: Measurements,
    /// Pre-drawn shots when the config requested them (equal to
    /// `measurements.sample(cfg.shots, cfg.seed)`).
    pub samples: Option<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators;

    fn small_spec() -> MachineSpec {
        MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 5,
        }
    }

    /// Regression test for the fingerprint domain-aliasing bug: under
    /// the pre-fix mixing, qubit `q` was tokenized as `0x100 + q`, so
    /// the qubit tokens at `q = 257..=259` were *equal* to the
    /// insularity tags (`0x201`–`0x203`) and at `q = 512` to the gate
    /// separator (`0x300`). Today's 63-qubit circuit cap keeps those
    /// indices out of reach, but a fingerprint keying a shared plan
    /// cache must not rely on that: the moment a wider backend lands
    /// (ROADMAP item 4 targets thousands of stabilizer qubits), the
    /// aliasing becomes a cache-poisoning vector. This test calls the
    /// *production* token constructors and fails against the old
    /// values: `0x100 + 257 == 0x201` etc.
    #[test]
    fn fingerprint_tokens_are_domain_separated() {
        use super::{fp_domain, fp_insularity_value, fp_token};
        use atlas_circuit::insular::InsularKind;
        // The exact collisions of the old scheme, as documentation:
        assert_eq!(0x100u64 + 257, 0x201); // qubit 257 == Diagonal tag
        assert_eq!(0x100u64 + 258, 0x202); // qubit 258 == AntiDiagonal tag
        assert_eq!(0x100u64 + 259, 0x203); // qubit 259 == NonInsular tag
        assert_eq!(0x100u64 + 512, 0x300); // qubit 512 == gate separator

        // The fixed scheme: no qubit token may equal any token of any
        // other class, for any representable qubit index — in
        // particular the four indices above.
        let ins_tokens: Vec<u64> = [
            InsularKind::Diagonal,
            InsularKind::AntiDiagonal,
            InsularKind::NonInsular,
        ]
        .into_iter()
        .map(|k| fp_token(fp_domain::INSULARITY, fp_insularity_value(k)))
        .collect();
        let separator = fp_token(fp_domain::SEPARATOR, 0);
        for q in [0u64, 1, 62, 256, 257, 258, 259, 511, 512, u32::MAX as u64] {
            let qt = fp_token(fp_domain::QUBIT, q);
            for &it in &ins_tokens {
                assert_ne!(qt, it, "qubit {q} token aliases an insularity tag");
            }
            assert_ne!(qt, separator, "qubit {q} token aliases the separator");
            for b in 0u64..=255 {
                assert_ne!(qt, fp_token(fp_domain::NAME_BYTE, b));
            }
            assert_ne!(qt, fp_token(fp_domain::NUM_QUBITS, q));
        }
        // Cross-class disjointness holds for every pair, not just
        // qubits: same value under different domains, different tokens.
        let domains = [
            fp_domain::NUM_QUBITS,
            fp_domain::NAME_BYTE,
            fp_domain::QUBIT,
            fp_domain::INSULARITY,
            fp_domain::SEPARATOR,
        ];
        for (i, &a) in domains.iter().enumerate() {
            for &b in &domains[i + 1..] {
                for v in [0u64, 3, 257, 512, (1 << 32) - 1] {
                    assert_ne!(fp_token(a, v), fp_token(b, v));
                }
            }
        }
    }

    #[test]
    fn fingerprint_ignores_generic_parameters() {
        let a = generators::qaoa(8);
        let b = a.map_params(|_, _, p| p + 0.125);
        assert_eq!(CircuitFingerprint::of(&a), CircuitFingerprint::of(&b));
    }

    #[test]
    fn fingerprint_sees_structure() {
        let a = generators::ghz(6);
        let mut b = generators::ghz(6);
        b.h(3); // extra gate
        assert_ne!(CircuitFingerprint::of(&a), CircuitFingerprint::of(&b));
        // Same kinds, different wiring.
        let mut c1 = Circuit::new(4);
        c1.h(0).cx(0, 1);
        let mut c2 = Circuit::new(4);
        c2.h(0).cx(0, 2);
        assert_ne!(CircuitFingerprint::of(&c1), CircuitFingerprint::of(&c2));
    }

    #[test]
    fn fingerprint_sees_insularity_special_cases() {
        // RX(θ) is non-insular for generic θ but anti-diagonal at θ = π:
        // the plan's specialization templates differ, so the fingerprint
        // must too.
        let mut generic = Circuit::new(2);
        generic.rx(0.7, 0).cx(0, 1);
        let mut special = Circuit::new(2);
        special.rx(std::f64::consts::PI, 0).cx(0, 1);
        assert_ne!(
            CircuitFingerprint::of(&generic),
            CircuitFingerprint::of(&special)
        );
    }

    #[test]
    fn execute_rejects_structurally_different_circuit() {
        let circuit = generators::ghz(8);
        let planner = Planner::new(small_spec(), CostModel::default(), AtlasConfig::default());
        let compiled = planner.plan(&circuit).unwrap();
        let mut other = generators::ghz(8);
        other.h(7);
        assert!(!compiled.accepts(&other));
        match compiled.execute(&other) {
            Err(AtlasError::PlanMismatch { .. }) => {}
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
    }

    #[test]
    fn planner_rejects_too_small_circuit_and_bad_config() {
        let circuit = generators::ghz(4);
        let planner = Planner::new(small_spec(), CostModel::default(), AtlasConfig::default());
        match planner.plan(&circuit) {
            Err(AtlasError::CircuitTooSmall {
                qubits: 4,
                local: 5,
                global: 1,
            }) => {}
            other => panic!("expected CircuitTooSmall, got {other:?}"),
        }
        let bad = AtlasConfig {
            threads: 0,
            ..AtlasConfig::default()
        };
        let planner = Planner::new(MachineSpec::single_gpu(4), CostModel::default(), bad);
        match planner.plan(&circuit) {
            Err(AtlasError::InvalidConfig { .. }) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn dry_run_matches_simulate_dry_report() {
        let circuit = generators::qaoa(10);
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 7,
        };
        let cfg = AtlasConfig::default();
        let compiled = Planner::new(spec, CostModel::default(), cfg.clone())
            .plan(&circuit)
            .unwrap();
        let session = compiled.dry_run();
        let shim = crate::simulate::simulate(&circuit, spec, CostModel::default(), &cfg, true)
            .unwrap()
            .report;
        assert_eq!(session.total_secs.to_bits(), shim.total_secs.to_bits());
        assert_eq!(session.kernels, shim.kernels);
    }

    use atlas_circuit::Circuit;
}
