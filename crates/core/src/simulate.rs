//! SIMULATE (Algorithm 1, lines 18–20): the end-to-end driver tying
//! PARTITION and EXECUTE together on a machine.
//!
//! [`simulate`] is a thin shim over the session API
//! ([`Planner`] → [`CompiledPlan`] → [`Execution`]): it plans and
//! executes exactly once, fused. Callers that run the same circuit
//! structure repeatedly (parameter sweeps, serving) should hold the
//! [`CompiledPlan`] themselves and call
//! [`CompiledPlan::execute`] per point — planning then happens once.
//!
//! [`Planner`]: crate::session::Planner
//! [`CompiledPlan`]: crate::session::CompiledPlan
//! [`CompiledPlan::execute`]: crate::session::CompiledPlan::execute
//! [`Execution`]: crate::session::Execution

use crate::config::AtlasConfig;
use crate::exec::FullPlan;
use crate::session::{Execution, Planner};
use atlas_circuit::Circuit;
use atlas_error::AtlasError;
use atlas_machine::{CostModel, MachineReport, MachineSpec};
use atlas_sampler::Measurements;
use atlas_statevec::StateVector;

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimulationOutput {
    /// The execution plan (stages, kernels, costs).
    pub plan: FullPlan,
    /// Machine clock and traffic report.
    pub report: MachineReport,
    /// The final state (functional runs with
    /// [`AtlasConfig::final_unpermute`] set; `None` in dry-run mode).
    pub state: Option<StateVector>,
    /// Measurement engine over the sharded final state (functional runs;
    /// `None` in dry-run mode). Owns the machine's shard buffers: shots,
    /// marginals, Pauli expectations and top outcomes all reduce in
    /// place — nothing here gathers the `2^n` vector, so this is the
    /// output path that works at any functional scale and is the reason
    /// validation-style runs no longer need
    /// [`AtlasConfig::final_unpermute`].
    pub measurements: Option<Measurements>,
    /// Pre-drawn measurement shots, when [`AtlasConfig::shots`] `> 0` on
    /// a functional run: `shots` logical bitstrings sampled with
    /// [`AtlasConfig::seed`] (equal to
    /// `measurements.sample(cfg.shots, cfg.seed)`).
    pub samples: Option<Vec<u64>>,
}

/// Simulates `circuit` on the given machine. `dry = true` runs the clock
/// model only (paper-scale experiments); `dry = false` computes amplitudes
/// and returns a [`Measurements`] handle over the sharded final state
/// (plus, when `cfg.final_unpermute` is set, the gathered state in the
/// identity qubit layout).
pub fn simulate(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    cfg: &AtlasConfig,
    dry: bool,
) -> Result<SimulationOutput, AtlasError> {
    let compiled = Planner::new(spec, cost, cfg.clone()).plan(circuit)?;
    if dry {
        let report = compiled.dry_run();
        return Ok(SimulationOutput {
            plan: compiled.into_plan(),
            report,
            state: None,
            measurements: None,
            samples: None,
        });
    }
    let Execution {
        report,
        state,
        measurements,
        samples,
    } = compiled.execute(circuit)?;
    Ok(SimulationOutput {
        plan: compiled.into_plan(),
        report,
        state,
        measurements: Some(measurements),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators::Family;
    use atlas_statevec::simulate_reference;

    fn check_family(fam: Family, n: u32, spec: MachineSpec) {
        let circuit = fam.generate(n);
        let cfg = AtlasConfig::for_validation();
        let out = simulate(&circuit, spec, CostModel::default(), &cfg, false)
            .unwrap_or_else(|e| panic!("{fam:?} n={n}: {e}"));
        let got = out.state.expect("functional run returns state");
        let want = simulate_reference(&circuit);
        let diff = got.max_abs_diff(&want);
        assert!(
            diff < 1e-9,
            "{fam:?} n={n} L={} G={}: distributed result diverged by {diff}",
            spec.local_qubits,
            spec.global_qubits()
        );
    }

    #[test]
    fn all_families_match_reference_on_multi_gpu() {
        // 2 nodes × 2 GPUs, L = n-3: every family must agree with the
        // reference amplitudes through staging, kernelization, insular
        // specialization and the all-to-alls.
        for fam in Family::table1() {
            let n = 9;
            let spec = MachineSpec {
                nodes: 2,
                gpus_per_node: 2,
                local_qubits: n - 3,
            };
            check_family(fam, n, spec);
        }
    }

    #[test]
    fn qft_matches_on_many_small_shards() {
        // Aggressive split: L = 5 on an 10-qubit circuit → 32 shards,
        // multiple stages guaranteed.
        let spec = MachineSpec {
            nodes: 4,
            gpus_per_node: 2,
            local_qubits: 5,
        };
        check_family(Family::Qft, 10, spec);
        check_family(Family::Su2Random, 10, spec);
        check_family(Family::WState, 10, spec);
    }

    #[test]
    fn offloaded_execution_matches() {
        // More shards than GPUs: DRAM offload path.
        let spec = MachineSpec {
            nodes: 1,
            gpus_per_node: 2,
            local_qubits: 5,
        };
        check_family(Family::Ae, 10, spec);
        check_family(Family::Ghz, 10, spec);
    }

    #[test]
    fn single_gpu_no_staging() {
        let spec = MachineSpec::single_gpu(8);
        check_family(Family::Vqc, 8, spec);
    }

    #[test]
    fn functional_run_hands_out_measurements_without_unpermute() {
        // No final unpermute: the state stays in the last stage's layout,
        // yet the measurement handle reports logical-order results that
        // match the dense reference.
        let circuit = Family::Qft.generate(9);
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 6,
        };
        let cfg = AtlasConfig {
            shots: 32,
            seed: 11,
            ..AtlasConfig::default() // final_unpermute = false
        };
        let out = simulate(&circuit, spec, CostModel::default(), &cfg, false).unwrap();
        assert!(out.state.is_none(), "no gather without final_unpermute");
        let m = out
            .measurements
            .expect("functional runs carry measurements");
        // cfg.shots/cfg.seed drew the samples already.
        let samples = out.samples.expect("cfg.shots > 0 pre-draws samples");
        assert_eq!(samples.len(), 32);
        assert_eq!(samples, m.sample(32, 11));
        let want = simulate_reference(&circuit);
        for x in [0u64, 1, 100, 511] {
            assert!((m.probability(x) - want.probability(x)).abs() < 1e-9);
        }
        let top = m.top(4);
        let dense = want.top_probabilities(4);
        assert_eq!(
            top.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            dense.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
        assert!((m.total_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dry_run_produces_report_without_state() {
        let circuit = Family::Qft.generate(30);
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 26,
        };
        let out = simulate(
            &circuit,
            spec,
            CostModel::default(),
            &AtlasConfig::default(),
            true,
        )
        .unwrap();
        assert!(out.state.is_none());
        assert!(out.measurements.is_none());
        assert!(out.samples.is_none());
        assert!(out.report.total_secs > 0.0);
        assert!(out.report.kernels > 0);
    }
}
