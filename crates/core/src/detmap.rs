//! Deterministic hash containers for plan-affecting code.
//!
//! `std`'s default `HashMap`/`HashSet` seed their hasher per process
//! (`RandomState`), so iteration order — and anything derived from it —
//! varies run to run. Planning code must be bit-reproducible: where a map
//! participates in (or could grow into) a plan-affecting decision, use
//! these aliases instead. `DefaultHasher` is SipHash with fixed keys, so
//! two processes build identical tables and iterate them identically.
//! (HashDoS resistance is irrelevant here — keys are internal planner
//! state, not attacker input.)
//!
//! The `atlas-lint` binary's `default-hasher` rule enforces this
//! convention mechanically across every module of `atlas-core`: any
//! `HashMap`/`HashSet` constructed with the default hasher in this crate
//! is a lint violation unless it carries a justified
//! `// lint: allow(default-hasher)` escape.

use std::collections::hash_map::DefaultHasher;
use std::hash::BuildHasherDefault;

/// `HashMap` with a fixed-seed hasher (process-independent iteration).
pub(crate) type DetMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// `HashSet` with a fixed-seed hasher (process-independent iteration).
pub(crate) type DetSet<K> = std::collections::HashSet<K, BuildHasherDefault<DefaultHasher>>;
