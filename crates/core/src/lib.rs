//! # atlas-core
//!
//! The paper's contribution: hierarchical partitioning of quantum circuits
//! for distributed GPU simulation.
//!
//! * [`staging`] — the circuit **staging** problem (§IV): split the circuit
//!   into stages, each with a local/regional/global qubit partition such
//!   that every gate's non-insular qubits are local, minimizing stage count
//!   and then communication cost (Eq. 2) via the binary ILP of Eqs. 3–11.
//! * [`kernelize`] — the circuit **kernelization** problem (§V): partition
//!   each stage's gates into fusion / shared-memory kernels with the
//!   dynamic program of Algorithms 3–4 under Constraint 1 (weak convexity
//!   + monotonicity), with the Appendix-B optimizations.
//! * [`exec`] — the **EXECUTE** algorithm (Alg. 1): shard the state vector
//!   across the machine, run each stage's kernels per shard with
//!   insular-qubit specialization, and perform the all-to-all qubit
//!   remapping between stages.
//! * [`session`] — the typed session API: [`Planner`] compiles a circuit
//!   once into a [`CompiledPlan`]; the plan executes any number of
//!   same-structure circuits (plan-once/run-many parameter sweeps).
//! * [`backend`] — engine dispatch behind the [`SimulatorBackend`]
//!   trait: all-Clifford circuits route to the `atlas-stabilizer`
//!   tableau, Clifford prefixes fast-forward on the tableau and hand
//!   off to the statevector engine, everything else runs the sharded
//!   statevector path.
//! * [`noise`] — depolarizing noise as Pauli-twirled stochastic
//!   trajectories that share one fingerprint (plan-once sweeps).
//! * [`simulate`](mod@simulate) — the one-shot **SIMULATE** driver, a
//!   thin shim over the session API.
//!
//! Every fallible public API returns the workspace-wide structured
//! [`AtlasError`] (re-exported from `atlas-error`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod config;
mod detmap;
pub mod exec;
pub mod kernelize;
pub mod noise;
pub mod plan;
pub mod session;
pub mod simulate;
pub mod staging;

pub use atlas_error::AtlasError;
pub use backend::{BackendPlan, BackendRun, HybridPlan, SimulatorBackend, StabilizerPlan};
pub use config::{AtlasConfig, AtlasConfigBuilder, BackendKind, MemoryBudget};
pub use plan::{Kernel, KernelKind, QubitPartition, Stage, StagedKernels};
pub use session::{CircuitFingerprint, CompiledPlan, Execution, Planner};
pub use simulate::{simulate, SimulationOutput};
