//! Tableau → statevector conversion: the Clifford-prefix handoff.
//!
//! A stabilizer state on `n` qubits is an equal-magnitude superposition
//! over an affine subspace of basis states: `|ψ⟩ = 2^{-k/2} Σ_{v ∈ V}
//! φ(v) |v0 ⊕ v⟩` where `V` is spanned by the X-parts of the `k`
//! stabilizer generators with nonzero X-part and `φ(v) ∈ {±1, ±i}`.
//! The conversion finds `v0` from the Z-only generators (a GF(2) linear
//! solve), then walks the `2^k` coset in Gray-code order so each
//! amplitude is one generator application away from an already-known
//! one — `O(2^k)` work total rather than `O(2^k · k)`.

use crate::tableau::Tableau;
use atlas_error::AtlasError;
use atlas_qmath::Complex64;
use atlas_statevec::StateVector;

/// `i^m` for `m mod 4`.
#[inline]
fn i_pow(m: u32) -> Complex64 {
    match m % 4 {
        0 => Complex64::ONE,
        1 => Complex64::I,
        2 => -Complex64::ONE,
        _ => -Complex64::I,
    }
}

impl Tableau {
    /// Expands the stabilizer state into its exact `2^n` amplitude
    /// vector (`n ≤ 30`), with a canonical global phase: the first
    /// nonzero amplitude in basis order is real and positive. That
    /// makes the output directly comparable to
    /// [`atlas_statevec::simulate_reference`] up to the reference's own
    /// global phase, and is the input format for the hybrid
    /// Clifford-prefix handoff into the sharded engine.
    pub fn to_statevector(&self) -> Result<StateVector, AtlasError> {
        let n = self.num_qubits();
        if n > 30 {
            return Err(AtlasError::invalid_plan(format!(
                "statevector conversion needs n ≤ 30, got {n}"
            )));
        }
        // n ≤ 30 ⇒ one word per row: masks fit in a single u64.
        let rows = self.canonical_stabilizers();
        let pivots: Vec<(u64, u64, bool)> = rows
            .iter()
            .filter(|(x, _, _)| x[0] != 0)
            .map(|(x, z, r)| (x[0], z[0], *r))
            .collect();
        let k = pivots.len();

        // The Z-only generators pin the support: basis state b is in
        // the support iff popcount(z & b) ≡ r (mod 2) for each. Reduce
        // to echelon form (pivot = lowest set bit) and back-substitute
        // with free variables 0 to get one support point v0.
        let mut zrows: Vec<(usize, u64, bool)> = Vec::with_capacity(n - k);
        for (x, z, r) in rows.iter().filter(|(x, _, _)| x[0] == 0) {
            debug_assert_eq!(x[0], 0);
            let (mut z, mut r) = (z[0], *r);
            for &(c, pz, pr) in &zrows {
                if z >> c & 1 == 1 {
                    z ^= pz;
                    r ^= pr;
                }
            }
            debug_assert!(z != 0, "stabilizer generators are independent");
            zrows.push((z.trailing_zeros() as usize, z, r));
        }
        // Descending pivot order: every non-pivot column of a row is
        // higher than its pivot, hence already assigned (or free = 0).
        zrows.sort_by_key(|&(c, _, _)| std::cmp::Reverse(c));
        let mut v0 = 0u64;
        for &(c, z, r) in &zrows {
            let parity = (z & !(1u64 << c) & v0).count_ones() & 1;
            v0 |= (((r as u32) ^ parity) as u64 & 1) << c;
        }

        // Gray-code coset walk: step s flips generator g = trailing
        // zeros of s. Applying stabilizer P = (-1)^r · ΠW to |b⟩ gives
        // coef(b)·|b ⊕ x⟩ with coef(b) = (-1)^r · i^|x∧z| · (-1)^|z∧b|,
        // and P|ψ⟩ = |ψ⟩ forces a(b ⊕ x) = coef(b) · a(b).
        let mut amps = vec![Complex64::ZERO; 1usize << n];
        let scale = 0.5f64.powi(k as i32 / 2) * if k % 2 == 1 { 0.5f64.sqrt() } else { 1.0 };
        let mut b = v0;
        let mut cur = Complex64::real(scale);
        amps[b as usize] = cur;
        for s in 1u64..(1u64 << k) {
            let (x, z, r) = pivots[s.trailing_zeros() as usize];
            let mut coef = i_pow((x & z).count_ones());
            if (r as u32 + (z & b).count_ones()) & 1 == 1 {
                coef = -coef;
            }
            cur *= coef;
            b ^= x;
            debug_assert!(
                amps[b as usize] == Complex64::ZERO,
                "coset walk revisited a state"
            );
            amps[b as usize] = cur;
        }

        // Canonical global phase: rotate so the first nonzero amplitude
        // is real positive.
        let lead = amps[v0 as usize..]
            .iter()
            .find(|a| a.norm_sqr() > 0.0)
            .copied()
            .unwrap_or(Complex64::ONE);
        let rot = lead.conj().scale(1.0 / lead.norm());
        for a in &mut amps {
            *a *= rot;
        }
        Ok(StateVector::from_amplitudes(amps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::{generators, Circuit};
    use atlas_statevec::simulate_reference;

    /// Asserts `sv` equals the reference simulation of `c` up to a
    /// global phase, with tolerance 1e-12.
    fn assert_matches_reference(c: &Circuit, sv: &StateVector) {
        let reference = simulate_reference(c);
        let aref = reference.amplitudes();
        let amps = sv.amplitudes();
        assert_eq!(amps.len(), aref.len());
        let lead = aref
            .iter()
            .zip(amps)
            .find(|(r, _)| r.norm_sqr() > 1e-20)
            .expect("reference state is nonzero");
        let rot = *lead.0 / *lead.1;
        assert!(
            (rot.norm() - 1.0).abs() < 1e-9,
            "magnitudes differ: |rot| = {}",
            rot.norm()
        );
        for (i, (a, r)) in amps.iter().zip(aref).enumerate() {
            assert!(
                (*a * rot).approx_eq(*r, 1e-9),
                "amplitude {i} differs for {}: {} vs {}",
                c.name(),
                *a * rot,
                r
            );
        }
    }

    #[test]
    fn zero_state_converts_exactly() {
        let sv = Tableau::new(3).to_statevector().unwrap();
        assert_eq!(sv.amplitudes()[0], Complex64::ONE);
        assert!(sv.amplitudes()[1..].iter().all(|a| *a == Complex64::ZERO));
    }

    #[test]
    fn bell_and_phase_states_convert() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).add(atlas_circuit::GateKind::S, &[1]);
        let t = Tableau::from_circuit(&c).unwrap();
        assert_matches_reference(&c, &t.to_statevector().unwrap());
    }

    #[test]
    fn ghz_family_converts() {
        for n in [2u32, 3, 6, 10] {
            let c = generators::ghz(n);
            let t = Tableau::from_circuit(&c).unwrap();
            assert_matches_reference(&c, &t.to_statevector().unwrap());
        }
    }

    #[test]
    fn random_clifford_circuits_convert() {
        for n in [2u32, 4, 7, 10] {
            let c = generators::clifford(n);
            let t = Tableau::from_circuit(&c).unwrap();
            assert_matches_reference(&c, &t.to_statevector().unwrap());
        }
    }

    #[test]
    fn conversion_norm_is_one() {
        for n in [3u32, 8] {
            let t = Tableau::from_circuit(&generators::clifford(n)).unwrap();
            let sv = t.to_statevector().unwrap();
            assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conversion_beyond_30_qubits_is_typed_error() {
        let t = Tableau::new(31);
        assert!(matches!(
            t.to_statevector(),
            Err(AtlasError::InvalidPlan { .. })
        ));
    }
}
