//! The bit-packed CHP tableau: gate replay, measurement, sampling,
//! expectations and the canonical form.

use atlas_circuit::{Circuit, Gate, GateKind};
use atlas_error::AtlasError;
use atlas_sampler::CounterRng;

/// A stabilizer tableau over `n` qubits: rows `0..n` are destabilizers,
/// rows `n..2n` stabilizers, row `2n` is scratch. Each row has `w =
/// ⌈n/64⌉` X words, `w` Z words and one sign bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    w: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    r: Vec<u64>,
}

#[inline]
fn get_bit(words: &[u64], q: usize) -> bool {
    words[q / 64] >> (q % 64) & 1 == 1
}

#[inline]
fn flip_bit(words: &mut [u64], q: usize) {
    words[q / 64] ^= 1u64 << (q % 64);
}

#[inline]
fn set_bit(words: &mut [u64], q: usize, v: bool) {
    let (wd, sh) = (q / 64, q % 64);
    words[wd] = (words[wd] & !(1u64 << sh)) | ((v as u64) << sh);
}

/// Word-parallel signed `g`-sum of Aaronson & Gottesman: the exponent
/// contribution (mod 4) of multiplying source row `(x1, z1)` into
/// target row `(x2, z2)`. Each qubit contributes `+1`, `0` or `-1`;
/// the return value is `Σ(+1 bits) − Σ(−1 bits)`.
fn g_sum(x1: &[u64], z1: &[u64], x2: &[u64], z2: &[u64]) -> i64 {
    let mut plus = 0i64;
    let mut minus = 0i64;
    for wd in 0..x1.len() {
        let (a, b, c, d) = (x1[wd], z1[wd], x2[wd], z2[wd]);
        let y1 = a & b; // source Y positions: g = z2 − x2
        let xo = a & !b; // source X positions: g = z2(2x2 − 1)
        let zo = !a & b; // source Z positions: g = x2(1 − 2z2)
        plus += ((y1 & !c & d) | (xo & c & d) | (zo & c & !d)).count_ones() as i64;
        minus += ((y1 & c & !d) | (xo & !c & d) | (zo & c & d)).count_ones() as i64;
    }
    plus - minus
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizer `j` is `X_j`, stabilizer `j`
    /// is `Z_j`, all signs `+`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "tableau needs at least one qubit");
        let w = n.div_ceil(64);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            w,
            x: vec![0u64; rows * w],
            z: vec![0u64; rows * w],
            r: vec![0u64; rows.div_ceil(64)],
        };
        for j in 0..n {
            set_bit(&mut t.x[j * w..(j + 1) * w], j, true);
            set_bit(&mut t.z[(n + j) * w..(n + j + 1) * w], j, true);
        }
        t
    }

    /// Replays an all-Clifford circuit from `|0…0⟩`.
    pub fn from_circuit(c: &Circuit) -> Result<Self, AtlasError> {
        let mut t = Tableau::new(c.num_qubits() as usize);
        t.apply_circuit(c)?;
        Ok(t)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Words per sample bitstring (`⌈n/64⌉`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.w
    }

    #[inline]
    fn get_x(&self, row: usize, q: usize) -> bool {
        get_bit(&self.x[row * self.w..], q)
    }

    #[inline]
    fn get_z(&self, row: usize, q: usize) -> bool {
        get_bit(&self.z[row * self.w..], q)
    }

    #[inline]
    fn get_r(&self, row: usize) -> bool {
        get_bit(&self.r, row)
    }

    #[inline]
    fn set_r(&mut self, row: usize, v: bool) {
        set_bit(&mut self.r, row, v);
    }

    // ---- gate primitives (Aaronson & Gottesman Table 1) ----

    /// Hadamard on `a`.
    pub fn h(&mut self, a: usize) {
        for row in 0..2 * self.n {
            let o = row * self.w;
            let xa = get_bit(&self.x[o..], a);
            let za = get_bit(&self.z[o..], a);
            if xa && za {
                flip_bit(&mut self.r, row);
            }
            set_bit(&mut self.x[o..], a, za);
            set_bit(&mut self.z[o..], a, xa);
        }
    }

    /// Phase gate S on `a`.
    pub fn s(&mut self, a: usize) {
        for row in 0..2 * self.n {
            let o = row * self.w;
            let xa = get_bit(&self.x[o..], a);
            let za = get_bit(&self.z[o..], a);
            if xa && za {
                flip_bit(&mut self.r, row);
            }
            if xa {
                flip_bit(&mut self.z[o..], a);
            }
        }
    }

    /// S† on `a` (conjugation `X → −Y`, `Y → X`).
    pub fn sdg(&mut self, a: usize) {
        for row in 0..2 * self.n {
            let o = row * self.w;
            let xa = get_bit(&self.x[o..], a);
            let za = get_bit(&self.z[o..], a);
            if xa && !za {
                flip_bit(&mut self.r, row);
            }
            if xa {
                flip_bit(&mut self.z[o..], a);
            }
        }
    }

    /// Pauli-X on `a` (flips the sign of rows with a Z or Y there).
    pub fn x_gate(&mut self, a: usize) {
        for row in 0..2 * self.n {
            if self.get_z(row, a) {
                flip_bit(&mut self.r, row);
            }
        }
    }

    /// Pauli-Z on `a`.
    pub fn z_gate(&mut self, a: usize) {
        for row in 0..2 * self.n {
            if self.get_x(row, a) {
                flip_bit(&mut self.r, row);
            }
        }
    }

    /// Pauli-Y on `a`.
    pub fn y_gate(&mut self, a: usize) {
        for row in 0..2 * self.n {
            if self.get_x(row, a) ^ self.get_z(row, a) {
                flip_bit(&mut self.r, row);
            }
        }
    }

    /// √X on `a` (`= H·S·H` exactly, no global-phase correction needed
    /// at the tableau level).
    pub fn sx(&mut self, a: usize) {
        self.h(a);
        self.s(a);
        self.h(a);
    }

    /// CNOT with control `a`, target `b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        for row in 0..2 * self.n {
            let o = row * self.w;
            let xa = get_bit(&self.x[o..], a);
            let zb = get_bit(&self.z[o..], b);
            let xb = get_bit(&self.x[o..], b);
            let za = get_bit(&self.z[o..], a);
            if xa && zb && (xb == za) {
                flip_bit(&mut self.r, row);
            }
            if xa {
                flip_bit(&mut self.x[o..], b);
            }
            if zb {
                flip_bit(&mut self.z[o..], a);
            }
        }
    }

    /// CZ on `a`, `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// CY with control `a`, target `b` (`S_b · CX · S†_b`).
    pub fn cy(&mut self, a: usize, b: usize) {
        self.sdg(b);
        self.cx(a, b);
        self.s(b);
    }

    /// SWAP of `a`, `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    /// Applies one gate; errors on a non-Clifford kind.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), AtlasError> {
        let q = gate.qubits.as_slice();
        match gate.kind {
            GateKind::H => self.h(q[0] as usize),
            GateKind::X => self.x_gate(q[0] as usize),
            GateKind::Y => self.y_gate(q[0] as usize),
            GateKind::Z => self.z_gate(q[0] as usize),
            GateKind::S => self.s(q[0] as usize),
            GateKind::Sdg => self.sdg(q[0] as usize),
            GateKind::SX => self.sx(q[0] as usize),
            GateKind::CX => self.cx(q[0] as usize, q[1] as usize),
            GateKind::CY => self.cy(q[0] as usize, q[1] as usize),
            GateKind::CZ => self.cz(q[0] as usize, q[1] as usize),
            GateKind::Swap => self.swap(q[0] as usize, q[1] as usize),
            GateKind::PauliNoise(sel) => match GateKind::pauli_noise_select(sel) {
                0 => {}
                1 => self.x_gate(q[0] as usize),
                2 => self.y_gate(q[0] as usize),
                _ => self.z_gate(q[0] as usize),
            },
            other => {
                return Err(AtlasError::invalid_plan(format!(
                    "non-Clifford gate '{}' reached the stabilizer backend",
                    other.name()
                )))
            }
        }
        Ok(())
    }

    /// Replays every gate of `c` in order.
    pub fn apply_circuit(&mut self, c: &Circuit) -> Result<(), AtlasError> {
        assert_eq!(c.num_qubits() as usize, self.n, "qubit count mismatch");
        for g in c.gates() {
            self.apply(g)?;
        }
        Ok(())
    }

    // ---- row algebra ----

    /// Left-multiplies row `i` into row `h` (`row_h ← row_i · row_h`),
    /// with exact sign tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let (ho, io) = (h * self.w, i * self.w);
        let e = 2 * (self.get_r(h) as i64 + self.get_r(i) as i64)
            + g_sum(
                &self.x[io..io + self.w],
                &self.z[io..io + self.w],
                &self.x[ho..ho + self.w],
                &self.z[ho..ho + self.w],
            );
        let m = e.rem_euclid(4);
        // Stabilizer and scratch rows only ever multiply commuting
        // Paulis, so their phase stays real. Destabilizer rows (h < n)
        // can anticommute with the collapsing stabilizer during
        // measurement and pick up a ±i phase; their sign bit is never
        // read (destabilizers only drive anticommutation *selection*),
        // so the odd phase folds into the same deterministic rule.
        debug_assert!(
            h < self.n || m == 0 || m == 2,
            "stabilizer row product must square to +1"
        );
        self.set_r(h, m == 2);
        for wd in 0..self.w {
            self.x[ho + wd] ^= self.x[io + wd];
            self.z[ho + wd] ^= self.z[io + wd];
        }
    }

    fn zero_scratch(&mut self) {
        let o = 2 * self.n * self.w;
        self.x[o..o + self.w].fill(0);
        self.z[o..o + self.w].fill(0);
        self.set_r(2 * self.n, false);
    }

    // ---- measurement ----

    /// Measures qubit `a` in the Z basis. When the outcome is random
    /// (a stabilizer anticommutes with `Z_a`), `draw` supplies the
    /// outcome bit; deterministic outcomes consume no randomness.
    /// Returns `(outcome, was_random)`.
    pub fn measure_with(&mut self, a: usize, mut draw: impl FnMut() -> bool) -> (bool, bool) {
        match (self.n..2 * self.n).find(|&i| self.get_x(i, a)) {
            Some(p) => {
                let outcome = draw();
                self.collapse(p, a, outcome);
                (outcome, true)
            }
            None => (self.deterministic_outcome(a), false),
        }
    }

    /// Measures qubit `a` *forcing* the outcome `want`, returning the
    /// probability of that branch: `0.5` when the outcome was random,
    /// `1.0` when it was already determined as `want`, `0.0` when
    /// impossible (the tableau is left unchanged in that last case).
    pub fn measure_forced(&mut self, a: usize, want: bool) -> f64 {
        match (self.n..2 * self.n).find(|&i| self.get_x(i, a)) {
            Some(p) => {
                self.collapse(p, a, want);
                0.5
            }
            None => {
                if self.deterministic_outcome(a) == want {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The A&G random-outcome collapse: `p` is a stabilizer row with
    /// `x_a` set.
    fn collapse(&mut self, p: usize, a: usize, outcome: bool) {
        for i in 0..2 * self.n {
            if i != p && self.get_x(i, a) {
                self.rowsum(i, p);
            }
        }
        // The old stabilizer p becomes the destabilizer of the new
        // `Z_a` stabilizer.
        let (po, dst) = (p * self.w, (p - self.n) * self.w);
        for wd in 0..self.w {
            self.x[dst + wd] = self.x[po + wd];
            self.z[dst + wd] = self.z[po + wd];
        }
        let rp = self.get_r(p);
        self.set_r(p - self.n, rp);
        self.x[po..po + self.w].fill(0);
        self.z[po..po + self.w].fill(0);
        set_bit(&mut self.z[po..po + self.w], a, true);
        self.set_r(p, outcome);
    }

    /// The deterministic measurement outcome of qubit `a` (caller has
    /// checked no stabilizer anticommutes with `Z_a`): accumulate into
    /// scratch the stabilizer product whose Z-part hits `a`.
    fn deterministic_outcome(&mut self, a: usize) -> bool {
        self.zero_scratch();
        for j in 0..self.n {
            if self.get_x(j, a) {
                self.rowsum(2 * self.n, j + self.n);
            }
        }
        self.get_r(2 * self.n)
    }

    // ---- sampling ----

    /// Draws shot number `shot` as a bit-packed word vector (bit `q` of
    /// word `q/64` is qubit `q`). The shot is a pure function of
    /// `(rng, shot)` — identical on every thread count and schedule —
    /// because the per-shot stream is `rng.split(shot)` and outcomes
    /// are drawn at sequential counters on a private tableau clone.
    pub fn sample_words(&self, rng: &CounterRng, shot: u64) -> Vec<u64> {
        let stream = rng.split(shot);
        let mut t = self.clone();
        let mut counter = 0u64;
        let mut out = vec![0u64; self.w];
        for q in 0..self.n {
            let (bit, _) = t.measure_with(q, || {
                let b = stream.u64_at(counter) & 1 == 1;
                counter += 1;
                b
            });
            if bit {
                set_bit(&mut out, q, true);
            }
        }
        out
    }

    /// [`Tableau::sample_words`] narrowed to `n ≤ 64`.
    pub fn sample_u64(&self, rng: &CounterRng, shot: u64) -> u64 {
        assert!(self.n <= 64, "sample_u64 requires n ≤ 64");
        self.sample_words(rng, shot)[0]
    }

    // ---- exact queries ----

    /// Probability of the basis state whose bits are packed in `bits`
    /// (same layout as [`Tableau::sample_words`]): the product of
    /// forced-measurement branch probabilities, i.e. exactly `2^{-k}`
    /// on the state's support and `0` off it.
    pub fn probability_of_bits(&self, bits: &[u64]) -> f64 {
        let mut t = self.clone();
        let mut p = 1.0;
        for q in 0..self.n {
            let pq = t.measure_forced(q, get_bit(bits, q));
            if pq == 0.0 {
                return 0.0;
            }
            p *= pq;
        }
        p
    }

    /// [`Tableau::probability_of_bits`] for `n ≤ 64` basis indices.
    pub fn probability(&self, index: u64) -> f64 {
        assert!(self.n <= 64, "probability(u64) requires n ≤ 64");
        self.probability_of_bits(&[index])
    }

    /// Probability that measuring qubit `q` yields `1`: `(1 − ⟨Z_q⟩)/2`
    /// computed from the exact single-qubit expectation.
    pub fn marginal_one_prob(&self, q: usize) -> f64 {
        let mut pz = vec![0u64; self.w];
        set_bit(&mut pz, q, true);
        (1.0 - self.expectation_xz(&vec![0u64; self.w], &pz)) / 2.0
    }

    /// Expectation of the Pauli string given as X/Z bit masks over the
    /// qubits (a set bit in both = `Y`). Exact: `−1`, `0` or `+1`.
    pub fn expectation_xz(&self, px: &[u64], pz: &[u64]) -> f64 {
        assert_eq!(px.len(), self.w);
        assert_eq!(pz.len(), self.w);
        let sym = |row: usize| {
            let o = row * self.w;
            let mut s = 0u32;
            for wd in 0..self.w {
                s ^=
                    (self.x[o + wd] & pz[wd]).count_ones() ^ (self.z[o + wd] & px[wd]).count_ones();
            }
            s & 1 == 1
        };
        // Anticommuting with any stabilizer generator ⇒ ⟨P⟩ = 0.
        for srow in self.n..2 * self.n {
            if sym(srow) {
                return 0.0;
            }
        }
        // Otherwise ±P is a product of stabilizer generators; generator
        // j participates iff P anticommutes with destabilizer j.
        let picks: Vec<usize> = (0..self.n).filter(|&j| sym(j)).collect();
        let mut t = self.clone();
        t.zero_scratch();
        for j in picks {
            t.rowsum(2 * self.n, j + self.n);
        }
        let o = 2 * self.n * self.w;
        debug_assert!(
            t.x[o..o + self.w] == *px && t.z[o..o + self.w] == *pz,
            "decomposition must reproduce the Pauli string exactly"
        );
        if t.get_r(2 * self.n) {
            -1.0
        } else {
            1.0
        }
    }

    /// Expectation of a [`PauliString`](atlas_sampler::PauliString)
    /// (must span exactly `n` qubits).
    pub fn expectation(&self, p: &atlas_sampler::PauliString) -> f64 {
        assert_eq!(p.num_qubits() as usize, self.n, "Pauli string width");
        let mut px = vec![0u64; self.w];
        let mut pz = vec![0u64; self.w];
        for q in 0..self.n {
            use atlas_sampler::PauliOp;
            match p.op(q as u32) {
                PauliOp::I => {}
                PauliOp::X => set_bit(&mut px, q, true),
                PauliOp::Y => {
                    set_bit(&mut px, q, true);
                    set_bit(&mut pz, q, true);
                }
                PauliOp::Z => set_bit(&mut pz, q, true),
            }
        }
        self.expectation_xz(&px, &pz)
    }

    // ---- canonical form ----

    /// The unique row-reduced stabilizer generator set, sign-tracked:
    /// Gaussian elimination over the `(X | Z)` bit matrix with X
    /// columns first. Two tableaux describe the same quantum state iff
    /// their canonical stabilizer sets are equal — a width-independent
    /// equality predicate (each row is `(x_words, z_words, sign)`).
    pub fn canonical_stabilizers(&self) -> Vec<(Vec<u64>, Vec<u64>, bool)> {
        let (n, w) = (self.n, self.w);
        let mut rows: Vec<(Vec<u64>, Vec<u64>, bool)> = (n..2 * n)
            .map(|i| {
                (
                    self.x[i * w..(i + 1) * w].to_vec(),
                    self.z[i * w..(i + 1) * w].to_vec(),
                    self.get_r(i),
                )
            })
            .collect();
        let mul_into = |rows: &mut Vec<(Vec<u64>, Vec<u64>, bool)>, h: usize, i: usize| {
            let (src_x, src_z, src_r) = (rows[i].0.clone(), rows[i].1.clone(), rows[i].2);
            let e = 2 * (rows[h].2 as i64 + src_r as i64)
                + g_sum(&src_x, &src_z, &rows[h].0, &rows[h].1);
            let m = e.rem_euclid(4);
            debug_assert!(m == 0 || m == 2);
            rows[h].2 = m == 2;
            for wd in 0..src_x.len() {
                rows[h].0[wd] ^= src_x[wd];
                rows[h].1[wd] ^= src_z[wd];
            }
        };
        let mut rank = 0usize;
        for q in 0..n {
            if let Some(p) = (rank..n).find(|&i| get_bit(&rows[i].0, q)) {
                rows.swap(rank, p);
                for i in 0..n {
                    if i != rank && get_bit(&rows[i].0, q) {
                        mul_into(&mut rows, i, rank);
                    }
                }
                rank += 1;
            }
        }
        for q in 0..n {
            if let Some(p) = (rank..n).find(|&i| get_bit(&rows[i].1, q)) {
                rows.swap(rank, p);
                for i in 0..n {
                    if i != rank && get_bit(&rows[i].1, q) && rows[i].0.iter().all(|&v| v == 0) {
                        mul_into(&mut rows, i, rank);
                    }
                }
                // Also clear this Z column from the X-pivot rows so the
                // form is fully reduced (multiplying by a Z-only row
                // leaves their X-part, hence their pivots, intact).
                for i in 0..n {
                    if i != rank && get_bit(&rows[i].1, q) && rows[i].0.iter().any(|&v| v != 0) {
                        mul_into(&mut rows, i, rank);
                    }
                }
                rank += 1;
            }
        }
        rows
    }

    /// `true` iff this tableau describes `|0…0⟩` (canonical stabilizers
    /// are exactly `+Z_q` for every qubit).
    pub fn is_zero_state(&self) -> bool {
        let rows = self.canonical_stabilizers();
        rows.iter().enumerate().all(|(q, (x, z, r))| {
            !*r && x.iter().all(|&v| v == 0) && (0..self.n).all(|j| get_bit(z, j) == (j == q))
        })
    }
}

/// The inverse of an all-Clifford circuit: gates reversed, each
/// replaced by its inverse within the Clifford alphabet (`SX†` expands
/// to `H·S†·H`). Errors on a non-Clifford gate.
pub fn inverse_circuit(c: &Circuit) -> Result<Circuit, AtlasError> {
    let mut inv = Circuit::named(c.num_qubits(), format!("{}_dag", c.name()));
    for g in c.gates().iter().rev() {
        let qs = g.qubits.as_slice();
        match g.kind {
            GateKind::H
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::CX
            | GateKind::CY
            | GateKind::CZ
            | GateKind::Swap
            | GateKind::PauliNoise(_) => {
                inv.push(*g);
            }
            GateKind::S => {
                inv.add(GateKind::Sdg, qs);
            }
            GateKind::Sdg => {
                inv.add(GateKind::S, qs);
            }
            GateKind::SX => {
                inv.add(GateKind::H, qs);
                inv.add(GateKind::Sdg, qs);
                inv.add(GateKind::H, qs);
            }
            other => {
                return Err(AtlasError::invalid_plan(format!(
                    "cannot invert non-Clifford gate '{}'",
                    other.name()
                )))
            }
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators;
    use atlas_sampler::{PauliOp, PauliString};

    fn bell() -> Tableau {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        Tableau::from_circuit(&c).unwrap()
    }

    #[test]
    fn zero_state_measures_deterministically_zero() {
        let mut t = Tableau::new(3);
        for q in 0..3 {
            let (bit, random) = t.measure_with(q, || panic!("deterministic"));
            assert!(!bit);
            assert!(!random);
        }
    }

    #[test]
    fn bell_state_correlations() {
        let t = bell();
        assert_eq!(t.expectation(&PauliString::parse("ZZ").unwrap()), 1.0);
        assert_eq!(t.expectation(&PauliString::parse("XX").unwrap()), 1.0);
        assert_eq!(t.expectation(&PauliString::parse("YY").unwrap()), -1.0);
        assert_eq!(t.expectation(&PauliString::parse("ZI").unwrap()), 0.0);
        assert_eq!(t.expectation(&PauliString::parse("IX").unwrap()), 0.0);
        assert_eq!(t.probability(0b00), 0.5);
        assert_eq!(t.probability(0b11), 0.5);
        assert_eq!(t.probability(0b01), 0.0);
        assert_eq!(t.probability(0b10), 0.0);
        assert_eq!(t.marginal_one_prob(0), 0.5);
    }

    #[test]
    fn bell_samples_are_perfectly_correlated_and_deterministic() {
        let t = bell();
        let rng = CounterRng::new(42);
        let mut seen = [false; 2];
        for shot in 0..64 {
            let s = t.sample_u64(&rng, shot);
            assert!(s == 0b00 || s == 0b11, "shot {shot} drew {s:#b}");
            seen[(s == 0b11) as usize] = true;
            assert_eq!(s, t.sample_u64(&rng, shot), "same (seed, shot) must repeat");
        }
        assert!(
            seen[0] && seen[1],
            "both outcomes should appear in 64 shots"
        );
    }

    #[test]
    fn s_gate_turns_plus_into_y_eigenstate() {
        let mut c = Circuit::new(1);
        c.h(0).add(GateKind::S, &[0]);
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(
            t.expectation(&PauliString::from_ops(1, &[(0, PauliOp::Y)])),
            1.0
        );
    }

    #[test]
    fn measurement_collapses_ghz_partner_qubits() {
        let mut t = Tableau::from_circuit(&generators::ghz(3)).unwrap();
        let (b0, random) = t.measure_with(0, || true);
        assert!(random && b0);
        for q in 1..3 {
            let (b, random) = t.measure_with(q, || panic!("collapsed"));
            assert!(b, "GHZ partners must agree");
            assert!(!random);
        }
    }

    #[test]
    fn clifford_then_inverse_restores_zero_state() {
        for n in [2u32, 5, 9] {
            let c = generators::clifford(n);
            let inv = inverse_circuit(&c).unwrap();
            let mut t = Tableau::from_circuit(&c).unwrap();
            assert!(!t.is_zero_state(), "clifford({n}) should move the state");
            t.apply_circuit(&inv).unwrap();
            assert!(t.is_zero_state(), "C·C† must restore |0…0⟩ at n={n}");
        }
    }

    #[test]
    fn wide_ghz_chain_works_past_the_statevector_bound() {
        let n = 200u32;
        let t = Tableau::from_circuit(&generators::ghz(n)).unwrap();
        // ⟨Z_0 Z_199⟩ = 1 on GHZ.
        let zz = PauliString::from_ops(n, &[(0, PauliOp::Z), (n - 1, PauliOp::Z)]);
        assert_eq!(t.expectation(&zz), 1.0);
        assert_eq!(
            t.expectation(&PauliString::from_ops(n, &[(7, PauliOp::Z)])),
            0.0
        );
        let rng = CounterRng::new(7);
        for shot in 0..16 {
            let words = t.sample_words(&rng, shot);
            assert_eq!(words.len(), 4);
            let first = words[0] & 1 == 1;
            let want = if first {
                [u64::MAX, u64::MAX, u64::MAX, 0xFF]
            } else {
                [0, 0, 0, 0]
            };
            assert_eq!(words, want, "GHZ shot must be all-0 or all-1");
        }
    }

    #[test]
    fn canonical_form_is_representation_independent() {
        // Prepare the same state (|00⟩ + |11⟩)/√2 two different ways.
        let a = bell();
        let mut c2 = Circuit::new(2);
        // H(1); CX(1,0) prepares the same Bell state.
        c2.h(1).cx(1, 0);
        let b = Tableau::from_circuit(&c2).unwrap();
        assert_ne!(a, b, "raw tableaux differ");
        assert_eq!(a.canonical_stabilizers(), b.canonical_stabilizers());
        // And a genuinely different state disagrees.
        let mut c3 = Circuit::new(2);
        c3.h(0).cx(0, 1).z(0);
        let d = Tableau::from_circuit(&c3).unwrap();
        assert_ne!(a.canonical_stabilizers(), d.canonical_stabilizers());
    }

    #[test]
    fn pauli_noise_slots_replay_as_paulis() {
        let mut c = Circuit::new(1);
        c.add(GateKind::PauliNoise(1.0), &[0]); // X
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.probability(1), 1.0);
        let mut c = Circuit::new(1);
        c.h(0).add(GateKind::PauliNoise(3.0), &[0]).h(0); // HZH = X
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn non_clifford_gate_is_a_typed_error() {
        let mut c = Circuit::new(1);
        c.t(0);
        match Tableau::from_circuit(&c) {
            Err(AtlasError::InvalidPlan { reason }) => assert!(reason.contains("t")),
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
        assert!(inverse_circuit(&c).is_err());
    }
}
