//! # atlas-stabilizer
//!
//! A CHP-style stabilizer tableau simulator (Aaronson & Gottesman,
//! "Improved simulation of stabilizer circuits") — the polynomial-time
//! fast path behind Atlas' backend dispatch. Where the sharded
//! statevector engine pays `2^n` amplitudes, the tableau tracks the
//! state's stabilizer group in `O(n²)` bits and replays Clifford gates
//! in `O(n)` word operations, so 200- or 2000-qubit Clifford circuits
//! are cheap (cf. arXiv 2603.14641 for the GPU-scaled version of the
//! same data structure).
//!
//! The tableau stores `2n` generator rows (destabilizers then
//! stabilizers) plus one scratch row, each row bit-packed into `u64`
//! words: an X bit-matrix, a Z bit-matrix and a sign column. Row `i`
//! represents the Pauli operator `(-1)^{r_i} · Π_q W_q` with
//! `W ∈ {I, X, Y, Z}` selected by the `(x, z)` bit pair of qubit `q`
//! (`(1,1)` is `Y`, with its `i` folded into the convention). Row
//! products track signs with the word-parallel form of the paper's `g`
//! function, so every query that terminates in a sign — measurement,
//! Pauli expectation, basis-state probability — is exact, never
//! floating point.
//!
//! What the crate offers beyond gate replay:
//!
//! * **Measurement** with caller-supplied randomness
//!   ([`Tableau::measure_with`]), plus *forced* measurement
//!   ([`Tableau::measure_forced`]) whose returned branch probability
//!   (1, ½ or 0) powers exact basis-state probabilities.
//! * **Shot sampling** ([`Tableau::sample_words`]) driven by the
//!   splittable counter RNG: shot `i` is a pure function of
//!   `(seed, i)`, identical across thread counts and schedules.
//! * **Pauli expectations** ([`Tableau::expectation`]) in `{-1, 0, +1}`
//!   by destabilizer-pairing decomposition.
//! * **Canonical form** ([`Tableau::canonical_stabilizers`]): a unique
//!   row-reduced generator set usable as a state-equality predicate at
//!   any width.
//! * **Statevector conversion** ([`Tableau::to_statevector`]): Gaussian
//!   elimination + Gray-code coset enumeration yields the exact `2^n`
//!   amplitude vector (n ≤ 30) with a canonical global phase — the
//!   Clifford-prefix handoff into the sharded engine.

#![forbid(unsafe_code)]

pub mod convert;
pub mod tableau;

pub use tableau::{inverse_circuit, Tableau};
