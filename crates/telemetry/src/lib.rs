//! Unified telemetry for the Atlas pipeline: spans, counters, a metrics
//! registry, and trace export — dependency-free and allocation-free in
//! steady state.
//!
//! ## Design contract
//!
//! * **No-op when disabled.** A [`Recorder`] is a cheap cloneable handle;
//!   the default handle is disabled and every recording method returns
//!   after a single `Option` check. No wall-clock is read, no lock is
//!   taken, nothing allocates.
//! * **Allocation-free in steady state.** Each thread records into a
//!   fixed-capacity thread-local buffer (reserved once, on the thread's
//!   first event) and drains it into a pre-reserved shared sink — at a
//!   stage barrier, at the end of a pool item, or when the local buffer
//!   fills. Neither side ever grows; overflow events are counted in
//!   [`Recorder::dropped`] instead of reallocating.
//!   `tests/hotpath_alloc.rs` pins this.
//! * **Wall-clock never leaks into model-level output.** Timestamps ride
//!   the trace channel only. Every event carries a [`Event::det`] flag:
//!   deterministic events (kernel applies, reshuffles, stage timings,
//!   plan/sample spans) have a name/args/ordinal sequence that is
//!   byte-identical across thread, shard and worker counts once
//!   timestamps and lanes are stripped — [`det_signature`] computes the
//!   canonical form. Scheduling artifacts (per-worker waits, queue
//!   latencies) are recorded with `det = false` and excluded from
//!   determinism comparisons.
//!
//! ## Export
//!
//! [`write_ndjson`] streams one JSON object per event (schema
//! `atlas-trace/1`, see `docs/OBSERVABILITY.md`); [`write_chrome`] emits
//! Chrome `trace_event` JSON loadable in Perfetto / `chrome://tracing`,
//! with one track per recording lane. The [`MetricsRegistry`] snapshot
//! (monotonic counters such as the Scratch offset-table memo hits and
//! the serve pool totals) is appended to both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Maximum key/value pairs one event can carry.
pub const MAX_ARGS: usize = 6;

/// Default shared-sink capacity (events) of [`Recorder::enabled`].
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

/// Default per-thread buffer capacity (events) of [`Recorder::enabled`].
pub const DEFAULT_LOCAL_CAPACITY: usize = 1 << 12;

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A wall-clock interval (`ts_ns` .. `ts_ns + dur_ns`).
    Span,
    /// A point sample of one or more counters (`args`).
    Counter,
}

impl EventKind {
    /// The wire spelling (`"span"` / `"counter"`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Counter => "counter",
        }
    }
}

/// One recorded telemetry event. Plain data: `&'static str` names, fixed
/// argument slots, no heap — copying one into a buffer allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event name from the span taxonomy (`kernel.apply`,
    /// `machine.reshuffle`, …; see `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Span or counter.
    pub kind: EventKind,
    /// `true` when the event's name/ordinal/args sequence is part of the
    /// determinism contract (identical across thread/worker counts once
    /// timestamps and lanes are stripped); `false` for scheduling
    /// artifacts like per-worker barrier waits.
    pub det: bool,
    /// Recording lane: a small per-thread ordinal assigned on the
    /// thread's first event, used as the track id in trace viewers.
    /// Presentation only — never part of the deterministic signature.
    pub lane: u32,
    /// Bulk-synchronous step index (or job/stage ordinal for serve and
    /// plan events).
    pub stage: u32,
    /// Shard index, `0` when not shard-scoped.
    pub shard: u32,
    /// Ordinal disambiguating events with equal `(stage, shard, name)`.
    pub ord: u32,
    /// Nanoseconds since the recorder was enabled (trace channel only).
    pub ts_ns: u64,
    /// Span duration in nanoseconds (`0` for counters).
    pub dur_ns: u64,
    n_args: u8,
    args: [(&'static str, u64); MAX_ARGS],
}

impl Event {
    /// The event's key/value arguments, in recording order.
    pub fn args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.n_args as usize]
    }

    /// The canonical timestamp-free, lane-free rendering used for
    /// determinism comparisons and for the stable export order.
    pub fn signature(&self) -> String {
        let mut s = format!(
            "{} {} stage={} shard={} ord={}",
            self.name,
            self.kind.name(),
            self.stage,
            self.shard,
            self.ord
        );
        for (k, v) in self.args() {
            s.push_str(&format!(" {k}={v}"));
        }
        s
    }
}

fn pack_args(args: &[(&'static str, u64)]) -> (u8, [(&'static str, u64); MAX_ARGS]) {
    let mut packed = [("", 0u64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    packed[..n].copy_from_slice(&args[..n]);
    (n as u8, packed)
}

/// The deterministic subsequence of a trace, in canonical form: the
/// sorted [`Event::signature`] lines of every `det` event. Two runs of
/// the same workload — at any thread, shard or worker count — must
/// produce equal signatures (pinned by `tests/trace_determinism.rs`).
pub fn det_signature(events: &[Event]) -> String {
    let mut lines: Vec<String> = events
        .iter()
        .filter(|e| e.det)
        .map(Event::signature)
        .collect();
    lines.sort_unstable();
    lines.join("\n")
}

/// Converts model-level (simulated) seconds to integer nanoseconds for an
/// event argument. Deterministic: a pure function of the input float.
pub fn secs_to_ns(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// A registry of named monotonic counters and gauges, snapshot in
/// deterministic (name-sorted) order.
///
/// Two write shapes:
///
/// * [`add`](MetricsRegistry::add)/[`set`](MetricsRegistry::set) — one
///   global cell per name;
/// * [`lane_set`](MetricsRegistry::lane_set) — one cell per (name, lane),
///   for per-thread monotonic counters republished from worker threads
///   (the Scratch memo counters pattern: each worker overwrites its own
///   slot, the snapshot sums the lanes).
///
/// In steady state — every key already present — updates take one mutex
/// lock and allocate nothing.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsMap>,
}

#[derive(Debug, Default)]
struct MetricsMap {
    counters: BTreeMap<&'static str, u64>,
    lanes: BTreeMap<(&'static str, u32), u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &'static str, delta: u64) {
        *self
            .inner
            .lock()
            .expect("metrics lock")
            .counters
            .entry(name)
            .or_insert(0) += delta;
    }

    /// Sets the counter `name` to an absolute value (gauge semantics).
    pub fn set(&self, name: &'static str, value: u64) {
        self.inner
            .lock()
            .expect("metrics lock")
            .counters
            .insert(name, value);
    }

    /// Overwrites lane `lane`'s slot of `name` with this thread's latest
    /// monotonic counter value. [`snapshot`](MetricsRegistry::snapshot)
    /// sums the lanes, so totals stay correct after the publishing
    /// threads exit.
    pub fn lane_set(&self, name: &'static str, lane: u32, value: u64) {
        self.inner
            .lock()
            .expect("metrics lock")
            .lanes
            .insert((name, lane), value);
    }

    /// The merged counter snapshot, name-sorted: per-lane slots are
    /// summed into their base name and folded into the global cells.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let m = self.inner.lock().expect("metrics lock");
        let mut out: BTreeMap<&'static str, u64> = m.counters.clone();
        for (&(name, _), &v) in &m.lanes {
            *out.entry(name).or_insert(0) += v;
        }
        out.into_iter().collect()
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// Start marker of a span: the wall-clock instant captured by
/// [`Recorder::start`], or nothing when the recorder is disabled (so a
/// disabled recorder never reads the clock).
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<Instant>);

struct Inner {
    /// Globally unique id distinguishing this recorder's events in the
    /// per-thread buffers (a thread may outlive many recorders).
    epoch: u64,
    t0: Instant,
    local_cap: usize,
    sink: Mutex<Vec<Event>>,
    sink_cap: usize,
    dropped: AtomicU64,
    next_lane: AtomicU32,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("epoch", &self.epoch)
            .field("sink_cap", &self.sink_cap)
            .field("local_cap", &self.local_cap)
            .finish_non_exhaustive()
    }
}

static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

struct LocalBuf {
    epoch: u64,
    lane: u32,
    /// Back-pointer to the sink the buffered events belong to, so a
    /// recorder switch on this thread can rescue them instead of
    /// dropping them.
    home: Option<Weak<Inner>>,
    /// End timestamp of this thread's latest event — the anchor
    /// [`Recorder::wait_span`] measures idle gaps from.
    last_end_ns: u64,
    /// Last stage a wait span was emitted for (one per stage per lane).
    last_wait_stage: u32,
    buf: Vec<Event>,
}

impl LocalBuf {
    const fn new() -> Self {
        LocalBuf {
            epoch: 0,
            lane: 0,
            home: None,
            last_end_ns: 0,
            last_wait_stage: u32::MAX,
            buf: Vec::new(),
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const { RefCell::new(LocalBuf::new()) };
}

/// Handle to the telemetry subsystem: cloneable, cheap, and disabled by
/// default. Threaded through the pipeline on `AtlasConfig`.
///
/// ```
/// use atlas_telemetry::Recorder;
/// let rec = Recorder::enabled();
/// let t = rec.start();
/// rec.span("kernel.apply", t, true, 0, 3, 0, &[("ops", 7)]);
/// rec.flush();
/// let events = rec.drain();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].name, "kernel.apply");
///
/// // The default handle is a no-op: nothing is recorded, nothing allocates.
/// let off = Recorder::default();
/// assert!(!off.is_enabled());
/// off.span("kernel.apply", off.start(), true, 0, 0, 0, &[]);
/// assert!(off.drain().is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// An enabled recorder with the default capacities.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_SINK_CAPACITY, DEFAULT_LOCAL_CAPACITY)
    }

    /// An enabled recorder with explicit shared-sink and per-thread
    /// buffer capacities (events). Both are fixed for the recorder's
    /// lifetime; events past capacity are counted as dropped, never
    /// grown into.
    pub fn with_capacity(sink_cap: usize, local_cap: usize) -> Self {
        let sink_cap = sink_cap.max(1);
        let local_cap = local_cap.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
                t0: Instant::now(),
                local_cap,
                sink: Mutex::new(Vec::with_capacity(sink_cap)),
                sink_cap,
                dropped: AtomicU64::new(0),
                next_lane: AtomicU32::new(0),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// `true` when this handle records events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Captures a span's start instant (`None` — no clock read — when
    /// disabled). Pass the result to [`Recorder::span`].
    #[inline]
    pub fn start(&self) -> SpanStart {
        SpanStart(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Records a span from `start` to now into this thread's buffer.
    /// No-op when disabled or when `start` came from a disabled handle.
    ///
    /// The argument list mirrors the [`Event`] fields one-to-one on
    /// purpose: call sites in the execution hot path must stay
    /// builder-free (no intermediate struct, no allocation).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn span(
        &self,
        name: &'static str,
        start: SpanStart,
        det: bool,
        stage: u32,
        shard: u32,
        ord: u32,
        args: &[(&'static str, u64)],
    ) {
        let Some(inner) = &self.inner else { return };
        let Some(t_start) = start.0 else { return };
        let ts_ns = t_start.saturating_duration_since(inner.t0).as_nanos() as u64;
        let dur_ns = t_start.elapsed().as_nanos() as u64;
        let (n_args, packed) = pack_args(args);
        self.record(
            inner,
            Event {
                name,
                kind: EventKind::Span,
                det,
                lane: 0,
                stage,
                shard,
                ord,
                ts_ns,
                dur_ns,
                n_args,
                args: packed,
            },
        );
    }

    /// Records a point counter sample. No-op when disabled.
    #[inline]
    pub fn counter(
        &self,
        name: &'static str,
        det: bool,
        stage: u32,
        shard: u32,
        ord: u32,
        args: &[(&'static str, u64)],
    ) {
        let Some(inner) = &self.inner else { return };
        let ts_ns = inner.t0.elapsed().as_nanos() as u64;
        let (n_args, packed) = pack_args(args);
        self.record(
            inner,
            Event {
                name,
                kind: EventKind::Counter,
                det,
                lane: 0,
                stage,
                shard,
                ord,
                ts_ns,
                dur_ns: 0,
                n_args,
                args: packed,
            },
        );
    }

    /// Records a *wait* span covering this thread's idle gap — from the
    /// end of its previous event to now — the first time the thread is
    /// seen working on `stage`. This is how per-worker barrier/reshuffle
    /// wait shows up on the flame chart without hooking the thread pool's
    /// internals. Always `det = false`: the gap count and extent depend
    /// on the schedule.
    #[inline]
    pub fn wait_span(&self, name: &'static str, stage: u32) {
        let Some(inner) = &self.inner else { return };
        let now_ns = inner.t0.elapsed().as_nanos() as u64;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            self.sync_local(inner, &mut l);
            if l.last_wait_stage == stage || l.last_end_ns == 0 || now_ns <= l.last_end_ns {
                l.last_wait_stage = stage;
                return;
            }
            l.last_wait_stage = stage;
            let ev = Event {
                name,
                kind: EventKind::Span,
                det: false,
                lane: l.lane,
                stage,
                shard: 0,
                ord: 0,
                ts_ns: l.last_end_ns,
                dur_ns: now_ns - l.last_end_ns,
                n_args: 0,
                args: [("", 0); MAX_ARGS],
            };
            Self::push_local(inner, &mut l, ev);
        });
    }

    /// Ensures the thread-local buffer belongs to this recorder's epoch:
    /// rescues (flushes) a previous recorder's events to their own sink,
    /// assigns a lane, and reserves the fixed local capacity once.
    fn sync_local(&self, inner: &Arc<Inner>, l: &mut LocalBuf) {
        if l.epoch == inner.epoch {
            return;
        }
        if !l.buf.is_empty() {
            match l.home.as_ref().and_then(Weak::upgrade) {
                Some(old) => old.flush_from(&mut l.buf),
                None => l.buf.clear(),
            }
        }
        l.epoch = inner.epoch;
        l.lane = inner.next_lane.fetch_add(1, Ordering::Relaxed);
        l.home = Some(Arc::downgrade(inner));
        l.last_end_ns = 0;
        l.last_wait_stage = u32::MAX;
        if l.buf.capacity() < inner.local_cap {
            l.buf.reserve_exact(inner.local_cap - l.buf.capacity());
        }
    }

    fn push_local(inner: &Inner, l: &mut LocalBuf, ev: Event) {
        if l.buf.len() == l.buf.capacity() {
            inner.flush_from(&mut l.buf);
        }
        l.last_end_ns = l.last_end_ns.max(ev.ts_ns + ev.dur_ns);
        l.buf.push(ev);
    }

    fn record(&self, inner: &Arc<Inner>, ev: Event) {
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            self.sync_local(inner, &mut l);
            let mut ev = ev;
            ev.lane = l.lane;
            Self::push_local(inner, &mut l, ev);
        });
    }

    /// Drains this thread's buffer into the shared sink. Call at a stage
    /// barrier or before a worker thread exits — events still buffered on
    /// a dead thread are lost.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            if l.epoch == inner.epoch && !l.buf.is_empty() {
                inner.flush_from(&mut l.buf);
            }
        });
    }

    /// Flushes this thread, then takes every sunk event, in canonical
    /// order (deterministic fields first, timestamps last — stable across
    /// schedules). Other threads must have [`flush`](Recorder::flush)ed
    /// already.
    pub fn drain(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        self.flush();
        // `split_off(0)` keeps the sink's reserved capacity in place, so
        // recording stays allocation-free even after a mid-run drain.
        let mut events = inner.sink.lock().expect("sink lock").split_off(0);
        events.sort_by(|a, b| {
            (
                !a.det, a.name, a.stage, a.shard, a.ord, a.args, a.lane, a.ts_ns,
            )
                .cmp(&(
                    !b.det, b.name, b.stage, b.shard, b.ord, b.args, b.lane, b.ts_ns,
                ))
        });
        events
    }

    /// Events lost to a full sink (the fixed capacities never grow).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Adds `delta` to registry counter `name`. No-op when disabled.
    pub fn metric_add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, delta);
        }
    }

    /// Sets registry counter `name` to an absolute value. No-op when
    /// disabled.
    pub fn metric_set(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set(name, value);
        }
    }

    /// Republishes this thread's latest value of a per-thread monotonic
    /// counter under its recording lane (see
    /// [`MetricsRegistry::lane_set`]). No-op when disabled.
    pub fn metric_lane_set(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            self.sync_local(inner, &mut l);
            inner.metrics.lane_set(name, l.lane, value);
        });
    }

    /// The merged, name-sorted metrics snapshot (empty when disabled).
    pub fn metrics_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.metrics.snapshot())
    }
}

impl Inner {
    /// Moves as many buffered events as fit into the sink's remaining
    /// fixed capacity; the excess is counted as dropped. Clears `buf`
    /// either way (its capacity is retained).
    fn flush_from(&self, buf: &mut Vec<Event>) {
        let mut sink = self.sink.lock().expect("sink lock");
        let room = self.sink_cap.saturating_sub(sink.len());
        let take = room.min(buf.len());
        sink.extend_from_slice(&buf[..take]);
        let lost = buf.len() - take;
        if lost > 0 {
            self.dropped.fetch_add(lost as u64, Ordering::Relaxed);
        }
        buf.clear();
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/// Trace file format selected by `--trace-format`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON event object per line (schema `atlas-trace/1`).
    #[default]
    Ndjson,
    /// Chrome `trace_event` JSON, loadable in Perfetto.
    Chrome,
}

impl TraceFormat {
    /// The CLI spelling of the variant.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Ndjson => "ndjson",
            TraceFormat::Chrome => "chrome",
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "ndjson" => Ok(TraceFormat::Ndjson),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!(
                "unknown trace format '{other}' (expected ndjson|chrome)"
            )),
        }
    }
}

/// Run-level context stamped into trace headers.
#[derive(Clone, Debug, Default)]
pub struct TraceMeta {
    /// Producing front end (`"atlas-sim"`, `"atlas-serve"`, a test name).
    pub source: String,
    /// Resolved simulation backend (`"statevec"`, `"stabilizer"`, …).
    pub backend: String,
    /// Host CPU count at run time.
    pub host_cpus: usize,
    /// Configured executor thread budget.
    pub threads: usize,
}

fn write_args_object(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
}

/// Writes the NDJSON trace: an `atlas-trace/1` header line, one event
/// object per line, and a final `atlas-metrics/1` counters line.
/// `events` should come from [`Recorder::drain`] (canonical order);
/// `metrics` from [`Recorder::metrics_snapshot`].
pub fn write_ndjson(
    w: &mut dyn Write,
    meta: &TraceMeta,
    events: &[Event],
    metrics: &[(&'static str, u64)],
    dropped: u64,
) -> io::Result<()> {
    writeln!(
        w,
        "{{\"schema\":\"atlas-trace/1\",\"source\":\"{}\",\"backend\":\"{}\",\
         \"host_cpus\":{},\"threads\":{},\"events\":{},\"dropped\":{dropped}}}",
        meta.source,
        meta.backend,
        meta.host_cpus,
        meta.threads,
        events.len()
    )?;
    let mut line = String::new();
    for e in events {
        line.clear();
        line.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"det\":{},\"lane\":{},\"stage\":{},\
             \"shard\":{},\"ord\":{},\"ts_ns\":{},\"dur_ns\":{},\"args\":",
            e.name,
            e.kind.name(),
            e.det,
            e.lane,
            e.stage,
            e.shard,
            e.ord,
            e.ts_ns,
            e.dur_ns
        ));
        write_args_object(&mut line, e.args());
        line.push('}');
        writeln!(w, "{line}")?;
    }
    let mut mline = String::from("{\"schema\":\"atlas-metrics/1\",\"counters\":{");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            mline.push(',');
        }
        mline.push_str(&format!("\"{k}\":{v}"));
    }
    mline.push_str("}}");
    writeln!(w, "{mline}")
}

/// Writes a Chrome `trace_event` JSON object (`traceEvents` array plus
/// metadata), loadable in Perfetto or `chrome://tracing`. Spans become
/// complete (`"ph":"X"`) events and counters become `"ph":"C"` samples;
/// each recording lane is a named thread track. The metrics snapshot
/// rides along under `otherData.metrics`.
pub fn write_chrome(
    w: &mut dyn Write,
    meta: &TraceMeta,
    events: &[Event],
    metrics: &[(&'static str, u64)],
    dropped: u64,
) -> io::Result<()> {
    write!(
        w,
        "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"source\":\"{}\",\"backend\":\"{}\",\
         \"host_cpus\":{},\"threads\":{},\"dropped\":{dropped},\"metrics\":{{",
        meta.source, meta.backend, meta.host_cpus, meta.threads
    )?;
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "\"{k}\":{v}")?;
    }
    write!(w, "}}}},\"traceEvents\":[")?;
    write!(
        w,
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"atlas\"}}}}"
    )?;
    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        write!(
            w,
            ",{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"lane-{lane}\"}}}}"
        )?;
    }
    let mut args = String::new();
    for e in events {
        let ts_us = e.ts_ns as f64 / 1000.0;
        args.clear();
        write_args_object(&mut args, e.args());
        match e.kind {
            EventKind::Span => {
                let dur_us = e.dur_ns as f64 / 1000.0;
                write!(
                    w,
                    ",{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"atlas\",\"pid\":1,\
                     \"tid\":{},\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"args\":{{\
                     \"det\":{},\"stage\":{},\"shard\":{},\"ord\":{},\"args\":{args}}}}}",
                    e.name, e.lane, e.det, e.stage, e.shard, e.ord
                )?;
            }
            EventKind::Counter => {
                // Counter tracks: one series per argument.
                write!(
                    w,
                    ",{{\"ph\":\"C\",\"name\":\"{}\",\"cat\":\"atlas\",\"pid\":1,\
                     \"tid\":{},\"ts\":{ts_us:.3},\"args\":{args}}}",
                    e.name, e.lane
                )?;
            }
        }
    }
    writeln!(w, "]}}")
}

/// Drains the recorder and writes the trace in the requested format.
/// Worker threads must have flushed (the pipeline's barrier/job-end
/// flush points take care of that).
pub fn export(
    rec: &Recorder,
    w: &mut dyn Write,
    format: TraceFormat,
    meta: &TraceMeta,
) -> io::Result<()> {
    let events = rec.drain();
    let metrics = rec.metrics_snapshot();
    let dropped = rec.dropped();
    match format {
        TraceFormat::Ndjson => write_ndjson(w, meta, &events, &metrics, dropped),
        TraceFormat::Chrome => write_chrome(w, meta, &events, &metrics, dropped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = Recorder::default();
        assert!(!rec.is_enabled());
        let t = rec.start();
        assert!(t.0.is_none(), "disabled start must not read the clock");
        rec.span("kernel.apply", t, true, 0, 0, 0, &[("ops", 1)]);
        rec.counter("machine.step", true, 0, 0, 0, &[]);
        rec.wait_span("worker.wait", 1);
        rec.metric_add("x", 1);
        rec.metric_lane_set("y", 2);
        rec.flush();
        assert!(rec.drain().is_empty());
        assert!(rec.metrics_snapshot().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn span_and_counter_round_trip() {
        let rec = Recorder::enabled();
        let t = rec.start();
        rec.span(
            "kernel.apply",
            t,
            true,
            2,
            3,
            1,
            &[("ops", 7), ("amps", 16)],
        );
        rec.counter("machine.step", true, 2, 0, 0, &[("compute_ns", 42)]);
        let events = rec.drain();
        assert_eq!(events.len(), 2);
        let span = events.iter().find(|e| e.name == "kernel.apply").unwrap();
        assert_eq!(span.kind, EventKind::Span);
        assert_eq!((span.stage, span.shard, span.ord), (2, 3, 1));
        assert_eq!(span.args(), &[("ops", 7), ("amps", 16)]);
        let ctr = events.iter().find(|e| e.name == "machine.step").unwrap();
        assert_eq!(ctr.kind, EventKind::Counter);
        assert_eq!(ctr.dur_ns, 0);
        // Drain empties the sink.
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn det_signature_ignores_lanes_and_timestamps_and_nondet_events() {
        let rec = Recorder::enabled();
        let t = rec.start();
        rec.span("a", t, true, 0, 1, 0, &[("k", 5)]);
        rec.span("b", rec.start(), true, 1, 0, 0, &[]);
        rec.wait_span("worker.wait", 1); // non-det, excluded
        let sig1 = det_signature(&rec.drain());

        // Same deterministic content from a different-thread schedule.
        let rec2 = Recorder::enabled();
        std::thread::scope(|s| {
            let r = &rec2;
            s.spawn(move || {
                let t = r.start();
                r.span("b", t, true, 1, 0, 0, &[]);
                r.flush();
            });
        });
        let t = rec2.start();
        rec2.span("a", t, true, 0, 1, 0, &[("k", 5)]);
        let sig2 = det_signature(&rec2.drain());
        assert_eq!(sig1, sig2);
        assert!(sig1.contains("a span stage=0 shard=1 ord=0 k=5"));
        assert!(!sig1.contains("worker.wait"));
    }

    #[test]
    fn fixed_capacities_drop_instead_of_growing() {
        let rec = Recorder::with_capacity(4, 2);
        for i in 0..10 {
            rec.counter("c", true, i, 0, 0, &[]);
        }
        rec.flush();
        let events = rec.drain();
        assert_eq!(events.len(), 4, "sink capacity is a hard ceiling");
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn steady_state_recording_reuses_buffers() {
        let rec = Recorder::enabled();
        // Warm: first event assigns the lane and reserves the local buffer.
        rec.counter("warm", true, 0, 0, 0, &[]);
        rec.flush();
        LOCAL.with(|l| {
            let cap_before = l.borrow().buf.capacity();
            for i in 0..100 {
                rec.counter("steady", true, i, 0, 0, &[("v", i as u64)]);
            }
            rec.flush();
            assert_eq!(l.borrow().buf.capacity(), cap_before);
        });
        assert_eq!(rec.drain().len(), 101);
    }

    #[test]
    fn metrics_registry_merges_lanes_and_counters() {
        let m = MetricsRegistry::new();
        m.add("hits", 3);
        m.add("hits", 2);
        m.set("gauge", 7);
        m.lane_set("hits", 0, 10);
        m.lane_set("hits", 1, 4);
        m.lane_set("hits", 1, 6); // republish overwrites the lane slot
        let snap = m.snapshot();
        assert_eq!(snap, vec![("gauge", 7), ("hits", 5 + 10 + 6)]);
    }

    #[test]
    fn recorder_switch_rescues_buffered_events() {
        let a = Recorder::enabled();
        a.counter("a.event", true, 0, 0, 0, &[]);
        // Recording through a second recorder on the same thread must
        // first flush the buffered events to their own sink.
        let b = Recorder::enabled();
        b.counter("b.event", true, 0, 0, 0, &[]);
        let got_a = a.drain();
        assert_eq!(got_a.len(), 1);
        assert_eq!(got_a[0].name, "a.event");
        let got_b = b.drain();
        assert_eq!(got_b.len(), 1);
        assert_eq!(got_b[0].name, "b.event");
    }

    #[test]
    fn wait_span_emits_one_gap_per_stage() {
        let rec = Recorder::enabled();
        let t = rec.start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.span("work", t, true, 0, 0, 0, &[]);
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.wait_span("worker.wait", 1);
        rec.wait_span("worker.wait", 1); // same stage: no second gap
        let events = rec.drain();
        let waits: Vec<_> = events.iter().filter(|e| e.name == "worker.wait").collect();
        assert_eq!(waits.len(), 1);
        assert!(!waits[0].det);
        assert!(waits[0].dur_ns > 0);
        let work = events.iter().find(|e| e.name == "work").unwrap();
        assert_eq!(waits[0].ts_ns, work.ts_ns + work.dur_ns);
    }

    #[test]
    fn ndjson_export_has_header_events_and_metrics() {
        let rec = Recorder::enabled();
        let t = rec.start();
        rec.span("kernel.apply", t, true, 0, 0, 0, &[("ops", 3)]);
        rec.metric_add("scratch.table_hits", 11);
        let meta = TraceMeta {
            source: "test".into(),
            backend: "statevec".into(),
            host_cpus: 4,
            threads: 2,
        };
        let mut out = Vec::new();
        export(&rec, &mut out, TraceFormat::Ndjson, &meta).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"atlas-trace/1\""));
        assert!(lines[0].contains("\"backend\":\"statevec\""));
        assert!(lines[0].contains("\"events\":1"));
        assert!(lines[1].contains("\"name\":\"kernel.apply\""));
        assert!(lines[1].contains("\"args\":{\"ops\":3}"));
        assert!(lines[2].contains("\"schema\":\"atlas-metrics/1\""));
        assert!(lines[2].contains("\"scratch.table_hits\":11"));
    }

    #[test]
    fn chrome_export_is_trace_event_shaped() {
        let rec = Recorder::enabled();
        let t = rec.start();
        rec.span("kernel.apply", t, true, 1, 2, 0, &[("ops", 3)]);
        rec.counter("machine.step", true, 1, 0, 0, &[("compute_ns", 9)]);
        let mut out = Vec::new();
        export(&rec, &mut out, TraceFormat::Chrome, &TraceMeta::default()).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"name\":\"kernel.apply\""));
    }

    #[test]
    fn trace_format_parses_and_round_trips() {
        use std::str::FromStr;
        for f in [TraceFormat::Ndjson, TraceFormat::Chrome] {
            assert_eq!(TraceFormat::from_str(f.name()).unwrap(), f);
        }
        assert!(TraceFormat::from_str("xml").is_err());
        assert_eq!(TraceFormat::default(), TraceFormat::Ndjson);
    }

    #[test]
    fn secs_to_ns_is_deterministic_rounding() {
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(1.5e-9), 2);
        assert_eq!(secs_to_ns(1.0), 1_000_000_000);
    }
}
