//! Effect typing for shard instructions.
//!
//! Every [`ShardOp`] reads and writes a set of amplitude indices. This
//! module computes those sets symbolically — as [`WriteSet`]s of the form
//! `{ base | x : x ⊆ mask }` — so disjointness between concurrently
//! executing shards is decidable with two words per operation instead of
//! an enumeration.
//!
//! ## The footprint model
//!
//! The machine stores shard `s` as the amplitude range
//! `[s·2^L, (s+1)·2^L)`: physical bits `0..L` index within the shard and
//! bits `L..n` are the shard index. A kernel over local qubit positions
//! `Q` (each `< L`) partitions its shard into `2^(L-|Q|)` groups and
//! touches every amplitude of the shard exactly once — so its footprint
//! is `{ (s << L) | x : x ⊆ 2^L - 1 }`. If a corrupt plan smuggles a
//! qubit position `p ≥ L` into an op, the op's index arithmetic escapes
//! its shard: the footprint mask gains bit `p`, the symbolic set now
//! intersects the neighbouring shard `s ⊕ 2^(p-L)`, and the race checker
//! reports exactly which pair of concurrent shards would alias.
//!
//! Within a shard, group disjointness (the `AmpCell` argument in
//! `atlas_statevec::parallel`) requires the op's qubit list to be
//! duplicate-free: distinct groups then differ in a non-gate bit and can
//! never collide. [`effect_of`] checks that too.

use atlas_machine::ShardOp;

/// A symbolic amplitude index set: `{ base | x : x ⊆ mask }`.
///
/// `base` carries the fixed bits (the shard index, for shard programs);
/// `mask` the free bits the operation may address. The representation is
/// closed under the questions the race checker asks — membership bounds
/// and pairwise intersection — without enumerating `2^|mask|` indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteSet {
    /// Fixed index bits, present in every member.
    pub base: u64,
    /// Free index bits; any subset may be OR-ed onto `base`.
    pub mask: u64,
}

impl WriteSet {
    /// The set of every index of shard `s` (shards hold `2^l` amplitudes).
    pub fn shard(s: u64, l: u32) -> Self {
        WriteSet {
            base: s << l,
            mask: (1u64 << l) - 1,
        }
    }

    /// Largest index in the set.
    pub fn max_index(&self) -> u64 {
        self.base | self.mask
    }

    /// Whether two symbolic sets share at least one concrete index.
    ///
    /// Per bit: a member of `self` has value `base-bit OR x` with `x`
    /// free iff the bit is in `mask`, so the achievable values are
    /// `{1}` when the base bit is set, `{0,1}` when only the mask bit
    /// is, and `{0}` when neither. The sets are disjoint iff some bit
    /// position has achievable values `{0}` vs `{1}`.
    pub fn intersects(&self, other: &WriteSet) -> bool {
        let self_must_one = self.base;
        let other_must_one = other.base;
        let forced_apart = (self_must_one & !other_must_one & !other.mask)
            | (other_must_one & !self_must_one & !self.mask);
        forced_apart == 0
    }
}

/// The effect of one shard instruction: which amplitude indices it reads
/// and writes, which shard-index bits it consumed at specialization time,
/// and how much scratch it needs.
#[derive(Clone, Debug)]
pub struct OpEffect {
    /// Amplitude indices the op may read.
    pub reads: WriteSet,
    /// Amplitude indices the op may write. Every kernel here is
    /// read-modify-write over its whole shard, so `writes == reads`.
    pub writes: WriteSet,
    /// Physical bits `< L` the op addresses (its qubit mask); `0` for a
    /// pure scale pass.
    pub qubit_mask: u64,
    /// Scratch amplitudes the executor's gather/scatter buffers need
    /// (`2·2^k` for a dense `k`-qubit kernel, in/out pairs).
    pub scratch_amps: u64,
}

/// Why an op could not be effect-typed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EffectError {
    /// An op's qubit list contains a duplicate position: the group
    /// decomposition behind the intra-shard `AmpCell` safety argument
    /// collapses (distinct groups would share indices).
    DuplicateQubit(u32),
    /// A shared-memory part's matrix dimension does not match its qubit
    /// count (`rows != 2^k`).
    MatrixShape {
        /// Qubits the part claims to act on.
        qubits: usize,
        /// Rows the part's matrix actually has.
        rows: usize,
    },
    /// A scalar factor or per-amplitude cost is not a finite number.
    NonFinite,
}

impl std::fmt::Display for EffectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EffectError::DuplicateQubit(q) => {
                write!(f, "duplicate qubit position {q} breaks group disjointness")
            }
            EffectError::MatrixShape { qubits, rows } => {
                write!(f, "matrix has {rows} rows for {qubits} qubit(s)")
            }
            EffectError::NonFinite => write!(f, "non-finite scalar or cost"),
        }
    }
}

/// Computes the effect of `op` executing on shard `shard` of a machine
/// with `2^l`-amplitude shards.
///
/// Never rejects an out-of-shard qubit position directly: the escaped
/// bit lands in the returned footprint, and the caller's pairwise
/// disjointness check reports it as the data race it would be.
pub fn effect_of(op: &ShardOp, shard: u64, l: u32) -> Result<OpEffect, EffectError> {
    let base = shard << l;
    let whole_shard = (1u64 << l) - 1;
    let (qubit_mask, scratch) = match op {
        ShardOp::Fusion { qubits, scale, .. } => {
            if !scale.re.is_finite() || !scale.im.is_finite() {
                return Err(EffectError::NonFinite);
            }
            (collect_mask(qubits)?, 2u64 << qubits.len())
        }
        ShardOp::ShmParts {
            parts,
            per_amp_ns,
            scale,
        } => {
            if !per_amp_ns.is_finite() || !scale.re.is_finite() || !scale.im.is_finite() {
                return Err(EffectError::NonFinite);
            }
            let mut mask = 0u64;
            let mut scratch = 0u64;
            for (qs, m) in parts.iter() {
                if m.rows() != 1 << qs.len() {
                    return Err(EffectError::MatrixShape {
                        qubits: qs.len(),
                        rows: m.rows(),
                    });
                }
                mask |= collect_mask(qs)?;
                scratch = scratch.max(2u64 << qs.len());
            }
            (mask, scratch)
        }
        ShardOp::Scale(f) => {
            if !f.re.is_finite() || !f.im.is_finite() {
                return Err(EffectError::NonFinite);
            }
            (0u64, 0)
        }
    };
    // Every kernel form touches all of its shard's groups, so the
    // in-shard footprint is the whole shard; qubit bits ≥ l (corruption)
    // extend the mask past the shard boundary and surface in the
    // cross-shard disjointness check.
    let set = WriteSet {
        base,
        mask: whole_shard | qubit_mask,
    };
    Ok(OpEffect {
        reads: set,
        writes: set,
        qubit_mask,
        scratch_amps: scratch,
    })
}

/// ORs qubit positions into a mask, rejecting duplicates.
fn collect_mask(qubits: &[u32]) -> Result<u64, EffectError> {
    let mut mask = 0u64;
    for &q in qubits {
        let bit = 1u64 << q;
        if mask & bit != 0 {
            return Err(EffectError::DuplicateQubit(q));
        }
        mask |= bit;
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_machine::ShardOp;
    use atlas_qmath::Complex64;

    #[test]
    fn shard_write_sets_are_pairwise_disjoint() {
        let l = 5;
        for a in 0..8u64 {
            for b in 0..8u64 {
                let wa = WriteSet::shard(a, l);
                let wb = WriteSet::shard(b, l);
                assert_eq!(wa.intersects(&wb), a == b, "shards {a} vs {b}");
            }
        }
    }

    #[test]
    fn escaped_qubit_bit_aliases_the_neighbour_shard() {
        let l = 5;
        // An op on shard 0 addressing bit 5 (= l) reaches into shard 1.
        let escaped = WriteSet {
            base: 0,
            mask: ((1u64 << l) - 1) | (1 << l),
        };
        assert!(escaped.intersects(&WriteSet::shard(1, l)));
        assert!(!escaped.intersects(&WriteSet::shard(2, l)));
    }

    #[test]
    fn scale_effect_stays_inside_its_shard() {
        let eff = effect_of(&ShardOp::Scale(Complex64::ONE), 3, 4).unwrap();
        assert_eq!(eff.writes, WriteSet::shard(3, 4));
        assert_eq!(eff.qubit_mask, 0);
    }

    #[test]
    fn duplicate_qubits_are_rejected() {
        let op = ShardOp::ShmParts {
            parts: std::sync::Arc::new(vec![(vec![2, 2], atlas_qmath::Matrix::identity(4))]),
            per_amp_ns: 1.0,
            scale: Complex64::ONE,
        };
        assert_eq!(
            effect_of(&op, 0, 5).unwrap_err(),
            EffectError::DuplicateQubit(2)
        );
    }
}
