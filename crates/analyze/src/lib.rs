//! # atlas-analyze
//!
//! Static analysis over *compiled* Atlas plans: a post-PARTITION verifier
//! that turns the paper's planning constraints — and the prose safety
//! arguments inside the executor's `unsafe` blocks — into machine-checked
//! invariants on the actual artifact the machine will run.
//!
//! The rest of the workspace checks these properties dynamically
//! (proptests over small random circuits, `debug_assert!`s on hot paths).
//! This crate checks them *totally*, on every plan, before it executes:
//!
//! * [`verify::verify_plan`] walks a [`FullPlan`](atlas_core::exec::FullPlan)
//!   and proves stage covering and insularity (Constraint 1 / Theorems 3
//!   and 6), per-stage mapping bijectivity and class ranges, reshuffle
//!   permutation bijectivity, compiled-template consistency, stage-barrier
//!   program ordering, and clock-model conservation (the charged Eq. 12
//!   cost matches the kernel inventory).
//! * [`effect`] effect-types every [`ShardOp`](atlas_machine::ShardOp) of
//!   the per-shard programs — the read/write amplitude index sets each
//!   instruction touches — and proves pairwise disjointness of concurrent
//!   shard write sets. That discharges, statically, the aliasing argument
//!   the `ShardCell`/`AmpCell` `unsafe` blocks in `atlas-machine` and
//!   `atlas-statevec` make in comments.
//!
//! Violations are typed [`Violation`]s carrying op coordinates
//! (stage / kernel / shard / op), convertible into
//! [`AtlasError::InvalidPlan`](atlas_error::AtlasError) so they flow
//! through the workspace's existing error surface (CLI exit code 6, serve
//! job failures). The verifier runs after every plan under
//! `debug_assertions`, behind `atlas-sim --analyze` in release, and as the
//! serve pool's cache admission gate — a plan that fails verification is
//! never cached, so it can never be replayed cross-tenant.
//!
//! See `docs/ANALYSIS.md` for the invariant catalogue mapped to paper
//! sections, plus the companion `atlas-lint` determinism lint.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod effect;
pub mod verify;

pub use effect::{effect_of, OpEffect, WriteSet};
pub use verify::{verify_plan, verify_stage_programs, Invariant, VerifyReport, Violation};
