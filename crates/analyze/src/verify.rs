//! The plan/IR verifier: a total checker over [`FullPlan`]s.
//!
//! [`verify_plan`] re-derives, from the circuit and cost model alone,
//! everything the planner claims in a compiled plan — stage cover and
//! insularity, per-stage qubit mappings, reshuffle permutations, the
//! insular-reduced gate templates, kernel covers and capacities, the
//! charged clock cost, and finally the effect footprints of the per-shard
//! programs — and rejects the plan with a typed [`Violation`] on the first
//! mismatch. A verified plan is safe to cache, replay, and execute with
//! the engine's `unsafe` disjoint-write fast paths.
//!
//! The checks mirror the invariants the rest of the workspace asserts
//! piecewise (`plan::validate_stages`, `kernelize::validate_cover`, the
//! proptests in `tests/plan_invariants.rs`, the `debug_assert!`s in
//! `exec::compile_stage`) but run them *totally*, over the artifact, with
//! coordinates attached — see [`Invariant`] for the catalogue and
//! `docs/ANALYSIS.md` for the mapping to paper sections.

use crate::effect::effect_of;
use atlas_circuit::{insular, Circuit};
use atlas_core::exec::{build_stage_programs, FullPlan, StagePlan};
use atlas_core::kernelize::{validate_cover, KGate, KernelCost};
use atlas_error::AtlasError;
use atlas_machine::{CostModel, ShardProgram};

/// Above this many shards the verifier stops materializing per-shard
/// programs (a paper-scale dry plan has millions) and relies on the
/// symbolic per-kernel checks alone; [`VerifyReport::effects_materialized`]
/// records which mode ran.
pub const MAX_MATERIALIZED_SHARDS: usize = 4096;

/// Relative tolerance for clock-model conservation: the planner and the
/// verifier sum identical per-kernel prices in different orders.
const COST_REL_TOL: f64 = 1e-9;

/// The invariant a [`Violation`] names. One variant per checkable claim a
/// compiled plan makes; `name()` is the stable diagnostic identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Plan header consistent with the circuit (`n`, `L + G ≤ n`, `n ≤ 63`).
    PlanShape,
    /// Every circuit gate appears in exactly one stage, and each stage's
    /// partition is a well-formed L/R/G split (§IV staging feasibility).
    StageCover,
    /// Every gate's non-insular qubits are local in its stage
    /// (Constraint 1 / the staging ILP's defining constraint).
    Insularity,
    /// A stage's logical→physical mapping is a bijection onto `0..n`.
    MappingBijection,
    /// Local/regional/global qubits map into their physical bit ranges
    /// (`[0,L)`, `[L,L+R)`, `[L+R,n)`).
    MappingClass,
    /// The all-to-all between consecutive stages composes to a
    /// bijection on physical bits (no amplitude lost or duplicated).
    ReshufflePermutation,
    /// The stage's compiled templates/scalars are exactly the insular
    /// reduction of its gates (local positions, read bits, flip
    /// snapshots, per-gate costs, accumulated flips).
    TemplateConsistency,
    /// Gates and kernels execute in a dependency-valid order (stage gate
    /// lists, cross-stage dependencies, kernel sequencing — Theorem 2).
    StageOrdering,
    /// Kernels cover the stage's templates exactly once within their
    /// qubit sets and capacities (§V, Theorems 3 & 6 feasibility).
    KernelCover,
    /// The charged Eq. 12 cost equals the price of the kernel inventory
    /// under the machine's cost model.
    ClockConservation,
    /// A shard instruction is well-formed under effect typing (finite
    /// scalars, matrix shapes, duplicate-free qubit lists).
    OpEffect,
    /// Concurrent shards' write sets are pairwise disjoint — the static
    /// form of the `ShardCell`/`AmpCell` aliasing argument.
    WriteDisjointness,
}

impl Invariant {
    /// Stable kebab-case identifier used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::PlanShape => "plan-shape",
            Invariant::StageCover => "stage-cover",
            Invariant::Insularity => "insularity",
            Invariant::MappingBijection => "mapping-bijection",
            Invariant::MappingClass => "mapping-class",
            Invariant::ReshufflePermutation => "reshuffle-permutation",
            Invariant::TemplateConsistency => "template-consistency",
            Invariant::StageOrdering => "stage-ordering",
            Invariant::KernelCover => "kernel-cover",
            Invariant::ClockConservation => "clock-conservation",
            Invariant::OpEffect => "op-effect",
            Invariant::WriteDisjointness => "write-disjointness",
        }
    }
}

/// A rejected plan: which [`Invariant`] failed, where, and why.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Stage index, when the violation is stage-local.
    pub stage: Option<usize>,
    /// Shard index, for effect-level violations.
    pub shard: Option<usize>,
    /// Op index within the shard program, for effect-level violations.
    pub op: Option<usize>,
    /// Human-readable specifics (gate/kernel indices, expected vs found).
    pub detail: String,
}

impl Violation {
    fn new(invariant: Invariant, detail: impl Into<String>) -> Self {
        Violation {
            invariant,
            stage: None,
            shard: None,
            op: None,
            detail: detail.into(),
        }
    }

    fn at_stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant {} violated", self.invariant.name())?;
        if let Some(s) = self.stage {
            write!(f, " at stage {s}")?;
        }
        if let Some(s) = self.shard {
            write!(f, ", shard {s}")?;
        }
        if let Some(o) = self.op {
            write!(f, ", op {o}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for Violation {}

impl From<Violation> for AtlasError {
    fn from(v: Violation) -> Self {
        AtlasError::invalid_plan(v.to_string())
    }
}

/// What a successful verification covered (rendered by `atlas-sim
/// --analyze` and folded into serve's metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyReport {
    /// Stages checked.
    pub stages: usize,
    /// Kernels checked across all stages.
    pub kernels: usize,
    /// Gate templates replayed.
    pub templates: usize,
    /// Scalar templates replayed.
    pub scalars: usize,
    /// Inter-stage reshuffles proven bijective.
    pub reshuffles: usize,
    /// Shards whose programs were effect-typed (0 when not materialized).
    pub shards: usize,
    /// Shard instructions effect-typed.
    pub shard_ops: usize,
    /// Whether per-shard programs were materialized and effect-checked
    /// (false above [`MAX_MATERIALIZED_SHARDS`]: symbolic checks only).
    pub effects_materialized: bool,
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stage(s), {} kernel(s), {} template(s), {} scalar(s), {} reshuffle(s)",
            self.stages, self.kernels, self.templates, self.scalars, self.reshuffles
        )?;
        if self.effects_materialized {
            write!(
                f,
                "; effects: {} op(s) across {} shard(s)",
                self.shard_ops, self.shards
            )
        } else {
            write!(f, "; effects: symbolic only (shard count above cap)")
        }
    }
}

/// Verifies a compiled plan against the circuit it claims to implement
/// and the cost model it claims to be priced under.
///
/// Returns a [`VerifyReport`] describing what was checked, or the first
/// [`Violation`] found. The checks run cheapest-first so corrupt plans
/// fail fast; the effect pass materializes per-shard programs only up to
/// [`MAX_MATERIALIZED_SHARDS`].
pub fn verify_plan(
    circuit: &Circuit,
    plan: &FullPlan,
    cost: &CostModel,
) -> Result<VerifyReport, Violation> {
    let n = plan.n;
    let l = plan.l;
    let g = plan.g;
    check_shape(circuit, plan)?;
    check_stage_cover(circuit, plan)?;
    for (k, sp) in plan.stages.iter().enumerate() {
        check_mapping(sp, n, l, g).map_err(|v| v.at_stage(k))?;
    }
    let mut reshuffles = 0;
    for (k, pair) in plan.stages.windows(2).enumerate() {
        check_reshuffle(&pair[0].mapping, &pair[1].mapping).map_err(|v| v.at_stage(k + 1))?;
        reshuffles += 1;
    }
    let mut templates = 0;
    let mut scalars = 0;
    for (k, sp) in plan.stages.iter().enumerate() {
        check_templates(circuit, sp, l, cost).map_err(|v| v.at_stage(k))?;
        templates += sp.templates.len();
        scalars += sp.scalars.len();
    }
    let kc = KernelCost::from_machine(cost);
    let mut kernels = 0;
    for (k, sp) in plan.stages.iter().enumerate() {
        check_kernels(sp, l, &kc).map_err(|v| v.at_stage(k))?;
        kernels += sp.kernels.len();
    }
    check_clock(plan, &kc)?;

    let num_shards = 1usize << (n - l);
    let mut report = VerifyReport {
        stages: plan.stages.len(),
        kernels,
        templates,
        scalars,
        reshuffles,
        shards: 0,
        shard_ops: 0,
        effects_materialized: num_shards <= MAX_MATERIALIZED_SHARDS,
    };
    if report.effects_materialized {
        for (k, sp) in plan.stages.iter().enumerate() {
            let programs = build_stage_programs(circuit, sp, l, num_shards);
            report.shard_ops += verify_stage_programs(&programs, l, k)?;
        }
        report.shards = num_shards;
    }
    Ok(report)
}

/// Effect-types every instruction of a stage's per-shard programs and
/// proves pairwise disjointness of the concurrent shards' write sets.
///
/// Public separately from [`verify_plan`] so tests can corrupt a
/// materialized program and watch the race checker fire; `stage` only
/// labels diagnostics. Returns the number of ops checked.
pub fn verify_stage_programs(
    programs: &[ShardProgram],
    l: u32,
    stage: usize,
) -> Result<usize, Violation> {
    let shard_mask = (1u64 << l) - 1;
    let mut ops = 0;
    for (s, prog) in programs.iter().enumerate() {
        for (oi, op) in prog.iter().enumerate() {
            let eff = effect_of(op, s as u64, l).map_err(|e| Violation {
                invariant: Invariant::OpEffect,
                stage: Some(stage),
                shard: Some(s),
                op: Some(oi),
                detail: e.to_string(),
            })?;
            // A well-formed op's footprint is exactly its own shard; any
            // mask bit ≥ L makes the symbolic write set intersect a
            // concurrently-running shard's (or fall outside the state).
            let escaped = eff.writes.mask & !shard_mask;
            if escaped != 0 {
                let p = escaped.trailing_zeros();
                let other = s as u64 ^ (1u64 << (p - l));
                let detail = if (other as usize) < programs.len() {
                    format!(
                        "write set {{{:#x}|x : x ⊆ {:#x}}} intersects shard {other}'s \
                         (qubit position {p} ≥ L = {l})",
                        eff.writes.base, eff.writes.mask
                    )
                } else {
                    format!(
                        "write set escapes the state vector (qubit position {p} ≥ L = {l}, \
                         no shard {other})"
                    )
                };
                return Err(Violation {
                    invariant: Invariant::WriteDisjointness,
                    stage: Some(stage),
                    shard: Some(s),
                    op: Some(oi),
                    detail,
                });
            }
            ops += 1;
        }
    }
    Ok(ops)
}

fn check_shape(circuit: &Circuit, plan: &FullPlan) -> Result<(), Violation> {
    let n = plan.n;
    if n != circuit.num_qubits() {
        return Err(Violation::new(
            Invariant::PlanShape,
            format!("plan n = {n} ≠ circuit n = {}", circuit.num_qubits()),
        ));
    }
    if n == 0 || n > 63 {
        return Err(Violation::new(
            Invariant::PlanShape,
            format!("n = {n} outside the engine's 1..=63 range"),
        ));
    }
    if plan.l == 0 || plan.l + plan.g > n {
        return Err(Violation::new(
            Invariant::PlanShape,
            format!("L = {}, G = {} infeasible for n = {n}", plan.l, plan.g),
        ));
    }
    if !plan.kernel_cost.is_finite() {
        return Err(Violation::new(
            Invariant::PlanShape,
            "total kernel cost is not finite",
        ));
    }
    Ok(())
}

/// Stage cover + partition well-formedness + insularity + ordering
/// (the total form of `plan::validate_stages`, with invariant tags).
fn check_stage_cover(circuit: &Circuit, plan: &FullPlan) -> Result<(), Violation> {
    let n = plan.n;
    let masks = circuit.staging_masks();
    let mut assigned = vec![usize::MAX; circuit.num_gates()];
    for (k, sp) in plan.stages.iter().enumerate() {
        sp.stage
            .partition
            .validate(n, plan.l, plan.g)
            .map_err(|e| {
                Violation::new(Invariant::StageCover, format!("partition: {e}")).at_stage(k)
            })?;
        let local_mask = sp.stage.partition.local_mask();
        for &gi in &sp.stage.gates {
            if gi >= circuit.num_gates() {
                return Err(Violation::new(
                    Invariant::StageCover,
                    format!("gate index {gi} out of range"),
                )
                .at_stage(k));
            }
            if assigned[gi] != usize::MAX {
                return Err(Violation::new(
                    Invariant::StageCover,
                    format!("gate {gi} assigned to stages {} and {k}", assigned[gi]),
                )
                .at_stage(k));
            }
            assigned[gi] = k;
            if masks[gi] & !local_mask != 0 {
                return Err(Violation::new(
                    Invariant::Insularity,
                    format!(
                        "gate {gi} has non-insular qubits {:#b} outside local set {:#b}",
                        masks[gi], local_mask
                    ),
                )
                .at_stage(k));
            }
        }
        if sp.stage.gates.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Violation::new(
                Invariant::StageOrdering,
                "stage gate list not in program order",
            )
            .at_stage(k));
        }
    }
    if let Some(gi) = assigned.iter().position(|&s| s == usize::MAX) {
        return Err(Violation::new(
            Invariant::StageCover,
            format!("gate {gi} not assigned to any stage"),
        ));
    }
    for (a, b) in circuit.dependencies() {
        if assigned[a] > assigned[b] {
            return Err(Violation::new(
                Invariant::StageOrdering,
                format!(
                    "dependency violated: gate {a} (stage {}) must precede gate {b} (stage {})",
                    assigned[a], assigned[b]
                ),
            ));
        }
    }
    Ok(())
}

fn check_mapping(sp: &StagePlan, n: u32, l: u32, g: u32) -> Result<(), Violation> {
    if sp.mapping.len() != n as usize {
        return Err(Violation::new(
            Invariant::MappingBijection,
            format!("mapping has {} entries for n = {n}", sp.mapping.len()),
        ));
    }
    let mut seen = vec![false; n as usize];
    for (q, &p) in sp.mapping.iter().enumerate() {
        if p >= n || seen[p as usize] {
            return Err(Violation::new(
                Invariant::MappingBijection,
                format!("qubit {q} → physical bit {p} (out of range or duplicated)"),
            ));
        }
        seen[p as usize] = true;
    }
    let r = n - l - g;
    let ranges = [(0u32, l), (l, l + r), (l + r, n)];
    let classes: [(&str, &[u32]); 3] = [
        ("local", &sp.stage.partition.local),
        ("regional", &sp.stage.partition.regional),
        ("global", &sp.stage.partition.global),
    ];
    for ((name, class), &(lo, hi)) in classes.iter().zip(&ranges) {
        for &q in *class {
            let p = sp.mapping[q as usize];
            if p < lo || p >= hi {
                return Err(Violation::new(
                    Invariant::MappingClass,
                    format!("{name} qubit {q} → physical bit {p} outside [{lo}, {hi})"),
                ));
            }
        }
    }
    Ok(())
}

/// The physical-bit permutation the all-to-all between two consecutive
/// stages applies (`perm[prev position] = next position`), as `execute_on`
/// builds it, checked to be a bijection.
fn check_reshuffle(prev: &[u32], next: &[u32]) -> Result<(), Violation> {
    let n = prev.len();
    let mut perm = vec![u32::MAX; n];
    for q in 0..n {
        let from = prev[q] as usize;
        if from >= n || perm[from] != u32::MAX {
            return Err(Violation::new(
                Invariant::ReshufflePermutation,
                format!("physical bit {from} is the source of two qubits"),
            ));
        }
        perm[from] = next[q];
    }
    let mut hit = vec![false; n];
    for (from, &to) in perm.iter().enumerate() {
        if to as usize >= n || hit[to as usize] {
            return Err(Violation::new(
                Invariant::ReshufflePermutation,
                format!("reshuffle maps bit {from} → {to} (out of range or duplicated)"),
            ));
        }
        hit[to as usize] = true;
    }
    Ok(())
}

/// Replays `exec::compile_stage`'s insular reduction over the stage's
/// gates and compares every compiled field.
fn check_templates(
    circuit: &Circuit,
    sp: &StagePlan,
    l: u32,
    cost: &CostModel,
) -> Result<(), Violation> {
    let mut flips = 0u64;
    let mut ti = 0usize;
    let mut si = 0usize;
    for &gi in &sp.stage.gates {
        let gate = &circuit.gates()[gi];
        let ins = insular::gate_insularity(gate);
        let mut local_phys: Vec<u32> = Vec::new();
        let mut reads: Vec<(u32, u32, bool)> = Vec::new();
        let mut flip_mask = 0u64;
        for (t, q) in gate.qubits.iter().enumerate() {
            let p = sp.mapping[q as usize];
            if p < l {
                local_phys.push(p);
            } else {
                if !ins[t].is_insular() {
                    return Err(Violation::new(
                        Invariant::Insularity,
                        format!("gate {gi} qubit {q} is non-insular but mapped to bit {p} ≥ L"),
                    ));
                }
                reads.push((t as u32, p, flips >> p & 1 == 1));
                if ins[t] == insular::InsularKind::AntiDiagonal {
                    flip_mask |= 1u64 << p;
                }
            }
        }
        if local_phys.is_empty() {
            let st = sp.scalars.get(si).ok_or_else(|| {
                Violation::new(
                    Invariant::TemplateConsistency,
                    format!("gate {gi} reduces to a scalar but scalar template {si} is missing"),
                )
            })?;
            if st.circuit_gate != gi {
                return Err(Violation::new(
                    Invariant::TemplateConsistency,
                    format!(
                        "scalar template {si} compiled from gate {} where gate {gi} expected",
                        st.circuit_gate
                    ),
                ));
            }
            check_reads(&reads, &st.reads, gi)?;
            si += 1;
        } else {
            if flip_mask != 0 {
                return Err(Violation::new(
                    Invariant::TemplateConsistency,
                    format!("mixed gate {gi} flips non-local bits {flip_mask:#b}"),
                ));
            }
            let tp = sp.templates.get(ti).ok_or_else(|| {
                Violation::new(
                    Invariant::TemplateConsistency,
                    format!("gate {gi} has local content but template {ti} is missing"),
                )
            })?;
            if tp.circuit_gate != gi {
                return Err(Violation::new(
                    Invariant::TemplateConsistency,
                    format!(
                        "template {ti} compiled from gate {} where gate {gi} expected",
                        tp.circuit_gate
                    ),
                ));
            }
            if tp.local_phys != local_phys {
                return Err(Violation::new(
                    Invariant::TemplateConsistency,
                    format!(
                        "gate {gi}: local positions {:?} ≠ reduction {:?}",
                        tp.local_phys, local_phys
                    ),
                ));
            }
            check_reads(&reads, &tp.reads, gi)?;
            let shm = cost.shm_gate_unit_ns(gate);
            if tp.shm_ns != shm {
                return Err(Violation::new(
                    Invariant::TemplateConsistency,
                    format!("gate {gi}: shm cost {} ≠ model price {shm}", tp.shm_ns),
                ));
            }
            ti += 1;
        }
        flips ^= flip_mask;
    }
    if ti != sp.templates.len() || si != sp.scalars.len() {
        return Err(Violation::new(
            Invariant::TemplateConsistency,
            format!(
                "{} template(s) and {} scalar(s) compiled where {ti} and {si} derive from the stage",
                sp.templates.len(),
                sp.scalars.len()
            ),
        ));
    }
    if flips != sp.flips {
        return Err(Violation::new(
            Invariant::TemplateConsistency,
            format!(
                "accumulated flips {:#b} ≠ compiled flips {:#b}",
                flips, sp.flips
            ),
        ));
    }
    Ok(())
}

fn check_reads(
    expected: &[(u32, u32, bool)],
    got: &[atlas_core::exec::ReadBit],
    gi: usize,
) -> Result<(), Violation> {
    let same = got.len() == expected.len()
        && got.iter().zip(expected).all(|(rb, &(pos, phys, snap))| {
            rb.pos == pos && rb.phys == phys && rb.flip_snap == snap
        });
    if !same {
        let got: Vec<(u32, u32, bool)> = got
            .iter()
            .map(|rb| (rb.pos, rb.phys, rb.flip_snap))
            .collect();
        return Err(Violation::new(
            Invariant::TemplateConsistency,
            format!("gate {gi}: read bits {got:?} ≠ reduction {expected:?}"),
        ));
    }
    Ok(())
}

/// Kernel cover, qubit-set validity, capacities, and kernel sequencing.
fn check_kernels(sp: &StagePlan, l: u32, kc: &KernelCost) -> Result<(), Violation> {
    let kgates: Vec<KGate> = sp
        .templates
        .iter()
        .map(|t| KGate {
            mask: t.local_phys.iter().fold(0u64, |m, &p| m | (1 << p)),
            shm_ns: t.shm_ns,
        })
        .collect();
    validate_cover(&kgates, &sp.kernels)
        .map_err(|e| Violation::new(Invariant::KernelCover, e.to_string()))?;
    let mut kernel_of = vec![usize::MAX; kgates.len()];
    for (ki, kernel) in sp.kernels.iter().enumerate() {
        if kernel.gates.is_empty() {
            return Err(Violation::new(
                Invariant::KernelCover,
                format!("kernel {ki} is empty"),
            ));
        }
        if kernel.qubits.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Violation::new(
                Invariant::KernelCover,
                format!(
                    "kernel {ki} qubit set {:?} not strictly ascending",
                    kernel.qubits
                ),
            ));
        }
        if kernel.qubits.iter().any(|&q| q >= l) {
            return Err(Violation::new(
                Invariant::KernelCover,
                format!(
                    "kernel {ki} qubit set {:?} leaves the local range [0, {l})",
                    kernel.qubits
                ),
            ));
        }
        let cap = kc.capacity(kernel.kind);
        if kernel.qubits.len() as u32 > cap {
            return Err(Violation::new(
                Invariant::KernelCover,
                format!(
                    "kernel {ki} spans {} qubits over the {:?} capacity {cap}",
                    kernel.qubits.len(),
                    kernel.kind
                ),
            ));
        }
        if kernel.gates.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Violation::new(
                Invariant::StageOrdering,
                format!("kernel {ki} gate list not in program order"),
            ));
        }
        for &t in &kernel.gates {
            kernel_of[t] = ki;
        }
    }
    // Theorem 2: replaying kernels in order must be a valid reordering of
    // the stage — templates sharing a qubit must keep their program order.
    for i in 0..kgates.len() {
        for j in i + 1..kgates.len() {
            if kgates[i].mask & kgates[j].mask != 0 && kernel_of[i] > kernel_of[j] {
                return Err(Violation::new(
                    Invariant::StageOrdering,
                    format!(
                        "templates {i} (kernel {}) and {j} (kernel {}) share a qubit \
                         but run out of order",
                        kernel_of[i], kernel_of[j]
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Clock-model conservation: reprice every kernel and compare with the
/// charged per-stage and total costs.
fn check_clock(plan: &FullPlan, kc: &KernelCost) -> Result<(), Violation> {
    let mut total = 0.0;
    for (k, sp) in plan.stages.iter().enumerate() {
        let mut expected = 0.0;
        for kernel in &sp.kernels {
            let shm_sum: f64 = kernel.gates.iter().map(|&t| sp.templates[t].shm_ns).sum();
            expected += kc.of_kind(kernel.kind, kernel.qubits.len() as u32, shm_sum);
        }
        if !cost_eq(expected, sp.kernel_cost) {
            return Err(Violation::new(
                Invariant::ClockConservation,
                format!(
                    "stage charged {} ns where the kernel inventory prices at {expected} ns",
                    sp.kernel_cost
                ),
            )
            .at_stage(k));
        }
        total += sp.kernel_cost;
    }
    if !cost_eq(total, plan.kernel_cost) {
        return Err(Violation::new(
            Invariant::ClockConservation,
            format!(
                "plan charged {} ns where its stages sum to {total} ns",
                plan.kernel_cost
            ),
        ));
    }
    Ok(())
}

fn cost_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_REL_TOL * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::{Gate, GateKind};
    use atlas_core::config::AtlasConfig;
    use atlas_core::exec;

    fn ghz(n: u32) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::new(GateKind::H, &[0]));
        for q in 1..n {
            c.push(Gate::new(GateKind::CX, &[q - 1, q]));
        }
        c
    }

    fn plan_of(circuit: &Circuit, l: u32, g: u32) -> (FullPlan, CostModel) {
        let cost = CostModel::default();
        let cfg = AtlasConfig::default();
        let plan = exec::plan(circuit, l, g, &cost, &cfg).unwrap();
        (plan, cost)
    }

    #[test]
    fn clean_plans_verify() {
        let circuit = ghz(8);
        let (plan, cost) = plan_of(&circuit, 4, 1);
        let report = verify_plan(&circuit, &plan, &cost).unwrap();
        assert_eq!(report.stages, plan.stages.len());
        assert!(report.effects_materialized);
        assert!(report.shard_ops > 0, "effect pass must check real ops");
        assert_eq!(report.shards, 1 << (8 - 4));
    }

    #[test]
    fn wrong_circuit_is_rejected() {
        let circuit = ghz(8);
        let (plan, cost) = plan_of(&circuit, 4, 1);
        let err = verify_plan(&ghz(9), &plan, &cost).unwrap_err();
        assert_eq!(err.invariant, Invariant::PlanShape);
    }

    #[test]
    fn non_bijective_reshuffle_is_rejected() {
        // Two qubits landing on the same physical bit.
        let err = check_reshuffle(&[0, 1, 2], &[0, 0, 2]).unwrap_err();
        assert_eq!(err.invariant, Invariant::ReshufflePermutation);
        // Two qubits leaving from the same physical bit.
        let err = check_reshuffle(&[0, 0, 2], &[0, 1, 2]).unwrap_err();
        assert_eq!(err.invariant, Invariant::ReshufflePermutation);
        assert!(check_reshuffle(&[2, 1, 0], &[0, 1, 2]).is_ok());
    }

    #[test]
    fn violation_converts_to_invalid_plan() {
        let v = Violation::new(Invariant::ClockConservation, "test").at_stage(3);
        let e = AtlasError::from(v);
        assert_eq!(e.kind(), "invalid-plan");
        assert!(e.to_string().contains("clock-conservation"));
        assert!(e.to_string().contains("stage 3"));
    }
}
