//! QDAO-like DRAM-offloaded simulation (Zhao et al., ICCAD'23) — the
//! Fig. 7/8 baseline.
//!
//! QDAO splits the `2^n` state into sub-state-vectors of `2^m` amplitudes
//! resident in DRAM, groups consecutive gates whose qubit support fits in
//! `t` qubits, and for each group streams every relevant block through the
//! GPU (load → apply → store) with no compute/IO overlap. The dominant
//! cost at `n > m` is therefore `#groups × full-state PCIe round trips`,
//! versus Atlas' one round trip per *stage* — which is where the paper's
//! two-orders-of-magnitude gap (Fig. 7) comes from.
//!
//! Clock model only: the grouping and traffic are computed exactly; the
//! amplitude arithmetic adds nothing to the comparison (correctness of
//! gate application is validated elsewhere).

use atlas_circuit::Circuit;
use atlas_error::AtlasError;
use atlas_machine::{CostModel, Machine, MachineReport, MachineSpec};

/// Greedy `t`-qubit gate grouping (QDAO §IV-B style).
pub fn groups(circuit: &Circuit, t: u32) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut mask = 0u64;
    for (j, g) in circuit.gates().iter().enumerate() {
        let gm = g.qubit_mask();
        if !cur.is_empty() && (mask | gm).count_ones() > t {
            out.push(std::mem::take(&mut cur));
            mask = 0;
        }
        mask |= gm;
        cur.push(j);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Runs the QDAO clock model. `m` = log2 of the sub-state-vector size
/// (the paper uses 28), `t` = locality parameter (19 runs fastest per
/// §VII-C).
pub fn run(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    m: u32,
    t: u32,
) -> Result<MachineReport, AtlasError> {
    let n = circuit.num_qubits();
    if t > m {
        return Err(AtlasError::invalid_config(format!(
            "QDAO requires t ≤ m (got t = {t}, m = {m})"
        )));
    }
    // The ledger machine is a single logical device holding the whole
    // state: QDAO's own charges below replace the Atlas-side offload swap
    // model (`spec` only tells us the GPU count, which QDAO cannot use).
    let _ = spec;
    let ledger_spec = MachineSpec {
        nodes: 1,
        gpus_per_node: 1,
        local_qubits: n,
    };
    let mut machine = Machine::new(ledger_spec, cost.clone(), n, true);
    machine.overlap_io = false; // QDAO does not overlap IO with compute
    let groups = groups(circuit, t.min(n));
    let block_amps = 1u64 << m.min(n);
    let num_blocks = 1u64 << n.saturating_sub(m.min(n));
    for group in &groups {
        // Every block crosses PCIe twice per group. QDAO's block scheduler
        // is sequential (its Qiskit-backend driver issues one block at a
        // time), so neither IO nor compute improves with extra GPUs —
        // exactly the flat multi-GPU curve of Fig. 8.
        let io = num_blocks as f64 * 2.0 * cost.pcie_transfer_secs(block_amps as usize);
        // Compute: the group's gates applied blockwise (fused ≤5 as in its
        // Qiskit backend).
        let fused_kernels = (group.len() as f64 / 5.0).ceil();
        let compute =
            num_blocks as f64 * fused_kernels * cost.fusion_kernel_secs(5, block_amps as usize);
        // Serialized IO + compute, bulk-synchronous per group.
        machine.charge_comm(io, 0, 0);
        machine.charge_shard_compute(0, compute);
        machine.stage_barrier();
    }
    Ok(machine.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators::Family;

    #[test]
    fn grouping_partitions_gates() {
        let c = Family::Qft.generate(12);
        let gs = groups(&c, 8);
        let total: usize = gs.iter().map(|g| g.len()).sum();
        assert_eq!(total, c.num_gates());
        assert!(gs.len() > 1, "qft-12 cannot fit one 8-qubit group");
    }

    #[test]
    fn qdao_io_dominates_beyond_gpu_memory() {
        // 30-qubit qft with m=26 on one GPU: IO must dwarf compute.
        let c = Family::Qft.generate(30);
        let spec = MachineSpec::single_gpu(26);
        let r = run(&c, spec, CostModel::default(), 26, 19).unwrap();
        assert!(r.comm_secs > 5.0 * r.compute_secs, "QDAO must be IO-bound");
    }

    #[test]
    fn qdao_does_not_scale_with_gpus() {
        // Fig. 8's observation: more GPUs do not help (sequential block
        // scheduler).
        let c = Family::Qft.generate(30);
        let r1 = run(
            &c,
            MachineSpec::single_gpu(26),
            CostModel::default(),
            26,
            19,
        )
        .unwrap();
        let spec4 = MachineSpec {
            nodes: 1,
            gpus_per_node: 4,
            local_qubits: 26,
        };
        let r4 = run(&c, spec4, CostModel::default(), 26, 19).unwrap();
        let speedup = r1.total_secs / r4.total_secs;
        assert!(
            (0.99..1.01).contains(&speedup),
            "QDAO must stay flat, got {speedup}"
        );
    }
}
