//! # atlas-baselines
//!
//! Behavioural analogues of the comparison systems in the paper's
//! evaluation, all running on the same simulated machine and cost model as
//! Atlas so that the comparisons isolate the *partitioning strategy* —
//! the variable the paper studies:
//!
//! * [`hyquas`] — HyQuas (ICS'21): greedy SnuQS-style staging plus greedy
//!   hybrid fusion/shared-memory grouping, reusing the Atlas executor;
//! * [`cuquantum`] — cuQuantum / cusvaer: greedy ≤5-qubit gate fusion with
//!   index-bit-swap redistribution whenever a group touches non-local
//!   qubits, no global planning and no insular specialization;
//! * [`qiskit`] — Qiskit Aer (GPU backend): per-gate kernel launches with
//!   a per-gate host-dispatch overhead and the same swap-based
//!   redistribution;
//! * [`qdao`] — QDAO (ICCAD'23): DRAM-offloaded execution that streams the
//!   entire state through the GPU once per gate *group* (clock model only).
//!
//! The swap-based simulators ([`cuquantum`], [`qiskit`]) are functionally
//! executable and validated against the reference simulator; `hyquas`
//! inherits functional correctness from the Atlas executor.

#![forbid(unsafe_code)]

pub mod qdao;
pub mod swap_based;

use atlas_circuit::Circuit;
use atlas_core::config::{AtlasConfig, StagingAlgo};
use atlas_error::AtlasError;
use atlas_machine::{CostModel, MachineReport, MachineSpec};
use atlas_statevec::StateVector;

/// A baseline run's output.
#[derive(Debug)]
pub struct BaselineOutput {
    /// Clock/traffic report.
    pub report: MachineReport,
    /// Final state (functional runs only).
    pub state: Option<StateVector>,
}

/// HyQuas-like: SnuQS-style greedy staging + greedy hybrid grouping on the
/// Atlas executor (§VII-B comparison).
pub fn hyquas(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    dry: bool,
) -> Result<BaselineOutput, AtlasError> {
    let mut cfg = AtlasConfig::hyquas_like();
    cfg.final_unpermute = !dry;
    let out = atlas_core::simulate(circuit, spec, cost, &cfg, dry)?;
    Ok(BaselineOutput {
        report: out.report,
        state: out.state,
    })
}

/// HyQuas-like with Atlas' ILP staging (ablation helper: isolates the
/// kernelization difference).
pub fn hyquas_with_ilp_staging(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    dry: bool,
) -> Result<BaselineOutput, AtlasError> {
    let mut cfg = AtlasConfig::hyquas_like();
    cfg.staging = StagingAlgo::IlpSearch;
    cfg.final_unpermute = !dry;
    let out = atlas_core::simulate(circuit, spec, cost, &cfg, dry)?;
    Ok(BaselineOutput {
        report: out.report,
        state: out.state,
    })
}

/// cuQuantum-like (cusvaer): greedy fusion + swap-based redistribution.
pub fn cuquantum(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    dry: bool,
) -> Result<BaselineOutput, AtlasError> {
    swap_based::run(
        circuit,
        spec,
        cost,
        dry,
        &swap_based::SwapSimConfig {
            fusion_max_qubits: 5,
            dispatch_overhead_s: 50e-6,
            name: "cuquantum",
        },
    )
}

/// Qiskit-Aer-like: per-gate kernels, heavy host dispatch, swap-based
/// redistribution.
pub fn qiskit(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    dry: bool,
) -> Result<BaselineOutput, AtlasError> {
    swap_based::run(
        circuit,
        spec,
        cost,
        dry,
        &swap_based::SwapSimConfig {
            fusion_max_qubits: 1,
            // Per-kernel Python/driver dispatch overhead; calibrated so a
            // single-GPU 28-qubit run lands at the paper's ~8-10 s (vs ~1 s
            // for Atlas), matching Fig. 5's single-GPU gap.
            dispatch_overhead_s: 10e-3,
            name: "qiskit",
        },
    )
}

/// QDAO-like DRAM-offloaded run (clock model only — Fig. 7/8 baseline).
pub fn qdao_run(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    m: u32,
    t: u32,
) -> Result<BaselineOutput, AtlasError> {
    let report = qdao::run(circuit, spec, cost, m, t)?;
    Ok(BaselineOutput {
        report,
        state: None,
    })
}
