//! The swap-based distributed simulator family (cuQuantum's cusvaer,
//! Qiskit Aer's distributed state vector).
//!
//! These systems keep a logical→physical qubit map and, whenever the next
//! gate (or fused gate group) touches a qubit that is not device-local,
//! *swap* the offending index bits with local ones via an all-to-all —
//! then apply the group as a dense fused matrix. There is no lookahead
//! across groups and no insular-qubit specialization, which is exactly
//! what Atlas' staging ILP adds; running both on one machine model
//! isolates that difference (§VII-B).

use crate::BaselineOutput;
use atlas_circuit::{Circuit, Gate};
use atlas_error::AtlasError;
use atlas_machine::{CostModel, Machine, MachineSpec};
use atlas_qmath::QubitPermutation;
use atlas_statevec::fuse_gates;

/// Knobs distinguishing the family members.
pub struct SwapSimConfig {
    /// Greedy fusion width (1 = no fusion, Qiskit-like).
    pub fusion_max_qubits: u32,
    /// Host-side dispatch overhead charged per kernel launch round.
    pub dispatch_overhead_s: f64,
    /// Name for reports.
    pub name: &'static str,
}

/// Greedy contiguous fusion groups of at most `max_qubits` distinct qubits.
fn fusion_groups(circuit: &Circuit, max_qubits: u32) -> Vec<Vec<usize>> {
    let mut groups = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut mask = 0u64;
    for (j, g) in circuit.gates().iter().enumerate() {
        let gm = g.qubit_mask();
        if !cur.is_empty() && (mask | gm).count_ones() > max_qubits {
            groups.push(std::mem::take(&mut cur));
            mask = 0;
        }
        mask |= gm;
        cur.push(j);
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// Runs the swap-based simulator.
pub fn run(
    circuit: &Circuit,
    spec: MachineSpec,
    cost: CostModel,
    dry: bool,
    cfg: &SwapSimConfig,
) -> Result<BaselineOutput, AtlasError> {
    let n = circuit.num_qubits();
    let l = spec.local_qubits;
    if n < l + spec.global_qubits() {
        return Err(AtlasError::CircuitTooSmall {
            qubits: n,
            local: l,
            global: spec.global_qubits(),
        });
    }
    let mut machine = Machine::new(spec, cost, n, dry);
    let num_shards = machine.num_shards();
    // mapping[q] = physical bit of logical qubit q.
    let mut mapping: Vec<u32> = (0..n).collect();
    let groups = fusion_groups(circuit, cfg.fusion_max_qubits);

    for group in &groups {
        // Which logical qubits does the group need?
        let mut need: Vec<u32> = Vec::new();
        for &gi in group {
            for q in circuit.gates()[gi].qubits.iter() {
                if !need.contains(&q) {
                    need.push(q);
                }
            }
        }
        // Swap any non-local needed qubit with a local victim that is not
        // itself needed (lowest victims first) — one all-to-all per group
        // at most, exactly like cusvaer's index-bit swap API.
        let nonlocal: Vec<u32> = need
            .iter()
            .copied()
            .filter(|&q| mapping[q as usize] >= l)
            .collect();
        if !nonlocal.is_empty() {
            let needed_phys: Vec<bool> = {
                let mut v = vec![false; n as usize];
                for &q in &need {
                    v[mapping[q as usize] as usize] = true;
                }
                v
            };
            let mut victims: Vec<u32> = (0..l).filter(|&p| !needed_phys[p as usize]).collect();
            victims.truncate(nonlocal.len());
            if victims.len() < nonlocal.len() {
                return Err(AtlasError::invalid_plan(format!(
                    "{}: group needs more than L local qubits",
                    cfg.name
                )));
            }
            let mut perm_map: Vec<u32> = (0..n).collect();
            for (&q, &v) in nonlocal.iter().zip(&victims) {
                let p = mapping[q as usize];
                perm_map.swap(p as usize, v as usize);
                // Update the logical map: whoever held `v` goes to `p`.
                if let Some(other) = (0..n).find(|&x| mapping[x as usize] == v) {
                    mapping[other as usize] = p;
                }
                mapping[q as usize] = v;
            }
            machine.permute_state(&QubitPermutation::from_map(perm_map), 0);
        }
        // Apply the group as one fused kernel on every shard.
        let phys_qubits: Vec<u32> = need.iter().map(|&q| mapping[q as usize]).collect();
        debug_assert!(phys_qubits.iter().all(|&p| p < l));
        if dry {
            for s in 0..num_shards {
                machine.run_fusion_kernel_dry(s, phys_qubits.len() as u32);
            }
        } else {
            let gates: Vec<Gate> = group
                .iter()
                .map(|&gi| {
                    let g = circuit.gates()[gi];
                    let remapped: Vec<u32> = g.qubits.iter().map(|q| mapping[q as usize]).collect();
                    Gate::new(g.kind, &remapped)
                })
                .collect();
            let fused = fuse_gates(&phys_qubits, &gates);
            for s in 0..num_shards {
                machine.run_fusion_kernel(s, &phys_qubits, &fused);
            }
        }
        // Host dispatch overhead: serializes the launch round.
        machine.charge_comm(cfg.dispatch_overhead_s, 0, 0);
    }
    machine.stage_barrier();

    // Restore the identity layout for functional comparison.
    let state = if !dry {
        if mapping.iter().enumerate().any(|(q, &p)| q as u32 != p) {
            let mut perm_map = vec![0u32; n as usize];
            for q in 0..n as usize {
                perm_map[mapping[q] as usize] = q as u32;
            }
            machine.permute_state(&QubitPermutation::from_map(perm_map), 0);
        }
        Some(machine.gather_state())
    } else {
        None
    };
    Ok(BaselineOutput {
        report: machine.report(),
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::generators::Family;
    use atlas_statevec::simulate_reference;

    #[test]
    fn swap_based_matches_reference() {
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 6,
        };
        for fam in [Family::Qft, Family::Ghz, Family::Su2Random, Family::WState] {
            let c = fam.generate(9);
            let out = crate::cuquantum(&c, spec, CostModel::default(), false).unwrap();
            let got = out.state.unwrap();
            let want = simulate_reference(&c);
            let diff = got.max_abs_diff(&want);
            assert!(diff < 1e-9, "{fam:?}: diverged by {diff}");
        }
    }

    #[test]
    fn qiskit_like_matches_reference_and_is_slower() {
        let spec = MachineSpec {
            nodes: 1,
            gpus_per_node: 4,
            local_qubits: 7,
        };
        let c = Family::Qft.generate(9);
        let q = crate::qiskit(&c, spec, CostModel::default(), false).unwrap();
        let cu = crate::cuquantum(&c, spec, CostModel::default(), false).unwrap();
        let want = simulate_reference(&c);
        assert!(q.state.unwrap().max_abs_diff(&want) < 1e-9);
        assert!(
            q.report.total_secs > cu.report.total_secs,
            "per-gate dispatch must dominate"
        );
    }

    #[test]
    fn fusion_groups_partition_gates() {
        let c = Family::Vqc.generate(8);
        let groups = fusion_groups(&c, 5);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, c.num_gates());
        for g in &groups {
            let mask = g.iter().fold(0u64, |m, &gi| m | c.gates()[gi].qubit_mask());
            assert!(mask.count_ones() <= 5);
        }
    }
}
