//! # atlas-error
//!
//! [`AtlasError`] — the one structured error type every public fallible
//! API in the workspace returns.
//!
//! Before this crate existed, failures crossed crate boundaries as bare
//! `String`s, so a caller could not tell "this circuit is too small for
//! the requested machine split" (fix the shape and retry) from "the ILP
//! solver ran out of budget" (raise the budget or switch solvers)
//! without parsing prose. The enum below gives each failure family an
//! identity that `match` can dispatch on — the `atlas-sim` CLI maps
//! variants to distinct process exit codes, and tests assert on
//! variants instead of message fragments.
//!
//! The type is hand-rolled in the `thiserror` idiom (a `Display` arm and
//! a structured payload per variant) because the workspace builds
//! offline with no external dependencies.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

/// Structured error type of the Atlas workspace.
///
/// Every variant carries the data a caller needs to react
/// programmatically; [`fmt::Display`] renders the same information as a
/// human-readable one-liner. The enum is `#[non_exhaustive]` so future
/// PRs can add failure families without a breaking release.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AtlasError {
    /// The circuit has fewer qubits than the machine shape requires
    /// (`n < L + G`): there is nothing to shard.
    CircuitTooSmall {
        /// Number of circuit qubits `n`.
        qubits: u32,
        /// Requested local qubits per device `L`.
        local: u32,
        /// Requested global (inter-node) qubits `G`.
        global: u32,
    },
    /// The staging solver could not produce a valid stage decomposition.
    StagingFailed {
        /// Which staging algorithm failed (e.g. `"IlpSearch"`).
        algo: &'static str,
        /// What went wrong.
        reason: String,
    },
    /// The generic ILP solver exhausted its budget (the deterministic
    /// node limit, or the opt-in wall-clock limit) before proving
    /// feasibility or infeasibility at every admissible stage count —
    /// raising [`ilp_node_limit`] (or switching to `IlpSearch`) may
    /// succeed.
    ///
    /// [`ilp_node_limit`]: https://docs.rs/atlas-core
    IlpBudgetExceeded {
        /// Highest stage count attempted before giving up.
        max_stages: usize,
    },
    /// A plan-level invariant is violated: a stage cover, kernel cover
    /// or qubit partition failed validation.
    InvalidPlan {
        /// Which invariant broke.
        reason: String,
    },
    /// A configuration was rejected at construction time (the
    /// `AtlasConfig` builder refuses incoherent combinations instead of
    /// letting them fail deep inside the pipeline).
    InvalidConfig {
        /// Which combination is incoherent.
        reason: String,
    },
    /// Text input (a Pauli string, a QASM file, a CLI value) failed to
    /// parse.
    ParseError {
        /// What was being parsed (e.g. `"Pauli string"`).
        what: &'static str,
        /// Byte offset of the offending character in the input, when a
        /// single position is to blame.
        position: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// A circuit was executed against a `CompiledPlan` whose structural
    /// fingerprint it does not match: plans are reusable across
    /// *same-structure* circuits (same gate graph, different gate
    /// parameters), not across arbitrary ones.
    PlanMismatch {
        /// Why the circuit cannot run under the plan.
        reason: String,
    },
    /// A serve-mode session pool rejected a submission because its
    /// bounded job queue is full — typed backpressure instead of
    /// unbounded queueing. Retry after in-flight jobs drain, or raise
    /// the pool's queue capacity.
    Overloaded {
        /// Jobs queued at the moment of rejection.
        queued: usize,
        /// The pool's queue capacity.
        capacity: usize,
    },
    /// A serve job panicked mid-flight. The panic was caught at the job
    /// boundary — the worker thread and the rest of the pool keep
    /// serving — and answered in-band as this typed error instead of
    /// tearing the process down.
    JobPanicked {
        /// Pool-assigned id of the job that panicked.
        job: u64,
        /// A short rendering of the panic payload (the `&str`/`String`
        /// message when the payload carries one).
        payload_summary: String,
    },
    /// A request's peak memory demand (state + ping-pong spare +
    /// scratch) exceeds the configured [`MemoryBudget`] — rejected
    /// *before* any amplitude allocation instead of aborting on OOM.
    /// Shrink the circuit, raise the budget, or use a dry run.
    ///
    /// [`MemoryBudget`]: https://docs.rs/atlas-core
    ResourceExhausted {
        /// Peak bytes the request would have to allocate.
        needed: u64,
        /// The enforced budget in bytes.
        budget: u64,
    },
    /// The session pool could not spawn one of its worker threads during
    /// construction. Workers already started were torn down cleanly.
    WorkerSpawnFailed {
        /// Workers successfully started before the failure.
        started: usize,
        /// Workers the pool configuration requested.
        requested: usize,
        /// The OS error message.
        reason: String,
    },
}

impl AtlasError {
    /// Convenience constructor for [`AtlasError::InvalidPlan`].
    pub fn invalid_plan(reason: impl Into<String>) -> Self {
        AtlasError::InvalidPlan {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`AtlasError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        AtlasError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// A short stable machine-readable name for the variant (used in
    /// logs and test diagnostics; the CLI derives its exit codes from
    /// the variant itself, not this string).
    pub fn kind(&self) -> &'static str {
        match self {
            AtlasError::CircuitTooSmall { .. } => "circuit-too-small",
            AtlasError::StagingFailed { .. } => "staging-failed",
            AtlasError::IlpBudgetExceeded { .. } => "ilp-budget-exceeded",
            AtlasError::InvalidPlan { .. } => "invalid-plan",
            AtlasError::InvalidConfig { .. } => "invalid-config",
            AtlasError::ParseError { .. } => "parse-error",
            AtlasError::PlanMismatch { .. } => "plan-mismatch",
            AtlasError::Overloaded { .. } => "overloaded",
            AtlasError::JobPanicked { .. } => "job-panicked",
            AtlasError::ResourceExhausted { .. } => "resource-exhausted",
            AtlasError::WorkerSpawnFailed { .. } => "worker-spawn-failed",
        }
    }
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::CircuitTooSmall {
                qubits,
                local,
                global,
            } => write!(
                f,
                "circuit of {qubits} qubits too small for L={local}, G={global}"
            ),
            AtlasError::StagingFailed { algo, reason } => {
                write!(f, "staging ({algo}) failed: {reason}")
            }
            AtlasError::IlpBudgetExceeded { max_stages } => write!(
                f,
                "generic ILP exhausted its budget without a proof \
                 through {max_stages} stage(s); raise ilp_node_limit \
                 or use IlpSearch"
            ),
            AtlasError::InvalidPlan { reason } => write!(f, "invalid plan: {reason}"),
            AtlasError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            AtlasError::ParseError {
                what,
                position,
                message,
            } => match position {
                Some(p) => write!(f, "cannot parse {what} (at position {p}): {message}"),
                None => write!(f, "cannot parse {what}: {message}"),
            },
            AtlasError::PlanMismatch { reason } => write!(f, "plan mismatch: {reason}"),
            AtlasError::Overloaded { queued, capacity } => write!(
                f,
                "session pool overloaded: {queued} job(s) queued at capacity \
                 {capacity}; retry after in-flight jobs drain or raise the \
                 queue capacity"
            ),
            AtlasError::JobPanicked {
                job,
                payload_summary,
            } => write!(
                f,
                "job {job} panicked ({payload_summary}); the pool kept serving"
            ),
            AtlasError::ResourceExhausted { needed, budget } => write!(
                f,
                "request needs a peak of {needed} bytes but the memory \
                 budget is {budget}; shrink the circuit, raise the budget, \
                 or use a dry run"
            ),
            AtlasError::WorkerSpawnFailed {
                started,
                requested,
                reason,
            } => write!(
                f,
                "could not spawn pool worker {started} of {requested}: \
                 {reason}; already-started workers were torn down"
            ),
        }
    }
}

impl std::error::Error for AtlasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_a_single_informative_line() {
        let cases: Vec<(AtlasError, &str)> = vec![
            (
                AtlasError::CircuitTooSmall {
                    qubits: 4,
                    local: 5,
                    global: 1,
                },
                "circuit of 4 qubits too small for L=5, G=1",
            ),
            (
                AtlasError::invalid_plan("gate 3 not covered"),
                "invalid plan: gate 3 not covered",
            ),
            (
                AtlasError::invalid_config("threads = 0"),
                "invalid config: threads = 0",
            ),
            (
                AtlasError::ParseError {
                    what: "Pauli string",
                    position: Some(2),
                    message: "invalid character 'Q'".into(),
                },
                "cannot parse Pauli string (at position 2): invalid character 'Q'",
            ),
            (
                AtlasError::JobPanicked {
                    job: 7,
                    payload_summary: "index out of bounds".into(),
                },
                "job 7 panicked (index out of bounds); the pool kept serving",
            ),
            (
                AtlasError::ResourceExhausted {
                    needed: 1024,
                    budget: 512,
                },
                "request needs a peak of 1024 bytes but the memory budget is \
                 512; shrink the circuit, raise the budget, or use a dry run",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
            assert!(!e.to_string().contains('\n'));
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            AtlasError::CircuitTooSmall {
                qubits: 0,
                local: 0,
                global: 0,
            },
            AtlasError::StagingFailed {
                algo: "IlpSearch",
                reason: String::new(),
            },
            AtlasError::IlpBudgetExceeded { max_stages: 1 },
            AtlasError::invalid_plan(""),
            AtlasError::invalid_config(""),
            AtlasError::ParseError {
                what: "x",
                position: None,
                message: String::new(),
            },
            AtlasError::PlanMismatch {
                reason: String::new(),
            },
            AtlasError::Overloaded {
                queued: 0,
                capacity: 0,
            },
            AtlasError::JobPanicked {
                job: 0,
                payload_summary: String::new(),
            },
            AtlasError::ResourceExhausted {
                needed: 0,
                budget: 0,
            },
            AtlasError::WorkerSpawnFailed {
                started: 0,
                requested: 0,
                reason: String::new(),
            },
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&AtlasError::invalid_plan("x"));
    }
}
