//! Bit-level index manipulation for state-vector addressing.
//!
//! A state vector over `n` qubits has `2^n` amplitudes; amplitude index bit
//! `j` is the value of physical qubit `j`. Applying a `k`-qubit gate touches
//! groups of `2^k` amplitudes whose indices agree everywhere except on the
//! gate's qubit bits — the paper's Eq. (1) stride function generalized to
//! multiple qubits. These helpers construct those strided index sets.

/// Returns `true` if bit `b` of `x` is set.
#[inline(always)]
pub fn test_bit(x: u64, b: u32) -> bool {
    (x >> b) & 1 == 1
}

/// Sets bit `b` of `x`.
#[inline(always)]
pub fn set_bit(x: u64, b: u32) -> u64 {
    x | (1u64 << b)
}

/// Clears bit `b` of `x`.
#[inline(always)]
pub fn clear_bit(x: u64, b: u32) -> u64 {
    x & !(1u64 << b)
}

/// Inserts a zero bit at position `b`, shifting bits `≥ b` left by one.
///
/// This is the paper's `f(i) = 2^{q+1}·⌊i/2^q⌋ + (i mod 2^q)` from Eq. (1):
/// enumerating `i ∈ [0, 2^{n-1})` with `insert_bit(i, q)` visits every index
/// whose qubit-`q` bit is 0, exactly once.
#[inline(always)]
pub fn insert_bit(x: u64, b: u32) -> u64 {
    let low_mask = (1u64 << b) - 1;
    ((x & !low_mask) << 1) | (x & low_mask)
}

/// Inserts zero bits at each position in `bits` (must be strictly
/// ascending), shifting the remaining bits upward.
///
/// Enumerating `i ∈ [0, 2^{n-k})` with `insert_bits(i, qs)` visits every
/// base index of a `k`-qubit gate group exactly once.
#[inline]
pub fn insert_bits(x: u64, bits: &[u32]) -> u64 {
    let mut y = x;
    for &b in bits {
        y = insert_bit(y, b);
    }
    y
}

/// Gathers the bits of `x` at the given positions into a compact value:
/// result bit `t` = bit `bits[t]` of `x`.
#[inline]
pub fn extract_bits(x: u64, bits: &[u32]) -> u64 {
    let mut y = 0u64;
    for (t, &b) in bits.iter().enumerate() {
        y |= ((x >> b) & 1) << t;
    }
    y
}

/// Scatters the low bits of `x` to the given positions: bit `t` of `x` goes
/// to bit `bits[t]` of the result. Inverse of [`extract_bits`] on its range.
#[inline]
pub fn deposit_bits(x: u64, bits: &[u32]) -> u64 {
    let mut y = 0u64;
    for (t, &b) in bits.iter().enumerate() {
        y |= ((x >> t) & 1) << b;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_bit_matches_eq1() {
        // Eq. (1): f(i) = 2^{q+1} * floor(i / 2^q) + (i mod 2^q)
        for q in 0..6u32 {
            for i in 0..64u64 {
                let expected = (i >> q << (q + 1)) + (i & ((1 << q) - 1));
                assert_eq!(insert_bit(i, q), expected, "q={q} i={i}");
            }
        }
    }

    #[test]
    fn insert_bit_enumerates_zero_bit_indices() {
        let q = 2u32;
        let n = 5u32;
        let mut seen: Vec<u64> = (0..1u64 << (n - 1)).map(|i| insert_bit(i, q)).collect();
        seen.sort_unstable();
        let expected: Vec<u64> = (0..1u64 << n).filter(|i| !test_bit(*i, q)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn insert_bits_multi() {
        // Inserting zeros at {1, 3}: the base indices of a 2-qubit gate on
        // qubits 1 and 3 of a 4-qubit register.
        let bases: Vec<u64> = (0..4u64).map(|i| insert_bits(i, &[1, 3])).collect();
        assert_eq!(bases, vec![0b0000, 0b0001, 0b0100, 0b0101]);
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let bits = [0u32, 2, 5, 9];
        for x in 0..16u64 {
            assert_eq!(extract_bits(deposit_bits(x, &bits), &bits), x);
        }
        // extract ∘ deposit on a full index keeps non-selected bits out.
        let idx = 0b10_0110_1101u64;
        let packed = extract_bits(idx, &bits);
        assert_eq!(packed & !0xF, 0);
    }

    #[test]
    fn insert_bits_partitions_the_index_space() {
        // For any ascending bit set, {insert_bits(i) + deposit_bits(j)}
        // over all (i, j) enumerates [0, 2^n) exactly once: base indices
        // and gate-local offsets tile the whole space.
        let n = 8u32;
        for bits in [vec![0u32], vec![2, 5], vec![0, 3, 7], vec![1, 2, 3]] {
            let k = bits.len() as u32;
            let mut seen = vec![false; 1 << n];
            for i in 0..1u64 << (n - k) {
                let base = insert_bits(i, &bits);
                for j in 0..1u64 << k {
                    let idx = (base | deposit_bits(j, &bits)) as usize;
                    assert!(!seen[idx], "index {idx} covered twice for {bits:?}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "gaps in coverage for {bits:?}");
        }
    }

    #[test]
    fn extract_bits_inverts_insert_complement() {
        // extract_bits of the non-inserted positions recovers the original.
        let bits = [1u32, 4];
        let rest: Vec<u32> = (0..7).filter(|b| !bits.contains(b)).collect();
        for i in 0..32u64 {
            assert_eq!(extract_bits(insert_bits(i, &bits), &rest), i);
        }
    }

    #[test]
    fn set_clear_test() {
        let x = 0b1010u64;
        assert!(test_bit(x, 1));
        assert!(!test_bit(x, 0));
        assert_eq!(set_bit(x, 0), 0b1011);
        assert_eq!(clear_bit(x, 3), 0b0010);
    }
}
