//! Double-precision complex numbers.
//!
//! A minimal, `Copy`, `#[repr(C)]` complex type. We implement it ourselves
//! (rather than pulling `num-complex`) to keep the dependency surface at the
//! approved set and to control inlining on the multiply-add paths that
//! dominate state-vector simulation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Layout-compatible with `[f64; 2]` / C `double complex`, which is what a
/// real GPU kernel would consume; the simulated device memory in
/// `atlas-machine` stores amplitudes as contiguous `Complex64`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a real number `re + 0i`.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ` (a unit phase).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` — the measurement probability of an amplitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Fused multiply-add: `self * b + acc`. The inner loop of every gate
    /// application is a chain of these.
    #[inline(always)]
    pub fn mul_add(self, b: Complex64, acc: Complex64) -> Complex64 {
        Complex64 {
            re: acc.re + self.re * b.re - self.im * b.im,
            im: acc.im + self.re * b.im + self.im * b.re,
        }
    }

    /// Multiplication by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Complex64 {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` if both components are within `eps` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// `true` if `|z| ≤ eps`.
    #[inline]
    pub fn is_zero(self, eps: f64) -> bool {
        self.re.abs() <= eps && self.im.abs() <= eps
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        assert_eq!(a + b, Complex64::new(1.25, 1.0));
        assert_eq!(a - b, Complex64::new(1.75, -5.0));
        // (1.5 - 2i)(-0.25 + 3i) = -0.375 + 4.5i + 0.5i + 6 = 5.625 + 5i
        assert_eq!(a * b, Complex64::new(5.625, 5.0));
        assert!(((a / b) * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.5);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!(Complex64::cis(std::f64::consts::PI).approx_eq(Complex64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(0.3, 0.7);
        let b = Complex64::new(-1.1, 0.2);
        let acc = Complex64::new(5.0, -5.0);
        assert!(a.mul_add(b, acc).approx_eq(a * b + acc, 1e-12));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex64::real(25.0), 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(
            format!("{}", Complex64::new(1.0, -1.0)),
            "1.000000-1.000000i"
        );
        assert_eq!(
            format!("{}", Complex64::new(0.0, 2.0)),
            "0.000000+2.000000i"
        );
    }
}
