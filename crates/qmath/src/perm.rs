//! Permutations of qubit (index-bit) positions.
//!
//! A stage transition in Atlas remaps logical qubits to different physical
//! qubits; on the state vector this is a permutation of index bits. This
//! module provides the permutation algebra; the data movement it induces is
//! implemented in `atlas-statevec` / `atlas-machine`.

use crate::bits::test_bit;

/// A permutation over `n` bit positions.
///
/// `map[src] = dst` means bit `src` of a source index moves to bit `dst` of
/// the destination index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QubitPermutation {
    map: Vec<u32>,
}

impl QubitPermutation {
    /// The identity permutation on `n` positions.
    pub fn identity(n: usize) -> Self {
        QubitPermutation {
            map: (0..n as u32).collect(),
        }
    }

    /// Builds a permutation from `map[src] = dst`. Panics if `map` is not a
    /// permutation of `0..map.len()`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &d in &map {
            assert!((d as usize) < n, "permutation target {d} out of range");
            assert!(!seen[d as usize], "duplicate permutation target {d}");
            seen[d as usize] = true;
        }
        QubitPermutation { map }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Destination of bit `src`.
    #[inline(always)]
    pub fn dst(&self, src: u32) -> u32 {
        self.map[src as usize]
    }

    /// `true` if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &d)| i as u32 == d)
    }

    /// The inverse permutation (`dst → src`).
    pub fn inverse(&self) -> QubitPermutation {
        let mut inv = vec![0u32; self.map.len()];
        for (src, &dst) in self.map.iter().enumerate() {
            inv[dst as usize] = src as u32;
        }
        QubitPermutation { map: inv }
    }

    /// Composition `other ∘ self`: apply `self` first, then `other`.
    pub fn then(&self, other: &QubitPermutation) -> QubitPermutation {
        assert_eq!(self.len(), other.len());
        QubitPermutation {
            map: self.map.iter().map(|&m| other.map[m as usize]).collect(),
        }
    }

    /// Applies the permutation to an amplitude index.
    #[inline]
    pub fn apply_index(&self, idx: u64) -> u64 {
        let mut out = 0u64;
        for (src, &dst) in self.map.iter().enumerate() {
            if test_bit(idx, src as u32) {
                out |= 1u64 << dst;
            }
        }
        out
    }

    /// Raw `src → dst` map.
    pub fn as_map(&self) -> &[u32] {
        &self.map
    }

    /// The set of positions moved by the permutation (src != dst).
    pub fn moved_positions(&self) -> Vec<u32> {
        self.map
            .iter()
            .enumerate()
            .filter(|(i, &d)| *i as u32 != d)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// A byte-table-compiled form of a [`QubitPermutation`] for bulk
/// index-space application.
///
/// [`QubitPermutation::apply_index`] walks every bit (`O(n)` per index);
/// measurement paths that unpermute *indices* instead of amplitude arrays
/// apply the permutation to millions of indices, so this compiles the
/// permutation into one 256-entry scatter table per input byte:
/// `apply` is then `⌈n/8⌉` table lookups OR-ed together.
#[derive(Clone, Debug)]
pub struct IndexPermuter {
    /// `tables[t][v]` = the destination-bit image of byte value `v` at
    /// input bits `8t..8t+8`.
    tables: Vec<[u64; 256]>,
    identity: bool,
}

impl IndexPermuter {
    /// Compiles `perm` into byte scatter tables.
    pub fn new(perm: &QubitPermutation) -> Self {
        let n = perm.len();
        let mut tables = vec![[0u64; 256]; n.div_ceil(8)];
        for (t, table) in tables.iter_mut().enumerate() {
            let bits_here = (n - 8 * t).min(8);
            for (v, entry) in table.iter_mut().enumerate() {
                let mut out = 0u64;
                for b in 0..bits_here {
                    if (v >> b) & 1 == 1 {
                        out |= 1u64 << perm.dst((8 * t + b) as u32);
                    }
                }
                *entry = out;
            }
        }
        IndexPermuter {
            tables,
            identity: perm.is_identity(),
        }
    }

    /// `true` if the compiled permutation is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Applies the permutation to an amplitude index. Equal to
    /// [`QubitPermutation::apply_index`] for indices below `2^n`.
    #[inline]
    pub fn apply(&self, idx: u64) -> u64 {
        let mut out = 0u64;
        for (t, table) in self.tables.iter().enumerate() {
            out |= table[((idx >> (8 * t)) & 0xFF) as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_fixes_indices() {
        let p = QubitPermutation::identity(6);
        assert!(p.is_identity());
        for idx in 0..64u64 {
            assert_eq!(p.apply_index(idx), idx);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let p = QubitPermutation::from_map(vec![2, 0, 3, 1]);
        let inv = p.inverse();
        for idx in 0..16u64 {
            assert_eq!(inv.apply_index(p.apply_index(idx)), idx);
        }
        assert!(p.then(&inv).is_identity());
    }

    #[test]
    fn composition_order() {
        // self: 0->1, 1->0, 2->2 ; other: 0->2, 1->1, 2->0
        let a = QubitPermutation::from_map(vec![1, 0, 2]);
        let b = QubitPermutation::from_map(vec![2, 1, 0]);
        let ab = a.then(&b); // apply a, then b: 0 -> 1 -> 1; 1 -> 0 -> 2; 2 -> 2 -> 0
        assert_eq!(ab.as_map(), &[1, 2, 0]);
        for idx in 0..8u64 {
            assert_eq!(ab.apply_index(idx), b.apply_index(a.apply_index(idx)));
        }
    }

    #[test]
    fn swap_permutation_on_indices() {
        // Swap bits 0 and 2 of a 3-bit index.
        let p = QubitPermutation::from_map(vec![2, 1, 0]);
        assert_eq!(p.apply_index(0b001), 0b100);
        assert_eq!(p.apply_index(0b100), 0b001);
        assert_eq!(p.apply_index(0b010), 0b010);
        assert_eq!(p.apply_index(0b101), 0b101);
    }

    /// Deterministic Fisher–Yates from an LCG seed.
    fn random_perm(n: usize, seed: u64) -> QubitPermutation {
        let mut map: Vec<u32> = (0..n as u32).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            map.swap(i, (s >> 33) as usize % (i + 1));
        }
        QubitPermutation::from_map(map)
    }

    #[test]
    fn random_inverse_roundtrips() {
        for seed in 0..32u64 {
            let p = random_perm(10, seed);
            let inv = p.inverse();
            assert!(p.then(&inv).is_identity(), "p∘p⁻¹ ≠ id at seed {seed}");
            assert!(inv.then(&p).is_identity(), "p⁻¹∘p ≠ id at seed {seed}");
            assert_eq!(inv.inverse(), p, "(p⁻¹)⁻¹ ≠ p at seed {seed}");
            for idx in [0u64, 1, 37, 511, 1023] {
                assert_eq!(inv.apply_index(p.apply_index(idx)), idx);
            }
        }
    }

    #[test]
    fn composition_is_associative_on_indices() {
        for seed in 0..16u64 {
            let a = random_perm(8, seed);
            let b = random_perm(8, seed + 1000);
            let c = random_perm(8, seed + 2000);
            let left = a.then(&b).then(&c);
            let right = a.then(&b.then(&c));
            assert_eq!(left, right, "associativity broke at seed {seed}");
            for idx in 0..256u64 {
                assert_eq!(
                    left.apply_index(idx),
                    c.apply_index(b.apply_index(a.apply_index(idx)))
                );
            }
        }
    }

    #[test]
    fn apply_index_is_a_bijection() {
        let p = random_perm(8, 7);
        let mut seen = vec![false; 256];
        for idx in 0..256u64 {
            let out = p.apply_index(idx) as usize;
            assert!(!seen[out], "index {out} hit twice");
            seen[out] = true;
        }
    }

    #[test]
    fn index_permuter_matches_apply_index() {
        for seed in 0..8u64 {
            // 10 bits (two partial tables) and 17 bits (three tables).
            for n in [10usize, 17] {
                let p = random_perm(n, seed);
                let lut = IndexPermuter::new(&p);
                assert_eq!(lut.is_identity(), p.is_identity());
                for idx in (0..1u64 << n).step_by(97) {
                    assert_eq!(lut.apply(idx), p.apply_index(idx), "n={n} idx={idx}");
                }
            }
        }
        let id = IndexPermuter::new(&QubitPermutation::identity(12));
        assert!(id.is_identity());
        assert_eq!(id.apply(0xABC), 0xABC);
    }

    #[test]
    fn moved_positions() {
        let p = QubitPermutation::from_map(vec![0, 2, 1, 3]);
        assert_eq!(p.moved_positions(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_non_permutation() {
        let _ = QubitPermutation::from_map(vec![0, 0, 1]);
    }
}
