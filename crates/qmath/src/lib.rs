//! # atlas-qmath
//!
//! Numeric substrate for the Atlas quantum-circuit simulator: complex
//! arithmetic, small dense complex matrices (gate unitaries and fused
//! kernels), and the bit/index manipulation utilities that state-vector
//! simulation is built on (strided amplitude addressing, qubit/bit
//! permutations).
//!
//! Everything in this crate is deterministic and allocation-conscious: the
//! hot paths (complex multiply-add, index gather) are `#[inline]` and free of
//! heap traffic, per the project's HPC guidelines.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bits;
pub mod complex;
pub mod matrix;
pub mod perm;

pub use bits::{clear_bit, deposit_bits, extract_bits, insert_bit, insert_bits, set_bit, test_bit};
pub use complex::Complex64;
pub use matrix::Matrix;
pub use perm::{IndexPermuter, QubitPermutation};

/// Default absolute tolerance used by approximate comparisons throughout the
/// workspace (amplitudes, unitarity checks, fidelity assertions).
pub const EPS: f64 = 1e-10;
