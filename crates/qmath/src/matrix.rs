//! Small dense complex matrices.
//!
//! Gate unitaries are `2^k × 2^k` with `k ≤ ~7` (fusion kernels cap the
//! size), so a simple row-major `Vec<Complex64>` is the right representation:
//! contiguous, cache-friendly, no blocking needed at these sizes.

use crate::complex::Complex64;
use crate::EPS;
use std::fmt;
use std::ops::{Index, IndexMut, Mul};

/// A dense, row-major complex matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from row-major data. Panics if the length is not
    /// `rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Convenience constructor from `(re, im)` pairs in row-major order.
    pub fn from_reim(rows: usize, cols: usize, data: &[(f64, f64)]) -> Self {
        Matrix::from_rows(
            rows,
            cols,
            data.iter()
                .map(|&(re, im)| Complex64::new(re, im))
                .collect(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Conjugate transpose (dagger).
    pub fn dagger(&self) -> Matrix {
        let mut m = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(c, r)] = self[(r, c)].conj();
            }
        }
        m
    }

    /// Kronecker product `self ⊗ other`.
    pub fn kron(&self, other: &Matrix) -> Matrix {
        let mut m = Matrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                if a.is_zero(0.0) {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        m[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        m
    }

    /// `true` if `self · selfᴴ = I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self * &self.dagger();
        prod.approx_eq(&Matrix::identity(self.rows), eps)
    }

    /// `true` if all off-diagonal entries are ≤ `eps` in modulus.
    pub fn is_diagonal(&self, eps: f64) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| (0..self.cols).all(|c| r == c || self[(r, c)].is_zero(eps)))
    }

    /// `true` if all entries off the anti-diagonal are ≤ `eps` in modulus.
    pub fn is_anti_diagonal(&self, eps: f64) -> bool {
        self.rows == self.cols
            && (0..self.rows).all(|r| {
                (0..self.cols).all(|c| r + c == self.cols - 1 || self[(r, c)].is_zero(eps))
            })
    }

    /// Element-wise approximate equality.
    pub fn approx_eq(&self, other: &Matrix, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Overwrites `self` with `src` scaled entry-wise by `s`, reusing the
    /// existing allocation when its capacity suffices. Used by the
    /// scale-folding kernel path to avoid a fresh matrix clone per gate.
    pub fn clone_scaled_from(&mut self, src: &Matrix, s: Complex64) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend(src.data.iter().map(|&v| v * s));
    }

    /// Matrix-vector product into a caller-provided output buffer
    /// (`out.len() == rows`, `v.len() == cols`). The fused-kernel hot path.
    pub fn mul_vec_into(&self, v: &[Complex64], out: &mut [Complex64]) {
        debug_assert_eq!(v.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = Complex64::ZERO;
            for (m, x) in row.iter().zip(v.iter()) {
                acc = m.mul_add(*x, acc);
            }
            *o = acc;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix dimension mismatch in multiply");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through rhs rows contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero(0.0) {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in orow.iter_mut().zip(rrow.iter()) {
                    *o = a.mul_add(*b, *o);
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Checks two matrices are equal up to a global phase factor, i.e.
/// `a = e^{iφ} b` for some φ. Quantum gates that differ only by global phase
/// are physically identical.
pub fn equal_up_to_global_phase(a: &Matrix, b: &Matrix, eps: f64) -> bool {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return false;
    }
    // Find the largest entry of b to divide by.
    let mut best = (0usize, 0usize);
    let mut best_norm = -1.0f64;
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            let n = b[(r, c)].norm_sqr();
            if n > best_norm {
                best_norm = n;
                best = (r, c);
            }
        }
    }
    if best_norm <= eps * eps {
        // b is (numerically) zero; equal iff a is too.
        return a.as_slice().iter().all(|z| z.is_zero(eps));
    }
    let phase = a[best] / b[best];
    if (phase.norm() - 1.0).abs() > 1e-6 {
        return false;
    }
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if !a[(r, c)].approx_eq(phase * b[(r, c)], eps.max(1e-9)) {
                return false;
            }
        }
    }
    true
}

/// Returns `true` when the matrix is unitary within the crate default
/// tolerance — convenience for assertions.
pub fn assert_unitary(m: &Matrix) -> bool {
    m.is_unitary(EPS.max(1e-9) * m.rows() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Matrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Matrix::from_reim(2, 2, &[(s, 0.0), (s, 0.0), (s, 0.0), (-s, 0.0)])
    }

    fn x() -> Matrix {
        Matrix::from_reim(2, 2, &[(0.0, 0.0), (1.0, 0.0), (1.0, 0.0), (0.0, 0.0)])
    }

    #[test]
    fn identity_is_unitary_and_diagonal() {
        let i4 = Matrix::identity(4);
        assert!(i4.is_unitary(1e-12));
        assert!(i4.is_diagonal(0.0));
        assert!(!i4.is_anti_diagonal(0.0));
    }

    #[test]
    fn h_squared_is_identity() {
        let hh = &h() * &h();
        assert!(hh.approx_eq(&Matrix::identity(2), 1e-12));
        assert!(h().is_unitary(1e-12));
    }

    #[test]
    fn x_is_anti_diagonal() {
        assert!(x().is_anti_diagonal(0.0));
        assert!(!x().is_diagonal(0.0));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let k = x().kron(&Matrix::identity(2));
        assert_eq!(k.rows(), 4);
        // X ⊗ I maps |00> -> |10>: column 0 has a 1 in row 2.
        assert!(k[(2, 0)].approx_eq(Complex64::ONE, 1e-12));
        assert!(k[(0, 0)].is_zero(1e-12));
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn dagger_of_product() {
        let a = h();
        let b = x();
        let ab = &a * &b;
        let ba_dag = &b.dagger() * &a.dagger();
        assert!(ab.dagger().approx_eq(&ba_dag, 1e-12));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = h().kron(&x());
        let v: Vec<Complex64> = (0..4)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut out = vec![Complex64::ZERO; 4];
        m.mul_vec_into(&v, &mut out);
        for r in 0..4 {
            let mut acc = Complex64::ZERO;
            for c in 0..4 {
                acc = m[(r, c)].mul_add(v[c], acc);
            }
            assert!(out[r].approx_eq(acc, 1e-12));
        }
    }

    /// A deterministic "random" unitary: a product of axis rotations with
    /// angles derived from `seed`.
    fn pseudo_random_unitary(seed: u64) -> Matrix {
        let a = (seed as f64) * 0.7;
        let b = (seed as f64) * 1.3 + 0.4;
        let (ca, sa) = (a.cos(), a.sin());
        let rot = Matrix::from_reim(2, 2, &[(ca, 0.0), (-sa, 0.0), (sa, 0.0), (ca, 0.0)]);
        let phase = Matrix::from_rows(
            2,
            2,
            vec![
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::cis(b),
            ],
        );
        &rot * &phase
    }

    #[test]
    fn unitarity_is_closed_under_product_and_kron() {
        for seed in 0..8u64 {
            let u = pseudo_random_unitary(seed);
            let v = pseudo_random_unitary(seed + 100);
            assert!(u.is_unitary(1e-10), "seed {seed}");
            assert!((&u * &v).is_unitary(1e-10), "product, seed {seed}");
            assert!(u.kron(&v).is_unitary(1e-10), "kron, seed {seed}");
        }
    }

    #[test]
    fn dagger_inverts_unitaries() {
        for seed in 0..8u64 {
            let u = pseudo_random_unitary(seed).kron(&pseudo_random_unitary(seed + 50));
            let id = &u * &u.dagger();
            assert!(
                id.approx_eq(&Matrix::identity(4), 1e-10),
                "u·u† != I at seed {seed}"
            );
        }
    }

    #[test]
    fn non_unitary_is_detected() {
        let mut m = Matrix::identity(2);
        m[(0, 0)] = Complex64::new(2.0, 0.0); // breaks column normalization
        assert!(!m.is_unitary(1e-9));
        assert!(!Matrix::zeros(2, 2).is_unitary(1e-9));
    }

    #[test]
    fn global_phase_equality() {
        let a = h();
        let mut b = h();
        let phase = Complex64::cis(1.234);
        for r in 0..2 {
            for c in 0..2 {
                b[(r, c)] *= phase;
            }
        }
        assert!(equal_up_to_global_phase(&a, &b, 1e-9));
        assert!(!equal_up_to_global_phase(&a, &x(), 1e-9));
    }
}
