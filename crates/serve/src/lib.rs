//! `atlas-serve` — a multi-tenant session pool over the Atlas session
//! API.
//!
//! The Atlas pipeline splits into an expensive PARTITION (staging ILP +
//! kernelization DP) and a cheap, repeatable EXECUTE; the session API
//! (`Planner` → `CompiledPlan` → `Execution`) exposes that split to one
//! caller. This crate exposes it to *many*: a [`SessionPool`] runs a
//! stream of jobs from independent tenants over a shared, bounded LRU
//! cache of [`CompiledPlan`]s keyed by the structural
//! [`CircuitFingerprint`](atlas_core::session::CircuitFingerprint), so
//! structurally identical circuits — parameter sweeps, re-submissions,
//! the same ansatz from different users — pay for PARTITION once.
//!
//! The pool is deliberately deterministic where it matters: job
//! *outputs* carry only model-level results (simulated seconds, counts,
//! expectations), never wall-clock readings or cache-hit flags, so the
//! response stream for a given job stream is byte-identical across
//! runs, worker counts and cache states. Scheduling (round-robin across
//! tenants), backpressure ([`AtlasError::Overloaded`] on a full queue)
//! and cancellation ([`CancelToken`]) are the operational surface; the
//! [`PoolStats`] counters are the only place wall-clock-adjacent
//! behavior (hit rates, high-water marks) is visible.
//!
//! The NDJSON wire format of `atlas-sim serve` lives in [`protocol`];
//! the serde-free JSON support it needs lives in [`json`].
//!
//! ```
//! use atlas_serve::{JobOutcome, JobOutput, JobRequest, ServeConfig, SessionPool};
//! use atlas_core::config::AtlasConfig;
//! use atlas_machine::{CostModel, MachineSpec};
//!
//! let spec = MachineSpec { nodes: 2, gpus_per_node: 2, local_qubits: 5 };
//! let cfg = AtlasConfig { threads: 1, ..AtlasConfig::default() };
//! let pool = SessionPool::new(spec, CostModel::default(), cfg, ServeConfig::default()).unwrap();
//! let circuit = atlas_circuit::generators::ghz(8);
//! let handle = pool
//!     .submit("tenant-a", circuit, JobRequest::Sample { shots: 16, seed: 3 })
//!     .unwrap();
//! match handle.wait().unwrap() {
//!     JobOutcome::Output(JobOutput::Sampled { counts }) => {
//!         assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u64>(), 16);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! let stats = pool.shutdown();
//! assert_eq!(stats.cache_misses, 1);
//! ```
//!
//! [`AtlasError::Overloaded`]: atlas_error::AtlasError::Overloaded
//! [`CompiledPlan`]: atlas_core::session::CompiledPlan

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod json;
pub mod pool;
pub mod protocol;

pub use fault::{FaultPlan, FaultSite};
pub use pool::{
    CancelToken, JobHandle, JobOutcome, JobOutput, JobRequest, PoolStats, ServeConfig, SessionPool,
};
pub use protocol::{parse_job, parse_line, render_response, render_stats, JobLine, JobSpec};
