//! The NDJSON serve protocol: one JSON object per line in, one per
//! line out.
//!
//! ## Job lines (stdin)
//!
//! ```json
//! {"id":"j1","tenant":"alice","op":"sample","family":"qaoa","n":8,"shots":64,"seed":7}
//! {"id":"j2","tenant":"bob","op":"expect","family":"ghz","n":8,"pauli":"ZIIIIIIZ"}
//! {"id":"j3","tenant":"alice","op":"execute","family":"qaoa","n":8,"shift":0.25}
//! ```
//!
//! * `id` (string, required) — echoed on the response line.
//! * `tenant` (string, required) — fairness domain for round-robin
//!   scheduling.
//! * `op` (string, required) — `"plan"`, `"execute"`, `"sample"` or
//!   `"expect"`.
//! * Circuit: either `family` (the `atlas-sim --family` names, plus
//!   `qaoa`/`grover`/`clifford`) with `n` (qubits, default 10), or
//!   `qasm` (inline OpenQASM-2 source, newlines escaped as `\n`).
//! * `shift` (number, optional) — adds `shift` to every gate parameter
//!   (structure preserved, so shifted points share one cached plan).
//! * `shots`/`seed` — for `op":"sample"` (shots required, seed
//!   defaults to 0).
//! * `pauli` — for `op":"expect"` (required; I/X/Y/Z per qubit,
//!   leftmost = highest qubit).
//! * `deadline_ms` (non-negative integer, optional) — relative job
//!   deadline in milliseconds. Expiry before EXECUTE (or at a stage
//!   barrier inside it) answers `"deadline_exceeded":true`; `0` is
//!   deterministically expired at dispatch.
//!
//! ## Stats lines (stdin)
//!
//! ```json
//! {"id":"s1","op":"stats"}
//! ```
//!
//! A `stats` line is a synchronization point, not a job: the server
//! waits for every previously submitted job to finish, then answers
//! with the pool's *deterministic* counters (jobs submitted / completed
//! / failed / cancelled / rejected / deadline-exceeded / panicked,
//! plan-cache hits / misses / evictions / entries). Because stdin is processed serially, the
//! counts cover exactly the jobs on the preceding lines — the response
//! is byte-identical across runs and worker counts. Wall-clock-shaped
//! values (queue high-water marks, scratch memo totals) are
//! deliberately excluded; they live in the trace export.
//!
//! ## Response lines (stdout)
//!
//! Responses carry *model-level* results only (simulated seconds,
//! counts, expectations) — never wall-clock time or cache state — so a
//! job stream's output is byte-identical across runs, worker counts
//! and cache warmth. Floats are printed with Rust's shortest-roundtrip
//! formatting, which is deterministic.

use crate::json::{self, Json};
use crate::pool::{JobOutcome, JobOutput, JobRequest};
use atlas_circuit::generators::{self, Family};
use atlas_circuit::{qasm, Circuit};
use atlas_error::AtlasError;
use atlas_ilp::SolveStatus;
use atlas_sampler::PauliString;
use std::fmt::Write as _;

/// One parsed job line: routing info plus the materialized request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Client-chosen id, echoed on the response line.
    pub id: String,
    /// Fairness domain.
    pub tenant: String,
    /// The circuit to run.
    pub circuit: Circuit,
    /// What to do with it.
    pub request: JobRequest,
    /// Relative deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
}

/// One parsed stdin line: a job to schedule, or a synchronous `stats`
/// barrier.
#[derive(Clone, Debug)]
pub enum JobLine {
    /// A job for the pool.
    Job(JobSpec),
    /// `{"op":"stats"}`: drain the pool, then report its deterministic
    /// counters under this response id.
    Stats {
        /// Client-chosen id, echoed on the response line.
        id: String,
    },
}

fn req_str<'j>(v: &'j Json, key: &str) -> Result<&'j str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

/// Parses one NDJSON stdin line: a [`JobSpec`] or a `stats` barrier.
pub fn parse_line(line: &str) -> Result<JobLine, String> {
    let v = json::parse(line)?;
    if v.get("op").and_then(Json::as_str) == Some("stats") {
        return Ok(JobLine::Stats {
            id: req_str(&v, "id")?.to_string(),
        });
    }
    parse_job(line).map(JobLine::Job)
}

/// Parses one NDJSON job line into a [`JobSpec`].
pub fn parse_job(line: &str) -> Result<JobSpec, String> {
    let v = json::parse(line)?;
    let id = req_str(&v, "id")?.to_string();
    let tenant = req_str(&v, "tenant")?.to_string();
    let op = req_str(&v, "op")?;

    let mut circuit = match (v.get("family"), v.get("qasm")) {
        (Some(_), Some(_)) => return Err("'family' and 'qasm' are mutually exclusive".into()),
        (None, None) => return Err("need 'family' or 'qasm'".into()),
        (None, Some(q)) => {
            let src = q.as_str().ok_or("non-string 'qasm'")?;
            qasm::from_qasm(src).map_err(|e| format!("qasm: {e}"))?
        }
        (Some(f), None) => {
            let name = f.as_str().ok_or("non-string 'family'")?;
            let n = match v.get("n") {
                Some(n) => n
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("'n' must be a non-negative integer")?,
                None => 10,
            };
            match name {
                "qaoa" => generators::qaoa(n),
                "grover" => generators::grover(n),
                "clifford" => generators::clifford(n),
                _ => Family::from_name(name)
                    .ok_or_else(|| format!("unknown family '{name}'"))?
                    .generate(n),
            }
        }
    };
    if let Some(shift) = v.get("shift") {
        let s = shift.as_f64().ok_or("non-numeric 'shift'")?;
        circuit = circuit.map_params(|_, _, p| p + s);
    }

    let request = match op {
        "plan" => JobRequest::Plan,
        "execute" => JobRequest::Execute,
        "sample" => {
            let shots = v
                .get("shots")
                .and_then(Json::as_u64)
                .and_then(|s| usize::try_from(s).ok())
                .ok_or("op 'sample' needs integer 'shots'")?;
            let seed = match v.get("seed") {
                Some(s) => s.as_u64().ok_or("non-integer 'seed'")?,
                None => 0,
            };
            JobRequest::Sample { shots, seed }
        }
        "expect" => {
            let pauli: PauliString = req_str(&v, "pauli")?
                .parse()
                .map_err(|e: AtlasError| format!("pauli: {e}"))?;
            JobRequest::Expect { pauli }
        }
        other => return Err(format!("unknown op '{other}'")),
    };
    let deadline_ms = match v.get("deadline_ms") {
        Some(d) => Some(
            d.as_u64()
                .ok_or("'deadline_ms' must be a non-negative integer")?,
        ),
        None => None,
    };
    Ok(JobSpec {
        id,
        tenant,
        circuit,
        request,
        deadline_ms,
    })
}

fn status_str(s: Option<SolveStatus>) -> &'static str {
    match s {
        None => "n/a",
        Some(SolveStatus::Optimal) => "optimal",
        Some(SolveStatus::Feasible) => "feasible",
        Some(SolveStatus::Infeasible) => "infeasible",
        Some(SolveStatus::Unknown) => "unknown",
    }
}

/// Renders a terminal job state as one NDJSON response line (no
/// trailing newline).
pub fn render_response(id: &str, result: &Result<JobOutcome, AtlasError>) -> String {
    let id = json::escape(id);
    match result {
        Err(e) => format!(
            r#"{{"id":"{id}","ok":false,"kind":"{}","error":"{}"}}"#,
            e.kind(),
            json::escape(&e.to_string())
        ),
        Ok(JobOutcome::Cancelled) => {
            format!(r#"{{"id":"{id}","ok":false,"cancelled":true}}"#)
        }
        Ok(JobOutcome::DeadlineExceeded) => {
            format!(r#"{{"id":"{id}","ok":false,"deadline_exceeded":true}}"#)
        }
        Ok(JobOutcome::Output(out)) => match out {
            JobOutput::Planned {
                stages,
                staging_cost,
                optimal,
                solve_status,
            } => format!(
                r#"{{"id":"{id}","ok":true,"op":"plan","stages":{stages},"staging_cost":{staging_cost},"optimal":{optimal},"status":"{}"}}"#,
                status_str(*solve_status)
            ),
            JobOutput::Executed {
                model_secs,
                kernels,
                norm,
                top,
                state: _,
            } => {
                let mut line = format!(
                    r#"{{"id":"{id}","ok":true,"op":"execute","model_secs":{model_secs},"kernels":{kernels},"norm":{norm},"top":["#
                );
                for (i, (bits, p)) in top.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "[{bits},{p}]");
                }
                line.push_str("]}");
                line
            }
            JobOutput::Sampled { counts } => {
                let mut line = format!(r#"{{"id":"{id}","ok":true,"op":"sample","counts":["#);
                for (i, (bits, c)) in counts.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "[{bits},{c}]");
                }
                line.push_str("]}");
                line
            }
            JobOutput::Expectation { value } => {
                format!(r#"{{"id":"{id}","ok":true,"op":"expect","value":{value}}}"#)
            }
        },
    }
}

/// Renders a `stats` response line from a pool snapshot (no trailing
/// newline). Only deterministic counters appear: with stdin processed
/// serially, each value is a pure function of the preceding job lines.
pub fn render_stats(id: &str, stats: &crate::pool::PoolStats) -> String {
    format!(
        concat!(
            r#"{{"id":"{id}","ok":true,"op":"stats","#,
            r#""jobs":{{"submitted":{sub},"completed":{comp},"failed":{fail},"#,
            r#""cancelled":{canc},"rejected":{rej},"#,
            r#""deadline_exceeded":{dead},"panicked":{pan}}},"#,
            r#""plan_cache":{{"hits":{hits},"misses":{miss},"evictions":{evic},"entries":{ent}}},"#,
            r#""analyze":{{"plans_checked":{achk},"plans_rejected":{arej}}}}}"#,
        ),
        id = json::escape(id),
        sub = stats.jobs_submitted,
        comp = stats.jobs_completed,
        fail = stats.jobs_failed,
        canc = stats.jobs_cancelled,
        rej = stats.jobs_rejected,
        dead = stats.jobs_deadline_exceeded,
        pan = stats.jobs_panicked,
        hits = stats.cache_hits,
        miss = stats.cache_misses,
        evic = stats.cache_evictions,
        ent = stats.cache_entries,
        achk = stats.analyze_plans_checked,
        arej = stats.analyze_plans_rejected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_family_jobs_with_shift() {
        let spec = parse_job(
            r#"{"id":"a","tenant":"t0","op":"execute","family":"qaoa","n":8,"shift":0.5}"#,
        )
        .unwrap();
        assert_eq!(spec.id, "a");
        assert_eq!(spec.tenant, "t0");
        assert_eq!(spec.circuit.num_qubits(), 8);
        assert!(matches!(spec.request, JobRequest::Execute));
        assert_eq!(spec.deadline_ms, None);
        // The shift changes parameters but not structure.
        let base = parse_job(r#"{"id":"b","tenant":"t0","op":"execute","family":"qaoa","n":8}"#)
            .unwrap()
            .circuit;
        use atlas_core::session::CircuitFingerprint;
        assert_eq!(
            CircuitFingerprint::of(&base),
            CircuitFingerprint::of(&spec.circuit)
        );
    }

    #[test]
    fn parses_inline_qasm() {
        let line = r#"{"id":"q","tenant":"t","op":"plan","qasm":"OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n"}"#;
        let spec = parse_job(line).unwrap();
        assert_eq!(spec.circuit.num_qubits(), 3);
        assert_eq!(spec.circuit.num_gates(), 3);
    }

    #[test]
    fn parses_sample_and_expect_ops() {
        let s = parse_job(
            r#"{"id":"s","tenant":"t","op":"sample","family":"ghz","n":6,"shots":32,"seed":9}"#,
        )
        .unwrap();
        match s.request {
            JobRequest::Sample { shots: 32, seed: 9 } => {}
            other => panic!("bad request: {other:?}"),
        }
        let e = parse_job(
            r#"{"id":"e","tenant":"t","op":"expect","family":"ghz","n":6,"pauli":"ZIIIIZ"}"#,
        )
        .unwrap();
        match e.request {
            JobRequest::Expect { ref pauli } => assert_eq!(pauli.num_qubits(), 6),
            other => panic!("bad request: {other:?}"),
        }
    }

    #[test]
    fn parses_optional_deadline() {
        let spec = parse_job(
            r#"{"id":"d","tenant":"t","op":"execute","family":"ghz","n":6,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(spec.deadline_ms, Some(250));
        let zero = parse_job(
            r#"{"id":"d0","tenant":"t","op":"execute","family":"ghz","n":6,"deadline_ms":0}"#,
        )
        .unwrap();
        assert_eq!(zero.deadline_ms, Some(0));
    }

    #[test]
    fn rejects_malformed_jobs() {
        for (line, needle) in [
            ("{}", "'id'"),
            (r#"{"id":"x"}"#, "'tenant'"),
            (
                r#"{"id":"x","tenant":"t","op":"frobnicate","family":"ghz"}"#,
                "unknown op",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"plan"}"#,
                "'family' or 'qasm'",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"plan","family":"ghz","qasm":"x"}"#,
                "mutually exclusive",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"sample","family":"ghz"}"#,
                "'shots'",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"plan","family":"nope"}"#,
                "unknown family",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"plan","family":"ghz","n":3.5}"#,
                "'n'",
            ),
            (
                r#"{"id":"x","tenant":"t","op":"plan","family":"ghz","deadline_ms":-5}"#,
                "'deadline_ms'",
            ),
        ] {
            let err = parse_job(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parse_line_routes_stats_and_jobs() {
        match parse_line(r#"{"id":"s1","op":"stats"}"#).unwrap() {
            JobLine::Stats { id } => assert_eq!(id, "s1"),
            other => panic!("expected stats, got {other:?}"),
        }
        match parse_line(r#"{"id":"a","tenant":"t","op":"plan","family":"ghz","n":6}"#).unwrap() {
            JobLine::Job(spec) => assert_eq!(spec.id, "a"),
            other => panic!("expected job, got {other:?}"),
        }
        // A stats line still needs an id; jobs keep their own checks.
        assert!(parse_line(r#"{"op":"stats"}"#)
            .unwrap_err()
            .contains("'id'"));
        assert!(parse_line(r#"{"id":"x"}"#)
            .unwrap_err()
            .contains("'tenant'"));
    }

    #[test]
    fn stats_response_is_deterministic_json() {
        let stats = crate::pool::PoolStats {
            jobs_submitted: 5,
            jobs_completed: 4,
            jobs_failed: 1,
            jobs_deadline_exceeded: 2,
            jobs_panicked: 1,
            cache_hits: 3,
            cache_misses: 2,
            cache_entries: 2,
            analyze_plans_checked: 2,
            analyze_plans_rejected: 1,
            // Wall-clock-shaped fields must not leak into the line.
            max_queued: 17,
            scratch_table_hits: 999,
            workers: 8,
            ..Default::default()
        };
        let line = render_stats("s \"1\"", &stats);
        assert!(!line.contains('\n'));
        let v = json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(v.get("id").unwrap().as_str(), Some("s \"1\""));
        assert_eq!(
            v.get("jobs").unwrap().get("submitted").unwrap().as_u64(),
            Some(5)
        );
        let jobs = v.get("jobs").unwrap();
        assert_eq!(jobs.get("deadline_exceeded").unwrap().as_u64(), Some(2));
        assert_eq!(jobs.get("panicked").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("plan_cache").unwrap().get("hits").unwrap().as_u64(),
            Some(3)
        );
        let analyze = v.get("analyze").unwrap();
        assert_eq!(analyze.get("plans_checked").unwrap().as_u64(), Some(2));
        assert_eq!(analyze.get("plans_rejected").unwrap().as_u64(), Some(1));
        for needle in ["max_queued", "scratch", "workers", "17", "999"] {
            assert!(!line.contains(needle), "nondeterministic leak: {needle}");
        }
    }

    #[test]
    fn responses_are_single_json_lines() {
        let cases = [
            Ok(JobOutcome::Output(JobOutput::Planned {
                stages: 2,
                staging_cost: 5,
                optimal: true,
                solve_status: Some(SolveStatus::Optimal),
            })),
            Ok(JobOutcome::Output(JobOutput::Sampled {
                counts: vec![(0, 17), (255, 15)],
            })),
            Ok(JobOutcome::Output(JobOutput::Expectation { value: -0.5 })),
            Ok(JobOutcome::Cancelled),
            Ok(JobOutcome::DeadlineExceeded),
            Err(AtlasError::Overloaded {
                queued: 4,
                capacity: 4,
            }),
            Err(AtlasError::JobPanicked {
                job: 3,
                payload_summary: "index out of bounds".into(),
            }),
            Err(AtlasError::ResourceExhausted {
                needed: 1 << 40,
                budget: 1 << 30,
            }),
        ];
        for result in &cases {
            let line = render_response("job \"7\"", result);
            assert!(!line.contains('\n'));
            let v = json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.get("id").unwrap().as_str(), Some("job \"7\""));
        }
        let over = render_response("x", &cases[5]);
        assert!(over.contains(r#""kind":"overloaded""#), "{over}");
        let dead = render_response("x", &cases[4]);
        assert!(dead.contains(r#""deadline_exceeded":true"#), "{dead}");
        let panicked = render_response("x", &cases[6]);
        assert!(panicked.contains(r#""kind":"job-panicked""#), "{panicked}");
        let exhausted = render_response("x", &cases[7]);
        assert!(
            exhausted.contains(r#""kind":"resource-exhausted""#),
            "{exhausted}"
        );
    }
}
