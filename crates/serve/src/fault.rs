//! Deterministic fault injection for the session pool.
//!
//! A [`FaultPlan`] decides — as a pure function of `(seed, site, job
//! id)` — whether a named fault site fires for a given job. The
//! decisions are driven by the same counter-mode RNG the sampler uses
//! ([`CounterRng`]), so a fault schedule is:
//!
//! * **reproducible** — the same seed produces the same set of injected
//!   faults on every run;
//! * **worker-count-invariant** — decisions key on the pool-assigned
//!   job id (submission order), not on which worker dequeues the job or
//!   when, so `--workers 1` and `--workers 4` see identical storms;
//! * **zero-cost when disabled** — the plan is an `Option<Arc<_>>`
//!   (the same shape as the telemetry `Recorder`): the disabled path is
//!   a single `None` check and no site ever evaluates the RNG.
//!
//! The pool consults the plan at five named sites (see [`FaultSite`]);
//! `tests/chaos_serve.rs` uses it to drive seeded fault storms and
//! asserts the pool's accounting and determinism contracts survive.

use std::sync::Arc;

use atlas_sampler::CounterRng;

/// A named fault site inside the serve pipeline.
///
/// Each site has a fixed RNG stream, so per-site schedules are
/// statistically independent but individually reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the worker while processing the job (after
    /// dispatch, before planning) — exercises the `catch_unwind`
    /// isolation boundary.
    WorkerPanic,
    /// Panic *while holding the plan-cache lock* (on the miss path) —
    /// exercises lock-poison recovery.
    PlanPanic,
    /// Trip the job's own [`CancelToken`](crate::pool::CancelToken) at dispatch — a forced
    /// mid-stream cancellation.
    ForceCancel,
    /// Treat the job's deadline as already expired at dispatch —
    /// deadline pressure without real waiting.
    DeadlinePressure,
    /// Fail the job's resource admission as if the memory budget were
    /// exhausted.
    AllocFail,
}

impl FaultSite {
    /// Every site, in stream order (useful for tests that sweep sites).
    pub const ALL: [FaultSite; 5] = [
        FaultSite::WorkerPanic,
        FaultSite::PlanPanic,
        FaultSite::ForceCancel,
        FaultSite::DeadlinePressure,
        FaultSite::AllocFail,
    ];

    /// The fixed RNG stream backing this site's schedule.
    fn stream(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::PlanPanic => 1,
            FaultSite::ForceCancel => 2,
            FaultSite::DeadlinePressure => 3,
            FaultSite::AllocFail => 4,
        }
    }

    /// The site's index into a rate table.
    fn index(self) -> usize {
        self.stream() as usize
    }
}

/// The seeded schedule: one RNG seed plus a parts-per-million firing
/// rate per site. Rates are integers so the type stays `Eq` and the
/// decision arithmetic is exact.
#[derive(Debug, PartialEq, Eq)]
struct FaultPlanInner {
    seed: u64,
    rate_ppm: [u32; 5],
}

/// A deterministic fault-injection schedule for a [`SessionPool`].
///
/// Disabled by default (and in [`ServeConfig::default`]); construct
/// with [`FaultPlan::seeded`] or [`FaultPlan::with_rates`] to arm it.
/// See the module docs for the determinism contract.
///
/// [`SessionPool`]: crate::pool::SessionPool
/// [`ServeConfig::default`]: crate::pool::ServeConfig
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    inner: Option<Arc<FaultPlanInner>>,
}

impl FaultPlan {
    /// The inert plan: no site ever fires, no RNG is ever evaluated.
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A plan firing every site at the same `rate_ppm` (parts per
    /// million of jobs, i.e. `1_000_000` = every job).
    pub fn seeded(seed: u64, rate_ppm: u32) -> Self {
        Self::with_rates(seed, [rate_ppm; 5])
    }

    /// A plan with an individual parts-per-million rate per site,
    /// indexed in [`FaultSite::ALL`] order.
    pub fn with_rates(seed: u64, rate_ppm: [u32; 5]) -> Self {
        FaultPlan {
            inner: Some(Arc::new(FaultPlanInner { seed, rate_ppm })),
        }
    }

    /// Whether any site can fire at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `site` fires for pool job `job_id` — a pure function of
    /// `(seed, site, job_id)`, independent of workers and timing.
    pub fn should_inject(&self, site: FaultSite, job_id: u64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let rate = inner.rate_ppm[site.index()];
        if rate == 0 {
            return false;
        }
        let draw = CounterRng::new(inner.seed)
            .split(site.stream())
            .u64_at(job_id);
        draw % 1_000_000 < u64::from(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for site in FaultSite::ALL {
            for job in 0..64 {
                assert!(!plan.should_inject(site, job));
            }
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_and_job() {
        let a = FaultPlan::seeded(42, 250_000);
        let b = FaultPlan::seeded(42, 250_000);
        for site in FaultSite::ALL {
            for job in 0..256 {
                assert_eq!(a.should_inject(site, job), b.should_inject(site, job));
            }
        }
        // A different seed produces a different storm (with overwhelming
        // probability over 5 × 256 draws).
        let c = FaultPlan::seeded(43, 250_000);
        let differs = FaultSite::ALL.iter().any(|&site| {
            (0..256).any(|job| a.should_inject(site, job) != c.should_inject(site, job))
        });
        assert!(differs);
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // With a uniform rate the per-site schedules must not be copies
        // of each other.
        let plan = FaultPlan::seeded(7, 500_000);
        let schedule = |site: FaultSite| -> Vec<bool> {
            (0..256).map(|job| plan.should_inject(site, job)).collect()
        };
        let worker = schedule(FaultSite::WorkerPanic);
        assert!(FaultSite::ALL[1..]
            .iter()
            .any(|&site| schedule(site) != worker));
    }

    #[test]
    fn rates_bound_the_firing_fraction() {
        // rate 1_000_000 fires always; rate 0 never.
        let always = FaultPlan::seeded(1, 1_000_000);
        let never = FaultPlan::with_rates(1, [0; 5]);
        for job in 0..64 {
            assert!(always.should_inject(FaultSite::WorkerPanic, job));
            assert!(!never.should_inject(FaultSite::WorkerPanic, job));
        }
        // Per-site rates are honored independently.
        let only_cancel = FaultPlan::with_rates(9, [0, 0, 1_000_000, 0, 0]);
        for job in 0..64 {
            assert!(only_cancel.should_inject(FaultSite::ForceCancel, job));
            assert!(!only_cancel.should_inject(FaultSite::WorkerPanic, job));
            assert!(!only_cancel.should_inject(FaultSite::AllocFail, job));
        }
    }
}
