//! The multi-tenant session pool: a bounded job queue, a worker team,
//! and a shared LRU cache of [`CompiledPlan`]s keyed by
//! [`CircuitFingerprint`].
//!
//! ## Design
//!
//! Atlas splits simulation into an expensive PARTITION (staging ILP +
//! kernelization DP) and a cheap, repeatable EXECUTE. A serving
//! deployment sees many clients sending structurally identical circuits
//! (parameter sweeps, VQE iterations, the same ansatz from different
//! users), so the pool amortizes PARTITION across *tenants*: the first
//! job with a given structural fingerprint plans, everyone else reuses
//! the cached [`CompiledPlan`].
//!
//! * **Plan-exactly-once** — the cache miss path plans *while holding
//!   the cache lock*, so two concurrent jobs with the same fingerprint
//!   can never both invoke PARTITION. Planning is thereby serialized;
//!   EXECUTE (the hot path) runs outside every lock.
//! * **Fairness** — tenants are scheduled round-robin: the dispatcher
//!   cycles through tenants with queued work and takes one job per
//!   visit, so a tenant that floods the queue cannot starve the others
//!   (a tenant's own jobs still run in submission order).
//! * **Backpressure** — the queue is bounded. [`SessionPool::submit`]
//!   fast-fails with [`AtlasError::Overloaded`] when full;
//!   [`SessionPool::submit_blocking`] waits for space instead, and
//!   [`SessionPool::submit_timeout`] waits a bounded time before
//!   failing typed.
//! * **Admission** — a job whose peak memory demand (state + ping-pong
//!   spare + scratch) exceeds [`AtlasConfig::memory_budget`] is
//!   rejected at submission with [`AtlasError::ResourceExhausted`],
//!   before it holds a queue slot and long before any amplitude
//!   allocation could abort the process.
//! * **Cancellation** — every job carries a [`CancelToken`], honored at
//!   dequeue, after plan lookup, and at every stage barrier inside
//!   EXECUTE (the deterministic preemption points — a kernel is never
//!   torn mid-shard).
//! * **Deadlines** — a job may carry a relative deadline
//!   ([`SessionPool::submit_with_deadline`]); expiry is checked at the
//!   same points as cancellation and answers
//!   [`JobOutcome::DeadlineExceeded`].
//! * **Panic isolation** — a job that panics (its own bug, or a panic
//!   re-raised from the EXECUTE worker team) is caught at the job
//!   boundary and answered in-band as [`AtlasError::JobPanicked`]; the
//!   worker thread and the rest of the pool keep serving, and every
//!   shared lock recovers from poison instead of unwrapping it.
//! * **Fault injection** — a seeded [`FaultPlan`] deterministically
//!   injects panics, forced cancellations, deadline pressure and
//!   allocation failures at named sites (zero-cost when disabled); see
//!   [`crate::fault`].
//!
//! Everything a job *returns* is deterministic: outputs carry model
//! time (simulated seconds), counts and amplitudes — never wall-clock
//! readings or cache-hit flags, so a response stream is byte-identical
//! across runs, worker counts and cache states. Wall-clock and cache
//! behavior are observable only in the aggregate [`PoolStats`]. The
//! single wall-clock read in this crate is `wall_now`, used only to
//! evaluate deadlines.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atlas_circuit::Circuit;
use atlas_core::config::{AtlasConfig, MemoryBudget};
use atlas_core::session::{CircuitFingerprint, CompiledPlan, Planner};
use atlas_error::AtlasError;
use atlas_ilp::SolveStatus;
use atlas_machine::{CostModel, MachineSpec};
use atlas_sampler::PauliString;
use atlas_statevec::{scratch, StateVector};
use atlas_telemetry::SpanStart;

use crate::fault::{FaultPlan, FaultSite};

/// The one audited wall-clock read of the serve crate. Deadlines are
/// *defined* against real elapsed time, so they cannot be modeled; all
/// deterministic outputs stay clear of this function.
fn wall_now() -> Instant {
    // lint: allow(wall-clock) — deadlines are defined against real elapsed time; single audited read site.
    Instant::now()
}

/// Locks a mutex, recovering from poison instead of propagating it.
///
/// Every critical section in this module leaves its data consistent at
/// every panic point (counters are monotonic, the cache map is mutated
/// insert-last), so the poison flag carries no information the pool
/// needs — a panicked job must not wedge the shared locks for everyone
/// else.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Pool shape: worker count, queue bound, plan-cache bound, and the
/// (normally disabled) fault-injection schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing jobs. Each worker runs one job at a
    /// time; EXECUTE-level parallelism inside a job is governed by
    /// [`AtlasConfig::threads`] as usual.
    pub workers: usize,
    /// Maximum number of *queued* (not yet dispatched) jobs before
    /// [`SessionPool::submit`] rejects with [`AtlasError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum number of cached [`CompiledPlan`]s; the least recently
    /// used entry is evicted on overflow.
    pub cache_capacity: usize,
    /// Deterministic fault-injection schedule (disabled by default);
    /// see [`FaultPlan`].
    pub fault_plan: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 32,
            fault_plan: FaultPlan::disabled(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), AtlasError> {
        for (name, v) in [
            ("workers", self.workers),
            ("queue_capacity", self.queue_capacity),
            ("cache_capacity", self.cache_capacity),
        ] {
            if v == 0 {
                return Err(AtlasError::InvalidConfig {
                    reason: format!("ServeConfig::{name} must be at least 1"),
                });
            }
        }
        Ok(())
    }
}

/// What a job asks the pool to do with its circuit.
#[derive(Clone, Debug)]
pub enum JobRequest {
    /// PARTITION only: plan (or hit the cache) and report plan shape.
    Plan,
    /// Full EXECUTE; reports the model clock and the top outcomes, and
    /// gathers the state when the pool's [`AtlasConfig::final_unpermute`]
    /// is set.
    Execute,
    /// EXECUTE, then draw seeded measurement shots.
    Sample {
        /// Number of shots.
        shots: usize,
        /// RNG seed (fixed seed ⇒ byte-identical samples).
        seed: u64,
    },
    /// EXECUTE, then compute one Pauli-string expectation value.
    Expect {
        /// The observable.
        pauli: PauliString,
    },
}

/// The deterministic result payload of a finished job.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// Result of [`JobRequest::Plan`].
    Planned {
        /// Number of stages.
        stages: usize,
        /// Staging objective value (inter-node transition cost).
        staging_cost: i64,
        /// Whether staging is provably optimal.
        optimal: bool,
        /// The generic ILP's solver verdict (`None` for the other
        /// staging algorithms) — surfaces budget-limited plans.
        solve_status: Option<SolveStatus>,
    },
    /// Result of [`JobRequest::Execute`].
    Executed {
        /// Simulated end-to-end seconds (model clock, deterministic).
        model_secs: f64,
        /// Kernels launched.
        kernels: u64,
        /// Total state norm (≈ 1.0; a correctness canary).
        norm: f64,
        /// The 4 most probable outcomes, `(bits, probability)`.
        top: Vec<(u64, f64)>,
        /// Gathered final state, only when the pool's config set
        /// [`AtlasConfig::final_unpermute`].
        state: Option<StateVector>,
    },
    /// Result of [`JobRequest::Sample`]: `(bits, count)` sorted by
    /// descending count, then ascending bits.
    Sampled {
        /// Outcome counts.
        counts: Vec<(u64, u64)>,
    },
    /// Result of [`JobRequest::Expect`].
    Expectation {
        /// ⟨ψ|P|ψ⟩ (real by construction).
        value: f64,
    },
}

/// Terminal state of a job: produced a result, was cancelled, or ran
/// out its deadline.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job ran and produced its output.
    Output(JobOutput),
    /// The job's [`CancelToken`] fired before (or during) EXECUTE.
    Cancelled,
    /// The job's deadline expired before (or during) EXECUTE. A job
    /// submitted with a zero deadline is deterministically expired at
    /// dispatch.
    DeadlineExceeded,
}

/// Cooperative cancellation flag, cloneable and thread-safe.
///
/// Honored at every point where abandoning the job is sound: when the
/// job is dequeued, again after plan lookup, and at every stage barrier
/// inside EXECUTE (shards are never left torn mid-kernel).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A submitted job: its id, its cancel token, and the receiving end of
/// its one-shot result channel.
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    cancel: CancelToken,
    rx: mpsc::Receiver<Result<JobOutcome, AtlasError>>,
}

impl JobHandle {
    /// Pool-assigned job id (also the key of the dequeue log).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This job's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cancellation of this job.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job reaches a terminal state. A pool torn down
    /// before answering reads as [`JobOutcome::Cancelled`].
    pub fn wait(self) -> Result<JobOutcome, AtlasError> {
        self.rx.recv().unwrap_or(Ok(JobOutcome::Cancelled))
    }
}

/// Monotonic aggregate counters of a pool (all since construction).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs that ran to a successful output.
    pub jobs_completed: u64,
    /// Jobs that terminated with a typed error (panicked jobs are
    /// counted under [`jobs_panicked`](PoolStats::jobs_panicked)
    /// instead).
    pub jobs_failed: u64,
    /// Jobs cancelled before or during EXECUTE.
    pub jobs_cancelled: u64,
    /// Jobs whose deadline expired before or during EXECUTE.
    pub jobs_deadline_exceeded: u64,
    /// Jobs that panicked and were answered
    /// [`AtlasError::JobPanicked`] (the pool survived each one).
    pub jobs_panicked: u64,
    /// Submissions rejected at admission: a full queue
    /// ([`AtlasError::Overloaded`]) or a request over the memory budget
    /// ([`AtlasError::ResourceExhausted`]). Rejected jobs never consume
    /// a job id.
    pub jobs_rejected: u64,
    /// Plan-cache hits (PARTITION skipped).
    pub cache_hits: u64,
    /// Plan-cache misses (PARTITION ran).
    pub cache_misses: u64,
    /// Plans evicted by the LRU policy.
    pub cache_evictions: u64,
    /// Plans currently cached.
    pub cache_entries: usize,
    /// High-water mark of the queue depth.
    pub max_queued: usize,
    /// Worker threads.
    pub workers: usize,
    /// Offset-table memo hits inside the workers' scratch arenas
    /// (see `atlas_statevec::Scratch`); covers the worker threads
    /// themselves, i.e. everything when [`AtlasConfig::threads`] is 1.
    pub scratch_table_hits: u64,
    /// Offset-table memo misses (tables built).
    pub scratch_table_misses: u64,
    /// Offset-table memo LRU evictions.
    pub scratch_table_evictions: u64,
    /// Plans run through the `atlas-analyze` cache admission gate (once
    /// per cache miss, under the cache lock — worker-count-invariant).
    pub analyze_plans_checked: u64,
    /// Plans the verifier rejected (never cached, job fails typed).
    pub analyze_plans_rejected: u64,
}

impl PoolStats {
    /// Plan-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One queued job.
struct QueuedJob {
    id: u64,
    circuit: Circuit,
    request: JobRequest,
    cancel: CancelToken,
    /// Absolute expiry instant, armed at submission (`None` = no
    /// deadline).
    deadline: Option<Instant>,
    tx: mpsc::Sender<Result<JobOutcome, AtlasError>>,
    /// Telemetry anchor taken at submission — the `serve.queue_wait`
    /// span runs from here to dispatch (wall-clock only, never in the
    /// response stream).
    submitted: SpanStart,
}

/// Scheduler state under the queue mutex: per-tenant FIFOs plus the
/// round-robin ring. Invariant: a tenant key is in `ring` if and only
/// if its FIFO is non-empty.
#[derive(Default)]
struct SchedState {
    tenants: HashMap<String, VecDeque<QueuedJob>>,
    ring: VecDeque<String>,
    queued: usize,
    in_flight: usize,
    paused: bool,
    shutdown: bool,
    max_queued: usize,
    dequeue_log: Vec<u64>,
}

impl SchedState {
    /// Round-robin dispatch: next tenant in the ring gives up exactly
    /// one job.
    fn dequeue(&mut self) -> Option<QueuedJob> {
        let tenant = self.ring.pop_front()?;
        let fifo = self
            .tenants
            .get_mut(&tenant)
            .expect("ring invariant: tenant has a FIFO");
        let job = fifo.pop_front().expect("ring invariant: FIFO non-empty");
        if fifo.is_empty() {
            self.tenants.remove(&tenant);
        } else {
            self.ring.push_back(tenant);
        }
        self.queued -= 1;
        self.in_flight += 1;
        self.dequeue_log.push(job.id);
        Some(job)
    }
}

/// The LRU plan cache. Misses plan under this lock — that is the
/// plan-exactly-once guarantee, and it intentionally serializes
/// PARTITION (EXECUTE never holds it).
///
/// Poison-safety: the map is only mutated by a final insert after all
/// fallible work, and the counters are monotonic, so a panic under this
/// lock (e.g. an injected [`FaultSite::PlanPanic`]) leaves the cache
/// consistent — [`lock_clean`] then clears the poison flag.
struct PlanCache {
    map: HashMap<CircuitFingerprint, (u64, Arc<CompiledPlan>)>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Admission-gate outcomes (see [`plan_for`]): every freshly planned
    /// circuit is verified before insertion, so a malformed plan can
    /// never be cached — let alone replayed into another tenant's job.
    analyze_checked: u64,
    analyze_rejected: u64,
}

/// How long a submission is willing to wait for queue space.
enum Wait {
    /// Reject immediately when the queue is full.
    FastFail,
    /// Wait for space indefinitely.
    Block,
    /// Wait at most this long, then reject typed.
    Timeout(Duration),
}

/// State shared between the pool handle and its workers.
struct Shared {
    planner: Planner,
    queue_capacity: usize,
    /// Configured worker-team size (stable across shutdown, unlike the
    /// join-handle vector `stats` used to read).
    worker_count: usize,
    /// The fault-injection schedule ([`FaultPlan::disabled`] outside
    /// chaos tests).
    fault: FaultPlan,
    sched: Mutex<SchedState>,
    /// Wakes workers when work arrives (or on pause/shutdown edges).
    job_ready: Condvar,
    /// Wakes blocked submitters when queue space frees up.
    space_ready: Condvar,
    /// Wakes `wait_idle` when the pool drains.
    idle: Condvar,
    cache: Mutex<PlanCache>,
    next_id: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_deadline_exceeded: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_rejected: AtomicU64,
    /// Per-worker `(scratch hits, misses, evictions)` snapshots: each
    /// worker owns one slot and republishes its thread-local scratch
    /// totals after every job.
    scratch_totals: Vec<[AtomicU64; 3]>,
}

/// A running multi-tenant session pool. See the module docs for the
/// scheduling, caching, backpressure and failure contract.
pub struct SessionPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SessionPool {
    /// Spawns the worker team for one machine shape + cost model +
    /// simulation config + pool shape.
    ///
    /// `cfg` is validated up front (same rules as [`Planner::plan`]);
    /// `serve.workers/queue_capacity/cache_capacity` must all be ≥ 1.
    /// If the OS refuses a worker thread mid-construction, the workers
    /// already started are torn down and
    /// [`AtlasError::WorkerSpawnFailed`] is returned — the constructor
    /// never panics on spawn failure.
    pub fn new(
        spec: MachineSpec,
        cost: CostModel,
        cfg: AtlasConfig,
        serve: ServeConfig,
    ) -> Result<Self, AtlasError> {
        cfg.validate()?;
        serve.validate()?;
        let shared = Arc::new(Shared {
            planner: Planner::new(spec, cost, cfg),
            queue_capacity: serve.queue_capacity,
            worker_count: serve.workers,
            fault: serve.fault_plan.clone(),
            sched: Mutex::new(SchedState::default()),
            job_ready: Condvar::new(),
            space_ready: Condvar::new(),
            idle: Condvar::new(),
            cache: Mutex::new(PlanCache {
                map: HashMap::new(),
                tick: 0,
                capacity: serve.cache_capacity,
                hits: 0,
                misses: 0,
                evictions: 0,
                analyze_checked: 0,
                analyze_rejected: 0,
            }),
            next_id: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_deadline_exceeded: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            scratch_totals: (0..serve.workers)
                .map(|_| [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)])
                .collect(),
        });
        let mut workers = Vec::with_capacity(serve.workers);
        for slot in 0..serve.workers {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("atlas-serve-{slot}"))
                .spawn(move || worker_loop(&worker_shared, slot))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    let started = workers.len();
                    // The partial pool's Drop path shuts the started
                    // workers down cleanly (they have no queued work).
                    drop(SessionPool { shared, workers });
                    return Err(AtlasError::WorkerSpawnFailed {
                        started,
                        requested: serve.workers,
                        reason: e.to_string(),
                    });
                }
            }
        }
        Ok(SessionPool { shared, workers })
    }

    /// The simulation config jobs run under.
    pub fn config(&self) -> &AtlasConfig {
        self.shared.planner.config()
    }

    /// Submits a job for `tenant`, fast-failing with
    /// [`AtlasError::Overloaded`] when the queue is full.
    pub fn submit(
        &self,
        tenant: &str,
        circuit: Circuit,
        request: JobRequest,
    ) -> Result<JobHandle, AtlasError> {
        self.submit_inner(tenant, circuit, request, Wait::FastFail, None)
    }

    /// Submits a job for `tenant`, blocking until queue space is
    /// available instead of rejecting.
    pub fn submit_blocking(
        &self,
        tenant: &str,
        circuit: Circuit,
        request: JobRequest,
    ) -> Result<JobHandle, AtlasError> {
        self.submit_inner(tenant, circuit, request, Wait::Block, None)
    }

    /// Submits a job for `tenant`, waiting at most `wait` for queue
    /// space before rejecting with [`AtlasError::Overloaded`] — bounded
    /// backpressure, so a stalled pool cannot hold a client hostage the
    /// way [`submit_blocking`](SessionPool::submit_blocking) would.
    pub fn submit_timeout(
        &self,
        tenant: &str,
        circuit: Circuit,
        request: JobRequest,
        wait: Duration,
    ) -> Result<JobHandle, AtlasError> {
        self.submit_inner(tenant, circuit, request, Wait::Timeout(wait), None)
    }

    /// Submits a job with a relative `deadline`, measured from now.
    ///
    /// The queue-space wait is bounded by the same deadline (expiry
    /// while still waiting for a slot reads as
    /// [`AtlasError::Overloaded`]); once queued, a job whose deadline
    /// expires before EXECUTE or at a stage barrier inside it is
    /// answered [`JobOutcome::DeadlineExceeded`]. A zero deadline is
    /// deterministically expired at dispatch — useful for tests and for
    /// load shedding.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        circuit: Circuit,
        request: JobRequest,
        deadline: Duration,
    ) -> Result<JobHandle, AtlasError> {
        self.submit_inner(
            tenant,
            circuit,
            request,
            Wait::Timeout(deadline),
            Some(deadline),
        )
    }

    fn submit_inner(
        &self,
        tenant: &str,
        circuit: Circuit,
        request: JobRequest,
        wait: Wait,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, AtlasError> {
        let shared = &self.shared;
        // Resource admission: reject a request whose peak bytes exceed
        // the budget before it holds a queue slot — and long before
        // EXECUTE would attempt the allocation. Rejected jobs never
        // consume a job id, so accepted ids stay dense in submission
        // order regardless of rejections.
        if let Err(e) = shared
            .planner
            .config()
            .memory_budget
            .admit(circuit.num_qubits(), shared.planner.spec().local_qubits)
        {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let wait_until = match wait {
            Wait::Timeout(d) => wall_now().checked_add(d),
            _ => None,
        };
        let deadline_at = deadline.and_then(|d| wall_now().checked_add(d));
        let mut sched = lock_clean(&shared.sched);
        while sched.queued >= shared.queue_capacity {
            match wait {
                Wait::FastFail => {
                    shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(AtlasError::Overloaded {
                        queued: sched.queued,
                        capacity: shared.queue_capacity,
                    });
                }
                Wait::Block => {
                    sched = shared
                        .space_ready
                        .wait(sched)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Wait::Timeout(_) => match wait_until {
                    // An overflowed expiry instant is effectively
                    // unbounded: fall back to blocking.
                    None => {
                        sched = shared
                            .space_ready
                            .wait(sched)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(until) => {
                        let remaining = until.saturating_duration_since(wall_now());
                        if remaining.is_zero() {
                            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                            return Err(AtlasError::Overloaded {
                                queued: sched.queued,
                                capacity: shared.queue_capacity,
                            });
                        }
                        let (guard, _timed_out) = shared
                            .space_ready
                            .wait_timeout(sched, remaining)
                            .unwrap_or_else(PoisonError::into_inner);
                        sched = guard;
                    }
                },
            }
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let (tx, rx) = mpsc::channel();
        let job = QueuedJob {
            id,
            circuit,
            request,
            cancel: cancel.clone(),
            deadline: deadline_at,
            tx,
            submitted: shared.planner.config().recorder.start(),
        };
        match sched.tenants.entry(tenant.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push_back(job),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(VecDeque::from([job]));
                sched.ring.push_back(tenant.to_string());
            }
        }
        sched.queued += 1;
        sched.max_queued = sched.max_queued.max(sched.queued);
        shared.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        drop(sched);
        shared.job_ready.notify_one();
        Ok(JobHandle { id, cancel, rx })
    }

    /// Stops dispatching (queued jobs stay queued; in-flight jobs
    /// finish). For tests that need to line up a queue deterministically.
    pub fn pause(&self) {
        lock_clean(&self.shared.sched).paused = true;
    }

    /// Resumes dispatching after [`SessionPool::pause`].
    pub fn resume(&self) {
        lock_clean(&self.shared.sched).paused = false;
        self.shared.job_ready.notify_all();
    }

    /// Blocks until no job is queued or in flight.
    pub fn wait_idle(&self) {
        let mut sched = lock_clean(&self.shared.sched);
        while sched.queued > 0 || sched.in_flight > 0 {
            sched = self
                .shared
                .idle
                .wait(sched)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The job ids in dispatch order — the observable fairness record
    /// (tests assert round-robin interleaving on it).
    pub fn dequeue_log(&self) -> Vec<u64> {
        lock_clean(&self.shared.sched).dequeue_log.clone()
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> PoolStats {
        let shared = &self.shared;
        let (
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            analyze_checked,
            analyze_rejected,
        ) = {
            let c = lock_clean(&shared.cache);
            (
                c.hits,
                c.misses,
                c.evictions,
                c.map.len(),
                c.analyze_checked,
                c.analyze_rejected,
            )
        };
        let max_queued = lock_clean(&shared.sched).max_queued;
        let mut scratch = [0u64; 3];
        for slot in &shared.scratch_totals {
            for (acc, cell) in scratch.iter_mut().zip(slot) {
                *acc += cell.load(Ordering::Relaxed);
            }
        }
        let stats = PoolStats {
            jobs_submitted: shared.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: shared.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: shared.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: shared.jobs_cancelled.load(Ordering::Relaxed),
            jobs_deadline_exceeded: shared.jobs_deadline_exceeded.load(Ordering::Relaxed),
            jobs_panicked: shared.jobs_panicked.load(Ordering::Relaxed),
            jobs_rejected: shared.jobs_rejected.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            max_queued,
            workers: shared.worker_count,
            scratch_table_hits: scratch[0],
            scratch_table_misses: scratch[1],
            scratch_table_evictions: scratch[2],
            analyze_plans_checked: analyze_checked,
            analyze_plans_rejected: analyze_rejected,
        };
        // Absorb the pool counters into the unified metrics registry, so
        // a trace export carries them alongside the span-level data.
        let rec = &shared.planner.config().recorder;
        if rec.is_enabled() {
            rec.metric_set("serve.jobs_submitted", stats.jobs_submitted);
            rec.metric_set("serve.jobs_completed", stats.jobs_completed);
            rec.metric_set("serve.jobs_failed", stats.jobs_failed);
            rec.metric_set("serve.jobs_cancelled", stats.jobs_cancelled);
            rec.metric_set("serve.jobs_deadline_exceeded", stats.jobs_deadline_exceeded);
            rec.metric_set("serve.jobs_panicked", stats.jobs_panicked);
            rec.metric_set("serve.jobs_rejected", stats.jobs_rejected);
            rec.metric_set("serve.plan_cache.entries", stats.cache_entries as u64);
            rec.metric_set("serve.queue.max_depth", stats.max_queued as u64);
            rec.metric_set("serve.workers", stats.workers as u64);
            rec.metric_set("analyze.plans_checked", stats.analyze_plans_checked);
            rec.metric_set("analyze.plans_rejected", stats.analyze_plans_rejected);
        }
        stats
    }

    /// Drains the queue, joins the workers and returns the final
    /// counters. Queued jobs still run (cancelled ones are answered
    /// [`JobOutcome::Cancelled`]).
    pub fn shutdown(mut self) -> PoolStats {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut sched = lock_clean(&self.shared.sched);
        sched.shutdown = true;
        // Shutdown overrides pause: a paused, dropped pool must not
        // hang its workers.
        sched.paused = false;
        drop(sched);
        self.shared.job_ready.notify_all();
    }
}

impl Drop for SessionPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Looks up (or computes) the plan for `circuit`. Planning happens
/// under the cache lock — see [`PlanCache`].
fn plan_for(
    shared: &Shared,
    circuit: &Circuit,
    job_id: u64,
) -> Result<Arc<CompiledPlan>, AtlasError> {
    let rec = &shared.planner.config().recorder;
    let fp = CircuitFingerprint::of(circuit);
    let mut cache = lock_clean(&shared.cache);
    cache.tick += 1;
    let tick = cache.tick;
    if let Some(entry) = cache.map.get_mut(&fp) {
        entry.0 = tick;
        let plan = Arc::clone(&entry.1);
        cache.hits += 1;
        rec.metric_add("serve.plan_cache.hits", 1);
        return Ok(plan);
    }
    cache.misses += 1;
    rec.metric_add("serve.plan_cache.misses", 1);
    if shared.fault.should_inject(FaultSite::PlanPanic, job_id) {
        // Deliberately under the cache lock, after the miss accounting:
        // this is the genuine poison-the-lock case the recovery tests
        // need (the cache state at this point is already consistent).
        panic!("injected fault: panic under the plan-cache lock at job {job_id}");
    }
    let plan = Arc::new(shared.planner.plan(circuit)?);
    // Cache admission gate: verify the freshly compiled plan before it
    // becomes shared state. A plan that fails static analysis is never
    // inserted, so it cannot be replayed into another tenant's job; the
    // submitting job fails with the verifier's typed diagnostic.
    cache.analyze_checked += 1;
    if let Err(violation) = atlas_analyze::verify_plan(circuit, plan.plan(), plan.cost()) {
        cache.analyze_rejected += 1;
        rec.metric_add("analyze.plans_rejected", 1);
        return Err(violation.into());
    }
    if cache.map.len() >= cache.capacity {
        let coldest = cache
            .map
            .iter()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(k, _)| *k)
            .expect("cache at capacity is non-empty");
        cache.map.remove(&coldest);
        cache.evictions += 1;
        rec.metric_add("serve.plan_cache.evictions", 1);
    }
    cache.map.insert(fp, (tick, plan.clone()));
    Ok(plan)
}

/// Runs one job to its output, polling cancellation and the deadline at
/// every stage barrier inside EXECUTE.
fn run_job(
    plan: &CompiledPlan,
    circuit: &Circuit,
    request: &JobRequest,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> Result<JobOutcome, AtlasError> {
    // The stage-barrier probe: EXECUTE abandons the run at the next
    // barrier once this returns true. A probe that never fires leaves
    // results byte-identical to an unprobed run.
    let probe = || cancel.is_cancelled() || deadline.is_some_and(|d| wall_now() >= d);
    let interrupted = || {
        if cancel.is_cancelled() {
            JobOutcome::Cancelled
        } else {
            JobOutcome::DeadlineExceeded
        }
    };
    match request {
        JobRequest::Plan => {
            let p = plan.plan();
            Ok(JobOutcome::Output(JobOutput::Planned {
                stages: p.stages.len(),
                staging_cost: p.staging_cost,
                optimal: p.staging_optimal,
                solve_status: p.solve_status,
            }))
        }
        JobRequest::Execute => match plan.execute_with(circuit, &probe)? {
            None => Ok(interrupted()),
            Some(run) => Ok(JobOutcome::Output(JobOutput::Executed {
                model_secs: run.report.total_secs,
                kernels: run.report.kernels,
                norm: run.measurements.total_norm(),
                top: run.measurements.top(4),
                state: run.state,
            })),
        },
        JobRequest::Sample { shots, seed } => match plan.execute_with(circuit, &probe)? {
            None => Ok(interrupted()),
            Some(run) => Ok(JobOutcome::Output(JobOutput::Sampled {
                counts: run.measurements.sample_counts(*shots, *seed),
            })),
        },
        JobRequest::Expect { pauli } => {
            if pauli.num_qubits() != circuit.num_qubits() {
                return Err(AtlasError::InvalidConfig {
                    reason: format!(
                        "Pauli string spans {} qubit(s), circuit has {}",
                        pauli.num_qubits(),
                        circuit.num_qubits()
                    ),
                });
            }
            match plan.execute_with(circuit, &probe)? {
                None => Ok(interrupted()),
                Some(run) => Ok(JobOutcome::Output(JobOutput::Expectation {
                    value: run.measurements.expectation(pauli),
                })),
            }
        }
    }
}

/// Renders a panic payload as a short summary for
/// [`AtlasError::JobPanicked`] (the `&str`/`String` message when the
/// payload carries one).
fn panic_summary(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Takes one dispatched job to its terminal result, isolating panics at
/// this boundary: a panic anywhere inside (the job's own logic, EXECUTE
/// worker panics re-raised by the statevec pool, or an injected
/// [`FaultSite::WorkerPanic`]/[`FaultSite::PlanPanic`]) becomes a typed
/// [`AtlasError::JobPanicked`] and the worker thread survives.
fn process_job(shared: &Shared, job: &QueuedJob) -> Result<JobOutcome, AtlasError> {
    match catch_unwind(AssertUnwindSafe(|| process_job_inner(shared, job))) {
        Ok(result) => result,
        Err(payload) => Err(AtlasError::JobPanicked {
            job: job.id,
            payload_summary: panic_summary(payload.as_ref()),
        }),
    }
}

fn process_job_inner(shared: &Shared, job: &QueuedJob) -> Result<JobOutcome, AtlasError> {
    let fault = &shared.fault;
    // Injected faults fire in a fixed priority order, so a job selected
    // by several sites still has exactly one deterministic outcome.
    if fault.should_inject(FaultSite::WorkerPanic, job.id) {
        panic!("injected fault: worker panic at job {}", job.id);
    }
    if fault.should_inject(FaultSite::ForceCancel, job.id) {
        job.cancel.cancel();
    }
    let forced_deadline = fault.should_inject(FaultSite::DeadlinePressure, job.id);
    let expired = || forced_deadline || job.deadline.is_some_and(|d| wall_now() >= d);
    if job.cancel.is_cancelled() {
        return Ok(JobOutcome::Cancelled);
    }
    if expired() {
        return Ok(JobOutcome::DeadlineExceeded);
    }
    let plan = plan_for(shared, &job.circuit, job.id)?;
    // Re-check after the (possibly long) planning phase; EXECUTE itself
    // re-checks at every stage barrier via the probe in `run_job`.
    if job.cancel.is_cancelled() {
        return Ok(JobOutcome::Cancelled);
    }
    if expired() {
        return Ok(JobOutcome::DeadlineExceeded);
    }
    if fault.should_inject(FaultSite::AllocFail, job.id) {
        // Model an admission-layer miss: the allocation this job would
        // have made is refused as if the budget were zero.
        return Err(AtlasError::ResourceExhausted {
            needed: MemoryBudget::peak_bytes(
                job.circuit.num_qubits(),
                shared.planner.spec().local_qubits,
            ),
            budget: 0,
        });
    }
    run_job(&plan, &job.circuit, &job.request, &job.cancel, job.deadline)
}

/// Numeric request tag carried by `serve.job` span args.
fn request_kind(request: &JobRequest) -> u64 {
    match request {
        JobRequest::Plan => 0,
        JobRequest::Execute => 1,
        JobRequest::Sample { .. } => 2,
        JobRequest::Expect { .. } => 3,
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let rec = shared.planner.config().recorder.clone();
    loop {
        // Take the next job (or exit once shut down and drained).
        let job = {
            let mut sched = lock_clean(&shared.sched);
            loop {
                if sched.shutdown && sched.queued == 0 {
                    return;
                }
                if !sched.paused {
                    if let Some(job) = sched.dequeue() {
                        break job;
                    }
                }
                sched = shared
                    .job_ready
                    .wait(sched)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.space_ready.notify_one();

        // Queue latency: submission → dispatch. Wall-clock, so det =
        // false (its duration and very presence depend on scheduling).
        rec.span(
            "serve.queue_wait",
            job.submitted,
            false,
            0,
            0,
            job.id as u32,
            &[],
        );
        let job_t = rec.start();
        let result = process_job(shared, &job);
        let outcome = match &result {
            Ok(JobOutcome::Output(_)) => 0u64,
            Ok(JobOutcome::Cancelled) => 1,
            Ok(JobOutcome::DeadlineExceeded) => 3,
            Err(AtlasError::JobPanicked { .. }) => 4,
            Err(_) => 2,
        };
        // `ord` is the pool-assigned job id (submission order), so the
        // span multiset is identical for every worker count.
        rec.span(
            "serve.job",
            job_t,
            true,
            0,
            0,
            job.id as u32,
            &[("kind", request_kind(&job.request)), ("outcome", outcome)],
        );
        rec.flush();
        match &result {
            Ok(JobOutcome::Output(_)) => &shared.jobs_completed,
            Ok(JobOutcome::Cancelled) => &shared.jobs_cancelled,
            Ok(JobOutcome::DeadlineExceeded) => &shared.jobs_deadline_exceeded,
            Err(AtlasError::JobPanicked { .. }) => &shared.jobs_panicked,
            Err(_) => &shared.jobs_failed,
        }
        .fetch_add(1, Ordering::Relaxed);
        // Republish this worker's thread-local scratch-memo totals
        // (monotonic, so a plain store is enough).
        let totals =
            scratch::with_thread(|s| [s.table_hits(), s.table_misses(), s.table_evictions()]);
        for (cell, v) in shared.scratch_totals[slot].iter().zip(totals) {
            cell.store(v, Ordering::Relaxed);
        }
        // The submitter may have dropped its handle; that's fine.
        let _ = job.tx.send(result);

        let mut sched = lock_clean(&shared.sched);
        sched.in_flight -= 1;
        if sched.queued == 0 && sched.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}
