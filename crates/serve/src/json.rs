//! Minimal JSON for the NDJSON serve protocol.
//!
//! The workspace is offline (no serde), and the protocol is a flat
//! one-object-per-line schema, so a small recursive-descent parser and
//! a string escaper cover everything `atlas-serve` needs. The parser
//! accepts strict JSON (RFC 8259) values; numbers are held as `f64`,
//! which is exact for every integer the protocol carries (qubit counts,
//! shot counts, seeds below 2^53).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the protocol has no duplicate keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects alike.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, rejecting
    /// fractions and out-of-range values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // consume opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        *pos += 4;
                        // Surrogate pairs are outside the protocol's
                        // character set; reject rather than mis-decode.
                        let ch = char::from_u32(cp)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(ch);
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                }
            }
            Some(&c) if c < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let s = &b[*pos..];
                let ch = std::str::from_utf8(s)
                    .map_err(|e| e.to_string())?
                    .chars()
                    .next()
                    .unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_lines() {
        let v = parse(
            r#"{"id":"j1","tenant":"a","op":"sample","family":"qaoa","n":8,"shots":64,"seed":7}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("j1"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(8));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a":[1,2.5,-3e2,true,false,null],"s":"x\n\"\u0041\\"}"#).unwrap();
        match v.get("a").unwrap() {
            Json::Arr(items) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[2].as_f64(), Some(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"A\\"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            r#"{"a":1} trailing"#,
            "\"unterminated",
            "{\"a\":\"\u{1}\"}",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" \\back\u{7}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
