//! Exact all-to-all traffic analysis for stage transitions.
//!
//! A stage transition remaps physical qubits: a bit permutation `π` of the
//! global amplitude index, optionally composed with a XOR `flip` (from
//! anti-diagonal insular gates relabeling shard bits). Because the map is
//! affine over GF(2), the traffic between any source and destination shard
//! is either zero or exactly `2^{L-f}` amplitudes, where `f` is the number
//! of destination shard bits that are sourced from *local* bits of the
//! origin shard. This module computes that matrix exactly — it is what the
//! clock model charges, and in functional mode it doubles as the routing
//! table's sanity check.

use atlas_qmath::QubitPermutation;

/// Amplitude flow from one shard to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficEntry {
    /// Source shard index (old layout).
    pub src: usize,
    /// Destination shard index (new layout).
    pub dst: usize,
    /// Number of amplitudes moving along this edge.
    pub amps: u64,
}

/// Computes the exact shard-to-shard traffic matrix for the transition
/// `new_index = perm(old_index) ^ flip` on an `n`-qubit state with `2^L`
/// amplitudes per shard.
///
/// Self-edges (`src == dst`) are included — callers decide whether local
/// rearrangement is charged.
pub fn traffic_matrix(
    perm: &QubitPermutation,
    flip: u64,
    n: u32,
    local_qubits: u32,
) -> Vec<TrafficEntry> {
    assert_eq!(perm.len() as u32, n);
    let l = local_qubits;
    let shard_bits = n - l;
    let num_shards = 1usize << shard_bits;

    // For each destination shard bit j (global bit l + j), find its source.
    // inverse: src bit i maps to dst bit perm.dst(i).
    let inv = perm.inverse();
    // dst-shard bit j ← src bit inv(l + j); record whether that source is a
    // shard bit (deterministic given src shard) or a local bit (free).
    let mut from_shard: Vec<(u32, u32)> = Vec::new(); // (dst_bit_j, src_shard_bit)
    let mut free_bits: Vec<u32> = Vec::new(); // dst_bit_j positions fed by local bits
    for j in 0..shard_bits {
        let src = inv.dst(l + j);
        if src >= l {
            from_shard.push((j, src - l));
        } else {
            free_bits.push(j);
        }
    }
    let f = free_bits.len() as u32;
    let amps_per_edge = 1u64 << (l - f.min(l));
    let flip_shard = (flip >> l) & ((1u64 << shard_bits) - 1);

    let mut entries = Vec::with_capacity(num_shards << f);
    for s in 0..num_shards {
        let mut base = 0usize;
        for &(j, sb) in &from_shard {
            if (s >> sb) & 1 == 1 {
                base |= 1 << j;
            }
        }
        base ^= flip_shard as usize;
        for combo in 0..1usize << f {
            let mut dst = base;
            for (t, &j) in free_bits.iter().enumerate() {
                if (combo >> t) & 1 == 1 {
                    dst ^= 1 << j;
                }
            }
            entries.push(TrafficEntry {
                src: s,
                dst,
                amps: amps_per_edge,
            });
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_permutation_is_all_self_edges() {
        let perm = QubitPermutation::identity(6);
        let entries = traffic_matrix(&perm, 0, 6, 4);
        assert_eq!(entries.len(), 4);
        for e in &entries {
            assert_eq!(e.src, e.dst);
            assert_eq!(e.amps, 16);
        }
    }

    #[test]
    fn total_amplitudes_conserved() {
        // Swap a local bit with a shard bit: every shard splits in half.
        let mut map: Vec<u32> = (0..6).collect();
        map.swap(0, 5); // local bit 0 ↔ shard bit (L=4: bit 5 = shard bit 1)
        let perm = QubitPermutation::from_map(map);
        let entries = traffic_matrix(&perm, 0, 6, 4);
        let total: u64 = entries.iter().map(|e| e.amps).sum();
        assert_eq!(total, 1 << 6);
        // Each shard has one free destination bit → 2 edges of 8 amps each.
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().all(|e| e.amps == 8));
    }

    #[test]
    fn flip_relabels_destinations() {
        let perm = QubitPermutation::identity(5);
        // flip shard bit 0 (global bit 3 with L=3).
        let entries = traffic_matrix(&perm, 1 << 3, 5, 3);
        for e in &entries {
            assert_eq!(e.dst, e.src ^ 1, "flip must XOR the shard index");
        }
    }

    #[test]
    fn matrix_matches_exhaustive_index_walk() {
        // Cross-check against brute-force enumeration of every amplitude.
        use std::collections::HashMap;
        let n = 7u32;
        let l = 3u32;
        let perm = QubitPermutation::from_map(vec![4, 1, 6, 3, 0, 5, 2]);
        let flip = 0b1010010u64;
        let entries = traffic_matrix(&perm, flip, n, l);
        let mut expect: HashMap<(usize, usize), u64> = HashMap::new();
        for old in 0..1u64 << n {
            let new = perm.apply_index(old) ^ flip;
            let src = (old >> l) as usize;
            let dst = (new >> l) as usize;
            *expect.entry((src, dst)).or_insert(0) += 1;
        }
        let mut got: HashMap<(usize, usize), u64> = HashMap::new();
        for e in &entries {
            *got.entry((e.src, e.dst)).or_insert(0) += e.amps;
        }
        assert_eq!(expect, got);
    }
}
