//! The simulated cluster: shard storage, kernel execution, collective
//! communication, and the bulk-synchronous clock.

use crate::cost::{CostModel, AMP_BYTES};
use crate::topology::MachineSpec;
use crate::traffic::traffic_matrix;
use atlas_circuit::Gate;
use atlas_qmath::{Complex64, IndexPermuter, Matrix, QubitPermutation};
use atlas_statevec::{
    apply_batched, apply_matrix, measure, scratch, FastKernel, Pool, Scratch, StateVector,
};
use atlas_telemetry::{secs_to_ns, Recorder};
use std::cell::UnsafeCell;
use std::sync::Arc;

/// The (local qubit positions, reduced unitary) part list of a
/// shared-memory kernel after per-shard insular specialization.
pub type ShmPartList = Vec<(Vec<u32>, Matrix)>;

/// One instruction of a per-shard program: the executor compiles each
/// stage's kernels into one [`ShardProgram`] per shard, and the machine
/// runs the programs of independent shards concurrently (the simulated
/// GPUs really do run in parallel on host threads).
#[derive(Clone, Debug)]
pub enum ShardOp {
    /// A fusion kernel over local qubit positions, pre-classified into its
    /// fast form, with a per-shard scalar folded in where possible.
    Fusion {
        /// Kernel qubit positions (all `< L`), shared across shards.
        qubits: Arc<Vec<u32>>,
        /// The compiled kernel (shared between shards with equal insular
        /// bit patterns).
        kernel: Arc<FastKernel>,
        /// Scalar folded into the kernel entries (`ONE` when absent).
        scale: Complex64,
    },
    /// A shared-memory kernel: per-shard specialized (qubits, unitary)
    /// parts applied in order. The shared-memory active window only
    /// matters for the cost model (already folded into `per_amp_ns` by
    /// the planner) — functionally each part is a whole-shard pass. The
    /// parts are `Arc`-shared between shards whose insular bit patterns
    /// agree (the compiler builds each distinct specialization once).
    ShmParts {
        /// The specialized parts, in program order.
        parts: Arc<ShmPartList>,
        /// Plan-level per-amplitude gate cost (ns) charged for the kernel.
        per_amp_ns: f64,
        /// Per-shard scalar applied after the parts (`ONE` when absent) —
        /// equivalent to the former trailing `1×1` scalar part, kept out
        /// of `parts` so those can be pattern-shared.
        scale: Complex64,
    },
    /// Multiply the whole shard by a scalar (insular factor that could not
    /// fold into any kernel).
    Scale(
        /// The scalar factor.
        Complex64,
    ),
}

/// The compiled instruction sequence one shard executes within a stage.
pub type ShardProgram = Vec<ShardOp>;

/// Shared mutable view of the shard buffers for provably disjoint
/// per-shard writes (worker `s` only touches `shards[s]`).
struct ShardCell<'a>(&'a [UnsafeCell<Vec<Complex64>>]);
// SAFETY: sharing is sound because every access goes through `shard_mut`,
// whose contract confines worker `s` to `shards[s]` — per-shard write sets
// are pairwise disjoint. `atlas-analyze` discharges that argument
// statically: `verify_stage_programs` effect-types every `ShardOp` and
// proves the programs' footprints never cross a shard boundary.
unsafe impl Sync for ShardCell<'_> {}

impl ShardCell<'_> {
    /// # Safety
    /// Caller must guarantee shard `s` is not accessed concurrently.
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard_mut(&self, s: usize) -> &mut Vec<Complex64> {
        // SAFETY: caller contract — no concurrent access to shard `s` —
        // makes this the only live reference to the buffer.
        unsafe { &mut *self.0[s].get() }
    }
}

/// `machine.step` event `kind` argument: a compute step (stage barrier).
pub const STEP_COMPUTE: u64 = 0;
/// `machine.step` event `kind` argument: a communication step
/// (all-to-all reshuffle or a baseline's modeled exchange).
pub const STEP_COMM: u64 = 1;

/// Republishes this worker thread's monotonic Scratch offset-table memo
/// counters under its telemetry lane, so the metrics snapshot can sum
/// them after the pool threads exit. No-op on a disabled recorder.
fn publish_scratch_counters(rec: &Recorder, scr: &Scratch) {
    if rec.is_enabled() {
        rec.metric_lane_set("scratch.table_hits", scr.table_hits());
        rec.metric_lane_set("scratch.table_misses", scr.table_misses());
        rec.metric_lane_set("scratch.table_evictions", scr.table_evictions());
    }
}

/// Simulated time spent in one bulk-synchronous step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTiming {
    /// Max-over-devices kernel time (s).
    pub compute: f64,
    /// All-to-all communication time (s).
    pub comm: f64,
    /// DRAM-offload swap time (s), zero when every shard is GPU-resident.
    pub swap: f64,
    /// Bytes this step moved between GPUs within a node.
    pub bytes_intra: u64,
    /// Bytes this step moved between nodes.
    pub bytes_inter: u64,
}

/// Aggregate clock and traffic report.
#[derive(Clone, Debug, Default)]
pub struct MachineReport {
    /// End-to-end simulated seconds.
    pub total_secs: f64,
    /// Kernel-execution seconds.
    pub compute_secs: f64,
    /// Communication seconds (intra- + inter-node collectives).
    pub comm_secs: f64,
    /// Host↔device offload seconds.
    pub swap_secs: f64,
    /// Per bulk-synchronous step breakdown.
    pub per_step: Vec<StageTiming>,
    /// Bytes moved between GPUs within a node.
    pub bytes_intra: u64,
    /// Bytes moved between nodes.
    pub bytes_inter: u64,
    /// Kernels launched.
    pub kernels: u64,
}

impl MachineReport {
    /// Fraction of total time spent communicating (the paper's Fig. 6).
    pub fn comm_fraction(&self) -> f64 {
        if self.total_secs == 0.0 {
            0.0
        } else {
            self.comm_secs / self.total_secs
        }
    }
}

/// The simulated multi-node multi-GPU machine.
///
/// See the crate docs for the functional vs dry-run modes.
pub struct Machine {
    spec: MachineSpec,
    cost: CostModel,
    n: u32,
    dry: bool,
    /// Shard buffers (empty vectors in dry-run mode).
    shards: Vec<Vec<Complex64>>,
    /// Ping-pong twin of `shards` for cross-shard relayouts: allocated
    /// lazily on the first general permutation and swapped with `shards`
    /// afterwards, so stage transitions never allocate (or zero-fill)
    /// fresh amplitude buffers in steady state.
    spare: Vec<Vec<Complex64>>,
    /// Single-shard scratch for shard-local (low-bit-closed) permutations,
    /// allocated lazily and reused.
    local_scratch: Vec<Complex64>,
    /// Persistent outer vector of empty shard handles for the pure-relabel
    /// transition (its buffers are never filled — only `mem::swap`ped),
    /// so even the handle shuffle allocates nothing in steady state.
    handles: Vec<Vec<Complex64>>,
    /// Per-GPU compute seconds accumulated since the last barrier.
    pending: Vec<f64>,
    steps: Vec<StageTiming>,
    bytes_intra: u64,
    bytes_inter: u64,
    kernels: u64,
    /// Whether offload swaps overlap with compute (Atlas overlaps via
    /// Legion; naive baselines set this to `false`).
    pub overlap_io: bool,
    /// Telemetry handle: disabled by default (every recording call is a
    /// single-branch no-op); [`Machine::set_recorder`] attaches one.
    recorder: Recorder,
}

impl Machine {
    /// Creates a machine and initializes the `n`-qubit `|0…0⟩` state.
    /// `dry = true` skips amplitude allocation (paper-scale modeling).
    pub fn new(spec: MachineSpec, cost: CostModel, n: u32, dry: bool) -> Self {
        let spec = spec.checked();
        let num_shards = spec.num_shards(n);
        let shard_len = 1usize << spec.local_qubits;
        let shards = if dry {
            vec![Vec::new(); num_shards]
        } else {
            assert!(
                n <= 30,
                "functional mode with n={n} would allocate 2^{n} amplitudes; use dry-run"
            );
            let mut v = vec![vec![Complex64::ZERO; shard_len]; num_shards];
            v[0][0] = Complex64::ONE;
            v
        };
        let pending = vec![0.0; spec.num_gpus()];
        Machine {
            spec,
            cost,
            n,
            dry,
            shards,
            spare: Vec::new(),
            local_scratch: Vec::new(),
            handles: Vec::new(),
            pending,
            steps: Vec::new(),
            bytes_intra: 0,
            bytes_inter: 0,
            kernels: 0,
            overlap_io: true,
            recorder: Recorder::default(),
        }
    }

    /// Attaches a telemetry recorder: kernel-apply spans, reshuffle spans
    /// and per-step `machine.step` counters are recorded through it.
    /// Timestamps ride the trace channel only — amplitudes, samples and
    /// the simulated clock are byte-identical with or without one.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Creates a functional machine seeded with an arbitrary state.
    pub fn with_state(spec: MachineSpec, cost: CostModel, state: &StateVector) -> Self {
        let mut m = Machine::new(spec, cost, state.num_qubits(), false);
        let shard_len = m.shard_len();
        for (i, &a) in state.amplitudes().iter().enumerate() {
            m.shards[i >> m.spec.local_qubits][i & (shard_len - 1)] = a;
        }
        m
    }

    /// The machine spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Circuit width this machine was initialized for.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// `true` in dry-run (no amplitudes) mode.
    pub fn is_dry(&self) -> bool {
        self.dry
    }

    /// Amplitudes per shard.
    pub fn shard_len(&self) -> usize {
        1usize << self.spec.local_qubits
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to a shard's amplitudes (functional mode).
    pub fn shard(&self, s: usize) -> &[Complex64] {
        &self.shards[s]
    }

    // ------------------------------------------------------------------
    // Kernel execution
    // ------------------------------------------------------------------
    //
    // The charge_* helpers below are the single home of each kernel-cost
    // formula: both the direct per-kernel launch methods and the
    // program-based engine (`run_shard_programs`) charge through them, so
    // a cost-model change cannot desynchronize the two paths.

    /// Charges shard `s`'s GPU for a `k`-qubit fusion kernel.
    fn charge_fusion(&mut self, s: usize, k: u32) {
        let gpu = self.spec.gpu_of_shard(self.n, s);
        self.pending[gpu] += self.cost.fusion_kernel_secs(k, self.shard_len());
        self.kernels += 1;
    }

    /// Charges shard `s`'s GPU for a shared-memory kernel with the given
    /// plan-level per-amplitude gate cost.
    fn charge_shm(&mut self, s: usize, per_amp_ns: f64) {
        let gpu = self.spec.gpu_of_shard(self.n, s);
        self.pending[gpu] += self.cost.kernel_launch_us * 1e-6
            + self.shard_len() as f64 * (self.cost.shm_alpha_ns + per_amp_ns) * 1e-9;
        self.kernels += 1;
    }

    /// Charges shard `s`'s GPU for one whole-shard scale pass.
    fn charge_scale(&mut self, s: usize) {
        let gpu = self.spec.gpu_of_shard(self.n, s);
        self.pending[gpu] += self.cost.scale_pass_secs(self.shard_len());
    }

    /// Runs a fusion kernel: a dense `2^k × 2^k` unitary over local qubit
    /// positions `qubits` (all `< L`) on shard `s`.
    pub fn run_fusion_kernel(&mut self, s: usize, qubits: &[u32], matrix: &Matrix) {
        debug_assert!(qubits.iter().all(|&q| q < self.spec.local_qubits));
        self.charge_fusion(s, qubits.len() as u32);
        if !self.dry {
            apply_matrix(&mut self.shards[s], qubits, matrix);
        }
    }

    /// Runs a shared-memory kernel: `gates` (with qubit indices already in
    /// local physical positions `< L`) batched over `active` qubits.
    pub fn run_shm_kernel(&mut self, s: usize, active: &[u32], gates: &[Gate]) {
        debug_assert!(active.iter().all(|&q| q < self.spec.local_qubits));
        let gpu = self.spec.gpu_of_shard(self.n, s);
        self.pending[gpu] += self.cost.shm_kernel_secs(gates.iter(), self.shard_len());
        self.kernels += 1;
        if !self.dry {
            apply_batched(&mut self.shards[s], active, gates);
        }
    }

    /// Charges a fusion kernel over `k` qubits without executing anything —
    /// the dry-run twin of [`Machine::run_fusion_kernel`], sparing matrix
    /// construction at paper scale.
    pub fn run_fusion_kernel_dry(&mut self, s: usize, k: u32) {
        self.charge_fusion(s, k);
    }

    /// Runs a shared-memory kernel from pre-specialized parts: each part is
    /// a (local qubit positions, reduced unitary) pair, applied in order.
    /// `per_amp_ns` is the kernel's gate-cost sum from the planner (the
    /// parts' shapes may differ per shard after insular specialization, but
    /// the charged cost is the plan-level one, matching §VI-B).
    pub fn run_shm_kernel_parts(
        &mut self,
        s: usize,
        active: &[u32],
        parts: &[(Vec<u32>, Matrix)],
        per_amp_ns: f64,
    ) {
        debug_assert!(active.iter().all(|&q| q < self.spec.local_qubits));
        self.charge_shm(s, per_amp_ns);
        if !self.dry {
            for (qs, m) in parts {
                apply_matrix(&mut self.shards[s], qs, m);
            }
        }
    }

    /// Executes one compiled [`ShardProgram`] per shard — the parallel
    /// execution engine behind `EXECUTE` in functional mode.
    ///
    /// Cost accounting runs first, sequentially and deterministically
    /// (identical regardless of thread count); the functional amplitude
    /// work then runs on `pool`:
    ///
    /// * shards ≥ pool threads — one worker per shard, every simulated
    ///   GPU's kernels genuinely concurrent;
    /// * shards < pool threads — shards run in sequence, and each kernel
    ///   falls back to intra-shard parallelism over its index groups
    ///   (`atlas_statevec::parallel`).
    ///
    /// Both schedules produce bit-identical amplitudes: every kernel's
    /// parallel form performs the same floating-point operations as its
    /// serial form, only distributed differently.
    pub fn run_shard_programs(&mut self, programs: &[ShardProgram], pool: &Pool) {
        assert_eq!(programs.len(), self.num_shards());
        for (s, prog) in programs.iter().enumerate() {
            for op in prog {
                match op {
                    ShardOp::Fusion {
                        qubits,
                        kernel,
                        scale,
                    } => {
                        self.charge_fusion(s, qubits.len() as u32);
                        // A scale the kernel cannot absorb costs
                        // `apply_kernel` a real extra whole-shard pass
                        // (Controlled kernels); charge it to match.
                        if !scale.approx_eq(Complex64::ONE, 0.0) && !kernel.can_fold_scale() {
                            self.charge_scale(s);
                        }
                    }
                    ShardOp::ShmParts { per_amp_ns, .. } => self.charge_shm(s, *per_amp_ns),
                    ShardOp::Scale(f) => {
                        if !f.approx_eq(Complex64::ONE, 0.0) {
                            self.charge_scale(s);
                        }
                    }
                }
            }
        }
        if self.dry {
            return;
        }
        let num_shards = self.shards.len();
        // Step index the in-flight kernels belong to (their barrier has
        // not pushed yet).
        let stage = self.steps.len() as u32;
        let shard_amps = self.shard_len() as u64;
        // Fewer shards than workers: keep shards sequential and spend the
        // threads inside each kernel instead.
        let within = if num_shards < pool.threads() {
            pool.threads()
        } else {
            1
        };
        if within > 1 {
            let rec = self.recorder.clone();
            scratch::with_thread(|scr| {
                for (s, prog) in programs.iter().enumerate() {
                    let t = rec.start();
                    run_program(&mut self.shards[s], prog, scr, within);
                    rec.span(
                        "kernel.apply",
                        t,
                        true,
                        stage,
                        s as u32,
                        0,
                        &[("ops", prog.len() as u64), ("amps", shard_amps)],
                    );
                    publish_scratch_counters(&rec, scr);
                }
            });
        } else {
            // Clone the handle out of `self` before the raw-pointer view
            // of the shard buffers exists: the worker closure must not
            // hold any borrow of `self`.
            let rec = self.recorder.clone();
            // SAFETY: Vec<Complex64> and UnsafeCell<Vec<Complex64>> have
            // identical layout; each pool item `s` only touches shard `s`.
            let cell = ShardCell(unsafe {
                std::slice::from_raw_parts(
                    self.shards.as_mut_ptr() as *const UnsafeCell<Vec<Complex64>>,
                    num_shards,
                )
            });
            let cell = &cell;
            let rec = &rec;
            pool.run(num_shards, &|s| {
                // Per-worker idle gap since the previous stage (barrier +
                // reshuffle wait) — scheduling detail, never deterministic.
                rec.wait_span("worker.wait", stage);
                let t = rec.start();
                // SAFETY: disjoint indices per item, see above.
                let amps = unsafe { cell.shard_mut(s) };
                // One scratch arena per pool worker; workers persist
                // across stages, so the arenas stay warm for the whole
                // EXECUTE and kernel execution allocates nothing.
                scratch::with_thread(|scr| {
                    run_program(amps, &programs[s], scr, 1);
                    publish_scratch_counters(rec, scr);
                });
                rec.span(
                    "kernel.apply",
                    t,
                    true,
                    stage,
                    s as u32,
                    0,
                    &[("ops", programs[s].len() as u64), ("amps", shard_amps)],
                );
                // Workers only live for the enclosing `with_pool` scope:
                // drain their fixed-capacity buffers while they exist.
                rec.flush();
            });
        }
    }

    /// Multiplies a whole shard by a scalar (insular diagonal factor for
    /// this shard's fixed regional/global bits). Free if the factor is 1.
    pub fn scale_shard(&mut self, s: usize, factor: Complex64) {
        if factor.approx_eq(Complex64::ONE, 0.0) {
            return;
        }
        self.charge_scale(s);
        if !self.dry {
            for a in &mut self.shards[s] {
                *a *= factor;
            }
        }
    }

    /// Charges raw compute seconds to the GPU owning shard `s` (baseline
    /// simulators with their own kernel models).
    pub fn charge_shard_compute(&mut self, s: usize, secs: f64) {
        let gpu = self.spec.gpu_of_shard(self.n, s);
        self.pending[gpu] += secs;
        self.kernels += 1;
    }

    // ------------------------------------------------------------------
    // Barriers and communication
    // ------------------------------------------------------------------

    /// Ends a bulk-synchronous compute step: stage time is the max over
    /// devices, plus DRAM-offload swap charges when shards outnumber GPUs.
    pub fn stage_barrier(&mut self) {
        let barrier_t = self.recorder.start();
        let compute = self.pending.iter().copied().fold(0.0, f64::max);
        let mut swap = 0.0;
        if self.spec.offloading(self.n) {
            // Every shard crosses PCIe twice per stage (in + out),
            // serialized per owning GPU.
            let mut per_gpu = vec![0usize; self.spec.num_gpus()];
            for s in 0..self.num_shards() {
                per_gpu[self.spec.gpu_of_shard(self.n, s)] += 1;
            }
            let max_shards = per_gpu.into_iter().max().unwrap_or(0) as f64;
            swap = max_shards * 2.0 * self.cost.pcie_transfer_secs(self.shard_len());
        }
        let step = if self.overlap_io {
            StageTiming {
                compute: compute.max(swap),
                swap: if swap > compute { swap - compute } else { 0.0 },
                ..Default::default()
            }
        } else {
            StageTiming {
                compute,
                swap,
                ..Default::default()
            }
        };
        let stage = self.steps.len() as u32;
        self.recorder.counter(
            "machine.step",
            true,
            stage,
            0,
            0,
            &[
                ("kind", STEP_COMPUTE),
                ("compute_ns", secs_to_ns(step.compute)),
                ("swap_ns", secs_to_ns(step.swap)),
            ],
        );
        self.recorder
            .span("stage.barrier", barrier_t, true, stage, 0, 0, &[]);
        self.steps.push(step);
        self.pending.iter_mut().for_each(|p| *p = 0.0);
        // Stage barriers are the main thread's drain point.
        self.recorder.flush();
    }

    /// Charges the interconnect model for the transition
    /// `new_index = perm(old_index) ^ flip` and records the step. Returns
    /// whether the functional state needs any data movement at all.
    /// Shared by [`Machine::permute_state`] and the scatter oracle so the
    /// two relayout engines can never desynchronize on cost.
    fn charge_permute(&mut self, perm: &QubitPermutation, flip: u64) -> bool {
        assert_eq!(perm.len() as u32, self.n);
        let l = self.spec.local_qubits;
        let entries = traffic_matrix(perm, flip, self.n, l);
        let shard_bytes_per_amp = AMP_BYTES;

        // Charge: per-GPU outgoing intra-node bytes, per-node outgoing
        // inter-node bytes; overlapped collectives → take the max path.
        let mut intra_out = vec![0u64; self.spec.num_gpus()];
        let mut inter_out = vec![0u64; self.spec.nodes];
        let mut moved_any = false;
        let mut step_intra = 0u64;
        let mut step_inter = 0u64;
        for e in &entries {
            if e.src == e.dst {
                continue;
            }
            moved_any = true;
            let bytes = (e.amps as f64 * shard_bytes_per_amp) as u64;
            let src_node = self.spec.node_of_shard(self.n, e.src);
            let dst_node = self.spec.node_of_shard(self.n, e.dst);
            if src_node == dst_node {
                let src_gpu = self.spec.gpu_of_shard(self.n, e.src);
                let dst_gpu = self.spec.gpu_of_shard(self.n, e.dst);
                if src_gpu != dst_gpu {
                    intra_out[src_gpu] += bytes;
                    step_intra += bytes;
                }
                // Same GPU (offloaded siblings): host-memory shuffle,
                // folded into the repack pass below.
            } else {
                inter_out[src_node] += bytes;
                step_inter += bytes;
            }
        }
        self.bytes_intra += step_intra;
        self.bytes_inter += step_inter;
        let t_intra = intra_out
            .iter()
            .map(|&b| b as f64 / self.cost.intra_node_bw)
            .fold(0.0, f64::max);
        let t_inter = inter_out
            .iter()
            .map(|&b| b as f64 / self.cost.inter_node_bw)
            .fold(0.0, f64::max);
        // Local repack pass (gather/scatter through device memory) whenever
        // the permutation moves anything, including purely-local bits.
        let local_change = !perm.is_identity() || flip & ((1 << l) - 1) != 0;
        let t_local = if local_change {
            2.0 * self.shard_len() as f64 * self.cost.mem_pass_ns * 1e-9
        } else {
            0.0
        };
        let comm = if moved_any {
            t_intra.max(t_inter) + self.cost.comm_latency_us * 1e-6 + t_local
        } else {
            t_local
        };
        self.recorder.counter(
            "machine.step",
            true,
            self.steps.len() as u32,
            0,
            0,
            &[
                ("kind", STEP_COMM),
                ("comm_ns", secs_to_ns(comm)),
                ("bytes_intra", step_intra),
                ("bytes_inter", step_inter),
            ],
        );
        self.steps.push(StageTiming {
            comm,
            bytes_intra: step_intra,
            bytes_inter: step_inter,
            ..Default::default()
        });
        local_change || moved_any
    }

    /// Executes a stage transition: relayouts the state as
    /// `new_index = perm(old_index) ^ flip`, moving amplitudes between
    /// devices and charging the interconnect model.
    ///
    /// The functional relayout is block-structured, not per-amplitude:
    ///
    /// * when the permutation fixes (and `flip` spares) the low `t` bits,
    ///   amplitudes move in runs of `2^t` via `copy_from_slice` — one
    ///   index computation per run instead of per element;
    /// * shard-local permutations (low bits closed under `perm`) run
    ///   fully in place through a single reusable shard-sized scratch —
    ///   and a pure shard-*relabel* (only bits `≥ L` move) degenerates to
    ///   swapping buffer handles without touching any amplitude;
    /// * everything else ping-pongs between `shards` and the lazily
    ///   allocated `spare` twin, so steady-state transitions allocate and
    ///   zero-fill nothing.
    ///
    /// Byte-identical to [`Machine::permute_state_scatter`] (pinned by
    /// `tests/hotpath_exactness.rs`).
    pub fn permute_state(&mut self, perm: &QubitPermutation, flip: u64) {
        let t = self.recorder.start();
        let needs_move = self.charge_permute(perm, flip);
        if !self.dry && needs_move {
            self.relayout_blocks(perm, flip);
        }
        // `charge_permute` just pushed this transition's step.
        let step = self.steps.last().copied().unwrap_or_default();
        self.recorder.span(
            "machine.reshuffle",
            t,
            true,
            self.steps.len() as u32 - 1,
            0,
            0,
            &[
                ("bytes_intra", step.bytes_intra),
                ("bytes_inter", step.bytes_inter),
                ("comm_ns", secs_to_ns(step.comm)),
                ("moved", needs_move as u64),
            ],
        );
        self.recorder.flush();
    }

    /// The functional relayout engine behind [`Machine::permute_state`]
    /// (cost already charged; `dry` and no-op transitions filtered out).
    fn relayout_blocks(&mut self, perm: &QubitPermutation, flip: u64) {
        let l = self.spec.local_qubits;
        let n = self.n;
        let shard_len = self.shard_len();
        let low_mask = (shard_len as u64) - 1;
        // Run length: low bits the transition leaves untouched.
        let mut t = 0u32;
        while t < l && perm.dst(t) == t && (flip >> t) & 1 == 0 {
            t += 1;
        }
        let run = 1usize << t;

        let low_closed = (0..l).all(|b| perm.dst(b) < l);
        if low_closed {
            // Shard-local content change (if any), in place per shard.
            let local_identity = (0..l).all(|b| perm.dst(b) == b) && flip & low_mask == 0;
            if !local_identity {
                if self.local_scratch.len() != shard_len {
                    self.local_scratch = vec![Complex64::ZERO; shard_len];
                }
                let local_flip = flip & low_mask;
                for shard in &mut self.shards {
                    if run == 1 {
                        for (i, &a) in shard.iter().enumerate() {
                            let dst = (perm.apply_index(i as u64) ^ local_flip) as usize;
                            self.local_scratch[dst] = a;
                        }
                    } else {
                        for r in (0..shard_len).step_by(run) {
                            let dst = (perm.apply_index(r as u64) ^ local_flip) as usize;
                            self.local_scratch[dst..dst + run].copy_from_slice(&shard[r..r + run]);
                        }
                    }
                    std::mem::swap(shard, &mut self.local_scratch);
                }
            }
            // Shard relocation from the high bits: pure handle shuffle.
            let high_identity = (l..n).all(|b| perm.dst(b) == b) && (flip >> l) == 0;
            if !high_identity {
                let num_shards = self.shards.len();
                // `handles` always re-ends as all-empty after the double
                // swap below, so it is reusable as-is next transition.
                if self.handles.len() != num_shards {
                    self.handles = vec![Vec::new(); num_shards];
                }
                for s in 0..num_shards {
                    let new_s = ((perm.apply_index((s as u64) << l) ^ flip) >> l) as usize;
                    std::mem::swap(&mut self.handles[new_s], &mut self.shards[s]);
                }
                std::mem::swap(&mut self.shards, &mut self.handles);
            }
            return;
        }

        // General cross-boundary relayout: ping-pong into the spare twin,
        // moving whole runs. Every destination index is written exactly
        // once (the transition is a bijection), so the spare is never
        // zero-filled after its one-time allocation.
        if self.spare.len() != self.shards.len() || self.spare.iter().any(|v| v.len() != shard_len)
        {
            self.spare = vec![vec![Complex64::ZERO; shard_len]; self.shards.len()];
        }
        for (s, shard) in self.shards.iter().enumerate() {
            let base = (s as u64) << l;
            if run == 1 {
                for (i, &a) in shard.iter().enumerate() {
                    let new = perm.apply_index(base | i as u64) ^ flip;
                    self.spare[(new >> l) as usize][(new & low_mask) as usize] = a;
                }
            } else {
                for r in (0..shard_len).step_by(run) {
                    let new = perm.apply_index(base | r as u64) ^ flip;
                    let dst = &mut self.spare[(new >> l) as usize];
                    let off = (new & low_mask) as usize;
                    dst[off..off + run].copy_from_slice(&shard[r..r + run]);
                }
            }
        }
        std::mem::swap(&mut self.shards, &mut self.spare);
    }

    /// The per-amplitude scatter oracle for [`Machine::permute_state`]:
    /// allocates and fills a fresh shard set, computing every element's
    /// destination independently. Charged identically; kept in-tree as the
    /// differential reference and the baseline the hotpath bench measures
    /// the block-copy engine against.
    pub fn permute_state_scatter(&mut self, perm: &QubitPermutation, flip: u64) {
        let needs_move = self.charge_permute(perm, flip);
        if self.dry || !needs_move {
            return;
        }
        let l = self.spec.local_qubits;
        let shard_len = self.shard_len();
        let mut new_shards = vec![vec![Complex64::ZERO; shard_len]; self.shards.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            let base = (s as u64) << l;
            for (i, &a) in shard.iter().enumerate() {
                let old = base | i as u64;
                let new = perm.apply_index(old) ^ flip;
                new_shards[(new >> l) as usize][(new & (shard_len as u64 - 1)) as usize] = a;
            }
        }
        self.shards = new_shards;
    }

    /// Charges communication without data movement (baseline simulators
    /// that model other exchange schemes).
    pub fn charge_comm(&mut self, secs: f64, bytes_intra: u64, bytes_inter: u64) {
        self.recorder.counter(
            "machine.step",
            true,
            self.steps.len() as u32,
            0,
            0,
            &[
                ("kind", STEP_COMM),
                ("comm_ns", secs_to_ns(secs)),
                ("bytes_intra", bytes_intra),
                ("bytes_inter", bytes_inter),
            ],
        );
        self.steps.push(StageTiming {
            comm: secs,
            bytes_intra,
            bytes_inter,
            ..Default::default()
        });
        self.bytes_intra += bytes_intra;
        self.bytes_inter += bytes_inter;
    }

    // ------------------------------------------------------------------
    // Measurement reductions (functional mode)
    // ------------------------------------------------------------------
    //
    // Read-only entry points for the `atlas-sampler` measurement engine:
    // every reduction runs on the sharded, still-permuted buffers — the
    // full 2^n vector is never materialized. Parallelism mirrors
    // `run_shard_programs`: one pool item per shard when shards cover the
    // workers, intra-shard chunk parallelism otherwise, and results are
    // combined in shard/chunk order so every value is bit-identical for
    // every thread count (see `atlas_statevec::measure`).

    /// Runs `f(shard, amps, within_threads)` over every shard on `pool`,
    /// returning results in shard order.
    fn map_shards<T: Send + Sync>(
        &self,
        pool: &Pool,
        f: &(dyn Fn(usize, &[Complex64], usize) -> T + Sync),
    ) -> Vec<T> {
        assert!(!self.dry, "measurement reductions need amplitudes");
        let num_shards = self.shards.len();
        if num_shards < pool.threads() {
            // Spend the thread budget inside each shard's reduction.
            return (0..num_shards)
                .map(|s| f(s, &self.shards[s], pool.threads()))
                .collect();
        }
        let slots: Vec<std::sync::OnceLock<T>> = (0..num_shards)
            .map(|_| std::sync::OnceLock::new())
            .collect();
        pool.run(num_shards, &|s| {
            slots[s]
                .set(f(s, &self.shards[s], 1))
                .unwrap_or_else(|_| unreachable!("shard visited twice"));
        });
        slots
            .into_iter()
            .map(|c| c.into_inner().expect("shard computed"))
            .collect()
    }

    /// Per-shard probability masses `Σ|αᵢ|²`, in shard order.
    pub fn shard_norms(&self, pool: &Pool) -> Vec<f64> {
        self.map_shards(pool, &|_, amps, t| {
            measure::norm_sqr_slice_parallel(amps, t)
        })
    }

    /// Total norm `Σ|αᵢ|²` over all shards (shard partials combined in
    /// shard order).
    pub fn total_norm(&self, pool: &Pool) -> f64 {
        self.shard_norms(pool).iter().sum()
    }

    /// Diagonal Pauli reduction: `Σ_x (-1)^{popcount(x & sign_mask)}·|α_x|²`
    /// over all physical indices `x`. This is `⟨ψ|P|ψ⟩` for a Pauli
    /// string of `Z`s on the physical bits of `sign_mask`.
    pub fn signed_norm_sum(&self, sign_mask: u64, pool: &Pool) -> f64 {
        let l = self.spec.local_qubits;
        self.map_shards(pool, &|s, amps, t| {
            measure::signed_norm_parallel(amps, (s as u64) << l, sign_mask, t)
        })
        .iter()
        .sum()
    }

    /// Off-diagonal Pauli reduction:
    /// `Σ_x conj(α_{x ^ flip}) · (-1)^{popcount(x & sign_mask)} · α_x`
    /// over all physical indices `x`. The partner amplitude is read from
    /// whichever shard holds `x ^ flip` — no data moves. Together with a
    /// caller-applied `i^{#Y}` prefactor this evaluates any Pauli-string
    /// expectation (`flip` = X|Y bits, `sign_mask` = Z|Y bits).
    pub fn signed_pair_sum(&self, flip: u64, sign_mask: u64, pool: &Pool) -> Complex64 {
        let l = self.spec.local_qubits;
        let shard_len = self.shard_len();
        let shards = &self.shards;
        self.map_shards(pool, &|s, amps, t| {
            let partner = &shards[s ^ (flip >> l) as usize];
            let local_flip = (flip as usize) & (shard_len - 1);
            measure::signed_pair_sum_parallel(
                amps,
                partner,
                local_flip,
                (s as u64) << l,
                sign_mask,
                t,
            )
        })
        .iter()
        .fold(Complex64::ZERO, |acc, &v| acc + v)
    }

    /// The amplitude at a physical index (functional mode).
    #[inline]
    pub fn amp_at_physical(&self, idx: u64) -> Complex64 {
        let l = self.spec.local_qubits;
        self.shards[(idx >> l) as usize][(idx & ((1u64 << l) - 1)) as usize]
    }

    /// Probability masses of fixed `2^chunk_bits`-index chunks of the
    /// **logical** index space: entry `j` is
    /// `Σ_{x ∈ [j·2^c, (j+1)·2^c)} |α_{l2p(x)}|²`, accumulated in logical
    /// index order (`l2p` maps logical → physical indices).
    ///
    /// This is the coarse row of the sampling CDF. Because the iteration
    /// order and chunk boundaries are defined in logical space, the
    /// result — and everything downstream, including sampled bitstrings —
    /// is independent of the shard layout's bit permutation, not just of
    /// the thread count.
    pub fn logical_chunk_norms(
        &self,
        l2p: &IndexPermuter,
        chunk_bits: u32,
        pool: &Pool,
    ) -> Vec<f64> {
        assert!(!self.dry, "measurement reductions need amplitudes");
        let c = chunk_bits.min(self.n);
        let chunk_len = 1u64 << c;
        let num_chunks = 1usize << (self.n - c);
        let slots: Vec<std::sync::OnceLock<f64>> = (0..num_chunks)
            .map(|_| std::sync::OnceLock::new())
            .collect();
        pool.run(num_chunks, &|j| {
            let base = (j as u64) << c;
            let mut acc = 0.0;
            for t in 0..chunk_len {
                acc += self.amp_at_physical(l2p.apply(base | t)).norm_sqr();
            }
            slots[j]
                .set(acc)
                .unwrap_or_else(|_| unreachable!("chunk visited twice"));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("chunk computed"))
            .collect()
    }

    /// Shard-aware inverse-CDF resolution: maps ascending cumulative
    /// `targets` (each in `[0, Σ chunk_norms)`) to **logical** basis-state
    /// indices, using `chunk_norms` (from [`Machine::logical_chunk_norms`]
    /// with the same `l2p` and `chunk_bits`) as the coarse CDF and a
    /// serial logical-order scan within each hit chunk.
    ///
    /// Chunks with at least one target resolve concurrently on `pool`;
    /// within a chunk the scan accumulates in logical index order, so the
    /// assignment is deterministic for every thread count and shard
    /// layout. Targets at or past the total mass clamp to the last index.
    pub fn resolve_targets(
        &self,
        l2p: &IndexPermuter,
        chunk_bits: u32,
        chunk_norms: &[f64],
        targets: &[f64],
        pool: &Pool,
    ) -> Vec<u64> {
        assert!(!self.dry, "measurement reductions need amplitudes");
        let c = chunk_bits.min(self.n);
        let chunk_len = 1u64 << c;
        assert_eq!(chunk_norms.len(), 1usize << (self.n - c));
        debug_assert!(targets.windows(2).all(|w| w[0] <= w[1]), "targets sorted");
        // Chunk-level CDF.
        let mut prefix = Vec::with_capacity(chunk_norms.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &m in chunk_norms {
            acc += m;
            prefix.push(acc);
        }
        // Group consecutive targets by the chunk their CDF interval hits.
        let mut groups: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut j = 0usize;
        for (ti, &t) in targets.iter().enumerate() {
            while j + 1 < chunk_norms.len() && prefix[j + 1] <= t {
                j += 1;
            }
            match groups.last_mut() {
                Some((cj, range)) if *cj == j => range.end = ti + 1,
                _ => groups.push((j, ti..ti + 1)),
            }
        }
        let slots: Vec<std::sync::OnceLock<u64>> = (0..targets.len())
            .map(|_| std::sync::OnceLock::new())
            .collect();
        let groups = &groups;
        let prefix = &prefix;
        let slots_ref = &slots;
        pool.run(groups.len(), &|g| {
            let (j, ref range) = groups[g];
            let base = (j as u64) << c;
            let mut acc = prefix[j];
            let mut ti = range.start;
            for t in 0..chunk_len {
                acc += self.amp_at_physical(l2p.apply(base | t)).norm_sqr();
                while ti < range.end && targets[ti] < acc {
                    slots_ref[ti]
                        .set(base | t)
                        .unwrap_or_else(|_| unreachable!("target resolved twice"));
                    ti += 1;
                }
                if ti == range.end {
                    break;
                }
            }
            // Floating-point slack at the chunk boundary: clamp to the
            // chunk's last index.
            while ti < range.end {
                slots_ref[ti]
                    .set(base | (chunk_len - 1))
                    .unwrap_or_else(|_| unreachable!("target resolved twice"));
                ti += 1;
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("target resolved"))
            .collect()
    }

    /// Marginal probability distribution over the given **physical** bits:
    /// entry `v` of the result is the total probability of all basis
    /// states whose bits at `phys_bits[t]` spell `v` (bit `t` of `v` =
    /// physical bit `phys_bits[t]`). Accumulates in shard order, index
    /// order within each shard. Small marginals (`b ≤ 12`) use one
    /// partial vector per shard and run shards concurrently; wide ones
    /// fold serially into a single `2^b` buffer (per-shard partials
    /// would dwarf the state itself). The schedule depends only on `b`,
    /// never on the thread count, so any given marginal is bit-identical
    /// for every `--threads` value.
    pub fn marginal_distribution(&self, phys_bits: &[u32], pool: &Pool) -> Vec<f64> {
        let b = phys_bits.len();
        assert!(b <= 24, "marginal over {b} bits would allocate 2^{b} bins");
        assert!(!self.dry, "measurement reductions need amplitudes");
        let l = self.spec.local_qubits;
        let accumulate = |s: usize, amps: &[Complex64], dist: &mut [f64]| {
            let base = (s as u64) << l;
            for (i, a) in amps.iter().enumerate() {
                let v = atlas_qmath::extract_bits(base | i as u64, phys_bits);
                dist[v as usize] += a.norm_sqr();
            }
        };
        // Per-shard partial vectors only while all of them together stay
        // small next to one shard (b ≤ 12 → ≤ 32 KiB each).
        if b <= 12 {
            let partials = self.map_shards(pool, &|s, amps, _| {
                let mut dist = vec![0.0f64; 1 << b];
                accumulate(s, amps, &mut dist);
                dist
            });
            let mut out = vec![0.0f64; 1 << b];
            for dist in partials {
                for (o, v) in out.iter_mut().zip(dist) {
                    *o += v;
                }
            }
            out
        } else {
            let mut out = vec![0.0f64; 1 << b];
            for (s, amps) in self.shards.iter().enumerate() {
                accumulate(s, amps, &mut out);
            }
            out
        }
    }

    /// The `k` most probable outcomes as `(remap(physical index),
    /// probability)`, descending, selected with one bounded-heap pass per
    /// shard and a shard-order merge — never a full sort, never a
    /// gathered vector.
    ///
    /// Indices are pushed through `remap` *before* entering the heaps, so
    /// ties order by the **remapped** index — callers that pass the
    /// physical→logical permuter get exactly the logical-order selection
    /// (strict total order, stable across shard layouts); pass the
    /// identity to stay in physical indices.
    pub fn top_outcomes(&self, k: usize, remap: &IndexPermuter, pool: &Pool) -> Vec<(u64, f64)> {
        let l = self.spec.local_qubits;
        let partials = self.map_shards(pool, &|s, amps, _| {
            let base = (s as u64) << l;
            let mut top = measure::TopK::new(k);
            for (i, a) in amps.iter().enumerate() {
                let p = a.norm_sqr();
                if p > atlas_qmath::EPS {
                    top.push(remap.apply(base | i as u64), p);
                }
            }
            top
        });
        let mut merged = measure::TopK::new(k);
        for t in partials {
            merged.merge(t);
        }
        merged.into_sorted_vec()
    }

    // ------------------------------------------------------------------
    // State access and reporting
    // ------------------------------------------------------------------

    /// Collects the distributed state into a single state vector
    /// (functional mode only).
    pub fn gather_state(&self) -> StateVector {
        assert!(!self.dry, "gather_state is unavailable in dry-run mode");
        let l = self.spec.local_qubits;
        let mut amps = vec![Complex64::ZERO; 1usize << self.n];
        for (s, shard) in self.shards.iter().enumerate() {
            let base = s << l;
            amps[base..base + shard.len()].copy_from_slice(shard);
        }
        StateVector::from_amplitudes(amps)
    }

    /// Finalizes the clock and returns the report. Any pending compute is
    /// folded with a final barrier.
    pub fn report(&mut self) -> MachineReport {
        if self.pending.iter().any(|&p| p > 0.0) {
            self.stage_barrier();
        }
        let mut r = MachineReport {
            per_step: self.steps.clone(),
            bytes_intra: self.bytes_intra,
            bytes_inter: self.bytes_inter,
            kernels: self.kernels,
            ..Default::default()
        };
        for s in &self.steps {
            r.compute_secs += s.compute;
            r.comm_secs += s.comm;
            r.swap_secs += s.swap;
        }
        r.total_secs = r.compute_secs + r.comm_secs + r.swap_secs;
        r
    }
}

/// Applies one shard's program to its amplitude buffer with up to
/// `threads` threads of intra-shard parallelism, reusing `scratch` for
/// every kernel. Bit-identical for any `threads` value (see
/// [`atlas_statevec::parallel`]).
fn run_program(amps: &mut [Complex64], prog: &ShardProgram, scratch: &mut Scratch, threads: usize) {
    for op in prog {
        match op {
            ShardOp::Fusion {
                qubits,
                kernel,
                scale,
            } => atlas_statevec::apply_kernel_with(scratch, amps, qubits, kernel, *scale, threads),
            ShardOp::ShmParts { parts, scale, .. } => {
                for (qs, m) in parts.iter() {
                    atlas_statevec::parallel::apply_reduced_with(scratch, amps, qs, m, threads);
                }
                if !scale.approx_eq(Complex64::ONE, 0.0) {
                    atlas_statevec::parallel::scale_parallel(amps, *scale, threads);
                }
            }
            ShardOp::Scale(f) => atlas_statevec::parallel::scale_parallel(amps, *f, threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::{Circuit, GateKind};
    use atlas_statevec::simulate_reference;

    fn small_spec() -> MachineSpec {
        MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 3,
        }
    }

    #[test]
    fn distributed_kernels_match_reference() {
        // 5 qubits, L=3 → 4 shards on 4 GPUs. Apply local gates per shard
        // and compare against the reference simulator.
        let mut circuit = Circuit::new(5);
        circuit.h(0).cx(0, 1).t(2).cp(0.7, 1, 2);
        let mut m = Machine::new(small_spec(), CostModel::default(), 5, false);
        for s in 0..m.num_shards() {
            for g in circuit.gates() {
                // All gates are local (< L=3) here.
                m.run_fusion_kernel(s, g.qubits.as_slice(), &g.matrix());
            }
        }
        m.stage_barrier();
        let got = m.gather_state();
        let want = simulate_reference(&circuit);
        assert!(
            got.approx_eq(&want, 1e-10),
            "distributed diverged: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn permute_state_moves_amplitudes_correctly() {
        // Prepare a recognizable state, permute qubits, compare to direct
        // index remapping.
        let mut prep = Circuit::new(5);
        prep.h(0).h(3).cx(3, 4).t(1);
        let reference = simulate_reference(&prep);
        let mut m = Machine::with_state(small_spec(), CostModel::default(), &reference);
        // Swap qubit 1 (local) with qubit 4 (global).
        let mut map: Vec<u32> = (0..5).collect();
        map.swap(1, 4);
        let perm = atlas_qmath::QubitPermutation::from_map(map);
        m.permute_state(&perm, 0);
        let got = m.gather_state();
        for old in 0..32u64 {
            let new = perm.apply_index(old);
            assert!(
                got.amplitudes()[new as usize]
                    .approx_eq(reference.amplitudes()[old as usize], 1e-12),
                "index {old} → {new} mismatch"
            );
        }
        // Inter-node traffic must have been charged (bit 4 is the node bit).
        let r = m.report();
        assert!(r.bytes_inter > 0);
        assert!(r.comm_secs > 0.0);
    }

    #[test]
    fn identity_permutation_charges_nothing() {
        let mut m = Machine::new(small_spec(), CostModel::default(), 5, true);
        m.permute_state(&atlas_qmath::QubitPermutation::identity(5), 0);
        let r = m.report();
        assert_eq!(r.bytes_inter, 0);
        assert_eq!(r.bytes_intra, 0);
        assert_eq!(r.comm_secs, 0.0);
    }

    #[test]
    fn flip_only_relabels_and_moves() {
        // X on a global qubit = flip of a shard bit: amplitudes relocate.
        let mut prep = Circuit::new(5);
        prep.h(2).cx(2, 4);
        let reference = simulate_reference(&prep);
        let mut m = Machine::with_state(small_spec(), CostModel::default(), &reference);
        m.permute_state(&atlas_qmath::QubitPermutation::identity(5), 1 << 4);
        let got = m.gather_state();
        for old in 0..32u64 {
            assert!(got.amplitudes()[(old ^ 16) as usize]
                .approx_eq(reference.amplitudes()[old as usize], 1e-12));
        }
    }

    #[test]
    fn dry_run_charges_time_without_memory() {
        let spec = MachineSpec::perlmutter(4); // 16 GPUs
        let mut m = Machine::new(spec, CostModel::default(), 32, true);
        assert!(m.is_dry());
        for s in 0..m.num_shards() {
            m.run_fusion_kernel(s, &[0, 1, 2, 3, 4], &Matrix::identity(32));
        }
        m.stage_barrier();
        let r = m.report();
        // 16 shards on 16 GPUs, one kernel each → one kernel of wall time.
        let expect = CostModel::default().fusion_kernel_secs(5, 1 << 28);
        assert!((r.compute_secs - expect).abs() < 1e-9);
        assert_eq!(r.kernels, 16);
    }

    #[test]
    fn offload_swap_charged_at_barrier() {
        // 1 GPU, L=3, n=5 → 4 shards through one GPU: offloading.
        let spec = MachineSpec::single_gpu(3);
        let mut m = Machine::new(spec, CostModel::default(), 5, true);
        m.overlap_io = false;
        for s in 0..m.num_shards() {
            m.run_fusion_kernel(s, &[0, 1], &Matrix::identity(4));
        }
        m.stage_barrier();
        let r = m.report();
        assert!(r.swap_secs > 0.0, "offload must charge swap time");
        let expect_swap = 4.0 * 2.0 * CostModel::default().pcie_transfer_secs(8);
        assert!((r.swap_secs - expect_swap).abs() < 1e-12);
    }

    #[test]
    fn shard_programs_match_direct_kernels_and_charge_identically() {
        use atlas_statevec::classify_kernel;
        // Prepare a dense 5-qubit state split into 4 shards.
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q);
            prep.rz(0.2 * (q + 1) as f64, q);
        }
        let reference = simulate_reference(&prep);
        let h = Gate::new(GateKind::H, &[1]).matrix();
        let cp = Gate::new(GateKind::CP(0.6), &[0, 2]).matrix();

        // Old-style direct kernel launches.
        let mut direct = Machine::with_state(small_spec(), CostModel::default(), &reference);
        for s in 0..direct.num_shards() {
            direct.run_fusion_kernel(s, &[1], &h);
            direct.run_fusion_kernel(s, &[0, 2], &cp);
            direct.scale_shard(s, Complex64::cis(0.3));
        }
        direct.stage_barrier();

        // Same work as shard programs, serial pool and a 3-thread pool.
        for threads in [1usize, 3] {
            let mut engine = Machine::with_state(small_spec(), CostModel::default(), &reference);
            let programs: Vec<ShardProgram> = (0..engine.num_shards())
                .map(|_| {
                    vec![
                        ShardOp::Fusion {
                            qubits: Arc::new(vec![1]),
                            kernel: Arc::new(classify_kernel(&h)),
                            scale: Complex64::ONE,
                        },
                        ShardOp::Fusion {
                            qubits: Arc::new(vec![0, 2]),
                            kernel: Arc::new(classify_kernel(&cp)),
                            scale: Complex64::ONE,
                        },
                        ShardOp::Scale(Complex64::cis(0.3)),
                    ]
                })
                .collect();
            atlas_statevec::with_pool(threads, |pool| {
                engine.run_shard_programs(&programs, pool);
            });
            engine.stage_barrier();
            assert!(
                engine
                    .gather_state()
                    .approx_eq(&direct.gather_state(), 1e-10),
                "t={threads}: engine diverged from direct kernels"
            );
            let (re, rd) = (engine.report(), direct.report());
            assert_eq!(re.kernels, rd.kernels);
            assert!((re.compute_secs - rd.compute_secs).abs() < 1e-12);
        }
    }

    #[test]
    fn measurement_reductions_match_dense_reference() {
        use atlas_qmath::IndexPermuter;
        // A dense, phase-rich 5-qubit state on 4 shards.
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q).rz(0.17 * (q + 1) as f64, q);
        }
        prep.cx(0, 3).cp(0.9, 1, 4);
        let reference = simulate_reference(&prep);
        let m = Machine::with_state(small_spec(), CostModel::default(), &reference);
        let pool = atlas_statevec::Pool::SERIAL;

        // Norms.
        let norms = m.shard_norms(&pool);
        assert_eq!(norms.len(), 4);
        assert!((m.total_norm(&pool) - 1.0).abs() < 1e-12);

        // Diagonal reduction = Σ sign·|α|² computed densely.
        let sign_mask = 0b01001u64;
        let want: f64 = reference
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(x, a)| {
                let s = if (x as u64 & sign_mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                s * a.norm_sqr()
            })
            .sum();
        assert!((m.signed_norm_sum(sign_mask, &pool) - want).abs() < 1e-12);

        // Off-diagonal reduction with a cross-shard flip (bit 4 ≥ L=3).
        let flip = 0b10010u64;
        let want =
            reference
                .amplitudes()
                .iter()
                .enumerate()
                .fold(Complex64::ZERO, |acc, (x, &a)| {
                    let s = if (x as u64 & sign_mask).count_ones().is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    acc + reference.amplitudes()[x ^ flip as usize].conj() * a * s
                });
        let got = m.signed_pair_sum(flip, sign_mask, &pool);
        assert!((got - want).norm() < 1e-12);

        // Logical chunk norms under a non-trivial layout permutation sum
        // to the per-chunk dense masses.
        let mut map: Vec<u32> = (0..5).collect();
        map.swap(0, 4);
        map.swap(1, 3);
        let perm = atlas_qmath::QubitPermutation::from_map(map);
        let mut permuted = Machine::with_state(small_spec(), CostModel::default(), &reference);
        permuted.permute_state(&perm, 0);
        // State now holds logical x at physical perm(x): l2p = perm.
        let l2p = IndexPermuter::new(&perm);
        let chunks = permuted.logical_chunk_norms(&l2p, 2, &pool);
        assert_eq!(chunks.len(), 8);
        for (j, &got) in chunks.iter().enumerate() {
            let want: f64 = (0..4)
                .map(|t| reference.amplitudes()[j * 4 + t].norm_sqr())
                .sum();
            assert!((got - want).abs() < 1e-12, "chunk {j}");
        }

        // Inverse-CDF: targets placed inside known probability intervals
        // resolve to the matching logical indices.
        let probs: Vec<f64> = reference
            .amplitudes()
            .iter()
            .map(|a| a.norm_sqr())
            .collect();
        let mut cdf = vec![0.0];
        for &p in &probs {
            cdf.push(cdf.last().unwrap() + p);
        }
        let targets: Vec<f64> = vec![
            cdf[3] + probs[3] * 0.5,
            cdf[17] + probs[17] * 0.25,
            cdf[30] + probs[30] * 0.99,
        ];
        let mut sorted = targets.clone();
        sorted.sort_by(f64::total_cmp);
        let got = permuted.resolve_targets(&l2p, 2, &chunks, &sorted, &pool);
        assert_eq!(got, vec![3, 17, 30]);

        // Marginal over physical bits {0, 4} matches the dense sum.
        let dist = m.marginal_distribution(&[0, 4], &pool);
        for (v, &got_p) in dist.iter().enumerate() {
            let want: f64 = reference
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(x, _)| (x & 1 != 0) as usize | (((x >> 4) & 1) << 1) == v)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((got_p - want).abs() < 1e-12, "marginal bin {v}");
        }

        // Top outcomes agree with the dense selector.
        let want = reference.top_probabilities(5);
        let identity = IndexPermuter::new(&atlas_qmath::QubitPermutation::identity(5));
        let got = m.top_outcomes(5, &identity, &pool);
        assert_eq!(got.len(), 5);
        for ((gi, gp), (wi, wp)) in got.iter().zip(&want) {
            assert_eq!(gi, wi);
            assert!((gp - wp).abs() < 1e-12);
        }
    }

    #[test]
    fn shm_kernel_functional_and_charged() {
        let mut prep = Circuit::new(5);
        prep.h(0).h(1).h(2);
        let reference = simulate_reference(&prep);
        let mut m = Machine::with_state(small_spec(), CostModel::default(), &reference);
        let gates = vec![
            Gate::new(GateKind::CX, &[0, 1]),
            Gate::new(GateKind::T, &[2]),
        ];
        for s in 0..m.num_shards() {
            m.run_shm_kernel(s, &[0, 1, 2], &gates);
        }
        m.stage_barrier();
        let mut want_c = Circuit::new(5);
        want_c.h(0).h(1).h(2).cx(0, 1).t(2);
        let want = simulate_reference(&want_c);
        assert!(m.gather_state().approx_eq(&want, 1e-10));
        let r = m.report();
        assert!(r.compute_secs > 0.0);
    }
}
