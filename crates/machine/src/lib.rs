//! # atlas-machine
//!
//! A simulated multi-node, multi-GPU cluster — the execution substrate that
//! stands in for the paper's Perlmutter testbed (64 nodes × 4 A100 GPUs,
//! NVLink intra-node, Slingshot inter-node, NCCL collectives).
//!
//! Two execution modes share one code path:
//!
//! * **functional** — shards of the state vector are real `Vec<Complex64>`
//!   buffers; kernels genuinely transform amplitudes (validated against the
//!   reference simulator), and the clock model charges simulated time;
//! * **dry-run** — no amplitudes are allocated; only the clock model runs.
//!   This is how paper-scale experiments (28–36 qubits on up to 256
//!   simulated GPUs) are reproduced on a host without 0.5 PB of RAM.
//!
//! Time accounting is bulk-synchronous: kernel costs accumulate per device
//! and fold into the ledger at stage barriers; stage-transition all-to-alls
//! are charged from an exact per-(source, destination)-shard traffic matrix
//! (see [`traffic`]).

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cost;
pub mod machine;
pub mod topology;
pub mod traffic;

pub use cost::CostModel;
pub use machine::{Machine, MachineReport, ShardOp, ShardProgram, ShmPartList, StageTiming};
pub use topology::MachineSpec;
pub use traffic::{traffic_matrix, TrafficEntry};
