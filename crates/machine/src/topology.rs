//! Cluster shape: nodes, GPUs per node, per-GPU shard capacity.

/// Static description of the simulated cluster.
///
/// With a circuit of `n` qubits and `L = local_qubits`, the state vector is
/// split into `2^{n-L}` shards. Shard index bits are laid out as
/// `[regional | global]`: the low `R = n - L - G` bits select a slot within
/// a node, the high `G = log2(nodes)` bits select the node. When `2^R`
/// exceeds `gpus_per_node`, the extra shards live in node DRAM and are
/// swapped through the GPUs (the paper's DRAM-offloading mode, §VII-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of nodes (power of two).
    pub nodes: usize,
    /// GPUs per node (power of two).
    pub gpus_per_node: usize,
    /// L: each GPU holds `2^L` amplitudes in device memory.
    pub local_qubits: u32,
}

impl MachineSpec {
    /// A spec mirroring one Perlmutter node group: `nodes` × 4 × A100-40GB,
    /// 28 local qubits (4 GiB of amplitudes per GPU).
    pub fn perlmutter(nodes: usize) -> Self {
        MachineSpec {
            nodes,
            gpus_per_node: 4,
            local_qubits: 28,
        }
    }

    /// Single-GPU machine with `l` local qubits.
    pub fn single_gpu(l: u32) -> Self {
        MachineSpec {
            nodes: 1,
            gpus_per_node: 1,
            local_qubits: l,
        }
    }

    /// Total GPU count.
    pub fn num_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// G: number of global qubits (node-selecting shard bits).
    pub fn global_qubits(&self) -> u32 {
        self.nodes.trailing_zeros()
    }

    /// R for a circuit of `n` qubits: the regional (within-node) shard bits.
    pub fn regional_qubits(&self, n: u32) -> u32 {
        assert!(
            n >= self.local_qubits + self.global_qubits(),
            "circuit of {n} qubits too small for L={} G={}",
            self.local_qubits,
            self.global_qubits()
        );
        n - self.local_qubits - self.global_qubits()
    }

    /// Number of shards for an `n`-qubit circuit.
    pub fn num_shards(&self, n: u32) -> usize {
        1usize << (n - self.local_qubits)
    }

    /// Shards resident per node.
    pub fn shards_per_node(&self, n: u32) -> usize {
        1usize << self.regional_qubits(n)
    }

    /// `true` when shards outnumber GPUs and DRAM offloading is in effect.
    pub fn offloading(&self, n: u32) -> bool {
        self.shards_per_node(n) > self.gpus_per_node
    }

    /// Node that owns shard `s` (top `G` shard bits).
    pub fn node_of_shard(&self, n: u32, s: usize) -> usize {
        s >> self.regional_qubits(n)
    }

    /// GPU (flat id across the cluster) that processes shard `s`.
    pub fn gpu_of_shard(&self, n: u32, s: usize) -> usize {
        let node = self.node_of_shard(n, s);
        let within = s & ((1 << self.regional_qubits(n)) - 1);
        node * self.gpus_per_node + (within % self.gpus_per_node)
    }

    fn validate(&self) {
        assert!(self.nodes.is_power_of_two(), "nodes must be a power of two");
        assert!(
            self.gpus_per_node.is_power_of_two(),
            "gpus_per_node must be a power of two"
        );
    }

    /// Panics if the spec is malformed.
    pub fn checked(self) -> Self {
        self.validate();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perlmutter_shape() {
        let m = MachineSpec::perlmutter(64).checked();
        assert_eq!(m.num_gpus(), 256);
        assert_eq!(m.global_qubits(), 6);
        assert_eq!(m.regional_qubits(36), 2);
        assert_eq!(m.num_shards(36), 256);
        assert!(!m.offloading(36));
    }

    #[test]
    fn offload_detection() {
        let m = MachineSpec::single_gpu(28);
        assert_eq!(m.regional_qubits(32), 4);
        assert!(m.offloading(32)); // 16 shards, 1 GPU
        assert!(!m.offloading(28));
    }

    #[test]
    fn shard_placement() {
        let m = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 4,
        }
        .checked();
        // n = 7 → 8 shards: R=2 (4 per node), G=1.
        let n = 7;
        assert_eq!(m.regional_qubits(n), 2);
        assert_eq!(m.node_of_shard(n, 3), 0);
        assert_eq!(m.node_of_shard(n, 4), 1);
        // 4 shards per node on 2 GPUs → offloading.
        assert!(m.offloading(n));
        assert_eq!(m.gpu_of_shard(n, 0), 0);
        assert_eq!(m.gpu_of_shard(n, 1), 1);
        assert_eq!(m.gpu_of_shard(n, 2), 0);
        assert_eq!(m.gpu_of_shard(n, 5), 3);
    }
}
