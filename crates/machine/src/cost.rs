//! The calibrated cost model.
//!
//! Constants approximate an NVIDIA A100-SXM4-40GB (1.3 TB/s HBM, ~9.7
//! TFLOP/s fp64), NVLink3 intra-node links, a 200 Gb/s Slingshot NIC per
//! node, and PCIe 4.0 ×16 host links — the paper's testbed (§VII-A). The
//! paper derives the same constants by microbenchmarking (§VI-B /
//! §VII-A); here they are first-principles estimates, and the criterion
//! micro-benches in `atlas-bench` measure this host's CPU analogues to
//! show the *structure* (memory-bound below ~5 fused qubits, compute-bound
//! above) is preserved.
//!
//! All kernel constants are **per amplitude, in nanoseconds**; multiply by
//! the shard's amplitude count for wall time. The kernelization DP uses the
//! same per-amplitude units, so DP cost ordering and wall-time ordering
//! agree by construction.

use atlas_circuit::{Gate, GateKind};

/// Calibrated machine constants. See module docs for provenance.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Full read+write pass over device memory, per amplitude (ns).
    pub mem_pass_ns: f64,
    /// One complex multiply-add per amplitude (ns) in a fusion kernel.
    pub fuse_mac_ns: f64,
    /// Fixed kernel-launch overhead (µs).
    pub kernel_launch_us: f64,
    /// Shared-memory kernel load/store + sync per amplitude (ns) — the
    /// paper's `α`.
    pub shm_alpha_ns: f64,
    /// Per-gate shared-memory costs by shape (ns per amplitude).
    pub shm_gate_diag_ns: f64,
    /// Non-diagonal single-qubit gate cost in shared memory.
    pub shm_gate_1q_ns: f64,
    /// Two-qubit / controlled gate cost in shared memory.
    pub shm_gate_2q_ns: f64,
    /// Three-qubit gate cost in shared memory.
    pub shm_gate_3q_ns: f64,
    /// Effective per-GPU NVLink bandwidth (bytes/s).
    pub intra_node_bw: f64,
    /// Per-node NIC bandwidth, shared by the node's GPUs (bytes/s).
    pub inter_node_bw: f64,
    /// Per-GPU host↔device bandwidth for DRAM offloading (bytes/s).
    pub pcie_bw: f64,
    /// Collective-step latency (µs) added to every all-to-all.
    pub comm_latency_us: f64,
    /// Largest fusion-kernel qubit count the device supports.
    pub max_fusion_qubits: u32,
    /// Largest shared-memory kernel active-qubit count (shared-memory
    /// capacity: 2^k amplitudes must fit in 164 KB).
    pub max_shm_qubits: u32,
    /// The three least significant qubits must be active in every
    /// shared-memory kernel (128-byte coalesced loads, §VI-B footnote).
    pub shm_required_low_qubits: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_pass_ns: 0.025,
            fuse_mac_ns: 0.0008,
            kernel_launch_us: 8.0,
            shm_alpha_ns: 0.030,
            shm_gate_diag_ns: 0.002,
            shm_gate_1q_ns: 0.004,
            shm_gate_2q_ns: 0.006,
            shm_gate_3q_ns: 0.010,
            intra_node_bw: 250.0e9,
            inter_node_bw: 22.0e9,
            pcie_bw: 24.0e9,
            comm_latency_us: 20.0,
            max_fusion_qubits: 7,
            max_shm_qubits: 10,
            shm_required_low_qubits: 3,
        }
    }
}

/// Complex-amplitude size in bytes (2 × f64).
pub const AMP_BYTES: f64 = 16.0;

impl CostModel {
    /// Per-amplitude cost (ns) of a fusion kernel over `k` qubits: the
    /// larger of the memory-bound pass and the `2^k` MACs per amplitude.
    /// This is the paper's "constant per kernel qubit count" (§VI-B(1)).
    pub fn fusion_unit_ns(&self, k: u32) -> f64 {
        let macs = (1u64 << k) as f64;
        self.mem_pass_ns.max(macs * self.fuse_mac_ns)
    }

    /// Per-amplitude cost (ns) of one gate inside a shared-memory kernel.
    pub fn shm_gate_unit_ns(&self, gate: &Gate) -> f64 {
        use GateKind::*;
        match gate.kind {
            Z | S | Sdg | T | Tdg | RZ(_) | P(_) | CZ | CP(_) | CRZ(_) | RZZ(_) | CCZ => {
                self.shm_gate_diag_ns
            }
            H | X | Y | SX | RX(_) | RY(_) | U3(..) | PauliNoise(_) => self.shm_gate_1q_ns,
            CX | CY | CH | CRX(_) | CRY(_) | Swap | RXX(_) => self.shm_gate_2q_ns,
            CCX | CSwap => self.shm_gate_3q_ns,
        }
    }

    /// Wall-clock seconds of a fusion kernel over `k` qubits on a shard of
    /// `amps` amplitudes.
    pub fn fusion_kernel_secs(&self, k: u32, amps: usize) -> f64 {
        self.kernel_launch_us * 1e-6 + amps as f64 * self.fusion_unit_ns(k) * 1e-9
    }

    /// Wall-clock seconds of a shared-memory kernel applying `gates`.
    pub fn shm_kernel_secs<'a>(
        &self,
        gates: impl IntoIterator<Item = &'a Gate>,
        amps: usize,
    ) -> f64 {
        let per_amp: f64 = self.shm_alpha_ns
            + gates
                .into_iter()
                .map(|g| self.shm_gate_unit_ns(g))
                .sum::<f64>();
        self.kernel_launch_us * 1e-6 + amps as f64 * per_amp * 1e-9
    }

    /// Wall-clock seconds for a pure scaling pass (insular diagonal factor
    /// applied to a whole shard).
    pub fn scale_pass_secs(&self, amps: usize) -> f64 {
        self.kernel_launch_us * 1e-6 + amps as f64 * self.mem_pass_ns * 1e-9
    }

    /// Host↔device transfer seconds for one shard of `amps` amplitudes
    /// (one direction).
    pub fn pcie_transfer_secs(&self, amps: usize) -> f64 {
        amps as f64 * AMP_BYTES / self.pcie_bw
    }

    /// The most cost-efficient fusion kernel size: qubit count that
    /// minimizes per-amplitude cost *per gate packed*, assuming a kernel of
    /// `k` qubits absorbs ~`k` gates. With the default constants this is 5,
    /// matching §VII-E's greedy baseline.
    pub fn best_fusion_size(&self) -> u32 {
        (1..=self.max_fusion_qubits)
            .min_by(|&a, &b| {
                let ca = self.fusion_unit_ns(a) / a as f64;
                let cb = self.fusion_unit_ns(b) / b as f64;
                ca.partial_cmp(&cb).unwrap()
            })
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::Gate;

    #[test]
    fn fusion_cost_memory_bound_then_compute_bound() {
        let c = CostModel::default();
        // Small kernels are memory-bound (flat cost)…
        assert_eq!(c.fusion_unit_ns(1), c.mem_pass_ns);
        assert_eq!(c.fusion_unit_ns(3), c.mem_pass_ns);
        // …large kernels are compute-bound (exponential).
        assert!(c.fusion_unit_ns(7) > 2.0 * c.fusion_unit_ns(5));
    }

    #[test]
    fn best_fusion_size_is_five() {
        // §VII-E: "the most cost-efficient kernel size in the cost
        // function" is 5 qubits.
        assert_eq!(CostModel::default().best_fusion_size(), 5);
    }

    #[test]
    fn shm_kernel_amortizes_memory_traffic() {
        let c = CostModel::default();
        let gates: Vec<Gate> = (0..6).map(|i| Gate::new(GateKind::H, &[i])).collect();
        let amps = 1 << 20;
        let shm = c.shm_kernel_secs(gates.iter(), amps);
        let separate: f64 = gates.iter().map(|_| c.fusion_kernel_secs(1, amps)).sum();
        assert!(
            shm < separate,
            "6 gates in one SHM kernel ({shm:.6}s) must beat 6 passes ({separate:.6}s)"
        );
    }

    #[test]
    fn single_gpu_28q_sim_magnitude() {
        // ~70 fusion kernels of 5 qubits at 2^28 amplitudes should land in
        // the paper's single-GPU ballpark (≈0.5–2 s for qft-28).
        let c = CostModel::default();
        let t = 70.0 * c.fusion_kernel_secs(5, 1 << 28);
        assert!(t > 0.2 && t < 3.0, "t = {t}");
    }

    #[test]
    fn diagonal_gates_cheapest_in_shm() {
        let c = CostModel::default();
        let cz = Gate::new(GateKind::CZ, &[0, 1]);
        let cx = Gate::new(GateKind::CX, &[0, 1]);
        assert!(c.shm_gate_unit_ns(&cz) < c.shm_gate_unit_ns(&cx));
    }
}
