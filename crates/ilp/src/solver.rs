//! Branch-and-bound search with pseudo-Boolean propagation.

use crate::model::{CmpOp, Model, VarId};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Search budget and reporting knobs.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Maximum number of branch nodes explored before giving up. The
    /// sole default budget: node counts are a pure function of the
    /// model, so two runs on any two machines stop at the same node and
    /// return the same incumbent.
    pub node_limit: u64,
    /// Opt-in wall-clock budget. `None` (the default) disables it:
    /// a wall-clock cutoff makes the returned incumbent depend on
    /// machine speed and load, so enabling it trades reproducibility
    /// for latency control.
    pub time_limit: Option<Duration>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 20_000_000,
            time_limit: None,
        }
    }
}

/// Outcome classification of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned assignment is provably optimal.
    Optimal,
    /// A feasible assignment was found but the budget expired before the
    /// search space was exhausted.
    Feasible,
    /// The model is provably infeasible.
    Infeasible,
    /// Budget expired with no feasible assignment found (and no
    /// infeasibility proof).
    Unknown,
}

/// Result of [`solve`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Status of the search.
    pub status: SolveStatus,
    /// Best assignment found, if any (indexed by `VarId`).
    pub assignment: Option<Vec<bool>>,
    /// Objective of `assignment`.
    pub objective: Option<i64>,
    /// Number of branch nodes explored.
    pub nodes: u64,
}

impl Solution {
    /// Value of variable `v` in the best assignment. Panics without one.
    pub fn value(&self, v: VarId) -> bool {
        self.assignment.as_ref().expect("no assignment")[v.0 as usize]
    }
}

/// One normalized constraint `Σ aᵢxᵢ ≤ rhs`.
struct NormCon {
    terms: Vec<(u32, i64)>,
    rhs: i64,
}

struct Search<'m> {
    model: &'m Model,
    cons: Vec<NormCon>,
    /// var → (constraint index, coefficient) occurrences.
    occurs: Vec<Vec<(u32, i64)>>,
    /// Per-constraint minimum possible LHS under the current partial
    /// assignment.
    cur_min: Vec<i64>,
    /// -1 unassigned, 0, 1.
    values: Vec<i8>,
    trail: Vec<u32>,
    num_assigned: usize,
    /// Minimum possible objective under the current partial assignment.
    obj_min: i64,
    best: Option<(i64, Vec<bool>)>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    /// Static branch order (priority desc, then id).
    order: Vec<u32>,
    nodes: u64,
}

enum PropResult {
    Ok,
    Conflict,
}

impl<'m> Search<'m> {
    fn new(model: &'m Model) -> Self {
        let nv = model.num_vars() as usize;
        let mut cons = Vec::new();
        for c in &model.constraints {
            let terms: Vec<(u32, i64)> = c.expr.terms.iter().map(|&(v, a)| (v.0, a)).collect();
            match c.op {
                CmpOp::Le => cons.push(NormCon { terms, rhs: c.rhs }),
                CmpOp::Ge => cons.push(NormCon {
                    terms: terms.iter().map(|&(v, a)| (v, -a)).collect(),
                    rhs: -c.rhs,
                }),
                CmpOp::Eq => {
                    cons.push(NormCon {
                        terms: terms.clone(),
                        rhs: c.rhs,
                    });
                    cons.push(NormCon {
                        terms: terms.iter().map(|&(v, a)| (v, -a)).collect(),
                        rhs: -c.rhs,
                    });
                }
            }
        }
        let mut occurs = vec![Vec::new(); nv];
        let mut cur_min = vec![0i64; cons.len()];
        for (ci, c) in cons.iter().enumerate() {
            for &(v, a) in &c.terms {
                occurs[v as usize].push((ci as u32, a));
                if a < 0 {
                    cur_min[ci] += a;
                }
            }
        }
        let obj_min = model.objective.iter().filter(|&&c| c < 0).sum();
        let mut order: Vec<u32> = (0..nv as u32).collect();
        order.sort_by_key(|&v| (-model.priority[v as usize], v));
        Search {
            model,
            cons,
            occurs,
            cur_min,
            values: vec![-1; nv],
            trail: Vec::with_capacity(nv),
            num_assigned: 0,
            obj_min,
            best: None,
            queue: VecDeque::new(),
            in_queue: vec![false; 0],
            order,
            nodes: 0,
        }
    }

    /// Upper bound the objective must beat (strictly) to be useful.
    #[inline]
    fn bound(&self) -> i64 {
        match &self.best {
            Some((b, _)) => *b,
            None => i64::MAX,
        }
    }

    /// Assigns `var := val`, updating activities. Returns false on conflict
    /// (already assigned the opposite value).
    fn assign(&mut self, var: u32, val: bool) -> bool {
        match self.values[var as usize] {
            -1 => {}
            v => return (v == 1) == val,
        }
        self.values[var as usize] = i8::from(val);
        self.trail.push(var);
        self.num_assigned += 1;
        // obj_min counted min(c,0) while unassigned; settle the true
        // contribution: c for val=1 (delta c - min(c,0) = max(c,0)),
        // 0 for val=0 (delta -min(c,0)).
        let c = self.model.objective[var as usize];
        self.obj_min += if val { c.max(0) } else { -c.min(0) };
        for k in 0..self.occurs[var as usize].len() {
            let (ci, a) = self.occurs[var as usize][k];
            let delta = if val { a.max(0) } else { -a.min(0) };
            if delta != 0 {
                self.cur_min[ci as usize] += delta;
                if !self.in_queue[ci as usize] {
                    self.in_queue[ci as usize] = true;
                    self.queue.push_back(ci);
                }
            }
        }
        true
    }

    /// Propagates to fixpoint. On return the queue is drained.
    fn propagate(&mut self) -> PropResult {
        while let Some(ci) = self.queue.pop_front() {
            self.in_queue[ci as usize] = false;
            let slack = self.cons[ci as usize].rhs - self.cur_min[ci as usize];
            if slack < 0 {
                self.queue.clear();
                self.in_queue.iter_mut().for_each(|b| *b = false);
                return PropResult::Conflict;
            }
            // Force variables whose wrong polarity would overflow the slack.
            let nterms = self.cons[ci as usize].terms.len();
            for t in 0..nterms {
                let (v, a) = self.cons[ci as usize].terms[t];
                if self.values[v as usize] != -1 {
                    continue;
                }
                if a > slack {
                    // x=1 would add `a` beyond the slack → force 0.
                    if !self.assign(v, false) {
                        return PropResult::Conflict;
                    }
                } else if -a > slack {
                    // x=0 would add `-a` (losing the optimistic negative) → force 1.
                    if !self.assign(v, true) {
                        return PropResult::Conflict;
                    }
                }
            }
            // Objective-driven conflict.
            if self.obj_min >= self.bound() {
                self.queue.clear();
                self.in_queue.iter_mut().for_each(|b| *b = false);
                return PropResult::Conflict;
            }
        }
        if self.obj_min >= self.bound() {
            return PropResult::Conflict;
        }
        PropResult::Ok
    }

    fn backtrack_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().unwrap();
            let val = self.values[var as usize] == 1;
            self.values[var as usize] = -1;
            self.num_assigned -= 1;
            let c = self.model.objective[var as usize];
            self.obj_min -= if val { c.max(0) } else { -c.min(0) };
            for k in 0..self.occurs[var as usize].len() {
                let (ci, a) = self.occurs[var as usize][k];
                let delta = if val { a.max(0) } else { -a.min(0) };
                self.cur_min[ci as usize] -= delta;
            }
        }
    }

    fn pick_branch_var(&self) -> Option<u32> {
        self.order
            .iter()
            .copied()
            .find(|&v| self.values[v as usize] == -1)
    }

    fn preferred_value(&self, var: u32) -> bool {
        // Try the cheaper polarity first.
        self.model.objective[var as usize] < 0
    }

    fn record_incumbent(&mut self) {
        let assignment: Vec<bool> = self.values.iter().map(|&v| v == 1).collect();
        let obj = self.model.objective_value(&assignment);
        debug_assert_eq!(obj, self.obj_min, "objective bookkeeping drifted");
        match &self.best {
            Some((b, _)) if *b <= obj => {}
            _ => self.best = Some((obj, assignment)),
        }
    }
}

/// Solves a binary ILP by branch-and-bound.
pub fn solve(model: &Model, config: &SolverConfig) -> Solution {
    let mut s = Search::new(model);
    s.in_queue = vec![false; s.cons.len()];
    // Only touch the wall clock when a time limit was actually requested:
    // the default deterministic path (`time_limit: None`) must not depend
    // on — or even observe — real time.
    // lint: allow(wall-clock) — gated on an explicit opt-in time budget.
    let start = config.time_limit.map(|_| Instant::now());

    // Root propagation: seed every constraint once.
    for ci in 0..s.cons.len() as u32 {
        s.in_queue[ci as usize] = true;
        s.queue.push_back(ci);
    }
    let mut budget_hit = false;
    let root_conflict = matches!(s.propagate(), PropResult::Conflict);

    // Decision stack: (branched var, first value, trail length before the
    // decision, whether the second polarity was already tried).
    struct Frame {
        var: u32,
        first: bool,
        mark: usize,
        flipped: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();

    if !root_conflict {
        'search: loop {
            // Complete assignment?
            if s.num_assigned == s.values.len() {
                s.record_incumbent();
                // Forced backtrack to look for better solutions.
            } else {
                s.nodes += 1;
                if s.nodes >= config.node_limit
                    || (s.nodes.is_multiple_of(1024)
                        && config
                            .time_limit
                            .zip(start)
                            .is_some_and(|(t, s0)| s0.elapsed() >= t))
                {
                    budget_hit = true;
                    break 'search;
                }
                let var = s.pick_branch_var().expect("unassigned var must exist");
                let val = s.preferred_value(var);
                let mark = s.trail.len();
                let ok = s.assign(var, val);
                if ok && matches!(s.propagate(), PropResult::Ok) {
                    stack.push(Frame {
                        var,
                        first: val,
                        mark,
                        flipped: false,
                    });
                    continue 'search;
                }
                // Immediate conflict on first polarity: undo and flip in place.
                s.backtrack_to(mark);
                let ok = s.assign(var, !val);
                if ok && matches!(s.propagate(), PropResult::Ok) {
                    stack.push(Frame {
                        var,
                        first: !val,
                        mark,
                        flipped: true,
                    });
                    continue 'search;
                }
                s.backtrack_to(mark);
                // Both polarities fail → fall through to backtracking.
            }
            // Backtrack: find the deepest frame with an untried polarity.
            loop {
                match stack.pop() {
                    None => break 'search, // exhausted
                    Some(f) => {
                        s.backtrack_to(f.mark);
                        if !f.flipped {
                            let ok = s.assign(f.var, !f.first);
                            if ok && matches!(s.propagate(), PropResult::Ok) {
                                stack.push(Frame {
                                    var: f.var,
                                    first: !f.first,
                                    mark: f.mark,
                                    flipped: true,
                                });
                                continue 'search;
                            }
                            s.backtrack_to(f.mark);
                        }
                    }
                }
            }
        }
    }

    let nodes = s.nodes;
    match (s.best, budget_hit) {
        (Some((obj, assignment)), false) => Solution {
            status: SolveStatus::Optimal,
            assignment: Some(assignment),
            objective: Some(obj),
            nodes,
        },
        (Some((obj, assignment)), true) => Solution {
            status: SolveStatus::Feasible,
            assignment: Some(assignment),
            objective: Some(obj),
            nodes,
        },
        (None, false) => Solution {
            status: SolveStatus::Infeasible,
            assignment: None,
            objective: None,
            nodes,
        },
        (None, true) => Solution {
            status: SolveStatus::Unknown,
            assignment: None,
            objective: None,
            nodes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn brute_force(model: &Model) -> Option<i64> {
        let n = model.num_vars();
        assert!(n <= 22);
        let mut best: Option<i64> = None;
        for bits in 0..1u64 << n {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            if model.check(&assignment).is_ok() {
                let obj = model.objective_value(&assignment);
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
        }
        best
    }

    #[test]
    fn knapsack_style() {
        // maximize 4x+5y+3z s.t. 2x+3y+z <= 4  → minimize negated.
        let mut m = Model::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        let z = m.add_var("z");
        m.set_objective(x, -4);
        m.set_objective(y, -5);
        m.set_objective(z, -3);
        m.le([(x, 2), (y, 3), (z, 1)], 4);
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, Some(-8)); // y + z = 5+3
        assert!(sol.value(y) && sol.value(z) && !sol.value(x));
    }

    #[test]
    fn infeasible_cardinality() {
        let mut m = Model::new();
        let vs = m.add_vars("v", 3);
        m.ge(vs.iter().map(|&v| (v, 1)), 4); // need 4 ones from 3 vars
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_and_implication_chain() {
        // x0 = 1; x_{i+1} >= x_i  → all ones; objective = sum → 5.
        let mut m = Model::new();
        let vs = m.add_vars("x", 5);
        for &v in &vs {
            m.set_objective(v, 1);
        }
        m.fix(vs[0], true);
        for w in vs.windows(2) {
            m.ge([(w[1], 1), (w[0], -1)], 0);
        }
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, Some(5));
    }

    #[test]
    fn vertex_cover_on_cycle() {
        // Minimum vertex cover of a 5-cycle = 3.
        let mut m = Model::new();
        let vs = m.add_vars("v", 5);
        for &v in &vs {
            m.set_objective(v, 1);
        }
        for i in 0..5 {
            m.ge([(vs[i], 1), (vs[(i + 1) % 5], 1)], 1);
        }
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, Some(3));
    }

    #[test]
    fn exactly_k_constraint() {
        let mut m = Model::new();
        let vs = m.add_vars("v", 8);
        m.eq(vs.iter().map(|&v| (v, 1)), 3);
        // prefer high-index vars via negative costs
        for (i, &v) in vs.iter().enumerate() {
            m.set_objective(v, -(i as i64));
        }
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, Some(-(7 + 6 + 5)));
        let count = vs.iter().filter(|&&v| sol.value(v)).count();
        assert_eq!(count, 3);
    }

    #[test]
    fn negative_coefficients() {
        // x - y <= 0 means x implies y.
        let mut m = Model::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.le([(x, 1), (y, -1)], 0);
        m.fix(x, true);
        m.set_objective(y, 1);
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.value(y));
        assert_eq!(sol.objective, Some(1));
    }

    #[test]
    fn tiny_assignment_problem_unique_optimum() {
        // 2×2 assignment: minimize 3·x00 + 1·x01 + 2·x10 + 4·x11 with one
        // pick per row and per column. Unique optimum x01 = x10 = 1,
        // objective 3.
        let mut m = Model::new();
        let x = m.add_vars("x", 4); // row-major [x00, x01, x10, x11]
        for (v, c) in x.iter().zip([3i64, 1, 2, 4]) {
            m.set_objective(*v, c);
        }
        m.eq([(x[0], 1), (x[1], 1)], 1); // row 0
        m.eq([(x[2], 1), (x[3], 1)], 1); // row 1
        m.eq([(x[0], 1), (x[2], 1)], 1); // col 0
        m.eq([(x[1], 1), (x[3], 1)], 1); // col 1
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, Some(3));
        let a = sol.assignment.as_ref().unwrap();
        assert_eq!(
            (a[0], a[1], a[2], a[3]),
            (false, true, true, false),
            "unique optimum has x01 = x10 = 1"
        );
    }

    #[test]
    fn infeasible_through_propagation_chain() {
        // x0 = 1 forces the whole implication chain to 1, which then
        // violates the cardinality cap — infeasibility only provable by
        // propagating through every link.
        let mut m = Model::new();
        let vs = m.add_vars("x", 6);
        m.fix(vs[0], true);
        for w in vs.windows(2) {
            m.ge([(w[1], 1), (w[0], -1)], 0); // x_{i+1} ≥ x_i
        }
        m.le(vs.iter().map(|&v| (v, 1)), 2); // Σx ≤ 2 < 6
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Infeasible);
        assert!(sol.assignment.is_none());
    }

    #[test]
    fn optimal_on_fixed_instance_checked_exhaustively() {
        // A fixed mixed-sign model, verified against inline enumeration of
        // all 2^6 assignments (independent of the brute_force helper).
        let mut m = Model::new();
        let vs = m.add_vars("v", 6);
        let costs = [4i64, -7, 2, -3, 5, -1];
        for (&v, &c) in vs.iter().zip(&costs) {
            m.set_objective(v, c);
        }
        m.le([(vs[0], 2), (vs[1], 3), (vs[2], -1)], 3);
        m.ge([(vs[3], 1), (vs[4], 1), (vs[5], 1)], 1);
        m.eq([(vs[1], 1), (vs[4], 1)], 1);
        let mut best: Option<i64> = None;
        for bits in 0..1u64 << 6 {
            let a: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            if m.check(&a).is_ok() {
                let obj = m.objective_value(&a);
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
        }
        let sol = solve(&m, &SolverConfig::default());
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.objective, best);
        assert!(m.check(sol.assignment.as_ref().unwrap()).is_ok());
    }

    #[test]
    fn matches_brute_force_on_random_models() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(4..12);
            let mut m = Model::new();
            let vs = m.add_vars("v", n);
            for &v in &vs {
                m.set_objective(v, rng.random_range(-5..6));
            }
            for _ in 0..rng.random_range(2..8) {
                let mut e = LinExpr::new();
                for &v in &vs {
                    if rng.random_bool(0.5) {
                        e.add(v, rng.random_range(-4..5));
                    }
                }
                let rhs = rng.random_range(-4..8);
                let op = match rng.random_range(0..3) {
                    0 => crate::model::CmpOp::Le,
                    1 => crate::model::CmpOp::Ge,
                    _ => crate::model::CmpOp::Eq,
                };
                m.add_constraint(e, op, rhs);
            }
            let sol = solve(&m, &SolverConfig::default());
            let expect = brute_force(&m);
            match expect {
                Some(obj) => {
                    assert_eq!(sol.status, SolveStatus::Optimal, "seed {seed}");
                    assert_eq!(sol.objective, Some(obj), "seed {seed}");
                    // Returned assignment must actually satisfy the model.
                    assert!(m.check(sol.assignment.as_ref().unwrap()).is_ok());
                }
                None => {
                    assert_eq!(sol.status, SolveStatus::Infeasible, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn default_budget_is_node_only() {
        // The node limit is deterministic (a pure function of the model);
        // a wall-clock limit makes the incumbent depend on machine load,
        // so it must never be on by default.
        assert!(SolverConfig::default().time_limit.is_none());
        assert_eq!(SolverConfig::default().node_limit, 20_000_000);
    }

    #[test]
    fn budget_exhaustion_reports_unknown_or_feasible() {
        // A big open model with a tiny node budget.
        let mut m = Model::new();
        let vs = m.add_vars("v", 64);
        m.eq(vs.iter().map(|&v| (v, 1)), 32);
        for (i, &v) in vs.iter().enumerate() {
            m.set_objective(v, ((i * 7) % 13) as i64 - 6);
        }
        let sol = solve(
            &m,
            &SolverConfig {
                node_limit: 4,
                ..Default::default()
            },
        );
        assert!(matches!(
            sol.status,
            SolveStatus::Feasible | SolveStatus::Unknown
        ));
    }
}
