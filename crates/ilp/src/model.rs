//! ILP model construction: binary variables, linear constraints, linear
//! objective.

/// A binary decision variable handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A linear expression `Σ aᵢ·xᵢ` with integer coefficients.
#[derive(Clone, Debug, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; duplicates are merged by
    /// [`LinExpr::normalize`].
    pub terms: Vec<(VarId, i64)>,
}

impl LinExpr {
    /// Empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff · var`.
    pub fn add(&mut self, var: VarId, coeff: i64) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// Builds from a term list.
    pub fn from_terms(terms: impl IntoIterator<Item = (VarId, i64)>) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
        }
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn normalize(&mut self) {
        self.terms.sort_unstable_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, i64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| *c != 0);
        self.terms = out;
    }
}

/// A linear constraint.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: i64,
}

/// A binary ILP: minimize `Σ cᵢxᵢ` subject to linear constraints over
/// `xᵢ ∈ {0, 1}`.
#[derive(Clone, Debug, Default)]
pub struct Model {
    num_vars: u32,
    names: Vec<String>,
    /// Objective coefficient per variable (dense; zero default).
    pub objective: Vec<i64>,
    /// All constraints.
    pub constraints: Vec<Constraint>,
    /// Branching priority per variable — higher branches earlier. Variables
    /// left at the default (0) are preferentially *derived by propagation*
    /// rather than branched on.
    pub priority: Vec<i32>,
}

impl Model {
    /// Empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Adds a variable with a debug name, returning its handle.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.num_vars);
        self.num_vars += 1;
        self.names.push(name.into());
        self.objective.push(0);
        self.priority.push(0);
        id
    }

    /// Adds `count` variables named `prefix_i`.
    pub fn add_vars(&mut self, prefix: &str, count: usize) -> Vec<VarId> {
        (0..count)
            .map(|i| self.add_var(format!("{prefix}_{i}")))
            .collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Debug name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    /// Sets the objective coefficient of `v`.
    pub fn set_objective(&mut self, v: VarId, coeff: i64) {
        self.objective[v.0 as usize] = coeff;
    }

    /// Sets the branching priority of `v` (higher = earlier).
    pub fn set_priority(&mut self, v: VarId, prio: i32) {
        self.priority[v.0 as usize] = prio;
    }

    /// Adds constraint `expr op rhs`.
    pub fn add_constraint(&mut self, mut expr: LinExpr, op: CmpOp, rhs: i64) {
        expr.normalize();
        self.constraints.push(Constraint { expr, op, rhs });
    }

    /// Convenience: `Σ terms ≤ rhs`.
    pub fn le(&mut self, terms: impl IntoIterator<Item = (VarId, i64)>, rhs: i64) {
        self.add_constraint(LinExpr::from_terms(terms), CmpOp::Le, rhs);
    }

    /// Convenience: `Σ terms ≥ rhs`.
    pub fn ge(&mut self, terms: impl IntoIterator<Item = (VarId, i64)>, rhs: i64) {
        self.add_constraint(LinExpr::from_terms(terms), CmpOp::Ge, rhs);
    }

    /// Convenience: `Σ terms = rhs`.
    pub fn eq(&mut self, terms: impl IntoIterator<Item = (VarId, i64)>, rhs: i64) {
        self.add_constraint(LinExpr::from_terms(terms), CmpOp::Eq, rhs);
    }

    /// Fixes `v` to `value` (unit constraint).
    pub fn fix(&mut self, v: VarId, value: bool) {
        self.eq([(v, 1)], i64::from(value));
    }

    /// Evaluates the objective under a full assignment.
    pub fn objective_value(&self, assignment: &[bool]) -> i64 {
        self.objective
            .iter()
            .zip(assignment)
            .map(|(c, &x)| if x { *c } else { 0 })
            .sum()
    }

    /// Checks a full assignment against every constraint; returns the index
    /// of the first violated constraint.
    pub fn check(&self, assignment: &[bool]) -> Result<(), usize> {
        for (i, c) in self.constraints.iter().enumerate() {
            let lhs: i64 = c
                .expr
                .terms
                .iter()
                .map(|&(v, a)| if assignment[v.0 as usize] { a } else { 0 })
                .sum();
            let ok = match c.op {
                CmpOp::Le => lhs <= c.rhs,
                CmpOp::Ge => lhs >= c.rhs,
                CmpOp::Eq => lhs == c.rhs,
            };
            if !ok {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_merges_and_drops_zeros() {
        let mut e = LinExpr::new();
        e.add(VarId(1), 2)
            .add(VarId(0), 5)
            .add(VarId(1), -2)
            .add(VarId(2), 3);
        e.normalize();
        assert_eq!(e.terms, vec![(VarId(0), 5), (VarId(2), 3)]);
    }

    #[test]
    fn model_bookkeeping() {
        let mut m = Model::new();
        let x = m.add_var("x");
        let y = m.add_var("y");
        m.set_objective(x, 3);
        m.le([(x, 1), (y, 1)], 1);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.name(y), "y");
        assert_eq!(m.objective_value(&[true, false]), 3);
        assert!(m.check(&[true, false]).is_ok());
        assert_eq!(m.check(&[true, true]), Err(0));
    }
}
