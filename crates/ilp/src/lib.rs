//! # atlas-ilp
//!
//! A from-scratch binary (0-1) integer linear programming solver — the
//! substrate that replaces PuLP + HiGHS in the paper's circuit-staging
//! pipeline (§IV-b).
//!
//! The solver is a branch-and-bound over pseudo-Boolean constraints with:
//!
//! * incremental activity bounds per constraint and queue-driven
//!   propagation to fixpoint (forcing variables whose assignment would
//!   violate a constraint's remaining slack),
//! * objective-based pruning against the incumbent,
//! * caller-supplied branching priorities (the staging model branches on
//!   the qubit-partition variables `A`/`B` first and lets propagation fix
//!   the derived `F`/`S`/`T` variables),
//! * node and time budgets with a faithful status report
//!   ([`SolveStatus::Optimal`] / [`Feasible`](SolveStatus::Feasible) /
//!   [`Infeasible`](SolveStatus::Infeasible) /
//!   [`Unknown`](SolveStatus::Unknown)).

#![forbid(unsafe_code)]

pub mod model;
pub mod solver;

pub use model::{CmpOp, Constraint, LinExpr, Model, VarId};
pub use solver::{solve, Solution, SolveStatus, SolverConfig};
