//! OpenQASM 2.0-subset writer and reader.
//!
//! Enough of the format to round-trip every circuit this workspace
//! generates (one quantum register, the gate alphabet of
//! [`GateKind`]) — the same interchange shape the
//! paper's artifact uses for MQT-Bench circuits.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use std::fmt::Write as _;

/// Serializes a circuit to QASM text.
pub fn to_qasm(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", c.num_qubits());
    for g in c.gates() {
        let _ = writeln!(out, "{g}");
    }
    out
}

/// Errors from [`from_qasm`].
#[derive(Debug, PartialEq)]
pub enum QasmError {
    /// Missing or malformed `qreg` declaration.
    MissingQreg,
    /// A line that could not be parsed (1-based line number, content).
    BadLine(usize, String),
    /// Unknown gate mnemonic.
    UnknownGate(usize, String),
    /// Wrong argument count for a gate.
    BadArity(usize, String),
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::MissingQreg => write!(f, "missing qreg declaration"),
            QasmError::BadLine(n, l) => write!(f, "line {n}: cannot parse '{l}'"),
            QasmError::UnknownGate(n, g) => write!(f, "line {n}: unknown gate '{g}'"),
            QasmError::BadArity(n, g) => write!(f, "line {n}: wrong arity for '{g}'"),
        }
    }
}

impl std::error::Error for QasmError {}

/// Parses the QASM subset produced by [`to_qasm`].
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("barrier")
            || line.starts_with("creg")
            || line.starts_with("measure")
        {
            continue;
        }
        if let Some(rest) = line.strip_prefix("qreg") {
            let n: u32 = rest
                .trim()
                .trim_start_matches(|c: char| c.is_alphabetic())
                .trim_start_matches('[')
                .trim_end_matches(';')
                .trim_end_matches(']')
                .parse()
                .map_err(|_| QasmError::MissingQreg)?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit.as_mut().ok_or(QasmError::MissingQreg)?;
        let stmt = line.trim_end_matches(';');
        // Forms: `name q[i],q[j]` or `name(p1,p2) q[i]`.
        let (head, args) = stmt
            .split_once(' ')
            .ok_or_else(|| QasmError::BadLine(lineno, line.to_string()))?;
        let (name, params) = match head.split_once('(') {
            Some((nm, ps)) => {
                let ps = ps.trim_end_matches(')');
                let vals: Result<Vec<f64>, _> = ps.split(',').map(|s| s.trim().parse()).collect();
                (
                    nm,
                    vals.map_err(|_| QasmError::BadLine(lineno, line.to_string()))?,
                )
            }
            None => (head, vec![]),
        };
        let qubits: Result<Vec<u32>, _> = args
            .split(',')
            .map(|a| {
                a.trim()
                    .trim_start_matches(|c: char| c.is_alphabetic())
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .parse::<u32>()
            })
            .collect();
        let qubits = qubits.map_err(|_| QasmError::BadLine(lineno, line.to_string()))?;
        let p = |i: usize| params.get(i).copied().unwrap_or(0.0);
        let kind = match (name, params.len()) {
            ("h", 0) => GateKind::H,
            ("x", 0) => GateKind::X,
            ("y", 0) => GateKind::Y,
            ("z", 0) => GateKind::Z,
            ("s", 0) => GateKind::S,
            ("sdg", 0) => GateKind::Sdg,
            ("t", 0) => GateKind::T,
            ("tdg", 0) => GateKind::Tdg,
            ("sx", 0) => GateKind::SX,
            ("rx", 1) => GateKind::RX(p(0)),
            ("ry", 1) => GateKind::RY(p(0)),
            ("rz", 1) => GateKind::RZ(p(0)),
            ("p", 1) | ("u1", 1) => GateKind::P(p(0)),
            ("u3", 3) | ("u", 3) => GateKind::U3(p(0), p(1), p(2)),
            ("cx", 0) => GateKind::CX,
            ("cy", 0) => GateKind::CY,
            ("cz", 0) => GateKind::CZ,
            ("ch", 0) => GateKind::CH,
            ("cp", 1) | ("cu1", 1) => GateKind::CP(p(0)),
            ("crx", 1) => GateKind::CRX(p(0)),
            ("cry", 1) => GateKind::CRY(p(0)),
            ("crz", 1) => GateKind::CRZ(p(0)),
            ("swap", 0) => GateKind::Swap,
            ("rzz", 1) => GateKind::RZZ(p(0)),
            ("rxx", 1) => GateKind::RXX(p(0)),
            ("ccx", 0) => GateKind::CCX,
            ("ccz", 0) => GateKind::CCZ,
            ("cswap", 0) => GateKind::CSwap,
            // Not part of qelib1 — our noise-slot extension, kept in
            // the reader so noisy templates round-trip through QASM.
            ("pnoise", 1) => GateKind::PauliNoise(p(0)),
            _ => return Err(QasmError::UnknownGate(lineno, name.to_string())),
        };
        if kind.arity() != qubits.len() {
            return Err(QasmError::BadArity(lineno, name.to_string()));
        }
        c.push(Gate::new(kind, &qubits));
    }
    circuit.ok_or(QasmError::MissingQreg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Family;

    #[test]
    fn roundtrip_all_families() {
        for fam in Family::table1() {
            let c = fam.generate(7);
            let text = to_qasm(&c);
            let back = from_qasm(&text).unwrap_or_else(|e| panic!("{fam:?}: {e}"));
            assert_eq!(back.num_qubits(), c.num_qubits());
            assert_eq!(back.gates().len(), c.gates().len());
            for (a, b) in c.gates().iter().zip(back.gates()) {
                assert_eq!(a.qubits.as_slice(), b.qubits.as_slice());
                assert_eq!(a.kind.name(), b.kind.name());
            }
        }
    }

    #[test]
    fn parses_handwritten_qasm() {
        let text = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1]; // entangle
cp(1.5707963267948966) q[1],q[2];
measure q[0] -> c[0];
"#;
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.gates()[2].kind.name(), "cp");
    }

    #[test]
    fn missing_qreg_is_error() {
        assert_eq!(from_qasm("h q[0];"), Err(QasmError::MissingQreg));
    }

    #[test]
    fn unknown_gate_is_error() {
        let text = "qreg q[2];\nfoo q[0];";
        assert!(matches!(from_qasm(text), Err(QasmError::UnknownGate(2, _))));
    }
}
