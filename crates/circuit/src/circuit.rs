//! The circuit container: an ordered gate sequence over `n` qubits, with
//! dependency extraction and cached per-gate qubit masks.

use crate::gate::{Gate, GateKind};
use crate::insular;

/// A quantum circuit: `n` qubits and an ordered sequence of gates.
///
/// The sequence order is the program order used by the staging ILP and the
/// kernelization DP; two gates commute structurally when they share no
/// qubits (the algorithms additionally exploit insular-qubit commutation).
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n: u32,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `n` qubits.
    ///
    /// The container itself is backend-agnostic and accepts up to 4096
    /// qubits (the stabilizer tableau runs in polynomial space). The
    /// statevector planner enforces its own n ≤ 63 bound — bitmask
    /// shard arithmetic — with a typed error at plan time.
    pub fn new(n: u32) -> Self {
        assert!((1..=4096).contains(&n), "supported qubit range is 1..=4096");
        Circuit {
            n,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named circuit (name is carried through reports).
    pub fn named(n: u32, name: impl Into<String>) -> Self {
        let mut c = Circuit::new(n);
        c.name = name.into();
        c
    }

    /// Circuit name ("" if unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gate sequence.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate, validating qubit indices.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits.iter() {
            assert!(q < self.n, "gate qubit {q} out of range (n={})", self.n);
        }
        self.gates.push(gate);
    }

    /// Appends `kind` on `qubits`.
    pub fn add(&mut self, kind: GateKind, qubits: &[u32]) -> &mut Self {
        self.push(Gate::new(kind, qubits));
        self
    }

    // Convenience builders for the common gates.

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.add(GateKind::H, &[q])
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.add(GateKind::X, &[q])
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.add(GateKind::Y, &[q])
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.add(GateKind::Z, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: u32) -> &mut Self {
        self.add(GateKind::T, &[q])
    }
    /// RX(θ) on `q`.
    pub fn rx(&mut self, theta: f64, q: u32) -> &mut Self {
        self.add(GateKind::RX(theta), &[q])
    }
    /// RY(θ) on `q`.
    pub fn ry(&mut self, theta: f64, q: u32) -> &mut Self {
        self.add(GateKind::RY(theta), &[q])
    }
    /// RZ(θ) on `q`.
    pub fn rz(&mut self, theta: f64, q: u32) -> &mut Self {
        self.add(GateKind::RZ(theta), &[q])
    }
    /// Phase(λ) on `q`.
    pub fn p(&mut self, lambda: f64, q: u32) -> &mut Self {
        self.add(GateKind::P(lambda), &[q])
    }
    /// CNOT with `control`, `target`.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.add(GateKind::CX, &[control, target])
    }
    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.add(GateKind::CZ, &[a, b])
    }
    /// Controlled-phase(λ).
    pub fn cp(&mut self, lambda: f64, control: u32, target: u32) -> &mut Self {
        self.add(GateKind::CP(lambda), &[control, target])
    }
    /// SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.add(GateKind::Swap, &[a, b])
    }

    /// Dependency edges `E`: for every pair of gates adjacent on some qubit,
    /// the pair `(earlier_index, later_index)`. These are exactly the edges
    /// of constraint (8) in the staging ILP.
    pub fn dependencies(&self) -> Vec<(usize, usize)> {
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; self.n as usize];
        let mut edges = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            for q in g.qubits.iter() {
                if let Some(prev) = last_on_qubit[q as usize] {
                    edges.push((prev, i));
                }
                last_on_qubit[q as usize] = Some(i);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Circuit depth: longest chain of qubit-sharing gates.
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.n as usize];
        let mut max = 0;
        for g in &self.gates {
            let d = g
                .qubits
                .iter()
                .map(|q| qubit_depth[q as usize])
                .max()
                .unwrap_or(0)
                + 1;
            for q in g.qubits.iter() {
                qubit_depth[q as usize] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Per-gate masks of qubits that must be local (non-insular qubits),
    /// cached in one pass. Index-aligned with [`Circuit::gates`].
    pub fn non_insular_masks(&self) -> Vec<u64> {
        self.gates.iter().map(insular::non_insular_mask).collect()
    }

    /// Per-gate staging-locality masks (see [`insular::staging_mask`]).
    pub fn staging_masks(&self) -> Vec<u64> {
        self.gates.iter().map(insular::staging_mask).collect()
    }

    /// Per-gate masks of all touched qubits.
    pub fn qubit_masks(&self) -> Vec<u64> {
        self.gates.iter().map(|g| g.qubit_mask()).collect()
    }

    /// Histogram of gate names → count (for reports).
    pub fn gate_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for g in &self.gates {
            *counts.entry(g.kind.name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Returns a structurally identical circuit with every gate
    /// parameter transformed by `f(gate_index, param_index, value)` —
    /// the re-parameterization primitive of plan-once/run-many sweeps
    /// (VQC/QAOA points share one partition plan; only angles change).
    ///
    /// Gate kinds, qubit wiring and program order are preserved exactly,
    /// so for generic parameter values the result has the same
    /// structural fingerprint as `self`. (A transform that lands a
    /// rotation exactly on an insularity special case such as `RX(π)`
    /// changes the fingerprint — measure zero in parameter space, and
    /// correctly rejected at execute time.)
    pub fn map_params(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> Circuit {
        let mut c = Circuit::named(self.n, self.name.clone());
        for (gi, g) in self.gates.iter().enumerate() {
            let params = g.kind.params();
            if params.is_empty() {
                c.push(*g);
                continue;
            }
            let mapped: Vec<f64> = params
                .iter()
                .enumerate()
                .map(|(pi, &p)| f(gi, pi, p))
                .collect();
            c.push(Gate::new(g.kind.with_params(&mapped), g.qubits.as_slice()));
        }
        c
    }

    /// Number of leading gates that are Clifford (see
    /// [`GateKind::is_clifford`]): `num_gates()` for an all-Clifford
    /// circuit, 0 when the very first gate is already non-Clifford.
    /// This is the backend-dispatch split point — the prefix runs on
    /// the tableau, the suffix (if any) on the statevector engine.
    pub fn clifford_prefix_len(&self) -> usize {
        self.gates
            .iter()
            .position(|g| !g.kind.is_clifford())
            .unwrap_or(self.gates.len())
    }

    /// `true` when every gate is Clifford (the whole circuit can run on
    /// the stabilizer tableau backend).
    pub fn is_clifford(&self) -> bool {
        self.clifford_prefix_len() == self.num_gates()
    }

    /// Returns a new circuit containing the gates at `indices`, in order.
    pub fn subcircuit(&self, indices: &[usize]) -> Circuit {
        let mut c = Circuit::named(self.n, self.name.clone());
        for &i in indices {
            c.push(self.gates[i]);
        }
        c
    }

    /// Checks that `other` is a topologically equivalent reordering of this
    /// circuit: same multiset of gates and, for every pair of
    /// qubit-sharing gates, the same relative order.
    ///
    /// Used to validate kernelization output (Theorem 2).
    pub fn topologically_equivalent(&self, other: &Circuit) -> bool {
        if self.n != other.n || self.gates.len() != other.gates.len() {
            return false;
        }
        // Greedy matching: walk `other`'s gates; each must match the first
        // not-yet-consumed gate of `self` on each of its qubits.
        let mut next_on_qubit: Vec<std::collections::VecDeque<usize>> =
            vec![Default::default(); self.n as usize];
        for (i, g) in self.gates.iter().enumerate() {
            for q in g.qubits.iter() {
                next_on_qubit[q as usize].push_back(i);
            }
        }
        for g in &other.gates {
            // The candidate is the front of every involved qubit's queue and
            // must be the same gate index on all of them.
            let mut candidate: Option<usize> = None;
            for q in g.qubits.iter() {
                match next_on_qubit[q as usize].front() {
                    Some(&i) => match candidate {
                        None => candidate = Some(i),
                        Some(c) if c == i => {}
                        _ => return false,
                    },
                    None => return false,
                }
            }
            let idx = match candidate {
                Some(i) => i,
                None => return false,
            };
            if self.gates[idx] != *g {
                return false;
            }
            for q in g.qubits.iter() {
                next_on_qubit[q as usize].pop_front();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2).cz(0, 2);
        c
    }

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        c.h(1);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn dependencies_are_adjacent_pairs() {
        let c = sample();
        let deps = c.dependencies();
        // h(0)->cx(0,1) on q0; cx(0,1)->cx(1,2) on q1; cx(1,2)->t(2) on q2;
        // cx(0,1)->cz(0,2) on q0; t(2)->cz(0,2) on q2.
        assert_eq!(deps, vec![(0, 1), (1, 2), (1, 4), (2, 3), (3, 4)]);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let c = sample();
        assert_eq!(c.depth(), 5); // fully serial chain here
        let mut par = Circuit::new(4);
        par.h(0).h(1).h(2).h(3);
        assert_eq!(par.depth(), 1);
    }

    #[test]
    fn topological_equivalence_accepts_commuting_swap() {
        let mut a = Circuit::new(3);
        a.h(0).h(1).cx(0, 1).t(2);
        // t(2) commutes with everything on qubits 0,1.
        let mut b = Circuit::new(3);
        b.t(2).h(1).h(0).cx(0, 1);
        assert!(a.topologically_equivalent(&b));
        assert!(b.topologically_equivalent(&a));
    }

    #[test]
    fn topological_equivalence_rejects_dependency_violation() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).h(0);
        assert!(!a.topologically_equivalent(&b));
    }

    #[test]
    fn topological_equivalence_rejects_different_gates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.x(0);
        assert!(!a.topologically_equivalent(&b));
    }

    #[test]
    fn clifford_prefix_and_classification() {
        let c = sample(); // h, cx, cx, t, cz — t is the first non-Clifford
        assert_eq!(c.clifford_prefix_len(), 3);
        assert!(!c.is_clifford());
        let mut all = Circuit::new(3);
        all.h(0).cx(0, 1).cz(1, 2).swap(0, 2);
        assert!(all.is_clifford());
        assert_eq!(all.clifford_prefix_len(), 4);
        let mut none = Circuit::new(2);
        none.t(0).h(1);
        assert_eq!(none.clifford_prefix_len(), 0);
    }

    #[test]
    fn wide_circuits_construct_beyond_the_statevector_bound() {
        // 200-qubit GHZ-style chain: container-level ops (deps, depth,
        // prefix classification) must work; only the statevector
        // planner bounds n at 63.
        let mut c = Circuit::new(200);
        c.h(0);
        for q in 0..199 {
            c.cx(q, q + 1);
        }
        assert_eq!(c.num_gates(), 200);
        assert!(c.is_clifford());
        assert_eq!(c.depth(), 200);
    }

    #[test]
    fn histogram_counts() {
        let c = sample();
        let hist = c.gate_histogram();
        assert!(hist.contains(&("cx", 2)));
        assert!(hist.contains(&("h", 1)));
    }

    #[test]
    fn non_insular_masks_match_gate_table() {
        let c = sample();
        let masks = c.non_insular_masks();
        assert_eq!(masks[0], 1 << 0); // h
        assert_eq!(masks[1], 1 << 1); // cx target q1
        assert_eq!(masks[2], 1 << 2); // cx target q2
        assert_eq!(masks[3], 0); // t diagonal
        assert_eq!(masks[4], 0); // cz all-insular
    }
}
