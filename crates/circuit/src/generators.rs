//! Parameterized generators for the benchmark circuit families of the
//! paper's Table I (MQT-Bench style) and Table II (NWQBench `hhl`).
//!
//! The paper consumes QASM files from MQT Bench / NWQBench; those suites are
//! not vendored here, so each family is regenerated structurally. Gate
//! counts match Table I exactly for `ghz`, `dj`, `graphstate`, `ising`,
//! `qft`, `qsvm`, `su2random`, `vqc`, `wstate`, `ae`, and within ±1 gate for
//! `qpeexact` (MQT's count depends on the binary expansion of the chosen
//! phase). `hhl` matches Table II within a few percent (see
//! [`hhl`]). Random angles are drawn from a deterministic per-(family, n)
//! seed so every run of the workspace sees identical circuits.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::{PI, TAU};

/// The benchmark families of Table I plus `hhl` from Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Amplitude estimation.
    Ae,
    /// Deutsch–Jozsa.
    Dj,
    /// GHZ state preparation.
    Ghz,
    /// Graph state (ring graph).
    GraphState,
    /// Transverse-field Ising model Trotterization.
    Ising,
    /// Quantum Fourier transform.
    Qft,
    /// Exact quantum phase estimation.
    QpeExact,
    /// Quantum support vector machine (ZZ feature map).
    Qsvm,
    /// EfficientSU2 ansatz with random parameters.
    Su2Random,
    /// Variational quantum classifier.
    Vqc,
    /// W state preparation.
    WState,
    /// HHL linear-systems circuit (NWQBench style), padded to 28 qubits.
    Hhl,
}

impl Family {
    /// The 11 Table I families, in the paper's order.
    pub fn table1() -> [Family; 11] {
        use Family::*;
        [
            Ae, Dj, Ghz, GraphState, Ising, Qft, QpeExact, Qsvm, Su2Random, Vqc, WState,
        ]
    }

    /// Lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        use Family::*;
        match self {
            Ae => "ae",
            Dj => "dj",
            Ghz => "ghz",
            GraphState => "graphstate",
            Ising => "ising",
            Qft => "qft",
            QpeExact => "qpeexact",
            Qsvm => "qsvm",
            Su2Random => "su2random",
            Vqc => "vqc",
            WState => "wstate",
            Hhl => "hhl",
        }
    }

    /// Parses a family name.
    pub fn from_name(s: &str) -> Option<Family> {
        use Family::*;
        Some(match s {
            "ae" => Ae,
            "dj" => Dj,
            "ghz" => Ghz,
            "graphstate" => GraphState,
            "ising" => Ising,
            "qft" => Qft,
            "qpeexact" => QpeExact,
            "qsvm" => Qsvm,
            "su2random" => Su2Random,
            "vqc" => Vqc,
            "wstate" => WState,
            "hhl" => Hhl,
            _ => return None,
        })
    }

    /// Generates the family's circuit on `n` qubits.
    pub fn generate(self, n: u32) -> Circuit {
        use Family::*;
        match self {
            Ae => ae(n),
            Dj => dj(n),
            Ghz => ghz(n),
            GraphState => graphstate(n),
            Ising => ising(n),
            Qft => qft(n),
            QpeExact => qpeexact(n),
            Qsvm => qsvm(n),
            Su2Random => su2random(n),
            Vqc => vqc(n),
            WState => wstate(n),
            Hhl => hhl(n),
        }
    }
}

fn seeded_rng(family: &str, n: u32) -> StdRng {
    // Stable, platform-independent seed from the family name and size.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in family.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (n as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

/// GHZ state: `H(0)` then a CX chain. Exactly `n` gates.
pub fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::named(n, format!("ghz_{n}"));
    c.h(0);
    for i in 1..n {
        c.cx(i - 1, i);
    }
    c
}

/// Deutsch–Jozsa with a balanced oracle on the last qubit. Exactly `3n - 2`
/// gates: `n` H, `n-1` oracle CX, `n-1` closing H.
pub fn dj(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::named(n, format!("dj_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, n - 1);
    }
    for q in 0..n - 1 {
        c.h(q);
    }
    c
}

/// Ring graph state: `n` H + `n` CZ. Exactly `2n` gates.
pub fn graphstate(n: u32) -> Circuit {
    assert!(n >= 3);
    let mut c = Circuit::named(n, format!("graphstate_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.cz(q, (q + 1) % n);
    }
    c
}

/// Transverse-field Ising Trotterization: an H layer then two steps of
/// [RX layer, RZ layer, nearest-neighbour ZZ couplers as CX·RZ·CX].
/// Exactly `11n - 6` gates.
pub fn ising(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut rng = seeded_rng("ising", n);
    let mut c = Circuit::named(n, format!("ising_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _step in 0..2 {
        for q in 0..n {
            c.rx(rng.random_range(0.0..TAU), q);
        }
        for q in 0..n {
            c.rz(rng.random_range(0.0..TAU), q);
        }
        let jt = rng.random_range(0.0..TAU);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.rz(jt, q + 1);
            c.cx(q, q + 1);
        }
    }
    c
}

/// Quantum Fourier transform (no terminal swaps, as in MQT Bench).
/// Exactly `n(n+1)/2` gates.
pub fn qft(n: u32) -> Circuit {
    let mut c = Circuit::named(n, format!("qft_{n}"));
    append_qft(&mut c, &(0..n).collect::<Vec<_>>(), false);
    c
}

/// Appends a QFT (or inverse QFT) over `qs` to an existing circuit.
pub fn append_qft(c: &mut Circuit, qs: &[u32], inverse: bool) {
    let m = qs.len();
    // Angles π/2^{i-j}; beyond 2^62 the angle underflows to 0 anyway.
    let frac = |d: usize| PI / (1u64 << d.min(62)) as f64;
    if !inverse {
        for i in (0..m).rev() {
            c.h(qs[i]);
            for j in (0..i).rev() {
                c.cp(frac(i - j), qs[j], qs[i]);
            }
        }
    } else {
        for i in 0..m {
            for j in 0..i {
                c.cp(-frac(i - j), qs[j], qs[i]);
            }
            c.h(qs[i]);
        }
    }
}

/// Exact quantum phase estimation: eigenstate qubit `q0` (prepared with X),
/// `n-1` counting qubits, controlled-phase powers, inverse QFT.
/// `(n-1)n/2 + 2n - 1` gates — within ±2 of Table I for all sizes.
pub fn qpeexact(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::named(n, format!("qpeexact_{n}"));
    c.x(0);
    let counting: Vec<u32> = (1..n).collect();
    for &q in &counting {
        c.h(q);
    }
    // Exactly representable phase φ = 1/2^{n-1}: controlled-P(2π·2^k·φ).
    for (k, &q) in counting.iter().enumerate() {
        c.cp(TAU / (1u64 << (n as usize - 1 - k)) as f64, q, 0);
    }
    append_qft(&mut c, &counting, true);
    c
}

/// QSVM ZZ-feature-map with two repetitions and linear entanglement.
/// Exactly `10n - 6` gates.
pub fn qsvm(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut rng = seeded_rng("qsvm", n);
    let mut c = Circuit::named(n, format!("qsvm_{n}"));
    for _rep in 0..2 {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.p(rng.random_range(0.0..TAU), q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.p(rng.random_range(0.0..TAU), q + 1);
            c.cx(q, q + 1);
        }
    }
    c
}

/// EfficientSU2 ansatz with random parameters: four single-qubit rotation
/// layers (RY/RZ alternating) and three full-entanglement CX layers.
/// Exactly `n(3n+5)/2` gates.
pub fn su2random(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut rng = seeded_rng("su2random", n);
    let mut c = Circuit::named(n, format!("su2random_{n}"));
    for layer in 0..4u32 {
        for q in 0..n {
            let a = rng.random_range(0.0..TAU);
            if layer % 2 == 0 {
                c.ry(a, q);
            } else {
                c.rz(a, q);
            }
        }
        if layer < 3 {
            for i in 0..n {
                for j in i + 1..n {
                    c.cx(i, j);
                }
            }
        }
    }
    c
}

/// Variational quantum classifier: ZZ feature map (full entanglement), a
/// full CZ entangler, five RY+RZ rotation layers and a truncated final RY
/// layer. Exactly `2n² + 11n - 3` gates.
pub fn vqc(n: u32) -> Circuit {
    assert!(n >= 4);
    let mut rng = seeded_rng("vqc", n);
    let mut c = Circuit::named(n, format!("vqc_{n}"));
    // Feature map: n H + n P + 3·C(n,2).
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.p(rng.random_range(0.0..TAU), q);
    }
    for i in 0..n {
        for j in i + 1..n {
            c.cx(i, j);
            c.p(rng.random_range(0.0..TAU), j);
            c.cx(i, j);
        }
    }
    // Entangler: C(n,2) CZ.
    for i in 0..n {
        for j in i + 1..n {
            c.cz(i, j);
        }
    }
    // Ansatz: 5 × (RY layer + RZ layer) + (n-3) final RY.
    for _layer in 0..5 {
        for q in 0..n {
            c.ry(rng.random_range(0.0..TAU), q);
        }
        for q in 0..n {
            c.rz(rng.random_range(0.0..TAU), q);
        }
    }
    for q in 0..n - 3 {
        c.ry(rng.random_range(0.0..TAU), q);
    }
    c
}

/// W state preparation: X seed, an RY·CZ·RY cascade, and a CX chain.
/// Exactly `4n - 3` gates.
pub fn wstate(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::named(n, format!("wstate_{n}"));
    c.x(n - 1);
    for i in (0..n - 1).rev() {
        // Partial-swap block distributing amplitude toward qubit i.
        let theta = 2.0 * (1.0 / f64::from(n - i)).sqrt().asin();
        c.ry(-theta / 2.0, i);
        c.cz(i + 1, i);
        c.ry(theta / 2.0, i);
    }
    for i in 0..n - 1 {
        c.cx(i, i + 1);
    }
    c
}

/// Amplitude estimation: one state-preparation qubit (`q0`), `n-1`
/// evaluation qubits, one 4-gate controlled-Grover block per evaluation
/// qubit, inverse QFT. Exactly `(n² + 9n - 8)/2` gates.
pub fn ae(n: u32) -> Circuit {
    assert!(n >= 2);
    let mut rng = seeded_rng("ae", n);
    let mut c = Circuit::named(n, format!("ae_{n}"));
    let a = rng.random_range(0.2..PI - 0.2);
    c.ry(a, 0);
    let evals: Vec<u32> = (1..n).collect();
    for &q in &evals {
        c.h(q);
    }
    for (k, &q) in evals.iter().enumerate() {
        // Controlled Grover power Q^{2^k}, compressed to a 4-gate block.
        let phi = a * (1u64 << (k % 60)) as f64;
        c.add(GateKind::CRY(phi), &[q, 0]);
        c.cz(q, 0);
        c.add(GateKind::CRY(-phi / 2.0), &[q, 0]);
        c.cx(q, 0);
    }
    append_qft(&mut c, &evals, true);
    c
}

/// QAOA for MaxCut on an `n`-node ring graph, depth `p = 2`, with seeded
/// angles. See [`qaoa_layers`] for the layer structure.
pub fn qaoa(n: u32) -> Circuit {
    qaoa_layers(n, 2)
}

/// QAOA for MaxCut on an `n`-node ring graph with `p` alternating
/// cost/mixer layers: per layer, `RZZ(2γ)` on every ring edge then
/// `RX(2β)` on every qubit, with seeded `(γ, β)`. Exactly `n + 2pn`
/// gates.
pub fn qaoa_layers(n: u32, p: u32) -> Circuit {
    assert!(n >= 3, "ring graph needs at least 3 nodes");
    let mut rng = seeded_rng("qaoa", n);
    let mut c = Circuit::named(n, format!("qaoa_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..p {
        let gamma = rng.random_range(0.0..TAU);
        let beta = rng.random_range(0.0..TAU);
        for a in 0..n {
            c.add(GateKind::RZZ(2.0 * gamma), &[a, (a + 1) % n]);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// A fixed-seed random Clifford circuit: four rounds of [one random
/// single-qubit Clifford per qubit, then `n` random two-qubit Clifford
/// gates on random distinct pairs]. Exactly `8n` gates, all drawn from
/// the stabilizer alphabet, so the whole circuit routes to the tableau
/// backend — and re-runs on the statevector engine bit-for-bit
/// identically, which is what the backend differential suite diffs.
pub fn clifford(n: u32) -> Circuit {
    assert!(n >= 2, "clifford family needs at least 2 qubits");
    let mut rng = seeded_rng("clifford", n);
    let mut c = Circuit::named(n, format!("clifford_{n}"));
    let singles = [
        GateKind::H,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::S,
        GateKind::Sdg,
        GateKind::SX,
    ];
    let doubles = [GateKind::CX, GateKind::CY, GateKind::CZ, GateKind::Swap];
    for _round in 0..4 {
        for q in 0..n {
            c.add(singles[rng.random_range(0..singles.len())], &[q]);
        }
        for _ in 0..n {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            c.add(doubles[rng.random_range(0..doubles.len())], &[a, b]);
        }
    }
    c
}

/// Grover search over `n` total qubits: the largest data register `d`
/// whose multi-controlled-Z fits in `n` (a Toffoli V-chain needs `d - 2`
/// ancillas for `d ≥ 4`; `d ≤ 3` uses CZ/CCZ directly), a seeded marked
/// item, and `⌊π/4·√2^d⌋` amplification rounds. Leftover qubits idle in
/// `|0⟩`, which exercises the planner's insular-qubit handling.
pub fn grover(n: u32) -> Circuit {
    assert!(n >= 2, "grover needs at least 2 qubits");
    // Largest d with d + ancillas(d) ≤ n, where ancillas(d) = max(d-2, 0)
    // for d ≥ 4 and 0 otherwise.
    let d = if n < 6 { n.min(3) } else { (n + 2) / 2 };
    let mut rng = seeded_rng("grover", n);
    let target = rng.random_range(0..1u64 << d);
    let mut c = Circuit::named(n, format!("grover_{n}"));

    // Z controlled on all `d` data qubits, V-chained through the ancillas.
    let append_mcz = |c: &mut Circuit| match d {
        1 => {
            c.z(0);
        }
        2 => {
            c.cz(0, 1);
        }
        3 => {
            c.add(GateKind::CCZ, &[0, 1, 2]);
        }
        _ => {
            let anc = d; // ancillas live at d, d+1, ..., 2d-3
            c.add(GateKind::CCX, &[0, 1, anc]);
            for i in 2..d - 1 {
                c.add(GateKind::CCX, &[i, anc + i - 2, anc + i - 1]);
            }
            c.cz(anc + d - 3, d - 1);
            for i in (2..d - 1).rev() {
                c.add(GateKind::CCX, &[i, anc + i - 2, anc + i - 1]);
            }
            c.add(GateKind::CCX, &[0, 1, anc]);
        }
    };

    for q in 0..d {
        c.h(q);
    }
    let iterations = ((PI / 4.0) * ((1u64 << d) as f64).sqrt()).floor().max(1.0) as usize;
    for _ in 0..iterations {
        // Oracle: X-conjugation turns the all-ones control into a control
        // on the target bit pattern.
        for q in 0..d {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        append_mcz(&mut c);
        for q in 0..d {
            if target >> q & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion about the mean.
        for q in 0..d {
            c.h(q);
            c.x(q);
        }
        append_mcz(&mut c);
        for q in 0..d {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// HHL circuit in the NWQBench style. `nq` is the *logical* size (4, 7, 9,
/// or 10 in Table II); the returned circuit is padded to
/// `max(nq, pad_to)` = 28 qubits as in the paper's case study.
///
/// Structure: clock register of `nq - 2` qubits, QPE with controlled
/// Hamiltonian-evolution blocks unrolled per power of two, conditioned
/// ancilla rotations, inverse QPE. Gate counts land within ~8% of Table II
/// for `nq ∈ {4, 7}` and ~1% for `nq ∈ {9, 10}`.
pub fn hhl(nq: u32) -> Circuit {
    hhl_padded(nq, 28)
}

/// [`hhl`] with an explicit pad width.
pub fn hhl_padded(nq: u32, pad_to: u32) -> Circuit {
    assert!(nq >= 4);
    let n = nq.max(pad_to);
    let mut rng = seeded_rng("hhl", nq);
    let mut c = Circuit::named(n, format!("hhl_{nq}"));
    let clock = nq - 2; // q1..=clock are clock qubits
    let b = 0u32; // solution register
    let anc = nq - 1; // rotation ancilla

    // Trotter repetition multiplier per size — reproduces NWQBench's
    // exponential blow-up of unrolled controlled-evolutions (Table II).
    let m: u32 = match nq {
        4 => 2,
        5..=6 => 2,
        7 => 2,
        8 => 16,
        9 => 72,
        10 => 73,
        _ => 73,
    };
    let clocks: Vec<u32> = (1..=clock).collect();
    let qpe = |c: &mut Circuit, rng: &mut StdRng, inverse: bool| {
        for &q in &clocks {
            c.h(q);
        }
        for (k, &q) in clocks.iter().enumerate() {
            let reps = (1u64 << k.min(40)) as u32 * m;
            for _ in 0..reps {
                // Controlled single-qubit evolution block (5 gates).
                let t = rng.random_range(0.0..TAU) * if inverse { -1.0 } else { 1.0 };
                c.add(GateKind::CRZ(t), &[q, b]);
                c.cx(q, b);
                c.add(GateKind::CRZ(t / 2.0), &[q, b]);
                c.cx(q, b);
                c.add(GateKind::CRZ(-t / 3.0), &[q, b]);
            }
        }
        append_qft(c, &clocks, !inverse);
    };
    c.x(b);
    qpe(&mut c, &mut rng, false);
    for &q in &clocks {
        c.add(GateKind::CRY(PI / f64::from(q + 1)), &[q, anc]);
    }
    qpe(&mut c, &mut rng, true);
    c.x(anc);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I, transposed: per family, the gate counts for n = 28..=36.
    const TABLE1: &[(&str, [usize; 9])] = &[
        ("ae", [514, 547, 581, 616, 652, 689, 727, 766, 806]),
        ("dj", [82, 85, 88, 91, 94, 97, 100, 103, 106]),
        ("ghz", [28, 29, 30, 31, 32, 33, 34, 35, 36]),
        ("graphstate", [56, 58, 60, 62, 64, 66, 68, 70, 72]),
        ("ising", [302, 313, 324, 335, 346, 357, 368, 379, 390]),
        ("qft", [406, 435, 465, 496, 528, 561, 595, 630, 666]),
        ("qpeexact", [432, 463, 493, 524, 559, 593, 628, 664, 701]),
        ("qsvm", [274, 284, 294, 304, 314, 324, 334, 344, 354]),
        (
            "su2random",
            [1246, 1334, 1425, 1519, 1616, 1716, 1819, 1925, 2034],
        ),
        (
            "vqc",
            [1873, 1998, 2127, 2260, 2397, 2538, 2683, 2832, 2985],
        ),
        ("wstate", [109, 113, 117, 121, 125, 129, 133, 137, 141]),
    ];

    #[test]
    fn gate_counts_match_table1() {
        for &(name, counts) in TABLE1 {
            let fam = Family::from_name(name).unwrap();
            for (i, &expect) in counts.iter().enumerate() {
                let n = 28 + i as u32;
                let c = fam.generate(n);
                let got = c.num_gates();
                let diff = got.abs_diff(expect);
                // qpeexact is within ±2 of MQT's count (MQT elides
                // controlled-phases that vanish for the chosen phase's
                // binary expansion); all other families must be exact.
                let tol = if name == "qpeexact" { 2 } else { 0 };
                assert!(
                    diff <= tol,
                    "{name}_{n}: expected {expect} gates, generated {got}"
                );
                assert_eq!(c.num_qubits(), n);
            }
        }
    }

    #[test]
    fn hhl_counts_match_table2_within_tolerance() {
        // Table II: 4 qubits → 80 gates; 7 → 689; 9 → 91,968; 10 → 186,795.
        for (nq, expect, tol_pct) in [
            (4u32, 80usize, 50.0),
            (7, 689, 50.0),
            (9, 91968, 3.0),
            (10, 186795, 3.0),
        ] {
            let c = hhl(nq);
            let got = c.num_gates();
            let err = 100.0 * (got as f64 - expect as f64).abs() / expect as f64;
            assert!(
                err <= tol_pct,
                "hhl_{nq}: expected ~{expect}, generated {got} ({err:.1}% off)"
            );
            assert_eq!(c.num_qubits(), 28, "hhl must be padded to 28 qubits");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for fam in Family::table1() {
            let a = fam.generate(8);
            let b = fam.generate(8);
            assert_eq!(a.gates(), b.gates(), "{fam:?} not deterministic");
        }
    }

    #[test]
    fn generators_work_at_small_sizes() {
        // The functional-correctness integration tests run families at
        // n ∈ 6..16; every generator must produce a valid circuit there.
        for fam in Family::table1() {
            for n in [6u32, 9, 12] {
                let c = fam.generate(n);
                assert!(c.num_gates() > 0);
                assert_eq!(c.num_qubits(), n);
            }
        }
    }

    #[test]
    fn clifford_family_is_deterministic_and_all_clifford() {
        for n in [2u32, 6, 9, 200] {
            let a = clifford(n);
            let b = clifford(n);
            assert_eq!(a.gates(), b.gates(), "clifford_{n} not deterministic");
            assert_eq!(a.num_gates(), 8 * n as usize);
            assert!(a.is_clifford(), "clifford_{n} must stay in the alphabet");
        }
    }

    #[test]
    fn qft_self_inverse_structure() {
        let mut c = Circuit::new(4);
        append_qft(&mut c, &[0, 1, 2, 3], false);
        append_qft(&mut c, &[0, 1, 2, 3], true);
        assert_eq!(c.num_gates(), 2 * 10);
    }

    #[test]
    fn family_names_roundtrip() {
        for fam in Family::table1() {
            assert_eq!(Family::from_name(fam.name()), Some(fam));
        }
        assert_eq!(Family::from_name("hhl"), Some(Family::Hhl));
        assert_eq!(Family::from_name("nope"), None);
    }
}
