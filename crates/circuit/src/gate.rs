//! Gate kinds, their unitaries, and the `Gate` instance type.

use atlas_qmath::{Complex64, Matrix};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// The supported gate alphabet.
///
/// Parameterized rotations carry their angle. The set covers everything the
/// Table I / Table II benchmark families emit plus the common extras a
/// downstream user expects (`SX`, `U3`, `CSWAP`, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateKind {
    // --- single-qubit ---
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X.
    SX,
    /// Rotation about X by θ.
    RX(f64),
    /// Rotation about Y by θ.
    RY(f64),
    /// Rotation about Z by θ.
    RZ(f64),
    /// Phase gate diag(1, e^{iλ}).
    P(f64),
    /// General single-qubit U(θ, φ, λ).
    U3(f64, f64, f64),
    // --- two-qubit; controls first in `Gate::qubits` ---
    /// Controlled-X. qubits = [control, target].
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled-H.
    CH,
    /// Controlled phase diag(1,1,1,e^{iλ}).
    CP(f64),
    /// Controlled RX.
    CRX(f64),
    /// Controlled RY.
    CRY(f64),
    /// Controlled RZ.
    CRZ(f64),
    /// SWAP.
    Swap,
    /// ZZ interaction exp(-i θ/2 Z⊗Z).
    RZZ(f64),
    /// XX interaction exp(-i θ/2 X⊗X).
    RXX(f64),
    // --- three-qubit ---
    /// Toffoli. qubits = [c0, c1, target].
    CCX,
    /// Doubly-controlled Z.
    CCZ,
    /// Controlled SWAP (Fredkin). qubits = [control, t0, t1].
    CSwap,
    /// A stochastic Pauli-noise slot: applies I, X, Y or Z depending on
    /// the selector parameter (`sel.rem_euclid(4)` after rounding: 0 →
    /// I, 1 → X, 2 → Y, 3 → Z).
    ///
    /// Noise trajectories re-draw only the selector via
    /// `Circuit::map_params`, so every trajectory of a noisy circuit
    /// shares one structural fingerprint — the noisy-sweep equivalent
    /// of a parameter sweep. The insularity classifier treats the slot
    /// as non-insular regardless of the selector (see
    /// `insular::gate_insularity`), which keeps the compiled plan valid
    /// for all four Pauli outcomes.
    PauliNoise(f64),
}

impl GateKind {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        use GateKind::*;
        match self {
            H | X | Y | Z | S | Sdg | T | Tdg | SX | RX(_) | RY(_) | RZ(_) | P(_) | U3(..)
            | PauliNoise(_) => 1,
            CX | CY | CZ | CH | CP(_) | CRX(_) | CRY(_) | CRZ(_) | Swap | RZZ(_) | RXX(_) => 2,
            CCX | CCZ | CSwap => 3,
        }
    }

    /// Number of leading control qubits in the `[controls..., targets...]`
    /// convention. `Swap`/`RZZ`/`RXX` have none.
    pub fn num_controls(self) -> usize {
        use GateKind::*;
        match self {
            CX | CY | CZ | CH | CP(_) | CRX(_) | CRY(_) | CRZ(_) | CSwap => 1,
            CCX | CCZ => 2,
            _ => 0,
        }
    }

    /// QASM-style lowercase mnemonic.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SX => "sx",
            RX(_) => "rx",
            RY(_) => "ry",
            RZ(_) => "rz",
            P(_) => "p",
            U3(..) => "u3",
            CX => "cx",
            CY => "cy",
            CZ => "cz",
            CH => "ch",
            CP(_) => "cp",
            CRX(_) => "crx",
            CRY(_) => "cry",
            CRZ(_) => "crz",
            Swap => "swap",
            RZZ(_) => "rzz",
            RXX(_) => "rxx",
            CCX => "ccx",
            CCZ => "ccz",
            CSwap => "cswap",
            PauliNoise(_) => "pnoise",
        }
    }

    /// Which Pauli a noise selector resolves to: `sel.rem_euclid(4)`
    /// after rounding toward zero — 0 → I, 1 → X, 2 → Y, 3 → Z.
    ///
    /// Exposed so both backends and the trajectory sampler agree on
    /// the decoding without duplicating the arithmetic.
    pub fn pauli_noise_select(sel: f64) -> usize {
        (sel as i64).rem_euclid(4) as usize
    }

    /// `true` when the gate's unitary lies in the Clifford group for
    /// every parameter value it can take — the kinds the stabilizer
    /// tableau backend can replay. Parameterized rotations are excluded
    /// even at Clifford angles: dispatch is structural, so a sweep over
    /// angles must not flip backends mid-sweep.
    pub fn is_clifford(self) -> bool {
        use GateKind::*;
        matches!(
            self,
            H | X | Y | Z | S | Sdg | SX | CX | CY | CZ | Swap | PauliNoise(_)
        )
    }

    /// Gate parameters (rotation angles), in declaration order.
    pub fn params(self) -> Vec<f64> {
        use GateKind::*;
        match self {
            RX(t) | RY(t) | RZ(t) | P(t) | CP(t) | CRX(t) | CRY(t) | CRZ(t) | RZZ(t) | RXX(t)
            | PauliNoise(t) => {
                vec![t]
            }
            U3(a, b, c) => vec![a, b, c],
            _ => vec![],
        }
    }

    /// The same kind with its parameters replaced (in
    /// [`GateKind::params`] order). Parameterless kinds accept only an
    /// empty slice. This is the re-parameterization primitive behind
    /// plan-once/run-many sweeps: it can change angles but never the
    /// gate's arity, control structure, or cost class.
    ///
    /// # Panics
    /// If `params.len()` differs from the kind's parameter count.
    pub fn with_params(self, params: &[f64]) -> GateKind {
        use GateKind::*;
        let expect = self.params().len();
        assert_eq!(
            params.len(),
            expect,
            "{} takes {expect} parameter(s), got {}",
            self.name(),
            params.len()
        );
        match self {
            RX(_) => RX(params[0]),
            RY(_) => RY(params[0]),
            RZ(_) => RZ(params[0]),
            P(_) => P(params[0]),
            U3(..) => U3(params[0], params[1], params[2]),
            CP(_) => CP(params[0]),
            CRX(_) => CRX(params[0]),
            CRY(_) => CRY(params[0]),
            CRZ(_) => CRZ(params[0]),
            RZZ(_) => RZZ(params[0]),
            RXX(_) => RXX(params[0]),
            PauliNoise(_) => PauliNoise(params[0]),
            other => other,
        }
    }

    /// The base (uncontrolled) unitary for this kind. For controlled kinds
    /// this is the controlled matrix itself; see [`GateKind::matrix`].
    fn single_qubit_matrix(self) -> Option<Matrix> {
        use GateKind::*;
        let s = FRAC_1_SQRT_2;
        let m = match self {
            H => Matrix::from_reim(2, 2, &[(s, 0.0), (s, 0.0), (s, 0.0), (-s, 0.0)]),
            X => Matrix::from_reim(2, 2, &[(0.0, 0.0), (1.0, 0.0), (1.0, 0.0), (0.0, 0.0)]),
            Y => Matrix::from_reim(2, 2, &[(0.0, 0.0), (0.0, -1.0), (0.0, 1.0), (0.0, 0.0)]),
            Z => Matrix::from_reim(2, 2, &[(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (-1.0, 0.0)]),
            S => Matrix::from_reim(2, 2, &[(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, 1.0)]),
            Sdg => Matrix::from_reim(2, 2, &[(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (0.0, -1.0)]),
            T => {
                let t = Complex64::cis(std::f64::consts::FRAC_PI_4);
                Matrix::from_rows(
                    2,
                    2,
                    vec![Complex64::ONE, Complex64::ZERO, Complex64::ZERO, t],
                )
            }
            Tdg => {
                let t = Complex64::cis(-std::f64::consts::FRAC_PI_4);
                Matrix::from_rows(
                    2,
                    2,
                    vec![Complex64::ONE, Complex64::ZERO, Complex64::ZERO, t],
                )
            }
            SX => Matrix::from_reim(2, 2, &[(0.5, 0.5), (0.5, -0.5), (0.5, -0.5), (0.5, 0.5)]),
            RX(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_reim(2, 2, &[(c, 0.0), (0.0, -sn), (0.0, -sn), (c, 0.0)])
            }
            RY(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_reim(2, 2, &[(c, 0.0), (-sn, 0.0), (sn, 0.0), (c, 0.0)])
            }
            RZ(t) => {
                let e0 = Complex64::cis(-t / 2.0);
                let e1 = Complex64::cis(t / 2.0);
                Matrix::from_rows(2, 2, vec![e0, Complex64::ZERO, Complex64::ZERO, e1])
            }
            P(l) => Matrix::from_rows(
                2,
                2,
                vec![
                    Complex64::ONE,
                    Complex64::ZERO,
                    Complex64::ZERO,
                    Complex64::cis(l),
                ],
            ),
            PauliNoise(sel) => match GateKind::pauli_noise_select(sel) {
                0 => Matrix::from_reim(2, 2, &[(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (1.0, 0.0)]),
                1 => X.single_qubit_matrix().unwrap(),
                2 => Y.single_qubit_matrix().unwrap(),
                _ => Z.single_qubit_matrix().unwrap(),
            },
            U3(t, phi, lam) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_rows(
                    2,
                    2,
                    vec![
                        Complex64::real(c),
                        Complex64::cis(lam).scale(-sn),
                        Complex64::cis(phi).scale(sn),
                        Complex64::cis(phi + lam).scale(c),
                    ],
                )
            }
            _ => return None,
        };
        Some(m)
    }

    /// Full `2^k × 2^k` unitary with the convention that basis-index bit `t`
    /// is qubit position `t` of the gate (`Gate::qubits[t]`).
    pub fn matrix(self) -> Matrix {
        use GateKind::*;
        if let Some(m) = self.single_qubit_matrix() {
            return m;
        }
        match self {
            CX => controlled(1, &X.single_qubit_matrix().unwrap()),
            CY => controlled(1, &Y.single_qubit_matrix().unwrap()),
            CZ => controlled(1, &Z.single_qubit_matrix().unwrap()),
            CH => controlled(1, &H.single_qubit_matrix().unwrap()),
            CP(l) => controlled(1, &P(l).single_qubit_matrix().unwrap()),
            CRX(t) => controlled(1, &RX(t).single_qubit_matrix().unwrap()),
            CRY(t) => controlled(1, &RY(t).single_qubit_matrix().unwrap()),
            CRZ(t) => controlled(1, &RZ(t).single_qubit_matrix().unwrap()),
            Swap => swap_matrix(),
            RZZ(t) => {
                let e = Complex64::cis(-t / 2.0);
                let f = Complex64::cis(t / 2.0);
                let mut m = Matrix::zeros(4, 4);
                // diag: parity of the two bits selects the phase sign.
                m[(0, 0)] = e;
                m[(1, 1)] = f;
                m[(2, 2)] = f;
                m[(3, 3)] = e;
                m
            }
            RXX(t) => {
                let (c, sn) = ((t / 2.0).cos(), (t / 2.0).sin());
                let ic = Complex64::real(c);
                let is = Complex64::new(0.0, -sn);
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = ic;
                m[(0, 3)] = is;
                m[(1, 1)] = ic;
                m[(1, 2)] = is;
                m[(2, 1)] = is;
                m[(2, 2)] = ic;
                m[(3, 0)] = is;
                m[(3, 3)] = ic;
                m
            }
            CCX => controlled(2, &X.single_qubit_matrix().unwrap()),
            CCZ => controlled(2, &Z.single_qubit_matrix().unwrap()),
            CSwap => controlled(1, &swap_matrix()),
            _ => unreachable!("single-qubit kinds handled above"),
        }
    }
}

/// Builds a controlled-U matrix with `nc` controls occupying the low bit
/// positions (qubit positions `0..nc`) and `U` on the remaining positions.
fn controlled(nc: usize, u: &Matrix) -> Matrix {
    let ut = u.rows();
    let dim = (1usize << nc) * ut;
    let cmask = (1usize << nc) - 1;
    let mut m = Matrix::zeros(dim, dim);
    for i in 0..dim {
        if i & cmask == cmask {
            // all controls set: apply U on the target bits
            for j_hi in 0..ut {
                let j = (j_hi << nc) | cmask;
                m[(i, j)] = u[(i >> nc, j_hi)];
            }
        } else {
            m[(i, i)] = Complex64::ONE;
        }
    }
    m
}

fn swap_matrix() -> Matrix {
    let mut m = Matrix::zeros(4, 4);
    m[(0, 0)] = Complex64::ONE;
    m[(1, 2)] = Complex64::ONE;
    m[(2, 1)] = Complex64::ONE;
    m[(3, 3)] = Complex64::ONE;
    m
}

/// An inline list of at most 4 qubit indices — gates never exceed 3 qubits
/// in our alphabet, and keeping this `Copy` keeps `Gate` allocation-free
/// (gate vectors reach ~2·10⁵ entries for `hhl`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Qubits {
    buf: [u32; 4],
    len: u8,
}

impl Qubits {
    /// Creates a qubit list. Panics if more than 4 entries or duplicates.
    pub fn new(qs: &[u32]) -> Self {
        assert!(qs.len() <= 4, "gates have at most 4 qubits");
        for (i, a) in qs.iter().enumerate() {
            for b in &qs[i + 1..] {
                assert_ne!(a, b, "duplicate qubit in gate");
            }
        }
        let mut buf = [0u32; 4];
        buf[..qs.len()].copy_from_slice(qs);
        Qubits {
            buf,
            len: qs.len() as u8,
        }
    }

    /// Number of qubits.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when empty (never for a valid gate).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The qubit indices as a slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len as usize]
    }

    /// Iterator over the qubit indices.
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, u32>> {
        self.as_slice().iter().copied()
    }

    /// Bitmask over qubit indices (requires indices < 64, which holds for
    /// every circuit this workspace targets).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.as_slice().iter().fold(0u64, |m, &q| m | (1u64 << q))
    }

    /// `true` if `q` is in the list.
    #[inline]
    pub fn contains(&self, q: u32) -> bool {
        self.as_slice().contains(&q)
    }
}

impl fmt::Debug for Qubits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_slice())
    }
}

impl<'a> IntoIterator for &'a Qubits {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A gate instance: a kind applied to specific circuit qubits.
///
/// Position `t` in `qubits` corresponds to basis-index bit `t` of
/// [`GateKind::matrix`]; controls come first.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gate {
    /// What the gate is.
    pub kind: GateKind,
    /// Which circuit qubits it acts on.
    pub qubits: Qubits,
}

impl Gate {
    /// Creates a gate, checking arity.
    pub fn new(kind: GateKind, qubits: &[u32]) -> Self {
        assert_eq!(
            kind.arity(),
            qubits.len(),
            "wrong qubit count for {:?}",
            kind
        );
        Gate {
            kind,
            qubits: Qubits::new(qubits),
        }
    }

    /// The gate's full unitary (see [`GateKind::matrix`] for conventions).
    pub fn matrix(&self) -> Matrix {
        self.kind.matrix()
    }

    /// Number of qubits.
    #[inline]
    pub fn arity(&self) -> usize {
        self.qubits.len()
    }

    /// Bitmask of the gate's qubits.
    #[inline]
    pub fn qubit_mask(&self) -> u64 {
        self.qubits.mask()
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.kind.params();
        if params.is_empty() {
            write!(f, "{}", self.kind.name())?;
        } else {
            // `{:?}` prints the shortest string that parses back to the
            // same f64, so QASM round-trips are bit-exact.
            let ps: Vec<String> = params.iter().map(|p| format!("{p:?}")).collect();
            write!(f, "{}({})", self.kind.name(), ps.join(","))?;
        }
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, " {};", qs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_qmath::EPS;

    fn all_kinds() -> Vec<GateKind> {
        use GateKind::*;
        vec![
            H,
            X,
            Y,
            Z,
            S,
            Sdg,
            T,
            Tdg,
            SX,
            RX(0.7),
            RY(1.1),
            RZ(-0.3),
            P(2.2),
            U3(0.5, 1.5, -2.5),
            CX,
            CY,
            CZ,
            CH,
            CP(0.9),
            CRX(0.4),
            CRY(-1.2),
            CRZ(2.8),
            Swap,
            RZZ(0.6),
            RXX(1.4),
            CCX,
            CCZ,
            CSwap,
            PauliNoise(0.0),
            PauliNoise(1.0),
            PauliNoise(2.0),
            PauliNoise(3.0),
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for k in all_kinds() {
            let m = k.matrix();
            assert_eq!(m.rows(), 1 << k.arity(), "{k:?}");
            assert!(m.is_unitary(1e-9), "{k:?} not unitary");
        }
    }

    #[test]
    fn cx_truth_table() {
        // qubits = [control, target]; index bit 0 = control, bit 1 = target.
        let m = GateKind::CX.matrix();
        // |c=1,t=0> (idx 1) -> |c=1,t=1> (idx 3)
        assert!(m[(3, 1)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(1, 3)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(0, 0)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(2, 2)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(1, 1)].is_zero(EPS));
    }

    #[test]
    fn ccx_flips_only_when_both_controls_set() {
        let m = GateKind::CCX.matrix();
        // controls = bits 0,1; target = bit 2.
        // |c0=1,c1=1,t=0> = idx 3 -> idx 7.
        assert!(m[(7, 3)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(3, 7)].approx_eq(Complex64::ONE, EPS));
        for idx in [0usize, 1, 2, 4, 5, 6] {
            assert!(m[(idx, idx)].approx_eq(Complex64::ONE, EPS), "idx={idx}");
        }
    }

    #[test]
    fn swap_matrix_permutes() {
        let m = GateKind::Swap.matrix();
        assert!(m[(2, 1)].approx_eq(Complex64::ONE, EPS));
        assert!(m[(1, 2)].approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn rz_vs_p_differ_by_global_phase() {
        let rz = GateKind::RZ(0.8).matrix();
        let p = GateKind::P(0.8).matrix();
        assert!(atlas_qmath::matrix::equal_up_to_global_phase(&rz, &p, 1e-9));
    }

    #[test]
    fn u3_covers_named_gates() {
        use std::f64::consts::PI;
        let h = GateKind::U3(PI / 2.0, 0.0, PI).matrix();
        assert!(atlas_qmath::matrix::equal_up_to_global_phase(
            &h,
            &GateKind::H.matrix(),
            1e-9
        ));
        let x = GateKind::U3(PI, 0.0, PI).matrix();
        assert!(atlas_qmath::matrix::equal_up_to_global_phase(
            &x,
            &GateKind::X.matrix(),
            1e-9
        ));
    }

    #[test]
    fn pauli_noise_selector_decodes_and_wraps() {
        use GateKind::PauliNoise;
        // Selector 0..3 picks I, X, Y, Z; values wrap modulo 4
        // (including negatives, via rem_euclid).
        for (sel, want) in [
            (0.0, None),
            (1.0, Some(GateKind::X)),
            (2.0, Some(GateKind::Y)),
            (3.0, Some(GateKind::Z)),
            (4.0, None),
            (5.0, Some(GateKind::X)),
            (-1.0, Some(GateKind::Z)),
            (-3.0, Some(GateKind::X)),
        ] {
            let got = PauliNoise(sel).matrix();
            match want {
                Some(k) => assert!(
                    atlas_qmath::matrix::equal_up_to_global_phase(&got, &k.matrix(), 1e-12),
                    "sel={sel}"
                ),
                None => {
                    for i in 0..2 {
                        for j in 0..2 {
                            let want = if i == j {
                                Complex64::ONE
                            } else {
                                Complex64::ZERO
                            };
                            assert!(got[(i, j)].approx_eq(want, EPS), "sel={sel}");
                        }
                    }
                }
            }
        }
        // Re-parameterization changes the selector but not the name,
        // arity or Clifford-ness — the trajectory-sweep invariant.
        let g = PauliNoise(0.0).with_params(&[3.0]);
        assert_eq!(g, PauliNoise(3.0));
        assert_eq!(g.name(), "pnoise");
        assert!(g.is_clifford());
    }

    #[test]
    fn clifford_classification() {
        use GateKind::*;
        for k in all_kinds() {
            let expect = matches!(
                k,
                H | X | Y | Z | S | Sdg | SX | CX | CY | CZ | Swap | PauliNoise(_)
            );
            assert_eq!(k.is_clifford(), expect, "{k:?}");
        }
        // T and rotations stay non-Clifford even at Clifford angles:
        // dispatch must be structural.
        assert!(!T.is_clifford());
        assert!(!RZ(std::f64::consts::FRAC_PI_2).is_clifford());
    }

    #[test]
    fn qubits_mask_and_contains() {
        let q = Qubits::new(&[1, 5, 9]);
        assert_eq!(q.mask(), (1 << 1) | (1 << 5) | (1 << 9));
        assert!(q.contains(5));
        assert!(!q.contains(2));
        assert_eq!(q.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_qubits_rejected() {
        let _ = Gate::new(GateKind::CX, &[3, 3]);
    }

    #[test]
    fn display_format() {
        let g = Gate::new(GateKind::CP(0.5), &[0, 2]);
        let s = format!("{g}");
        assert!(s.starts_with("cp(0.5"));
        assert!(s.ends_with("q[0],q[2];"));
    }
}
