//! # atlas-circuit
//!
//! Quantum-circuit intermediate representation for the Atlas simulator:
//! the gate set with exact unitaries, the insular-qubit classification of
//! the paper's Definition 2, circuit containers with dependency extraction,
//! a QASM-subset reader/writer, and parameterized generators for the
//! benchmark families of Table I / Table II.

#![forbid(unsafe_code)]

pub mod circuit;
pub mod gate;
pub mod generators;
pub mod insular;
pub mod qasm;

pub use circuit::Circuit;
pub use gate::{Gate, GateKind, Qubits};
pub use insular::{InsularKind, ReducedGate};
