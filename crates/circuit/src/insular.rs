//! Insular-qubit classification (paper Definition 2) and gate
//! specialization (Appendix B-a / Häner & Steiger "global gate
//! specialization").
//!
//! A qubit position `t` of a gate is *insular* when the gate's unitary,
//! viewed in block form over that qubit, is block-diagonal (output value of
//! `t` equals its input value) or block-anti-diagonal (output value is the
//! flipped input). Insular qubits may be mapped to regional/global physical
//! qubits: each shard knows the fixed value of the qubit, so the gate
//! reduces to a smaller gate on the remaining qubits — no communication.
//!
//! This single numeric criterion reproduces Definition 2 exactly:
//! * 1-qubit gates: insular ⇔ matrix diagonal or anti-diagonal;
//! * controlled-U: every control qubit is block-diagonal (`M00=I, M11=U`);
//! * gates like CZ/CP/CCZ whose full matrix is diagonal: *all* qubits
//!   insular (the paper's footnote 2).

use crate::gate::Gate;
use atlas_qmath::{insert_bit, Matrix};

/// How a gate treats one of its qubit positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsularKind {
    /// Output value of the qubit = input value (block-diagonal).
    Diagonal,
    /// Output value of the qubit = flipped input value (block-anti-diagonal).
    AntiDiagonal,
    /// The gate mixes the two values of the qubit; it must be local.
    NonInsular,
}

impl InsularKind {
    /// `true` unless [`InsularKind::NonInsular`].
    #[inline]
    pub fn is_insular(self) -> bool {
        self != InsularKind::NonInsular
    }
}

const BLOCK_EPS: f64 = 1e-12;

/// Extracts the block `M[out = a][in = b]` of `m` over qubit position `t`:
/// the sub-matrix mapping inputs with bit `t = b` to outputs with bit
/// `t = a`, of dimension half of `m`.
pub fn qubit_block(m: &Matrix, t: u32, a: u8, b: u8) -> Matrix {
    let half = m.rows() / 2;
    let mut out = Matrix::zeros(half, half);
    for r in 0..half {
        let row = insert_bit(r as u64, t) as usize | ((a as usize) << t);
        for c in 0..half {
            let col = insert_bit(c as u64, t) as usize | ((b as usize) << t);
            out[(r, c)] = m[(row, col)];
        }
    }
    out
}

fn block_is_zero(m: &Matrix, t: u32, a: u8, b: u8) -> bool {
    let half = m.rows() / 2;
    for r in 0..half {
        let row = insert_bit(r as u64, t) as usize | ((a as usize) << t);
        for c in 0..half {
            let col = insert_bit(c as u64, t) as usize | ((b as usize) << t);
            if !m[(row, col)].is_zero(BLOCK_EPS) {
                return false;
            }
        }
    }
    true
}

/// Classifies qubit position `t` of the unitary `m`.
pub fn classify_qubit(m: &Matrix, t: u32) -> InsularKind {
    if block_is_zero(m, t, 0, 1) && block_is_zero(m, t, 1, 0) {
        InsularKind::Diagonal
    } else if block_is_zero(m, t, 0, 0) && block_is_zero(m, t, 1, 1) {
        InsularKind::AntiDiagonal
    } else {
        InsularKind::NonInsular
    }
}

/// Per-position insularity of a gate. Index `i` corresponds to
/// `gate.qubits[i]`.
///
/// `PauliNoise` is classified by *kind*, not numerically: its unitary
/// depends on the trajectory selector (I and Z are diagonal, X and Y
/// anti-diagonal), and a plan compiled for one trajectory must stay
/// valid when `map_params` re-draws the selectors. NonInsular is the
/// one classification sound for all four outcomes — the slot's qubit is
/// pinned local and the executor reads the actual matrix at run time.
pub fn gate_insularity(gate: &Gate) -> Vec<InsularKind> {
    if matches!(gate.kind, crate::gate::GateKind::PauliNoise(_)) {
        return vec![InsularKind::NonInsular];
    }
    let m = gate.matrix();
    (0..gate.arity() as u32)
        .map(|t| classify_qubit(&m, t))
        .collect()
}

/// Bitmask over *circuit* qubits of the gate's non-insular qubits — the
/// qubits the staging algorithm must map to local physical qubits.
pub fn non_insular_mask(gate: &Gate) -> u64 {
    let ins = gate_insularity(gate);
    gate.qubits
        .iter()
        .zip(ins.iter())
        .filter(|(_, k)| !k.is_insular())
        .fold(0u64, |m, (q, _)| m | (1u64 << q))
}

/// The locality mask the *staging* algorithm uses — Definition 2 with one
/// executor-driven tightening: anti-diagonal qubits of **multi-qubit**
/// gates are treated as non-insular (they must be local).
///
/// Rationale: a non-local anti-diagonal qubit relabels a shard bit (a
/// "flip"). For a fully-insular gate (single-qubit X/Y, or an all-insular
/// multi-qubit gate with every qubit non-local) the whole gate reduces to
/// a per-shard scalar plus the relabel, which the executor folds into the
/// next all-to-all for free — exactly Häner & Steiger's specialization.
/// But a *mixed* gate that flips a non-local bit while transforming local
/// amplitudes would interleave physical data movement with kernel
/// execution; Atlas' stage structure (communication only at boundaries)
/// forbids that, so such qubits are pinned local. In the benchmark gate
/// alphabet only `RXX(π)` (measure-zero in parameter space) is affected.
pub fn staging_mask(gate: &Gate) -> u64 {
    let ins = gate_insularity(gate);
    let mut mask = 0u64;
    for (q, k) in gate.qubits.iter().zip(ins.iter()) {
        let pinned = match k {
            InsularKind::NonInsular => true,
            InsularKind::AntiDiagonal => gate.arity() > 1,
            InsularKind::Diagonal => false,
        };
        if pinned {
            mask |= 1u64 << q;
        }
    }
    mask
}

/// The result of fixing one insular qubit of a gate to a known value: a
/// reduced unitary on the remaining qubit positions plus the (known) output
/// value of the fixed qubit.
#[derive(Clone, Debug)]
pub struct ReducedGate {
    /// Unitary over the remaining `k-1` qubit positions (dimension
    /// `2^{k-1}`; a `1×1` scalar when the gate was single-qubit).
    pub matrix: Matrix,
    /// The output value of the fixed qubit (`= input` for Diagonal,
    /// flipped for AntiDiagonal).
    pub out_value: u8,
}

/// Fixes insular qubit position `t` of unitary `m` to input value `b`.
/// Returns `None` if the position is not insular.
pub fn fix_qubit(m: &Matrix, t: u32, b: u8) -> Option<ReducedGate> {
    match classify_qubit(m, t) {
        InsularKind::Diagonal => Some(ReducedGate {
            matrix: qubit_block(m, t, b, b),
            out_value: b,
        }),
        InsularKind::AntiDiagonal => Some(ReducedGate {
            matrix: qubit_block(m, t, 1 - b, b),
            out_value: 1 - b,
        }),
        InsularKind::NonInsular => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Gate, GateKind};
    use atlas_qmath::Complex64;

    #[test]
    fn single_qubit_classification_matches_def2() {
        use GateKind::*;
        use InsularKind::*;
        let cases: Vec<(GateKind, InsularKind)> = vec![
            (Z, Diagonal),
            (S, Diagonal),
            (T, Diagonal),
            (Tdg, Diagonal),
            (RZ(0.3), Diagonal),
            (P(1.0), Diagonal),
            (X, AntiDiagonal),
            (Y, AntiDiagonal),
            (H, NonInsular),
            (SX, NonInsular),
            (RX(0.5), NonInsular),
            (RY(0.5), NonInsular),
        ];
        for (k, expect) in cases {
            let g = Gate::new(k, &[0]);
            assert_eq!(gate_insularity(&g)[0], expect, "{k:?}");
        }
    }

    #[test]
    fn pauli_noise_is_non_insular_for_every_selector() {
        // Kind-level override: numerically, pnoise(0) is diagonal and
        // pnoise(1) anti-diagonal, but the classification (and hence
        // the fingerprint and the compiled plan) must not depend on the
        // trajectory selector.
        for sel in [0.0, 1.0, 2.0, 3.0, -2.0, 7.0] {
            let g = Gate::new(GateKind::PauliNoise(sel), &[2]);
            assert_eq!(gate_insularity(&g)[0], InsularKind::NonInsular, "sel={sel}");
            assert_eq!(non_insular_mask(&g), 1 << 2);
            assert_eq!(staging_mask(&g), 1 << 2);
        }
    }

    #[test]
    fn rx_pi_becomes_anti_diagonal() {
        // Numeric classification catches parameter special cases: RX(π) = -iX.
        let g = Gate::new(GateKind::RX(std::f64::consts::PI), &[0]);
        assert_eq!(gate_insularity(&g)[0], InsularKind::AntiDiagonal);
    }

    #[test]
    fn controls_are_insular_targets_are_not() {
        let cx = Gate::new(GateKind::CX, &[0, 1]);
        let ins = gate_insularity(&cx);
        assert_eq!(ins[0], InsularKind::Diagonal); // control
        assert_eq!(ins[1], InsularKind::NonInsular); // target
        let ccx = Gate::new(GateKind::CCX, &[0, 1, 2]);
        let ins = gate_insularity(&ccx);
        assert!(ins[0].is_insular() && ins[1].is_insular());
        assert!(!ins[2].is_insular());
    }

    #[test]
    fn fully_diagonal_gates_have_all_insular_qubits() {
        // Footnote 2 of the paper: CZ / CP / CCZ / CRZ / RZZ.
        for (kind, n) in [
            (GateKind::CZ, 2usize),
            (GateKind::CP(0.7), 2),
            (GateKind::CRZ(0.9), 2),
            (GateKind::RZZ(0.4), 2),
            (GateKind::CCZ, 3),
        ] {
            let qs: Vec<u32> = (0..n as u32).collect();
            let g = Gate::new(kind, &qs);
            assert!(
                gate_insularity(&g).iter().all(|k| k.is_insular()),
                "{kind:?} should be all-insular"
            );
            assert_eq!(non_insular_mask(&g), 0);
        }
    }

    #[test]
    fn swap_is_fully_non_insular() {
        let g = Gate::new(GateKind::Swap, &[0, 1]);
        assert!(gate_insularity(&g).iter().all(|k| !k.is_insular()));
    }

    #[test]
    fn non_insular_mask_uses_circuit_qubits() {
        let g = Gate::new(GateKind::CX, &[7, 3]); // control 7, target 3
        assert_eq!(non_insular_mask(&g), 1 << 3);
    }

    #[test]
    fn fix_control_of_cx() {
        let m = GateKind::CX.matrix();
        // control = position 0. Fixed to 0: identity on target.
        let r0 = fix_qubit(&m, 0, 0).unwrap();
        assert_eq!(r0.out_value, 0);
        assert!(r0.matrix.approx_eq(&Matrix::identity(2), 1e-12));
        // Fixed to 1: X on target.
        let r1 = fix_qubit(&m, 0, 1).unwrap();
        assert_eq!(r1.out_value, 1);
        assert!(r1.matrix.approx_eq(&GateKind::X.matrix(), 1e-12));
        // Target position is not insular.
        assert!(fix_qubit(&m, 1, 0).is_none());
    }

    #[test]
    fn fix_anti_diagonal_x() {
        let m = GateKind::X.matrix();
        let r = fix_qubit(&m, 0, 0).unwrap();
        assert_eq!(r.out_value, 1);
        // scalar block = 1.
        assert!(r.matrix[(0, 0)].approx_eq(Complex64::ONE, 1e-12));
        let my = GateKind::Y.matrix();
        let ry = fix_qubit(&my, 0, 0).unwrap();
        assert_eq!(ry.out_value, 1);
        assert!(ry.matrix[(0, 0)].approx_eq(Complex64::I, 1e-12)); // Y|0> = i|1>
        let ry1 = fix_qubit(&my, 0, 1).unwrap();
        assert_eq!(ry1.out_value, 0);
        assert!(ry1.matrix[(0, 0)].approx_eq(-Complex64::I, 1e-12));
    }

    #[test]
    fn fix_qubit_of_diagonal_two_qubit_gate() {
        // CP with qubit 0 fixed to 1 reduces to P on the other.
        let m = GateKind::CP(0.8).matrix();
        let r = fix_qubit(&m, 0, 1).unwrap();
        assert!(r.matrix.approx_eq(&GateKind::P(0.8).matrix(), 1e-12));
        let r0 = fix_qubit(&m, 0, 0).unwrap();
        assert!(r0.matrix.approx_eq(&Matrix::identity(2), 1e-12));
    }
}
