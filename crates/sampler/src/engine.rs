//! The [`Measurements`] handle: post-execution workloads on the sharded,
//! still-permuted state.

use crate::pauli::PauliString;
use crate::rng::CounterRng;
use atlas_machine::Machine;
use atlas_qmath::{IndexPermuter, QubitPermutation};
use atlas_statevec::with_pool;

/// Logical chunk granularity of the sampling CDF (`2^12` basis states
/// per chunk).
///
/// The coarse CDF then has `2^{n-12}` entries (4096 at `n = 24` — a few
/// KB next to the 2^28-byte state), while a per-shot chunk scan touches
/// at most 4096 amplitudes. The constant depends on nothing but itself:
/// not on the thread count, not on the shard count — which is what makes
/// a seeded sample reproducible across every machine shape.
pub const SAMPLE_CHUNK_BITS: u32 = 12;

/// Measurement engine over a finished functional run.
///
/// Owns the [`Machine`] with its sharded amplitude buffers and the final
/// stage's logical→physical qubit mapping, and evaluates the
/// post-execution workload family — shot samples, marginal
/// distributions, Pauli-string expectations, top outcomes — **directly
/// on the shards**. The final qubit permutation is undone in index space
/// (a byte-LUT [`IndexPermuter`] per accessed index), never by
/// materializing the unpermuted `2^n` vector: there is no
/// `gather_state` on any path through this type.
///
/// ## Determinism
///
/// All results are bit-identical for every thread count (reductions
/// combine fixed-size chunks in a fixed order — see
/// [`atlas_statevec::measure`]), and a seeded [`Measurements::sample`]
/// additionally orders its CDF in *logical* index space, so the sampled
/// bitstrings do not depend on the shard layout either.
pub struct Measurements {
    machine: Machine,
    /// Logical qubit `q` lives at physical bit `mapping[q]`.
    mapping: Vec<u32>,
    /// Logical index → physical index.
    l2p: IndexPermuter,
    /// Physical index → logical index.
    p2l: IndexPermuter,
    /// Host threads measurement reductions may use.
    threads: usize,
}

impl std::fmt::Debug for Measurements {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Measurements")
            .field("num_qubits", &self.machine.num_qubits())
            .field("num_shards", &self.machine.num_shards())
            .field("mapping", &self.mapping)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Measurements {
    /// Wraps a finished functional run. `mapping[q]` is the physical bit
    /// holding logical qubit `q` in the machine's final layout (the last
    /// stage's mapping, or the identity after a final unpermute); any
    /// pending X/Y relabel flips must already be applied.
    pub fn new(machine: Machine, mapping: Vec<u32>, threads: usize) -> Self {
        assert!(!machine.is_dry(), "measurements need amplitudes");
        assert_eq!(mapping.len() as u32, machine.num_qubits());
        let perm = QubitPermutation::from_map(mapping.clone());
        let l2p = IndexPermuter::new(&perm);
        let p2l = IndexPermuter::new(&perm.inverse());
        Measurements {
            machine,
            mapping,
            l2p,
            p2l,
            threads: threads.max(1),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.machine.num_qubits()
    }

    /// Changes the measurement thread budget. Results are bit-identical
    /// for every value; only wall-clock changes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Read access to the underlying machine (shards stay borrowed).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The final logical→physical qubit mapping.
    pub fn mapping(&self) -> &[u32] {
        &self.mapping
    }

    /// Probability of the **logical** basis state `index` (one index-space
    /// unpermutation, one shard read).
    pub fn probability(&self, index: u64) -> f64 {
        // The byte LUT would silently drop bits ≥ n and alias the index
        // into range; fail loudly instead, like a dense state would.
        assert!(
            index < 1u64 << self.num_qubits(),
            "basis state {index} out of range for {} qubits",
            self.num_qubits()
        );
        self.machine
            .amp_at_physical(self.l2p.apply(index))
            .norm_sqr()
    }

    /// Total probability mass `Σ|α|²` (≈ 1 for a physical state).
    pub fn total_norm(&self) -> f64 {
        with_pool(self.threads, |pool| self.machine.total_norm(pool))
    }

    /// Draws `shots` basis-state samples from the measurement
    /// distribution, returned as **logical** bitstrings in shot order.
    ///
    /// Inverse-CDF over logical chunks: shot `i`'s variate is the pure
    /// function [`CounterRng::f64_at`]`(i)` of the seed, the coarse CDF
    /// comes from [`Machine::logical_chunk_norms`], and each shot scans
    /// only its hit chunk ([`Machine::resolve_targets`]). With a fixed
    /// seed the output is byte-identical across thread counts and shard
    /// layouts; the cost is `O(2^n + shots·(log(2^{n-c}) + 2^c))` with no
    /// `2^n` allocation.
    pub fn sample(&self, shots: usize, seed: u64) -> Vec<u64> {
        if shots == 0 {
            return Vec::new();
        }
        with_pool(self.threads, |pool| {
            let chunk_norms = self
                .machine
                .logical_chunk_norms(&self.l2p, SAMPLE_CHUNK_BITS, pool);
            let total: f64 = chunk_norms.iter().sum();
            let rng = CounterRng::new(seed);
            let targets: Vec<f64> = (0..shots).map(|i| rng.f64_at(i as u64) * total).collect();
            // Resolve in ascending-target order (one monotone CDF walk),
            // then restore shot order.
            let mut order: Vec<usize> = (0..shots).collect();
            order.sort_by(|&a, &b| targets[a].total_cmp(&targets[b]).then(a.cmp(&b)));
            let sorted: Vec<f64> = order.iter().map(|&i| targets[i]).collect();
            let resolved = self.machine.resolve_targets(
                &self.l2p,
                SAMPLE_CHUNK_BITS,
                &chunk_norms,
                &sorted,
                pool,
            );
            let mut out = vec![0u64; shots];
            for (pos, &shot) in order.iter().enumerate() {
                out[shot] = resolved[pos];
            }
            out
        })
    }

    /// [`Measurements::sample`] aggregated into `(bitstring, count)`
    /// pairs, most frequent first (ties by ascending bitstring).
    pub fn sample_counts(&self, shots: usize, seed: u64) -> Vec<(u64, u64)> {
        count_samples(self.sample(shots, seed))
    }

    /// The expectation value `⟨ψ|P|ψ⟩` of a Pauli string over **logical**
    /// qubits, reduced per shard on the permuted state (the string's
    /// masks are pushed through the qubit mapping; no amplitude moves,
    /// no matrix is built). Exact up to floating-point rounding.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(
            p.num_qubits(),
            self.num_qubits(),
            "Pauli string width must match the circuit"
        );
        let flip = self.phys_mask(p.x_mask() | p.y_mask());
        let sign = self.phys_mask(p.z_mask() | p.y_mask());
        with_pool(self.threads, |pool| {
            if flip == 0 {
                // Diagonal string (I/Z only): a real signed norm.
                self.machine.signed_norm_sum(sign, pool)
            } else {
                let sum = self.machine.signed_pair_sum(flip, sign, pool);
                // i^{#Y} prefactor restores Hermiticity.
                let z = p.phase_prefactor() * sum;
                debug_assert!(
                    z.im.abs() < 1e-9,
                    "Pauli expectation must be real, got {z:?}"
                );
                z.re
            }
        })
    }

    /// Marginal probability distribution over the given **logical**
    /// qubits: entry `v` is the probability that measuring `qubits[t]`
    /// yields bit `t` of `v`. Qubits must be distinct; order defines the
    /// result's bit order.
    pub fn marginal(&self, qubits: &[u32]) -> Vec<f64> {
        let n = self.num_qubits();
        let mut seen = 0u64;
        let phys: Vec<u32> = qubits
            .iter()
            .map(|&q| {
                assert!(q < n, "qubit {q} out of range");
                assert!(seen & (1 << q) == 0, "duplicate qubit {q}");
                seen |= 1 << q;
                self.mapping[q as usize]
            })
            .collect();
        with_pool(self.threads, |pool| {
            self.machine.marginal_distribution(&phys, pool)
        })
    }

    /// The `k` most probable outcomes as `(logical bitstring,
    /// probability)`, descending with ties by ascending bitstring,
    /// computed with per-shard bounded heaps; each candidate's index is
    /// unpermuted before selection, so the result matches
    /// `StateVector::top_probabilities` on the unpermuted state exactly.
    pub fn top(&self, k: usize) -> Vec<(u64, f64)> {
        with_pool(self.threads, |pool| {
            self.machine.top_outcomes(k, &self.p2l, pool)
        })
    }

    /// Deposits a logical qubit mask onto physical bits.
    fn phys_mask(&self, logical: u64) -> u64 {
        let mut out = 0u64;
        let mut m = logical;
        while m != 0 {
            let q = m.trailing_zeros();
            m &= m - 1;
            out |= 1u64 << self.mapping[q as usize];
        }
        out
    }
}

/// Aggregates raw shot samples into `(bitstring, count)` pairs, most
/// frequent first (ties by ascending bitstring).
pub fn count_samples(mut samples: Vec<u64>) -> Vec<(u64, u64)> {
    samples.sort_unstable();
    let mut counts: Vec<(u64, u64)> = Vec::new();
    for s in samples {
        match counts.last_mut() {
            Some((v, c)) if *v == s => *c += 1,
            _ => counts.push((s, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    counts
}
