//! A counter-based, splittable random number generator.
//!
//! Shot sampling must be **reproducible and schedule-independent**: the
//! `i`-th shot of a seeded run draws the same uniform variate whether
//! shots are processed serially, across 8 worker threads, or regrouped by
//! CDF chunk. A sequential generator (like the vendored `rand` shim's
//! SplitMix64 stream) cannot offer that — whoever calls `next` first
//! changes everyone else's values — so this module provides a
//! **counter-based** generator in the spirit of Philox/Threefry
//! (Salmon et al., SC'11): the `i`-th variate is a pure function
//! `mix(key, i)` of the seed-derived key and the counter, with no mutable
//! state at all. Independent substreams (per shard, per observable) come
//! from [`CounterRng::split`], which derives a decorrelated child key.
//!
//! The mixer is the SplitMix64 finalizer (a bijection on `u64` with full
//! avalanche), applied to `key + i·φ` — the same construction SplitMix64
//! itself uses per step, here evaluated at an arbitrary counter instead
//! of sequentially.

/// 2^64 / φ — the Weyl-sequence increment of SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: xor-shift / multiply avalanche, bijective.
#[inline]
fn mix(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateless counter-based RNG stream: variate `i` is `mix(key, i)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// A stream keyed from a user seed. Different seeds give decorrelated
    /// streams; equal seeds give identical streams on every platform.
    pub fn new(seed: u64) -> Self {
        CounterRng {
            key: mix(seed ^ GOLDEN),
        }
    }

    /// Derives an independent child stream (e.g. one per shard or per
    /// observable). `split(a) != split(b)` for `a != b`, and children are
    /// decorrelated from the parent.
    pub fn split(&self, stream: u64) -> Self {
        CounterRng {
            key: mix(self.key ^ stream.wrapping_mul(GOLDEN).rotate_left(17)),
        }
    }

    /// The `i`-th 64-bit variate of the stream — a pure function of
    /// `(key, i)`, so any schedule (serial, threaded, regrouped) reads
    /// identical values.
    #[inline]
    pub fn u64_at(&self, counter: u64) -> u64 {
        mix(self.key.wrapping_add(counter.wrapping_mul(GOLDEN)))
    }

    /// The `i`-th uniform variate in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_at(&self, counter: u64) -> f64 {
        (self.u64_at(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_seed_and_counter() {
        let a = CounterRng::new(7);
        let b = CounterRng::new(7);
        for i in (0..10_000).step_by(37) {
            assert_eq!(a.u64_at(i), b.u64_at(i));
        }
        assert_ne!(CounterRng::new(7).u64_at(0), CounterRng::new(8).u64_at(0));
    }

    #[test]
    fn any_access_order_agrees() {
        let rng = CounterRng::new(42);
        let forward: Vec<u64> = (0..256).map(|i| rng.u64_at(i)).collect();
        let mut backward: Vec<u64> = (0..256).rev().map(|i| rng.u64_at(i)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn split_streams_are_distinct_and_stable() {
        let root = CounterRng::new(3);
        let (a, b) = (root.split(0), root.split(1));
        assert_ne!(a, b);
        assert_ne!(a.u64_at(0), b.u64_at(0));
        assert_eq!(root.split(0), CounterRng::new(3).split(0));
        // Splitting must not alias the parent's own stream.
        assert_ne!(a.u64_at(0), root.u64_at(0));
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let rng = CounterRng::new(123);
        let n = 8192;
        let mut sum = 0.0;
        for i in 0..n {
            let u = rng.f64_at(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        // Mean of n uniforms has σ ≈ 1/√(12 n) ≈ 0.0032; 10σ margin.
        assert!((mean - 0.5).abs() < 0.032, "mean {mean} too far from 0.5");
    }

    #[test]
    fn low_bits_are_unbiased() {
        // Counter-based mixers can leak counter structure into low bits if
        // the avalanche is weak; check bit 0 is balanced.
        let rng = CounterRng::new(9);
        let ones: u32 = (0..4096).map(|i| (rng.u64_at(i) & 1) as u32).sum();
        assert!((1700..2400).contains(&ones), "bit-0 ones: {ones}/4096");
    }
}
