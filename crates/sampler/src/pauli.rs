//! Pauli strings: parsing, masks, and the bookkeeping that turns
//! `⟨ψ|P|ψ⟩` into the machine's signed-sum reductions.
//!
//! A Pauli string `P = ⊗_q P_q` with `P_q ∈ {I, X, Y, Z}` acts on a
//! basis state as `P|x⟩ = i^{#Y} · (-1)^{popcount(x & (Z|Y))} · |x ^ (X|Y)⟩`,
//! so its expectation reduces to one *flip mask* (the X|Y bits), one
//! *sign mask* (the Z|Y bits) and an `i^{#Y}` prefactor — exactly the
//! shape of [`atlas_machine::Machine::signed_pair_sum`]. No matrix is
//! ever built.

use atlas_error::AtlasError;

/// One single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Bit flip.
    X,
    /// Bit flip with ±i phase.
    Y,
    /// Phase flip.
    Z,
}

/// A Pauli string over `n` qubits.
///
/// The text form reads **left to right from the highest qubit down**,
/// matching the `|b_{n-1} … b_0⟩` convention the CLI prints bitstrings
/// in: in `"ZIIX"`, the `Z` acts on qubit 3 and the `X` on qubit 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliString {
    /// `ops[q]` is the operator on qubit `q`.
    ops: Vec<PauliOp>,
}

impl PauliString {
    /// Parses a Pauli string from its text form (case-insensitive
    /// `I`/`X`/`Y`/`Z`, leftmost character = highest qubit). The number
    /// of qubits is the string length.
    ///
    /// Malformed input yields a typed [`AtlasError::ParseError`]; an
    /// invalid character reports its byte position in the input (counted
    /// left to right, as the user typed it).
    pub fn parse(s: &str) -> Result<Self, AtlasError> {
        if s.is_empty() {
            return Err(AtlasError::ParseError {
                what: "Pauli string",
                position: None,
                message: "empty string (one of I/X/Y/Z per qubit)".into(),
            });
        }
        if s.len() > 64 {
            return Err(AtlasError::ParseError {
                what: "Pauli string",
                position: None,
                message: format!("{} qubits exceeds the 64-qubit limit", s.len()),
            });
        }
        let mut ops = vec![PauliOp::I; s.chars().count()];
        let n = ops.len();
        for (pos, ch) in s.chars().enumerate() {
            // Leftmost character = highest qubit.
            ops[n - 1 - pos] = match ch.to_ascii_uppercase() {
                'I' => PauliOp::I,
                'X' => PauliOp::X,
                'Y' => PauliOp::Y,
                'Z' => PauliOp::Z,
                other => {
                    return Err(AtlasError::ParseError {
                        what: "Pauli string",
                        position: Some(pos),
                        message: format!("invalid character '{other}' (want I/X/Y/Z)"),
                    })
                }
            };
        }
        Ok(PauliString { ops })
    }

    /// Builds a string of identities with single operators placed on
    /// specific qubits (convenience for programmatic use).
    pub fn from_ops(n: u32, placed: &[(u32, PauliOp)]) -> Self {
        let mut ops = vec![PauliOp::I; n as usize];
        for &(q, op) in placed {
            ops[q as usize] = op;
        }
        PauliString { ops }
    }

    /// Number of qubits the string spans.
    pub fn num_qubits(&self) -> u32 {
        self.ops.len() as u32
    }

    /// The operator on qubit `q`.
    pub fn op(&self, q: u32) -> PauliOp {
        self.ops[q as usize]
    }

    /// `true` if every factor is the identity.
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|&o| o == PauliOp::I)
    }

    /// Logical-qubit mask of one operator kind.
    fn mask_of(&self, kind: PauliOp) -> u64 {
        self.ops
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == kind)
            .fold(0u64, |m, (q, _)| m | (1u64 << q))
    }

    /// Logical mask of the `X` factors.
    pub fn x_mask(&self) -> u64 {
        self.mask_of(PauliOp::X)
    }

    /// Logical mask of the `Y` factors.
    pub fn y_mask(&self) -> u64 {
        self.mask_of(PauliOp::Y)
    }

    /// Logical mask of the `Z` factors.
    pub fn z_mask(&self) -> u64 {
        self.mask_of(PauliOp::Z)
    }

    /// The `i^{#Y}` prefactor of the string's basis-state action
    /// `P|x⟩ = i^{#Y}·(-1)^{popcount(x & (Z|Y))}·|x ^ (X|Y)⟩` — the
    /// single place this convention lives.
    pub fn phase_prefactor(&self) -> atlas_qmath::Complex64 {
        use atlas_qmath::Complex64;
        match self.y_mask().count_ones() % 4 {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        }
    }
}

impl std::str::FromStr for PauliString {
    type Err = AtlasError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PauliString::parse(s)
    }
}

impl std::fmt::Display for PauliString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &op in self.ops.iter().rev() {
            f.write_str(match op {
                PauliOp::I => "I",
                PauliOp::X => "X",
                PauliOp::Y => "Y",
                PauliOp::Z => "Z",
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_orientation_and_masks() {
        // Leftmost char = highest qubit: Z@3, Y@2, X@1, I@0.
        let p: PauliString = "ZYXI".parse().unwrap();
        assert_eq!(p.num_qubits(), 4);
        assert_eq!(p.op(3), PauliOp::Z);
        assert_eq!(p.op(2), PauliOp::Y);
        assert_eq!(p.op(1), PauliOp::X);
        assert_eq!(p.op(0), PauliOp::I);
        assert_eq!(p.x_mask(), 0b0010);
        assert_eq!(p.y_mask(), 0b0100);
        assert_eq!(p.z_mask(), 0b1000);
        assert_eq!(p.to_string(), "ZYXI");
    }

    #[test]
    fn parse_is_case_insensitive_and_validates() {
        assert_eq!(
            PauliString::parse("izxy").unwrap(),
            PauliString::parse("IZXY").unwrap()
        );
        assert!(PauliString::parse("").is_err());
        assert!(PauliString::parse("ZQ").is_err());
    }

    #[test]
    fn parse_reports_typed_errors_with_positions() {
        // Bad character: the position is the byte offset as typed
        // (left to right), not the qubit index.
        match PauliString::parse("ZIQZ") {
            Err(AtlasError::ParseError {
                what: "Pauli string",
                position: Some(2),
                message,
            }) => assert!(message.contains('Q'), "{message}"),
            other => panic!("expected positioned ParseError, got {other:?}"),
        }
        // Lowercase bad character, at the very end.
        match PauliString::parse("xyzw") {
            Err(AtlasError::ParseError {
                position: Some(3), ..
            }) => {}
            other => panic!("expected position 3, got {other:?}"),
        }
        // Empty input: no single position to blame.
        match PauliString::parse("") {
            Err(AtlasError::ParseError {
                position: None,
                message,
                ..
            }) => assert!(message.contains("empty"), "{message}"),
            other => panic!("expected ParseError, got {other:?}"),
        }
        // Wrong length (> 64 qubits).
        let too_long = "Z".repeat(65);
        match PauliString::parse(&too_long) {
            Err(AtlasError::ParseError {
                position: None,
                message,
                ..
            }) => assert!(message.contains("64"), "{message}"),
            other => panic!("expected ParseError, got {other:?}"),
        }
        // 64 qubits exactly is fine.
        assert!(PauliString::parse(&"Z".repeat(64)).is_ok());
    }

    #[test]
    fn from_ops_places_operators() {
        let p = PauliString::from_ops(5, &[(0, PauliOp::Z), (4, PauliOp::Z)]);
        assert_eq!(p.to_string(), "ZIIIZ");
        assert!(!p.is_identity());
        assert!(PauliString::from_ops(3, &[]).is_identity());
    }
}
