//! # atlas-sampler
//!
//! The sharded measurement engine: shot sampling, marginal probability
//! distributions, and Pauli-string expectation values computed **directly
//! on the distributed, still-permuted state** — the full `2^n` vector is
//! never gathered or unpermuted.
//!
//! Atlas partitions the state across device shards precisely so that the
//! whole vector never has to live in one place; this crate extends that
//! property past the last gate. Real workloads consume *measurements*
//! (QAOA energies, Grover success probabilities, sampled bitstrings),
//! and each of them reduces over the shards in place:
//!
//! * **shots** — inverse-CDF sampling over a logical-order chunked CDF
//!   ([`Machine::logical_chunk_norms`] / [`Machine::resolve_targets`]),
//!   seeded by a counter-based, schedule-independent [`CounterRng`]:
//!   with a fixed seed the sampled bitstrings are byte-identical across
//!   thread counts and shard layouts;
//! * **Pauli expectations** — `⟨ψ|P|ψ⟩` via one flip mask, one sign mask
//!   and an `i^{#Y}` prefactor ([`PauliString`]), reduced per shard with
//!   cross-shard partner reads and no data movement;
//! * **marginals / top outcomes** — per-shard accumulation and bounded
//!   top-`k` heaps, merged in shard order.
//!
//! The final qubit permutation left behind by staged execution is undone
//! **in index space**, per sampled bitstring / per Pauli term, through a
//! byte-LUT [`atlas_qmath::IndexPermuter`] — not by re-laying-out
//! amplitudes.
//!
//! Entry point: [`Measurements`], handed out by
//! `atlas_core::simulate::SimulationOutput` for functional runs.
//!
//! [`Machine::logical_chunk_norms`]: atlas_machine::Machine::logical_chunk_norms
//! [`Machine::resolve_targets`]: atlas_machine::Machine::resolve_targets

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod pauli;
pub mod rng;

pub use engine::{count_samples, Measurements, SAMPLE_CHUNK_BITS};
pub use pauli::{PauliOp, PauliString};
pub use rng::CounterRng;

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_circuit::Circuit;
    use atlas_machine::{CostModel, Machine, MachineSpec};
    use atlas_statevec::simulate_reference;

    fn spec() -> MachineSpec {
        MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 3,
        }
    }

    /// A dense 5-qubit state distributed over 4 shards, plus its dense
    /// reference, under a non-trivial final layout.
    fn permuted_fixture() -> (Measurements, atlas_statevec::StateVector, Vec<u32>) {
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q).rz(0.11 * (q + 2) as f64, q);
        }
        prep.cx(0, 4).cp(0.8, 2, 3).cx(1, 3);
        let reference = simulate_reference(&prep);
        let mut machine = Machine::with_state(spec(), CostModel::default(), &reference);
        // Final layout: logical q at physical mapping[q].
        let mapping: Vec<u32> = vec![2, 4, 0, 3, 1];
        let perm = atlas_qmath::QubitPermutation::from_map(mapping.clone());
        machine.permute_state(&perm, 0);
        (
            Measurements::new(machine, mapping.clone(), 1),
            reference,
            mapping,
        )
    }

    #[test]
    fn probability_and_top_undo_the_permutation() {
        let (m, reference, _) = permuted_fixture();
        for x in 0..32u64 {
            assert!((m.probability(x) - reference.probability(x)).abs() < 1e-12);
        }
        let want = reference.top_probabilities(6);
        let got = m.top(6);
        assert_eq!(
            got.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            want.iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn expectation_matches_dense_on_permuted_state() {
        let (m, reference, _) = permuted_fixture();
        for s in ["ZIIIZ", "IXIXI", "YZXIY", "XXXXX", "IIIII", "ZYIXZ"] {
            let p: PauliString = s.parse().unwrap();
            let want = dense_expectation(&reference, &p);
            let got = m.expectation(&p);
            assert!((got - want).abs() < 1e-10, "{s}: got {got}, want {want}");
        }
    }

    #[test]
    fn marginal_matches_dense() {
        let (m, reference, _) = permuted_fixture();
        let dist = m.marginal(&[4, 1]);
        for (v, &got) in dist.iter().enumerate() {
            let want: f64 = (0..32usize)
                .filter(|x| ((x >> 4) & 1) | (((x >> 1) & 1) << 1) == v)
                .map(|x| reference.probability(x as u64))
                .sum();
            assert!((got - want).abs() < 1e-12);
        }
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_seed_deterministic_and_distribution_shaped() {
        let (m, reference, _) = permuted_fixture();
        let a = m.sample(512, 7);
        let b = m.sample(512, 7);
        assert_eq!(a, b);
        assert_ne!(a, m.sample(512, 8), "different seeds should differ");
        // Empirical frequencies within a loose multinomial tolerance.
        let counts = m.sample_counts(4096, 1);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4096);
        for (x, c) in counts {
            let p = reference.probability(x);
            let phat = c as f64 / 4096.0;
            assert!(
                (phat - p).abs() < 0.05 + 3.0 * (p * (1.0 - p) / 4096.0).sqrt(),
                "outcome {x}: empirical {phat}, true {p}"
            );
        }
    }

    /// The Pauli sign/flip/prefactor convention checked against the gate
    /// unitaries themselves: for each single-qubit Pauli `P`, the engine's
    /// expectation on an arbitrary 1-qubit state must equal `⟨ψ|Pψ⟩`
    /// computed by multiplying the actual `2×2` matrix — an oracle that
    /// shares no formula with `PauliString::phase_prefactor`.
    #[test]
    fn single_qubit_expectations_match_gate_matrices() {
        use atlas_circuit::{Gate, GateKind};
        let alpha = atlas_qmath::Complex64::new(0.6, 0.1);
        let beta = atlas_qmath::Complex64::new(0.2, -0.7);
        let sv = atlas_statevec::StateVector::from_amplitudes(vec![alpha, beta]);
        let machine = Machine::with_state(MachineSpec::single_gpu(1), CostModel::default(), &sv);
        let m = Measurements::new(machine, vec![0], 1);
        for (s, kind) in [("X", GateKind::X), ("Y", GateKind::Y), ("Z", GateKind::Z)] {
            let mat = Gate::new(kind, &[0]).matrix();
            let p_psi = [
                mat[(0, 0)] * alpha + mat[(0, 1)] * beta,
                mat[(1, 0)] * alpha + mat[(1, 1)] * beta,
            ];
            let want = (alpha.conj() * p_psi[0] + beta.conj() * p_psi[1]).re;
            let got = m.expectation(&s.parse().unwrap());
            assert!((got - want).abs() < 1e-12, "<{s}>: got {got}, want {want}");
        }
    }

    /// Dense-reference Pauli expectation via direct basis-state algebra.
    fn dense_expectation(sv: &atlas_statevec::StateVector, p: &PauliString) -> f64 {
        let flip = p.x_mask() | p.y_mask();
        let sign = p.z_mask() | p.y_mask();
        let pref = match p.y_mask().count_ones() % 4 {
            0 => atlas_qmath::Complex64::ONE,
            1 => atlas_qmath::Complex64::I,
            2 => -atlas_qmath::Complex64::ONE,
            _ => -atlas_qmath::Complex64::I,
        };
        let amps = sv.amplitudes();
        let mut acc = atlas_qmath::Complex64::ZERO;
        for (x, &a) in amps.iter().enumerate() {
            let s = if (x as u64 & sign).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            acc += amps[x ^ flip as usize].conj() * a * s;
        }
        let z = pref * acc;
        assert!(z.im.abs() < 1e-10);
        z.re
    }
}
