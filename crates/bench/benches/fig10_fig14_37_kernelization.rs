//! Figure 10: kernelization effectiveness — relative geometric-mean cost
//! of KERNELIZE vs greedy ≤5-qubit fusion packing, per family.
//! Figures 14–24: the absolute cost curves per family and size (Atlas,
//! Atlas-Naive = ORDERED KERNELIZE, greedy baseline).
//! Figure 25 + 37: the hhl case study (gates ≫ qubits) — cost and
//! preprocessing time.
//! Figures 26–36: preprocessing wall-clock per family (real time, not
//! model time).

use atlas_bench::{families, full_grid, geomean, section, size_range, write_csv};
use atlas_circuit::Circuit;
use atlas_core::kernelize::{self, KGate, KernelCost};
use atlas_machine::CostModel;
use std::time::Instant;

fn kgates(c: &Circuit) -> Vec<KGate> {
    let cm = CostModel::default();
    c.gates()
        .iter()
        .map(|g| KGate {
            mask: g.qubit_mask(),
            shm_ns: cm.shm_gate_unit_ns(g),
        })
        .collect()
}

struct Point {
    dp_cost: f64,
    ordered_cost: f64,
    greedy_cost: f64,
    dp_time: f64,
    ordered_time: f64,
    greedy_time: f64,
}

fn measure(gates: &[KGate], kc: &KernelCost) -> Point {
    let t0 = Instant::now();
    let dp = kernelize::kernelize(gates, kc, 500);
    let dp_time = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let ordered = kernelize::kernelize_ordered(gates, kc);
    let ordered_time = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let greedy = kernelize::kernelize_greedy(gates, kc, 5);
    let greedy_time = t0.elapsed().as_secs_f64();
    Point {
        dp_cost: dp.cost,
        ordered_cost: ordered.cost,
        greedy_cost: greedy.cost,
        dp_time,
        ordered_time,
        greedy_time,
    }
}

fn main() {
    let kc = KernelCost::from_machine(&CostModel::default());
    let sizes = size_range();
    let mut rows = Vec::new();

    section("Figures 10 & 14-24 & 26-36: kernelization cost and preprocessing time");
    let mut rel_geo_all: Vec<f64> = Vec::new();
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>8} | {:>9} {:>9}",
        "family", "atlas", "naive", "greedy", "rel", "t_atlas", "t_naive"
    );
    for fam in families() {
        let mut rels = Vec::new();
        let mut show: Option<Point> = None;
        for &n in &sizes {
            let gates = kgates(&fam.generate(n));
            let p = measure(&gates, &kc);
            assert!(
                p.dp_cost <= p.ordered_cost + 1e-9,
                "{} n={n}: Theorem 6 violated",
                fam.name()
            );
            rels.push(p.dp_cost / p.greedy_cost);
            rows.push(format!(
                "{},{n},{},{},{},{},{},{}",
                fam.name(),
                p.dp_cost,
                p.ordered_cost,
                p.greedy_cost,
                p.dp_time,
                p.ordered_time,
                p.greedy_time
            ));
            show = Some(p);
        }
        let rel = geomean(&rels);
        rel_geo_all.push(rel);
        let p = show.unwrap();
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>8.3} | {:>8.3}s {:>8.3}s",
            fam.name(),
            p.dp_cost,
            p.ordered_cost,
            p.greedy_cost,
            rel,
            p.dp_time,
            p.ordered_time
        );
    }
    println!(
        "\nFig. 10 geomean relative cost (Atlas / greedy): {:.3}  (paper: 0.583)",
        geomean(&rel_geo_all)
    );
    println!("(cost columns show the largest size; `rel` is the per-family geomean)");

    section("Figure 25 & 37: hhl case study (gates >> qubits)");
    let hhl_sizes: &[u32] = if full_grid() {
        &[4, 7, 9, 10]
    } else {
        &[4, 7, 9]
    };
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "nq", "gates", "atlas", "naive", "greedy", "t_atlas", "t_naive"
    );
    let mut rows_hhl = Vec::new();
    for &nq in hhl_sizes {
        let c = atlas_circuit::generators::hhl(nq);
        let gates = kgates(&c);
        // ORDERED KERNELIZE is O(|C|^2): skip it above ~10^5 gates unless
        // the full grid is requested (the paper's Fig. 37 shows it taking
        // 10-100x longer than KERNELIZE there, which we confirm at nq=9).
        let t0 = Instant::now();
        let dp = kernelize::kernelize(&gates, &kc, 500);
        let dp_time = t0.elapsed().as_secs_f64();
        let (naive_cost, naive_time) = if gates.len() <= 100_000 || full_grid() {
            let t0 = Instant::now();
            let o = kernelize::kernelize_ordered(&gates, &kc);
            (o.cost, t0.elapsed().as_secs_f64())
        } else {
            (f64::NAN, f64::NAN)
        };
        let greedy = kernelize::kernelize_greedy(&gates, &kc, 5);
        println!(
            "{nq:>3} {:>9} {:>9.3} {:>9.3} {:>9.3} | {:>8.2}s {:>8.2}s",
            gates.len(),
            dp.cost,
            naive_cost,
            greedy.cost,
            dp_time,
            naive_time
        );
        rows_hhl.push(format!(
            "{nq},{},{},{naive_cost},{},{dp_time},{naive_time}",
            gates.len(),
            dp.cost,
            greedy.cost
        ));
    }
    println!("(paper: KERNELIZE runs in linear time on these and never costs more)");

    if let Some(p) = write_csv(
        "fig10_fig14_36_kernelization",
        "family,n,atlas_cost,naive_cost,greedy_cost,atlas_time_s,naive_time_s,greedy_time_s",
        &rows,
    ) {
        println!("\nwrote {p}");
    }
    if let Some(p) = write_csv(
        "fig25_fig37_hhl",
        "nq,gates,atlas_cost,naive_cost,greedy_cost,atlas_time_s,naive_time_s",
        &rows_hhl,
    ) {
        println!("wrote {p}");
    }
}
