//! Parallel-execution-engine benchmarks + the `BENCH_parallel.json`
//! emitter that starts the repo's performance trajectory record.
//!
//! Two layers are measured, each at 1 thread vs 8 threads:
//!
//! * **kernel** — a dense 5-qubit fused unitary applied to a 24-qubit
//!   amplitude array via `apply_matrix_parallel` (the intra-shard path);
//! * **end-to-end** — a functional `simulate` of QAOA-24 on a 2×2-GPU
//!   shape (8 shards), exercising the shard-parallel engine, the
//!   `FastKernel` classification and the all-to-all barriers.
//!
//! The emitter records best-of-N wall times and the measured speedup in
//! `BENCH_parallel.json` at the workspace root, together with the host
//! core count — on a single-core CI container the speedup will sit near
//! 1.0 by construction, and the recorded `host_cpus` field is what makes
//! the number interpretable across hosts.

use atlas_circuit::Circuit;
use atlas_core::config::AtlasConfig;
use atlas_core::simulate::simulate;
use atlas_machine::{CostModel, MachineSpec};
use atlas_qmath::Complex64;
use atlas_statevec::{apply_gate, apply_matrix_parallel, fuse_gates, StateVector};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

const N: u32 = 24; // 2^24 amplitudes = 256 MiB of state

fn dense_state() -> StateVector {
    let mut c = Circuit::new(N);
    for q in 0..N {
        c.h(q);
        c.rz(0.1 * (q + 1) as f64, q);
    }
    let mut sv = StateVector::zero_state(N);
    for g in c.gates() {
        apply_gate(sv.amplitudes_mut(), g);
    }
    sv
}

fn fused_k5() -> (Vec<u32>, atlas_qmath::Matrix) {
    let qubits: Vec<u32> = (0..5).map(|i| i * 3 + 1).collect();
    let mut kc = Circuit::new(N);
    for (i, &q) in qubits.iter().enumerate() {
        kc.h(q);
        if i > 0 {
            kc.cx(qubits[i - 1], q);
        }
    }
    (qubits.clone(), fuse_gates(&qubits, kc.gates()))
}

fn simulate_qaoa24(threads: usize) {
    let circuit = atlas_circuit::generators::qaoa(N);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 21, // 8 shards on 4 GPUs
    };
    let cfg = AtlasConfig {
        threads,
        ..AtlasConfig::default()
    };
    let out = simulate(&circuit, spec, CostModel::default(), &cfg, false).unwrap();
    assert!(out.report.kernels > 0);
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    let (qubits, fused) = fused_k5();
    for threads in [1usize, 8] {
        let base = dense_state();
        g.bench_function(format!("fused_k5_24q_t{threads}"), |b| {
            b.iter_batched_ref(
                || base.clone(),
                |sv| apply_matrix_parallel(sv.amplitudes_mut(), &qubits, &fused, threads),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Kernel-level: dense k=5 fused apply over 2^24 amplitudes.
    let (qubits, fused) = fused_k5();
    let mut sv = dense_state();
    let kernel_t1 = best_of(3, || {
        apply_matrix_parallel(sv.amplitudes_mut(), &qubits, &fused, 1)
    });
    let kernel_t8 = best_of(3, || {
        apply_matrix_parallel(sv.amplitudes_mut(), &qubits, &fused, 8)
    });
    drop(sv);

    // End-to-end: functional QAOA-24 across 8 shards.
    let sim_t1 = best_of(2, || simulate_qaoa24(1));
    let sim_t8 = best_of(2, || simulate_qaoa24(8));

    let json = format!(
        "{{\n  \"bench\": \"parallel_shard_execution_engine\",\n  \"qubits\": {N},\n  \"host_cpus\": {host_cpus},\n  \"kernel_fused_k5\": {{\n    \"t1_secs\": {kernel_t1:.6},\n    \"t8_secs\": {kernel_t8:.6},\n    \"speedup\": {:.3}\n  }},\n  \"simulate_qaoa24_8shards\": {{\n    \"t1_secs\": {sim_t1:.6},\n    \"t8_secs\": {sim_t8:.6},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        kernel_t1 / kernel_t8,
        sim_t1 / sim_t8,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_parallel);

fn main() {
    benches();
    emit_json();
    // Silence unused warnings for items only the emitter uses.
    let _ = Complex64::ONE;
}
