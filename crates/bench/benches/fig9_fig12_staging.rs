//! Figure 9: number of stages, Atlas (ILP) vs SnuQS — geometric mean over
//! the 11 benchmark families at 31 qubits, L = 15..31.
//! Figure 12 (appendix): the same at 42 qubits, L = 18..42.
//!
//! The reproduction targets: Atlas ≤ SnuQS everywhere, and Atlas
//! monotonically non-increasing in L (SnuQS is not — the paper calls out
//! its L=23→24 regression).

use atlas_bench::{families, full_grid, geomean, section, write_csv};
use atlas_core::config::AtlasConfig;
use atlas_core::staging;

fn sweep(n: u32, l_range: std::ops::RangeInclusive<u32>, csv: &str) {
    let cfg = AtlasConfig::default();
    println!("{:>4} {:>12} {:>12}", "L", "atlas", "snuqs");
    let mut rows = Vec::new();
    let mut atlas_prev = f64::INFINITY;
    let mut monotone = true;
    for l in l_range.step_by(if full_grid() { 1 } else { 2 }) {
        // At most 2 regional qubits, as in §VII-D.
        let g = (n - l).saturating_sub(2);
        let mut atlas_counts = Vec::new();
        let mut snuqs_counts = Vec::new();
        for fam in families() {
            let c = fam.generate(n);
            let a = staging::stage_circuit(&c, l, g, &cfg)
                .unwrap_or_else(|e| panic!("{} L={l}: {e}", fam.name()));
            let s = staging::stage_circuit_snuqs(&c, l, g, &cfg).unwrap();
            assert!(
                a.num_stages() <= s.num_stages(),
                "{} L={l}: atlas {} > snuqs {}",
                fam.name(),
                a.num_stages(),
                s.num_stages()
            );
            atlas_counts.push(a.num_stages() as f64);
            snuqs_counts.push(s.num_stages() as f64);
        }
        let ga = geomean(&atlas_counts);
        let gs = geomean(&snuqs_counts);
        monotone &= ga <= atlas_prev + 1e-9;
        atlas_prev = ga;
        println!("{l:>4} {ga:>12.3} {gs:>12.3}");
        rows.push(format!("{l},{ga},{gs}"));
    }
    println!(
        "Atlas geomean monotone non-increasing in L: {}",
        if monotone { "yes" } else { "NO (unexpected)" }
    );
    if let Some(p) = write_csv(csv, "L,atlas_geomean_stages,snuqs_geomean_stages", &rows) {
        println!("wrote {p}");
    }
}

fn main() {
    section("Figure 9: #stages (geomean over 11 families), n = 31");
    sweep(31, 15..=31, "fig9_staging_n31");

    section("Figure 12: #stages (geomean over 11 families), n = 42");
    sweep(42, 18..=42, "fig12_staging_n42");
}
