//! Table I + Table II: the benchmark circuits and their gate counts.
//!
//! Regenerates both tables from the circuit generators and reports the
//! deviation from the paper's published counts (exact for 10 of 11
//! families; qpeexact ±2; hhl within a few percent).

use atlas_bench::{section, write_csv};
use atlas_circuit::generators::{hhl, Family};

/// Paper's Table I, per family, n = 28..=36.
const TABLE1: &[(&str, [usize; 9])] = &[
    ("ae", [514, 547, 581, 616, 652, 689, 727, 766, 806]),
    ("dj", [82, 85, 88, 91, 94, 97, 100, 103, 106]),
    ("ghz", [28, 29, 30, 31, 32, 33, 34, 35, 36]),
    ("graphstate", [56, 58, 60, 62, 64, 66, 68, 70, 72]),
    ("ising", [302, 313, 324, 335, 346, 357, 368, 379, 390]),
    ("qft", [406, 435, 465, 496, 528, 561, 595, 630, 666]),
    ("qpeexact", [432, 463, 493, 524, 559, 593, 628, 664, 701]),
    ("qsvm", [274, 284, 294, 304, 314, 324, 334, 344, 354]),
    (
        "su2random",
        [1246, 1334, 1425, 1519, 1616, 1716, 1819, 1925, 2034],
    ),
    (
        "vqc",
        [1873, 1998, 2127, 2260, 2397, 2538, 2683, 2832, 2985],
    ),
    ("wstate", [109, 113, 117, 121, 125, 129, 133, 137, 141]),
];

/// Paper's Table II (hhl).
const TABLE2: &[(u32, usize)] = &[(4, 80), (7, 689), (9, 91968), (10, 186795)];

fn main() {
    section("Table I: benchmark circuits and their size (number of gates)");
    println!("{:<12} {:>7} {:>7} {:>7}", "circuit", "n", "paper", "ours");
    let mut rows = Vec::new();
    let mut worst_dev = 0.0f64;
    for &(name, paper_counts) in TABLE1 {
        let fam = Family::from_name(name).unwrap();
        for (i, &paper) in paper_counts.iter().enumerate() {
            let n = 28 + i as u32;
            let ours = fam.generate(n).num_gates();
            let dev = 100.0 * (ours as f64 - paper as f64).abs() / paper as f64;
            worst_dev = worst_dev.max(dev);
            if i == 0 || i == 4 || i == 8 {
                println!("{name:<12} {n:>7} {paper:>7} {ours:>7}");
            }
            rows.push(format!("{name},{n},{paper},{ours}"));
        }
    }
    println!("(3 of 9 sizes shown per family; full grid in the CSV)");
    println!("worst deviation from the paper's counts: {worst_dev:.2}%");

    section("Table II: number of gates in the hhl circuit");
    println!(
        "{:>8} {:>10} {:>10} {:>7}",
        "qubits", "paper", "ours", "dev%"
    );
    for &(nq, paper) in TABLE2 {
        let ours = hhl(nq).num_gates();
        let dev = 100.0 * (ours as f64 - paper as f64).abs() / paper as f64;
        println!("{nq:>8} {paper:>10} {ours:>10} {dev:>6.1}%");
        rows.push(format!("hhl,{nq},{paper},{ours}"));
    }

    if let Some(p) = write_csv("table1_table2", "family,n,paper_gates,our_gates", &rows) {
        println!("\nwrote {p}");
    }
}
