//! Hot-path benchmarks + the `BENCH_hotpath.json` emitter: specialized
//! layout-aware kernels vs. the in-tree generic oracles, measured in the
//! same process so the comparison is apples-to-apples on a single core.
//!
//! Two layers:
//!
//! * **apply** — dense `k`-qubit unitaries over a `2^N`-amplitude state:
//!   the dispatched fast path (`apply_matrix`, warm scratch arena) vs.
//!   the generic gather/multiply/scatter oracle (`apply_matrix_generic`)
//!   for unrolled contiguous k=1/k=2, a strided k=1, and a contiguous
//!   k=5 window;
//! * **reshuffle** — `Machine` stage transitions: the block-copy
//!   ping-pong relayout (`permute_state`) vs. the per-amplitude scatter
//!   oracle (`permute_state_scatter`) for a cross-shard permutation with
//!   long runs (swap of a mid local bit with a global bit), one with
//!   short runs (low local bit ↔ global bit), and a pure shard relabel
//!   (handle shuffle, no amplitude traffic at all).
//!
//! `ATLAS_BENCH_QUICK=1` shrinks the state and repetition counts for the
//! CI perf-smoke step (the JSON schema is identical and gains
//! `"quick": true`). `host_cpus` is recorded because this container is
//! single-core; these speedups are *single-thread* gains by construction,
//! which is exactly the point — they do not depend on parallel hardware.

use atlas_circuit::Circuit;
use atlas_machine::{CostModel, Machine, MachineSpec};
use atlas_qmath::{Matrix, QubitPermutation};
use atlas_statevec::{
    apply_gate, apply_matrix_generic, apply_matrix_with, fuse_gates, scratch, simulate_reference,
    Scratch, StateVector,
};
use criterion::{criterion_group, Criterion};
use std::fmt::Write as _;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("ATLAS_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Dense state over `n` qubits.
fn dense_state(n: u32) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
        c.rz(0.1 * (q + 1) as f64, q);
    }
    let mut sv = StateVector::zero_state(n);
    for g in c.gates() {
        apply_gate(sv.amplitudes_mut(), g);
    }
    sv
}

/// A dense unitary over `qs` (H/RZ/CX ladder fused).
fn dense_unitary(n: u32, qs: &[u32]) -> Matrix {
    let mut kc = Circuit::new(n);
    for (i, &q) in qs.iter().enumerate() {
        kc.h(q);
        kc.rz(0.37 + i as f64, q);
        if i > 0 {
            kc.cx(qs[i - 1], q);
        }
    }
    fuse_gates(qs, kc.gates())
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Case {
    name: &'static str,
    generic_secs: f64,
    fast_secs: f64,
}

impl Case {
    /// Guarded against a measured 0.0 (the handle-shuffle relabel case can
    /// undercut coarse monotonic clocks): the JSON must never contain
    /// `inf`, which `json.load` in the CI smoke step would reject.
    fn speedup(&self) -> f64 {
        self.generic_secs / self.fast_secs.max(1e-9)
    }
}

fn apply_cases(n: u32, reps: usize) -> Vec<Case> {
    let mut sv = dense_state(n);
    let mut scratch = Scratch::new();
    let shapes: Vec<(&'static str, Vec<u32>)> = vec![
        ("k1_contiguous", vec![0]),
        ("k1_strided", vec![n / 2]),
        ("k2_contiguous", vec![0, 1]),
        ("k5_contiguous", vec![0, 1, 2, 3, 4]),
        ("k5_strided", (0..5).map(|i| i * 3 + 1).collect()),
    ];
    shapes
        .into_iter()
        .map(|(name, qs)| {
            let m = dense_unitary(n, &qs);
            // Warm the arena so the fast path is measured steady-state.
            apply_matrix_with(&mut scratch, sv.amplitudes_mut(), &qs, &m);
            let fast_secs = best_of(reps, || {
                apply_matrix_with(&mut scratch, sv.amplitudes_mut(), &qs, &m)
            });
            let generic_secs = best_of(reps, || apply_matrix_generic(sv.amplitudes_mut(), &qs, &m));
            let case = Case {
                name,
                generic_secs,
                fast_secs,
            };
            println!(
                "apply/{name:<14} generic {generic_secs:.4}s  fast {fast_secs:.4}s  \
                 speedup {:.2}x",
                case.speedup()
            );
            case
        })
        .collect()
}

fn reshuffle_cases(n: u32, l: u32, reps: usize) -> Vec<Case> {
    let spec = MachineSpec {
        nodes: 1,
        gpus_per_node: 4,
        local_qubits: l,
    };
    let reference = simulate_reference(&atlas_circuit::generators::ghz(n));
    let shapes: Vec<(&'static str, u32, u32)> = vec![
        // (name, qubit a, qubit b) — a ↔ b swap.
        ("long_runs_mid_local_x_global", l / 2, n - 1),
        ("short_runs_low_local_x_global", 1, n - 1),
        ("relabel_global_only", n - 2, n - 1),
    ];
    shapes
        .into_iter()
        .map(|(name, a, b)| {
            let mut map: Vec<u32> = (0..n).collect();
            map.swap(a as usize, b as usize);
            let perm = QubitPermutation::from_map(map);
            // Self-inverse swap: applying it repeatedly round-trips the
            // layout, so repetitions measure the steady state.
            let mut machine = Machine::with_state(spec, CostModel::default(), &reference);
            machine.permute_state(&perm, 0); // warm the ping-pong spare
            let fast_secs = best_of(reps, || machine.permute_state(&perm, 0));
            let mut machine = Machine::with_state(spec, CostModel::default(), &reference);
            let generic_secs = best_of(reps, || machine.permute_state_scatter(&perm, 0));
            let case = Case {
                name,
                generic_secs,
                fast_secs,
            };
            println!(
                "reshuffle/{name:<30} scatter {generic_secs:.4}s  blocks {fast_secs:.4}s  \
                 speedup {:.2}x",
                case.speedup()
            );
            case
        })
        .collect()
}

fn bench_hotpath(c: &mut Criterion) {
    let n = if quick() { 16 } else { 20 };
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    let base = dense_state(n);
    for (name, qs) in [("k1_contiguous", vec![0u32]), ("k2_contiguous", vec![0, 1])] {
        let m = dense_unitary(n, &qs);
        g.bench_function(format!("fast_{name}_{n}q"), |b| {
            let mut sv = base.clone();
            b.iter(|| scratch::with_thread(|s| apply_matrix_with(s, sv.amplitudes_mut(), &qs, &m)))
        });
        g.bench_function(format!("generic_{name}_{n}q"), |b| {
            let mut sv = base.clone();
            b.iter(|| apply_matrix_generic(sv.amplitudes_mut(), &qs, &m))
        });
    }
    g.finish();
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (n_apply, n_shuffle, l_shuffle, reps) = if quick() {
        (16u32, 16u32, 14u32, 2usize)
    } else {
        (20, 22, 20, 5)
    };
    let apply = apply_cases(n_apply, reps);
    let shuffle = reshuffle_cases(n_shuffle, l_shuffle, reps);

    let fmt_cases = |cases: &[Case]| -> String {
        let mut s = String::new();
        for (i, c) in cases.iter().enumerate() {
            let _ = write!(
                s,
                "    \"{}\": {{\"generic_secs\": {:.6}, \"fast_secs\": {:.6}, \"speedup\": {:.3}}}{}",
                c.name,
                c.generic_secs,
                c.fast_secs,
                c.speedup(),
                if i + 1 < cases.len() { ",\n" } else { "\n" }
            );
        }
        s
    };
    let json = format!(
        "{{\n  \"bench\": \"hotpath_specialized_vs_generic\",\n  \"quick\": {},\n  \
         \"host_cpus\": {host_cpus},\n  \"apply_qubits\": {n_apply},\n  \
         \"reshuffle_qubits\": {n_shuffle},\n  \"reshuffle_local_qubits\": {l_shuffle},\n  \
         \"apply\": {{\n{}  }},\n  \"reshuffle\": {{\n{}  }}\n}}\n",
        quick(),
        fmt_cases(&apply),
        fmt_cases(&shuffle),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, &json).expect("write BENCH_hotpath.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_hotpath);

fn main() {
    benches();
    emit_json();
}
