//! Plan-once/run-many sweep benchmarks + the `BENCH_sweep.json`
//! emitter.
//!
//! Times an N-point QAOA parameter sweep through the session API
//! (`Planner` → `CompiledPlan` → `Execution`): PARTITION (staging ILP +
//! kernelize DP) runs once, then every sweep point pays EXECUTE only —
//! per-point execute time is reported *excluding* planning, which is
//! the property the API exists to provide. For contrast the JSON also
//! records the one-shot `simulate()` cost per point (plan + execute
//! fused, the pre-session behavior) and the resulting amortization
//! factor.
//!
//! Single-core CI containers record `host_cpus` so wall-clock numbers
//! stay interpretable across hosts.

use atlas_core::config::AtlasConfig;
use atlas_core::session::Planner;
use atlas_core::simulate::simulate;
use atlas_machine::{CostModel, MachineSpec};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

const N: u32 = 20;
const POINTS: usize = 6;

fn spec_for(n: u32) -> MachineSpec {
    MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: n - 3,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    // Small shape for the criterion smoke; the emitter below runs the
    // paper-scale sweep.
    let base = atlas_circuit::generators::qaoa(14);
    let planner = Planner::new(spec_for(14), CostModel::default(), AtlasConfig::default());
    let compiled = planner.plan(&base).expect("plan");
    g.bench_function("plan_qaoa_n14", |b| {
        b.iter(|| planner.plan(&base).expect("plan"))
    });
    g.bench_function("execute_point_n14", |b| {
        let point = base.map_params(|_, _, p| p + 0.3);
        b.iter(|| compiled.execute(&point).expect("execute"))
    });
    g.finish();
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Runs one sweep shape and renders its JSON object. Returns the
/// formatted block (2-space indented under the top-level object).
fn sweep_shape_json(n: u32, host_cpus: usize) -> String {
    let base = atlas_circuit::generators::qaoa(n);
    let spec = spec_for(n);
    let cfg = AtlasConfig::builder()
        .threads(host_cpus.min(8))
        .build()
        .expect("valid config");
    let planner = Planner::new(spec, CostModel::default(), cfg.clone());

    // PARTITION once, timed.
    let t = Instant::now();
    let compiled = planner.plan(&base).expect("plan");
    let plan_secs = t.elapsed().as_secs_f64();

    // EXECUTE per sweep point, planning excluded by construction.
    let mut execute_secs = Vec::with_capacity(POINTS);
    for i in 0..POINTS {
        let point = base.map_params(|_, _, p| p + 0.1 * i as f64);
        let t = Instant::now();
        let run = compiled.execute(&point).expect("execute");
        execute_secs.push(t.elapsed().as_secs_f64());
        assert!((run.measurements.total_norm() - 1.0).abs() < 1e-9);
    }
    let mean_execute = execute_secs.iter().sum::<f64>() / POINTS as f64;

    // The pre-session one-shot path for contrast: plan + execute fused.
    let one_shot_secs = best_of(1, || {
        simulate(&base, spec, CostModel::default(), &cfg, false).expect("simulate");
    });

    let sweep_session = plan_secs + execute_secs.iter().sum::<f64>();
    let sweep_one_shot = one_shot_secs * POINTS as f64;
    let per_point: Vec<String> = execute_secs.iter().map(|s| format!("{s:.6}")).collect();
    format!(
        "{{\n    \"qubits\": {n},\n    \"shards\": {},\n    \"points\": {POINTS},\n    \"staging_runs\": 1,\n    \"plan_secs\": {plan_secs:.6},\n    \"execute_secs_per_point\": [{}],\n    \"mean_execute_secs\": {mean_execute:.6},\n    \"one_shot_simulate_secs\": {one_shot_secs:.6},\n    \"sweep_total_secs_session\": {sweep_session:.6},\n    \"sweep_total_secs_replanning\": {sweep_one_shot:.6},\n    \"amortization_speedup\": {:.3}\n  }}",
        spec.num_shards(n),
        per_point.join(", "),
        sweep_one_shot / sweep_session,
    )
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Two regimes: a plan-bound shape (small state, PARTITION dominates —
    // where plan-once pays most) and an execute-bound one (the 2^20
    // state dwarfs the ~100-gate staging problem).
    let plan_bound = sweep_shape_json(14, host_cpus);
    let execute_bound = sweep_shape_json(N, host_cpus);
    let json = format!(
        "{{\n  \"bench\": \"plan_once_run_many_sweep\",\n  \"host_cpus\": {host_cpus},\n  \"plan_bound_qaoa14\": {plan_bound},\n  \"execute_bound_qaoa20\": {execute_bound}\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_sweep);

fn main() {
    benches();
    emit_json();
}
