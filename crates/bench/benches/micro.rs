//! Criterion micro-benchmarks backing the cost-model constants: the CPU
//! analogues of the kernels the simulated machine charges for. These
//! demonstrate the cost *structure* the model encodes — fusion kernels
//! flat up to ~5 qubits then exponential, shared-memory batching
//! amortizing memory traffic, permutation/all-to-all costs — and measure
//! the planner's own throughput (staging + kernelization preprocessing).

use atlas_circuit::generators::Family;
use atlas_circuit::{Circuit, Gate, GateKind};
use atlas_core::config::AtlasConfig;
use atlas_core::kernelize::{self, KGate, KernelCost};
use atlas_machine::CostModel;
use atlas_qmath::QubitPermutation;
use atlas_statevec::{apply_batched, apply_gate, fuse_gates, StateVector};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const N: u32 = 18; // 2^18 amplitudes = 4 MiB of state per run

fn dense_state() -> StateVector {
    let mut c = Circuit::new(N);
    for q in 0..N {
        c.h(q);
        c.rz(0.1 * (q + 1) as f64, q);
    }
    let mut sv = StateVector::zero_state(N);
    for g in c.gates() {
        apply_gate(sv.amplitudes_mut(), g);
    }
    sv
}

fn bench_statevec(c: &mut Criterion) {
    let base = dense_state();
    let mut g = c.benchmark_group("statevec");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    g.bench_function("apply_1q_h", |b| {
        b.iter_batched_ref(
            || base.clone(),
            |sv| apply_gate(sv.amplitudes_mut(), &Gate::new(GateKind::H, &[7])),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("apply_cx", |b| {
        b.iter_batched_ref(
            || base.clone(),
            |sv| apply_gate(sv.amplitudes_mut(), &Gate::new(GateKind::CX, &[3, 11])),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("apply_diag_cp", |b| {
        b.iter_batched_ref(
            || base.clone(),
            |sv| apply_gate(sv.amplitudes_mut(), &Gate::new(GateKind::CP(0.7), &[2, 9])),
            BatchSize::LargeInput,
        )
    });
    // Fusion kernel cost structure: k = 2 vs 5 vs 7 qubits.
    for k in [2u32, 5, 7] {
        let qubits: Vec<u32> = (0..k).map(|i| i * 2 + 1).collect();
        let mut kc = Circuit::new(N);
        for (i, &q) in qubits.iter().enumerate() {
            kc.h(q);
            if i > 0 {
                kc.cx(qubits[i - 1], q);
            }
        }
        let fused = fuse_gates(&qubits, kc.gates());
        g.bench_function(format!("fused_apply_k{k}"), |b| {
            b.iter_batched_ref(
                || base.clone(),
                |sv| atlas_statevec::apply_matrix(sv.amplitudes_mut(), &qubits, black_box(&fused)),
                BatchSize::LargeInput,
            )
        });
    }
    // Shared-memory style batching vs gate-by-gate.
    let mut shm_circ = Circuit::new(N);
    for i in 0..6 {
        shm_circ.cx(i, i + 6);
        shm_circ.t(i + 6);
    }
    let active: Vec<u32> = (0..12).collect();
    g.bench_function("shm_batched_12gates", |b| {
        b.iter_batched_ref(
            || base.clone(),
            |sv| apply_batched(sv.amplitudes_mut(), &active, shm_circ.gates()),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("gate_by_gate_12gates", |b| {
        b.iter_batched_ref(
            || base.clone(),
            |sv| {
                for gate in shm_circ.gates() {
                    apply_gate(sv.amplitudes_mut(), gate);
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    use atlas_machine::{Machine, MachineSpec};
    let mut g = c.benchmark_group("machine");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300));
    let spec = MachineSpec {
        nodes: 4,
        gpus_per_node: 2,
        local_qubits: 12,
    };
    let state = dense_state(); // 18 qubits → 64 shards
    g.bench_function("all_to_all_permute_18q", |b| {
        let mut map: Vec<u32> = (0..N).collect();
        map.rotate_left(5);
        let perm = QubitPermutation::from_map(map);
        b.iter_batched(
            || Machine::with_state(spec, CostModel::default(), &state),
            |mut m| m.permute_state(black_box(&perm), 0),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("traffic_matrix_36q_256gpus", |b| {
        let mut map: Vec<u32> = (0..36).collect();
        map.rotate_left(7);
        let perm = QubitPermutation::from_map(map);
        b.iter(|| atlas_machine::traffic_matrix(black_box(&perm), 0, 36, 28))
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    let kc = KernelCost::from_machine(&CostModel::default());
    let cm = CostModel::default();
    for (fam, n) in [(Family::Qft, 28u32), (Family::Ising, 28)] {
        let circ = fam.generate(n);
        let gates: Vec<KGate> = circ
            .gates()
            .iter()
            .map(|gate| KGate {
                mask: gate.qubit_mask(),
                shm_ns: cm.shm_gate_unit_ns(gate),
            })
            .collect();
        g.bench_function(format!("kernelize_dp_{}_{n}", fam.name()), |b| {
            b.iter(|| kernelize::kernelize(black_box(&gates), &kc, 500))
        });
    }
    let circ = Family::Su2Random.generate(31);
    let cfg = AtlasConfig::default();
    g.bench_function("staging_search_su2random_31_L15", |b| {
        b.iter(|| atlas_core::staging::stage_circuit(black_box(&circ), 15, 2, &cfg).unwrap())
    });
    let small = Family::Qft.generate(10);
    g.bench_function("staging_generic_ilp_qft_10_L6", |b| {
        let icfg = AtlasConfig {
            staging: atlas_core::config::StagingAlgo::GenericIlp,
            ..AtlasConfig::default()
        };
        b.iter(|| atlas_core::staging::stage_circuit(black_box(&small), 6, 1, &icfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_statevec, bench_machine, bench_planner);
criterion_main!(benches);
