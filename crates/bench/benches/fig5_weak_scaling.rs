//! Figure 5 (a–l): weak scaling of Atlas vs HyQuas-, cuQuantum- and
//! Qiskit-like baselines, 28 local qubits, 1 → 256 simulated GPUs
//! (n = 28 → 36), plus Figure 6's communication/computation breakdown.
//!
//! Model times from the calibrated cost model; the reproduction targets
//! are the *shapes*: Atlas ahead of every baseline with the gap widening
//! with scale, Qiskit far behind, and communication dominating beyond one
//! node (Fig. 6).

use atlas_baselines as baselines;
use atlas_bench::{families, geomean, section, weak_scaling_ladder, write_csv};
use atlas_core::config::AtlasConfig;
use atlas_machine::CostModel;

fn main() {
    let ladder = weak_scaling_ladder(28);
    let cfg = AtlasConfig::default();
    let cost = CostModel::default();
    let mut rows = Vec::new();

    section("Figure 5: weak scaling, simulation model time (seconds)");
    // Per (family, #GPUs): Atlas / HyQuas / cuQuantum / Qiskit.
    let mut per_gpu_breakdown: Vec<(usize, Vec<f64>, Vec<f64>)> = ladder
        .iter()
        .map(|&(g, _, _)| (g, Vec::new(), Vec::new()))
        .collect();
    let mut speedups_all: Vec<f64> = Vec::new();

    for fam in families() {
        println!("\n--- {} ---", fam.name());
        println!(
            "{:>5} {:>3} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "gpus", "n", "atlas", "hyquas", "cuquantum", "qiskit", "speedup"
        );
        for (li, &(gpus, spec, n)) in ladder.iter().enumerate() {
            let circuit = fam.generate(n);
            let atlas_out = atlas_core::simulate(&circuit, spec, cost.clone(), &cfg, true)
                .expect("atlas dry run");
            let t_atlas = atlas_out.report.total_secs;
            let t_hyq = baselines::hyquas(&circuit, spec, cost.clone(), true)
                .expect("hyquas")
                .report
                .total_secs;
            let t_cuq = baselines::cuquantum(&circuit, spec, cost.clone(), true)
                .expect("cuquantum")
                .report
                .total_secs;
            let t_qis = baselines::qiskit(&circuit, spec, cost.clone(), true)
                .expect("qiskit")
                .report
                .total_secs;
            // The paper's per-point speedup: best baseline vs Atlas.
            let speedup = (t_hyq.min(t_cuq)) / t_atlas;
            speedups_all.push(speedup);
            println!(
                "{gpus:>5} {n:>3} {t_atlas:>10.4} {t_hyq:>10.4} {t_cuq:>10.4} {t_qis:>10.4} {speedup:>8.1}x"
            );
            rows.push(format!(
                "{},{gpus},{n},{t_atlas},{t_hyq},{t_cuq},{t_qis}",
                fam.name()
            ));
            per_gpu_breakdown[li].1.push(atlas_out.report.comm_secs);
            per_gpu_breakdown[li].2.push(atlas_out.report.total_secs);
        }
    }
    println!(
        "\ngeomean speedup of Atlas over the best baseline: {:.2}x",
        geomean(&speedups_all)
    );

    section("Figure 6: Atlas simulation-time breakdown (average over families)");
    println!(
        "{:>5} {:>12} {:>12} {:>8}",
        "gpus", "total(ms)", "comm(ms)", "comm%"
    );
    let mut rows6 = Vec::new();
    for (gpus, comms, totals) in &per_gpu_breakdown {
        let avg_total: f64 = totals.iter().sum::<f64>() / totals.len() as f64;
        let avg_comm: f64 = comms.iter().sum::<f64>() / comms.len() as f64;
        let pct = 100.0 * avg_comm / avg_total.max(1e-12);
        println!(
            "{gpus:>5} {:>12.2} {:>12.2} {pct:>7.0}%",
            avg_total * 1e3,
            avg_comm * 1e3
        );
        rows6.push(format!("{gpus},{avg_total},{avg_comm},{pct}"));
    }
    println!("(paper: 0% at 1 GPU rising to ~63-66% at 32+ GPUs)");

    if let Some(p) = write_csv(
        "fig5_weak_scaling",
        "family,gpus,n,atlas_s,hyquas_s,cuquantum_s,qiskit_s",
        &rows,
    ) {
        println!("\nwrote {p}");
    }
    if let Some(p) = write_csv(
        "fig6_breakdown",
        "gpus,avg_total_s,avg_comm_s,comm_pct",
        &rows6,
    ) {
        println!("wrote {p}");
    }
}
