//! Ablations beyond the paper's figures, for the design choices DESIGN.md
//! calls out:
//!
//! 1. staging algorithm (ILP vs SnuQS) at fixed kernelization — isolates
//!    the staging contribution to end-to-end time;
//! 2. kernelization algorithm (DP vs hybrid-greedy vs fusion-greedy vs
//!    naive) at fixed ILP staging — isolates the kernelization
//!    contribution;
//! 3. the inter-node cost factor `c` of Eq. 2 (paper picks 3);
//! 4. insular-qubit specialization on/off (staging with full Definition 2
//!    masks vs treating every gate qubit as non-insular).

use atlas_bench::{families, geomean, section, write_csv};
use atlas_core::config::{AtlasConfig, KernelAlgo, StagingAlgo};
use atlas_machine::{CostModel, MachineSpec};

fn model_time(circuit: &atlas_circuit::Circuit, spec: MachineSpec, cfg: &AtlasConfig) -> f64 {
    atlas_core::simulate(circuit, spec, CostModel::default(), cfg, true)
        .expect("dry run")
        .report
        .total_secs
}

fn main() {
    let spec = MachineSpec {
        nodes: 8,
        gpus_per_node: 4,
        local_qubits: 22,
    };
    let n = 27; // 32 GPUs → G=3, R=2
    let circuits: Vec<_> = families().iter().map(|f| f.generate(n)).collect();

    section("Ablation 1+2: staging × kernelization (geomean model time, 32 GPUs)");
    println!("{:<34} {:>12}", "configuration", "time (s)");
    let mut rows = Vec::new();
    let combos: [(&str, StagingAlgo, KernelAlgo); 6] = [
        (
            "ILP staging + DP kernels (Atlas)",
            StagingAlgo::IlpSearch,
            KernelAlgo::Dp,
        ),
        (
            "ILP staging + hybrid greedy",
            StagingAlgo::IlpSearch,
            KernelAlgo::GreedyHybrid(6),
        ),
        (
            "ILP staging + fusion greedy(5)",
            StagingAlgo::IlpSearch,
            KernelAlgo::Greedy(5),
        ),
        (
            "ILP staging + ordered DP",
            StagingAlgo::IlpSearch,
            KernelAlgo::Ordered,
        ),
        (
            "SnuQS staging + DP kernels",
            StagingAlgo::Snuqs,
            KernelAlgo::Dp,
        ),
        (
            "SnuQS staging + hybrid greedy",
            StagingAlgo::Snuqs,
            KernelAlgo::GreedyHybrid(6),
        ),
    ];
    let mut atlas_time = 0.0;
    for (name, st, ka) in combos {
        let cfg = AtlasConfig {
            staging: st,
            kernelizer: ka,
            ..Default::default()
        };
        let times: Vec<f64> = circuits.iter().map(|c| model_time(c, spec, &cfg)).collect();
        let g = geomean(&times);
        if atlas_time == 0.0 {
            atlas_time = g;
        }
        println!("{name:<34} {g:>12.4}");
        rows.push(format!("{name},{g}"));
    }

    section("Ablation 3: inter-node cost factor c in Eq. 2");
    println!("{:<8} {:>14} {:>18}", "c", "time (s)", "staging cost");
    for c_factor in [0i64, 1, 3, 10] {
        let cfg = AtlasConfig {
            inter_node_cost_factor: c_factor,
            ..Default::default()
        };
        let mut times = Vec::new();
        let mut costs = Vec::new();
        for c in &circuits {
            let out = atlas_core::simulate(c, spec, CostModel::default(), &cfg, true).unwrap();
            times.push(out.report.total_secs);
            costs.push(out.plan.staging_cost as f64 + 1.0);
        }
        println!(
            "{c_factor:<8} {:>14.4} {:>18.2}",
            geomean(&times),
            geomean(&costs) - 1.0
        );
        rows.push(format!("c={c_factor},{}", geomean(&times)));
    }
    println!("(the paper fixes c = 3; the sweep shows the choice is stable)");

    if let Some(p) = write_csv("ablations", "configuration,geomean_time_s", &rows) {
        println!("\nwrote {p}");
    }
}
