//! Figure 7: DRAM offloading — Atlas vs QDAO-like on qft circuits beyond
//! GPU memory (single GPU, 28 local qubits, 28–32 total).
//! Figure 8: the 32-qubit qft on 1, 2 and 4 GPUs — Atlas scales, QDAO
//! stays flat.

use atlas_baselines as baselines;
use atlas_bench::{section, write_csv};
use atlas_circuit::generators::Family;
use atlas_core::config::AtlasConfig;
use atlas_machine::{CostModel, MachineSpec};

fn main() {
    let cfg = AtlasConfig::default();
    let cost = CostModel::default();

    section("Figure 7: single-GPU DRAM offloading, qft 28..32 (model seconds)");
    println!("{:>3} {:>10} {:>10} {:>9}", "n", "atlas", "qdao", "speedup");
    let mut rows = Vec::new();
    for n in 28..=32u32 {
        let circuit = Family::Qft.generate(n);
        let spec = MachineSpec::single_gpu(28);
        let t_atlas = atlas_core::simulate(&circuit, spec, cost.clone(), &cfg, true)
            .expect("atlas")
            .report
            .total_secs;
        // QDAO with the paper's fastest setting m=28, t=19.
        let t_qdao = baselines::qdao_run(&circuit, spec, cost.clone(), 28, 19)
            .expect("qdao")
            .report
            .total_secs;
        println!(
            "{n:>3} {t_atlas:>10.3} {t_qdao:>10.3} {:>8.0}x",
            t_qdao / t_atlas
        );
        rows.push(format!("{n},{t_atlas},{t_qdao}"));
    }
    println!("(paper: 6x at 28 qubits growing to 105x at 32; shape target = widening gap)");
    if let Some(p) = write_csv("fig7_offload", "n,atlas_s,qdao_s", &rows) {
        println!("wrote {p}");
    }

    section("Figure 8: 32-qubit qft offload scaling on 1, 2, 4 GPUs");
    println!("{:>5} {:>10} {:>10}", "gpus", "atlas", "qdao");
    let circuit = Family::Qft.generate(32);
    let mut rows8 = Vec::new();
    for gpus in [1usize, 2, 4] {
        let spec = MachineSpec {
            nodes: 1,
            gpus_per_node: gpus,
            local_qubits: 28,
        };
        let t_atlas = atlas_core::simulate(&circuit, spec, cost.clone(), &cfg, true)
            .expect("atlas")
            .report
            .total_secs;
        let t_qdao = baselines::qdao_run(&circuit, spec, cost.clone(), 28, 19)
            .expect("qdao")
            .report
            .total_secs;
        println!("{gpus:>5} {t_atlas:>10.3} {t_qdao:>10.3}");
        rows8.push(format!("{gpus},{t_atlas},{t_qdao}"));
    }
    println!("(paper: Atlas scales with GPUs; QDAO's time stays the same)");
    if let Some(p) = write_csv("fig8_offload_scaling", "gpus,atlas_s,qdao_s", &rows8) {
        println!("wrote {p}");
    }
}
