//! Figure 13: the pruning-threshold trade-off — relative geometric-mean
//! kernelization cost (vs greedy packing) against preprocessing time as
//! `T` sweeps from 4 to 2000.
//!
//! Reproduction targets: cost decreases monotonically (with diminishing
//! returns) while time grows roughly exponentially with `T`; even `T = 4`
//! beats ORDERED KERNELIZE on both axes.

use atlas_bench::{families, full_grid, geomean, section, size_range, write_csv};
use atlas_circuit::Circuit;
use atlas_core::kernelize::{self, KGate, KernelCost};
use atlas_machine::CostModel;
use std::time::Instant;

fn kgates(c: &Circuit) -> Vec<KGate> {
    let cm = CostModel::default();
    c.gates()
        .iter()
        .map(|g| KGate {
            mask: g.qubit_mask(),
            shm_ns: cm.shm_gate_unit_ns(g),
        })
        .collect()
}

fn main() {
    section("Figure 13: pruning threshold T — relative cost vs preprocessing time");
    let kc = KernelCost::from_machine(&CostModel::default());
    let thresholds: &[usize] = if full_grid() {
        &[4, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000]
    } else {
        &[4, 20, 100, 500, 1000]
    };
    // One representative size per family by default (the paper uses all
    // 99 circuits; ATLAS_BENCH_FULL=1 uses the whole Table I grid).
    let sizes: Vec<u32> = if full_grid() { size_range() } else { vec![30] };

    let mut suites: Vec<(String, Vec<KGate>, f64)> = Vec::new();
    for fam in families() {
        for &n in &sizes {
            let gates = kgates(&fam.generate(n));
            let greedy = kernelize::kernelize_greedy(&gates, &kc, 5).cost;
            suites.push((format!("{}_{n}", fam.name()), gates, greedy));
        }
    }

    // The Atlas-Naive reference point.
    let t0 = Instant::now();
    let naive_rel: Vec<f64> = suites
        .iter()
        .map(|(_, gates, greedy)| kernelize::kernelize_ordered(gates, &kc).cost / greedy)
        .collect();
    let naive_time = t0.elapsed().as_secs_f64() / suites.len() as f64;
    println!(
        "{:>6} {:>14} {:>16}",
        "T", "rel geomean", "mean preproc (s)"
    );
    println!(
        "{:>6} {:>14.4} {:>16.4}   <- Atlas-Naive (Alg. 5)",
        "-",
        geomean(&naive_rel),
        naive_time
    );

    let mut rows = Vec::new();
    let mut prev_cost = f64::INFINITY;
    for &t in thresholds {
        let t0 = Instant::now();
        let rels: Vec<f64> = suites
            .iter()
            .map(|(_, gates, greedy)| kernelize::kernelize(gates, &kc, t).cost / greedy)
            .collect();
        let elapsed = t0.elapsed().as_secs_f64() / suites.len() as f64;
        let rel = geomean(&rels);
        println!("{t:>6} {rel:>14.4} {elapsed:>16.4}");
        assert!(
            rel <= prev_cost + 1e-6,
            "cost must not increase with larger T (got {rel} after {prev_cost})"
        );
        prev_cost = rel.min(prev_cost);
        rows.push(format!("{t},{rel},{elapsed}"));
    }
    println!("(paper: flattens near T=500 with preprocessing a few seconds per circuit)");

    if let Some(p) = write_csv("fig13_pruning", "T,rel_geomean_cost,mean_time_s", &rows) {
        println!("wrote {p}");
    }
}
