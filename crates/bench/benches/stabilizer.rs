//! Stabilizer-vs-statevector backend benchmarks + the
//! `BENCH_stabilizer.json` emitter.
//!
//! Times the same end-to-end query — plan, execute, draw 64 seeded
//! shots — through both engines on the seeded `clifford` family
//! (8·n gates) at n ∈ {12, 24, 200}. The statevector engine stores
//! 2^n amplitudes, so it only runs where that fits (n ≤ 24; quick mode
//! stops at 12); the tableau is O(n²) bits and covers all three sizes,
//! which is exactly the asymmetry the JSON records — at n = 200 the
//! `statevec_secs` field is `null` because no dense engine can
//! represent the state at all, while the tableau still answers in
//! milliseconds.
//!
//! `ATLAS_BENCH_QUICK=1` shrinks the statevector ceiling for the CI
//! compile-and-run smoke; the committed `BENCH_stabilizer.json` comes
//! from a full run.

use atlas_circuit::{generators, Circuit};
use atlas_core::backend::SimulatorBackend;
use atlas_core::config::{AtlasConfig, BackendKind};
use atlas_core::session::Planner;
use atlas_machine::{CostModel, MachineSpec};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

const SHOTS: usize = 64;
const SEED: u64 = 7;

fn quick() -> bool {
    std::env::var("ATLAS_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Single-shard planner with the given forced backend. The machine
/// shape is capped at the functional limit — the tableau ignores it,
/// the statevector cases all fit in one shard.
fn planner(n: u32, backend: BackendKind) -> Planner {
    let cfg = AtlasConfig {
        threads: 1,
        backend,
        ..AtlasConfig::default()
    };
    Planner::new(
        MachineSpec::single_gpu(n.min(26)),
        CostModel::default(),
        cfg,
    )
}

/// Wall-clock seconds for one full query through `backend`: plan the
/// circuit, execute it, draw the seeded shots.
fn time_backend(circuit: &Circuit, backend: BackendKind) -> f64 {
    let planner = planner(circuit.num_qubits(), backend);
    let t = Instant::now();
    let plan = planner.plan_backend(circuit).expect("plan");
    let run = plan.run(circuit).expect("run");
    let samples = run.sample_words(SHOTS, SEED);
    assert_eq!(samples.len(), SHOTS);
    t.elapsed().as_secs_f64()
}

fn bench_stabilizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("stabilizer");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    let wide = generators::clifford(200);
    g.bench_function("tableau_plan_run_sample_n200", |b| {
        b.iter(|| time_backend(&wide, BackendKind::Stabilizer))
    });
    g.finish();
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let statevec_max = if quick() { 12 } else { 24 };
    let mut cases = Vec::new();
    for n in [12u32, 24, 200] {
        let circuit = generators::clifford(n);
        let tableau_secs = time_backend(&circuit, BackendKind::Stabilizer);
        let statevec_secs =
            (n <= statevec_max).then(|| time_backend(&circuit, BackendKind::Statevec));
        let (sv, speedup) = match statevec_secs {
            Some(s) => (format!("{s:.6}"), format!("{:.3}", s / tableau_secs)),
            None => ("null".into(), "null".into()),
        };
        cases.push(format!(
            "    \"n{n}\": {{\n      \"qubits\": {n},\n      \"gates\": {},\n      \"tableau_secs\": {tableau_secs:.6},\n      \"statevec_secs\": {sv},\n      \"speedup\": {speedup}\n    }}",
            circuit.num_gates(),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"stabilizer_vs_statevec\",\n  \"quick\": {},\n  \"host_cpus\": {host_cpus},\n  \"shots\": {SHOTS},\n  \"seed\": {SEED},\n  \"cases\": {{\n{}\n  }}\n}}\n",
        quick(),
        cases.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stabilizer.json");
    std::fs::write(path, &json).expect("write BENCH_stabilizer.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_stabilizer);

fn main() {
    benches();
    emit_json();
}
