//! Multi-tenant serve benchmarks + the `BENCH_serve.json` emitter.
//!
//! Times a synthetic many-client workload through the `atlas-serve`
//! session pool: T tenants each submit J structurally identical QAOA
//! jobs (shifted parameters — same fingerprint), so the pool plans once
//! and serves J·T−1 jobs from the compiled-plan cache. The same
//! workload is then replayed the pre-pool way (every job plans for
//! itself) and the JSON records the amortization factor, the pooled
//! throughput and the cache hit rate.
//!
//! The workload is plan-bound by construction (QAOA at n = 14 on a
//! 2×2 split: a ~2^11-amplitude state against a multi-stage ILP), which
//! is exactly the regime a serving deployment with repeated circuit
//! structures lives in. Single-core CI containers record `host_cpus`
//! so wall-clock numbers stay interpretable across hosts.
//!
//! `ATLAS_BENCH_QUICK=1` shrinks the tenant/job counts for the CI
//! compile-and-run smoke; the committed `BENCH_serve.json` comes from a
//! full run.

use atlas_core::config::AtlasConfig;
use atlas_core::session::Planner;
use atlas_machine::{CostModel, MachineSpec};
use atlas_serve::{JobOutcome, JobOutput, JobRequest, ServeConfig, SessionPool};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

const N: u32 = 14;

fn quick() -> bool {
    std::env::var("ATLAS_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn spec_for(n: u32) -> MachineSpec {
    MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: n - 3,
    }
}

fn serve_cfg() -> AtlasConfig {
    AtlasConfig {
        threads: 1,
        ..AtlasConfig::default()
    }
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    let base = atlas_circuit::generators::qaoa(N);
    let pool = SessionPool::new(
        spec_for(N),
        CostModel::default(),
        serve_cfg(),
        ServeConfig::default(),
    )
    .expect("pool");
    // Warm the cache so the steady-state job cost is measured.
    pool.submit("warm", base.clone(), JobRequest::Execute)
        .unwrap()
        .wait()
        .unwrap();
    g.bench_function("pooled_execute_job_n14", |b| {
        let point = base.map_params(|_, _, p| p + 0.3);
        b.iter(|| {
            pool.submit("bench", point.clone(), JobRequest::Execute)
                .unwrap()
                .wait()
                .unwrap()
        })
    });
    g.finish();
}

/// Runs the T×J tenant workload through a pool; returns (total wall
/// seconds, cache hits, cache misses).
fn run_pooled(base: &atlas_circuit::Circuit, tenants: usize, jobs: usize) -> (f64, u64, u64) {
    let pool = SessionPool::new(
        spec_for(N),
        CostModel::default(),
        serve_cfg(),
        ServeConfig {
            workers: 1,
            queue_capacity: tenants * jobs,
            cache_capacity: 8,
            ..ServeConfig::default()
        },
    )
    .expect("pool");
    let t = Instant::now();
    let mut handles = Vec::new();
    for tnt in 0..tenants {
        for j in 0..jobs {
            let point = base.map_params(|_, _, p| p + 0.02 * (tnt * jobs + j) as f64);
            handles.push(
                pool.submit(&format!("tenant-{tnt}"), point, JobRequest::Execute)
                    .expect("queue sized for the whole workload"),
            );
        }
    }
    for h in handles {
        match h.wait().expect("job failed") {
            JobOutcome::Output(JobOutput::Executed { norm, .. }) => {
                assert!((norm - 1.0).abs() < 1e-9)
            }
            other => panic!("expected Executed, got {other:?}"),
        }
    }
    let total = t.elapsed().as_secs_f64();
    let stats = pool.shutdown();
    (total, stats.cache_hits, stats.cache_misses)
}

/// The same workload, pre-pool style: every job pays PARTITION.
fn run_replanning(base: &atlas_circuit::Circuit, tenants: usize, jobs: usize) -> f64 {
    let planner = Planner::new(spec_for(N), CostModel::default(), serve_cfg());
    let t = Instant::now();
    for i in 0..tenants * jobs {
        let point = base.map_params(|_, _, p| p + 0.02 * i as f64);
        let compiled = planner.plan(&point).expect("plan");
        let run = compiled.execute(&point).expect("execute");
        assert!((run.measurements.total_norm() - 1.0).abs() < 1e-9);
    }
    t.elapsed().as_secs_f64()
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (tenants, jobs) = if quick() { (2, 2) } else { (4, 6) };
    let base = atlas_circuit::generators::qaoa(N);
    let total_jobs = tenants * jobs;

    let (pooled_secs, hits, misses) = run_pooled(&base, tenants, jobs);
    let replan_secs = run_replanning(&base, tenants, jobs);
    let hit_rate = hits as f64 / (hits + misses) as f64;

    let json = format!(
        "{{\n  \"bench\": \"multi_tenant_serve\",\n  \"host_cpus\": {host_cpus},\n  \"workers\": 1,\n  \"qubits\": {N},\n  \"shards\": {},\n  \"tenants\": {tenants},\n  \"jobs_per_tenant\": {jobs},\n  \"jobs\": {total_jobs},\n  \"pooled_total_secs\": {pooled_secs:.6},\n  \"replanning_total_secs\": {replan_secs:.6},\n  \"jobs_per_sec_pooled\": {:.3},\n  \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \"amortization_speedup\": {:.3}\n}}\n",
        spec_for(N).num_shards(N),
        total_jobs as f64 / pooled_secs,
        replan_secs / pooled_secs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_serve);

fn main() {
    benches();
    emit_json();
}
