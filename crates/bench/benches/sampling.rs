//! Sharded-measurement-engine benchmarks + the `BENCH_sampling.json`
//! emitter.
//!
//! Measures the post-execution workload family on a 24-qubit functional
//! run distributed over 8 shards (2 nodes × 2 GPUs, L = 21) — the shape
//! whose execution the parallel bench times — at 1 thread vs 8 threads:
//!
//! * **shots** — 4096 seeded inverse-CDF samples (one logical-chunk CDF
//!   pass + per-shot chunk scans);
//! * **expectation** — a diagonal (`Z…Z`) and an off-diagonal (X/Y-mixed)
//!   Pauli-string expectation, reduced per shard;
//! * **top-8** — bounded-heap top outcomes.
//!
//! None of these paths gathers or unpermutes the `2^24` state — that is
//! the point of the engine — so the JSON also records the peak extra
//! allocation the CDF needs (`2^{24-12}` chunk masses = 32 KiB).
//!
//! On a single-core CI container the speedup sits near 1.0 by
//! construction; `host_cpus` is recorded so the numbers stay
//! interpretable across hosts.

use atlas_core::config::AtlasConfig;
use atlas_core::simulate::simulate;
use atlas_machine::{CostModel, MachineSpec};
use atlas_sampler::{Measurements, PauliString, SAMPLE_CHUNK_BITS};
use criterion::{criterion_group, Criterion};
use std::time::Instant;

const N: u32 = 24;
const SHOTS: usize = 4096;

fn measurements_for(n: u32, l: u32, threads: usize) -> Measurements {
    let circuit = atlas_circuit::generators::qaoa(n);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: l,
    };
    let cfg = AtlasConfig {
        threads,
        final_unpermute: false,
        ..AtlasConfig::default()
    };
    simulate(&circuit, spec, CostModel::default(), &cfg, false)
        .expect("simulate")
        .measurements
        .expect("functional run")
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.sample_size(3)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(200));
    // A small shape keeps the criterion smoke cheap; the emitter below
    // does the paper-scale n=24 run.
    let m = measurements_for(16, 13, 1);
    let zz: PauliString = "ZZZZZZZZZZZZZZZZ".parse().unwrap();
    g.bench_function("sample_1024_n16", |b| b.iter(|| m.sample(1024, 7)));
    g.bench_function("expect_diag_n16", |b| b.iter(|| m.expectation(&zz)));
    g.finish();
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn emit_json() {
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut m = measurements_for(N, 21, host_cpus.min(8));

    let diag: PauliString = "ZZZZZZZZZZZZZZZZZZZZZZZZ".parse().unwrap();
    let mixed: PauliString = "XIZIYIXIZIYIXIZIYIXIZIYI".parse().unwrap();

    let mut t = |threads: usize| -> (f64, f64, f64, f64) {
        m.set_threads(threads);
        let shots = best_of(2, || {
            assert_eq!(m.sample(SHOTS, 7).len(), SHOTS);
        });
        let e_diag = best_of(2, || {
            m.expectation(&diag);
        });
        let e_mixed = best_of(2, || {
            m.expectation(&mixed);
        });
        let top = best_of(2, || {
            assert_eq!(m.top(8).len(), 8);
        });
        (shots, e_diag, e_mixed, top)
    };
    let (s1, d1, x1, t1) = t(1);
    let (s8, d8, x8, t8) = t(8);

    let json = format!(
        "{{\n  \"bench\": \"sharded_measurement_engine\",\n  \"qubits\": {N},\n  \"shards\": 8,\n  \"host_cpus\": {host_cpus},\n  \"shots\": {SHOTS},\n  \"cdf_chunk_bits\": {SAMPLE_CHUNK_BITS},\n  \"gathers_full_state\": false,\n  \"sample_{SHOTS}\": {{\n    \"t1_secs\": {s1:.6},\n    \"t8_secs\": {s8:.6},\n    \"speedup\": {:.3},\n    \"shots_per_sec_t1\": {:.0}\n  }},\n  \"expect_diagonal_z24\": {{\n    \"t1_secs\": {d1:.6},\n    \"t8_secs\": {d8:.6},\n    \"speedup\": {:.3}\n  }},\n  \"expect_offdiag_xyz\": {{\n    \"t1_secs\": {x1:.6},\n    \"t8_secs\": {x8:.6},\n    \"speedup\": {:.3}\n  }},\n  \"top8\": {{\n    \"t1_secs\": {t1:.6},\n    \"t8_secs\": {t8:.6},\n    \"speedup\": {:.3}\n  }}\n}}\n",
        s1 / s8,
        SHOTS as f64 / s1,
        d1 / d8,
        x1 / x8,
        t1 / t8,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sampling.json");
    std::fs::write(path, &json).expect("write BENCH_sampling.json");
    println!("\nwrote {path}:\n{json}");
}

criterion_group!(benches, bench_sampling);

fn main() {
    benches();
    emit_json();
}
