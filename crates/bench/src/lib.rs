//! # atlas-bench
//!
//! The experiment harness: every table and figure of the paper's
//! evaluation (and appendix) has a bench target that regenerates it on the
//! simulated machine. Absolute numbers come from the calibrated cost model
//! (the substrate is a simulator, not Perlmutter); the *shape* — who wins,
//! by what factor, where crossovers fall — is the reproduction target.
//! `EXPERIMENTS.md` records paper-vs-measured for each experiment.
//!
//! Grids default to a reduced-but-representative subset so `cargo bench`
//! completes in minutes; set `ATLAS_BENCH_FULL=1` for the complete paper
//! grid.

use atlas_circuit::generators::Family;
use atlas_machine::MachineSpec;
use std::io::Write as _;

/// `true` when the full paper grid was requested.
pub fn full_grid() -> bool {
    std::env::var("ATLAS_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The Fig. 5 GPU ladder: (#GPUs, machine spec, circuit qubits) with 28
/// local qubits, ≤4 GPUs per node — exactly the paper's weak-scaling
/// setup (G grows 0→8, R ≤ 2).
pub fn weak_scaling_ladder(local_qubits: u32) -> Vec<(usize, MachineSpec, u32)> {
    let gpu_counts: &[usize] = if full_grid() {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        &[1, 4, 16, 64, 256]
    };
    gpu_counts
        .iter()
        .map(|&gpus| {
            let gpus_per_node = gpus.min(4);
            let nodes = gpus / gpus_per_node;
            let spec = MachineSpec {
                nodes,
                gpus_per_node,
                local_qubits,
            };
            let n = local_qubits + (gpus.trailing_zeros());
            (gpus, spec, n)
        })
        .collect()
}

/// The benchmark families in the paper's Fig. 5 order.
pub fn families() -> [Family; 11] {
    Family::table1()
}

/// Circuit sizes for per-family sweeps (Table I columns).
pub fn size_range() -> Vec<u32> {
    if full_grid() {
        (28..=36).collect()
    } else {
        vec![28, 31, 34, 36]
    }
}

/// Writes a CSV file under `bench_results/` (created on demand) and
/// returns its path. Failures to write are reported but non-fatal — the
/// stdout tables are the primary artifact.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Option<String> {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut f = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            return None;
        }
    };
    let _ = writeln!(f, "{header}");
    for r in rows {
        let _ = writeln!(f, "{r}");
    }
    Some(path.display().to_string())
}

/// Prints a separator-heavy section header so bench output is scannable.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn ladder_shapes_match_paper() {
        let ladder = weak_scaling_ladder(28);
        let (gpus, spec, n) = ladder[ladder.len() - 1];
        assert_eq!(gpus, 256);
        assert_eq!(spec.nodes, 64);
        assert_eq!(spec.gpus_per_node, 4);
        assert_eq!(n, 36);
        let (g1, s1, n1) = ladder[0];
        assert_eq!((g1, n1), (1, 28));
        assert_eq!(s1.num_gpus(), 1);
    }
}
