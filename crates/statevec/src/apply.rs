//! Gate-application kernels over raw amplitude slices.
//!
//! The general path handles any `k`-qubit unitary via gather → dense
//! multiply → scatter (Eq. (1) of the paper generalized to `k` qubits).
//! Specialized paths cover the shapes that dominate real circuits —
//! single-qubit, diagonal, controlled, swap — mirroring what a production
//! GPU simulator specializes in its kernel zoo.
//!
//! ## Fast vs. generic forms
//!
//! Each structural kernel exists in up to three forms:
//!
//! * `apply_*_generic` — the allocation-per-call gather/multiply/scatter
//!   reference **oracle**. Never dispatches; kept in-tree so the fast
//!   paths have something to be differentially (and bitwise) tested
//!   against, and so the hotpath bench can measure the gap.
//! * `apply_*_with` — the hot form: takes a [`crate::scratch::Scratch`]
//!   arena (zero steady-state allocations) and dispatches on the layout:
//!   unrolled `k = 1`/`k = 2` kernels, a contiguous low-window path when
//!   the qubit set is `{0, …, k-1}` (the layout the kernelizer's
//!   shared-memory constraint produces — groups are contiguous
//!   `2^k`-amplitude chunks the compiler can stream), and the generic
//!   gather form with memoized offset tables otherwise.
//! * `apply_*` — convenience wrapper over `apply_*_with` using the
//!   calling thread's arena.
//!
//! Every fast path performs **the same floating-point operations in the
//! same order** as the generic oracle, so fast and generic forms produce
//! byte-identical amplitudes (pinned by `tests/hotpath_exactness.rs`) —
//! which is also what keeps serial and thread-parallel execution
//! byte-identical regardless of which form each one takes.

use crate::scratch::{self, Scratch};
use atlas_circuit::{Gate, GateKind};
use atlas_qmath::{deposit_bits, extract_bits, insert_bit, insert_bits, Complex64, Matrix};

/// Applies an arbitrary unitary `m` over `qubits` (matrix bit `t` =
/// `qubits[t]`), dispatching to the cheapest layout-matched kernel, using
/// the calling thread's scratch arena.
///
/// Complexity: `O(4^k)` complex MACs per group × `2^{n-k}` groups, i.e.
/// `2^{n+k}` MACs total.
pub fn apply_matrix(amps: &mut [Complex64], qubits: &[u32], m: &Matrix) {
    scratch::with_thread(|s| apply_matrix_with(s, amps, qubits, m));
}

/// The generic gather → dense multiply → scatter oracle for
/// [`apply_matrix`]: allocates its buffers per call and never takes a
/// specialized path. The fast forms are bitwise-tested against this.
pub fn apply_matrix_generic(amps: &mut [Complex64], qubits: &[u32], m: &Matrix) {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k, "matrix size does not match qubit count");
    let mut sorted: Vec<u32> = qubits.to_vec();
    sorted.sort_unstable();
    let groups = amps.len() >> k;
    let dim = 1usize << k;
    let mut inbuf = vec![Complex64::ZERO; dim];
    let mut outbuf = vec![Complex64::ZERO; dim];
    // Precompute the in-group offsets once: offset[x] places the matrix
    // basis index x onto the amplitude index bits.
    let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, qubits)).collect();
    for g in 0..groups as u64 {
        let base = insert_bits(g, &sorted);
        for (x, off) in offsets.iter().enumerate() {
            inbuf[x] = amps[(base | off) as usize];
        }
        m.mul_vec_into(&inbuf, &mut outbuf);
        for (x, off) in offsets.iter().enumerate() {
            amps[(base | off) as usize] = outbuf[x];
        }
    }
}

/// [`apply_matrix`] with an explicit scratch arena — the zero-allocation
/// hot form. Dispatch order: unrolled `k = 1`, unrolled `k = 2`,
/// contiguous low-window chunks, generic gather with a memoized offset
/// table. All branches are byte-identical to [`apply_matrix_generic`].
pub fn apply_matrix_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    m: &Matrix,
) {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k, "matrix size does not match qubit count");
    match k {
        1 => return apply_matrix_1q(amps, qubits[0], m),
        2 => return apply_matrix_2q(amps, qubits[0], qubits[1], m),
        _ => {}
    }
    let dim = 1usize << k;
    let (bufs, tables) = scratch.split();
    let table = tables.lookup(qubits);
    bufs.outbuf.clear();
    bufs.outbuf.resize(dim, Complex64::ZERO);
    if table.identity_order {
        // The group *is* a contiguous slice and the matrix basis order
        // matches the memory order: no gather, no offset table — a
        // straight `chunks_exact_mut` sweep the compiler can vectorize.
        for chunk in amps.chunks_exact_mut(dim) {
            m.mul_vec_into(chunk, &mut bufs.outbuf);
            chunk.copy_from_slice(&bufs.outbuf);
        }
        return;
    }
    bufs.inbuf.clear();
    bufs.inbuf.resize(dim, Complex64::ZERO);
    if table.low_window {
        // Contiguous chunks, but the matrix basis order is a permutation
        // of the memory order: gather stays chunk-local.
        for chunk in amps.chunks_exact_mut(dim) {
            for (x, &off) in table.offsets.iter().enumerate() {
                bufs.inbuf[x] = chunk[off as usize];
            }
            m.mul_vec_into(&bufs.inbuf, &mut bufs.outbuf);
            for (x, &off) in table.offsets.iter().enumerate() {
                chunk[off as usize] = bufs.outbuf[x];
            }
        }
        return;
    }
    let groups = amps.len() >> k;
    for g in 0..groups as u64 {
        let base = insert_bits(g, &table.sorted);
        for (x, off) in table.offsets.iter().enumerate() {
            bufs.inbuf[x] = amps[(base | off) as usize];
        }
        m.mul_vec_into(&bufs.inbuf, &mut bufs.outbuf);
        for (x, off) in table.offsets.iter().enumerate() {
            amps[(base | off) as usize] = bufs.outbuf[x];
        }
    }
}

/// Unrolled dense single-qubit kernel, byte-identical to the generic
/// path: each output is accumulated `ZERO → +m·a` in matrix-column order,
/// exactly like `Matrix::mul_vec_into`.
fn apply_matrix_1q(amps: &mut [Complex64], q: u32, m: &Matrix) {
    let (m00, m01) = (m[(0, 0)], m[(0, 1)]);
    let (m10, m11) = (m[(1, 0)], m[(1, 1)]);
    if q == 0 {
        for pair in amps.chunks_exact_mut(2) {
            let (a0, a1) = (pair[0], pair[1]);
            pair[0] = m01.mul_add(a1, m00.mul_add(a0, Complex64::ZERO));
            pair[1] = m11.mul_add(a1, m10.mul_add(a0, Complex64::ZERO));
        }
        return;
    }
    let stride = 1usize << q;
    let groups = (amps.len() / 2) as u64;
    for g in 0..groups {
        let i0 = insert_bit(g, q) as usize;
        let i1 = i0 | stride;
        let (a0, a1) = (amps[i0], amps[i1]);
        amps[i0] = m01.mul_add(a1, m00.mul_add(a0, Complex64::ZERO));
        amps[i1] = m11.mul_add(a1, m10.mul_add(a0, Complex64::ZERO));
    }
}

/// Unrolled dense two-qubit kernel (matrix bit 0 = `q0`, bit 1 = `q1`),
/// byte-identical to the generic path.
fn apply_matrix_2q(amps: &mut [Complex64], q0: u32, q1: u32, m: &Matrix) {
    let s0 = 1usize << q0;
    let s1 = 1usize << q1;
    let sorted = if q0 < q1 { [q0, q1] } else { [q1, q0] };
    let mut mm = [[Complex64::ZERO; 4]; 4];
    for (r, row) in mm.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = m[(r, c)];
        }
    }
    if q0 == 0 && q1 == 1 {
        // Contiguous group in memory order: no index math at all.
        for chunk in amps.chunks_exact_mut(4) {
            let a = [chunk[0], chunk[1], chunk[2], chunk[3]];
            for (r, row) in mm.iter().enumerate() {
                chunk[r] = row[3].mul_add(
                    a[3],
                    row[2].mul_add(
                        a[2],
                        row[1].mul_add(a[1], row[0].mul_add(a[0], Complex64::ZERO)),
                    ),
                );
            }
        }
        return;
    }
    let groups = (amps.len() >> 2) as u64;
    for g in 0..groups {
        let b = insert_bits(g, &sorted) as usize;
        let idx = [b, b | s0, b | s1, b | s0 | s1];
        let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (r, row) in mm.iter().enumerate() {
            amps[idx[r]] = row[3].mul_add(
                a[3],
                row[2].mul_add(
                    a[2],
                    row[1].mul_add(a[1], row[0].mul_add(a[0], Complex64::ZERO)),
                ),
            );
        }
    }
}

/// Applies a general single-qubit unitary to qubit `q`.
///
/// Complexity: one fused 2×2 multiply per amplitude pair (`2^{n-1}`
/// pairs), strided so the pair partner sits `2^q` elements away.
pub fn apply_1q(amps: &mut [Complex64], q: u32, m: &Matrix) {
    let (u00, u01, u10, u11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
    let half = amps.len() / 2;
    let stride = 1usize << q;
    for i in 0..half as u64 {
        let i0 = insert_bit(i, q) as usize;
        let i1 = i0 + stride;
        let a0 = amps[i0];
        let a1 = amps[i1];
        amps[i0] = u00.mul_add(a0, u01 * a1);
        amps[i1] = u10.mul_add(a0, u11 * a1);
    }
}

/// Applies a diagonal single-qubit gate `diag(d0, d1)` to qubit `q`.
pub fn apply_1q_diag(amps: &mut [Complex64], q: u32, d0: Complex64, d1: Complex64) {
    let bit = 1usize << q;
    let trivial0 = d0.approx_eq(Complex64::ONE, 0.0);
    for (i, a) in amps.iter_mut().enumerate() {
        if i & bit != 0 {
            *a *= d1;
        } else if !trivial0 {
            *a *= d0;
        }
    }
}

/// Applies a general diagonal gate over `qubits`: amplitude `i` is scaled by
/// `diag[extract_bits(i, qubits)]`.
///
/// Complexity: one complex multiply per amplitude, a single sequential
/// pass — memory-bandwidth bound, no gather/scatter.
pub fn apply_diag(amps: &mut [Complex64], qubits: &[u32], diag: &[Complex64]) {
    assert_eq!(diag.len(), 1 << qubits.len());
    for (i, a) in amps.iter_mut().enumerate() {
        *a *= diag[extract_bits(i as u64, qubits) as usize];
    }
}

/// Applies a single-qubit unitary `u` on `target`, controlled on all bits of
/// `control_mask` being 1.
pub fn apply_controlled_1q(amps: &mut [Complex64], control_mask: u64, target: u32, u: &Matrix) {
    let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
    let tbit = 1usize << target;
    let cmask = control_mask as usize;
    for i0 in 0..amps.len() {
        if i0 & cmask == cmask && i0 & tbit == 0 {
            let i1 = i0 | tbit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = u00.mul_add(a0, u01 * a1);
            amps[i1] = u10.mul_add(a0, u11 * a1);
        }
    }
}

/// Applies a `k`-qubit permutation-with-phases kernel over `qubits`: for
/// every group, `out[dst[x]] = phase[x] * in[x]` over the matrix basis
/// indices `x`. This is the fast path for X-like / CX-like / swap-like
/// fused kernels, replacing the dense `O(4^k)` multiply per group with an
/// `O(2^k)` gather + scaled scatter. Uses the calling thread's scratch
/// arena.
pub fn apply_permutation(amps: &mut [Complex64], qubits: &[u32], dst: &[u32], phase: &[Complex64]) {
    scratch::with_thread(|s| apply_permutation_with(s, amps, qubits, dst, phase));
}

/// The allocation-per-call reference oracle for [`apply_permutation`].
pub fn apply_permutation_generic(
    amps: &mut [Complex64],
    qubits: &[u32],
    dst: &[u32],
    phase: &[Complex64],
) {
    let k = qubits.len();
    let dim = 1usize << k;
    assert_eq!(dst.len(), dim);
    assert_eq!(phase.len(), dim);
    let mut sorted: Vec<u32> = qubits.to_vec();
    sorted.sort_unstable();
    let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, qubits)).collect();
    // out_off[x] is where basis index x lands after the permutation.
    let out_off: Vec<u64> = dst.iter().map(|&d| offsets[d as usize]).collect();
    let groups = amps.len() >> k;
    let mut inbuf = vec![Complex64::ZERO; dim];
    for g in 0..groups as u64 {
        let base = insert_bits(g, &sorted);
        for (x, off) in offsets.iter().enumerate() {
            inbuf[x] = amps[(base | off) as usize];
        }
        for (x, off) in out_off.iter().enumerate() {
            amps[(base | off) as usize] = phase[x] * inbuf[x];
        }
    }
}

/// [`apply_permutation`] with an explicit scratch arena: memoized offset
/// tables, a reusable destination-offset buffer, and a chunk-local path
/// for contiguous low-window qubit sets. Byte-identical to
/// [`apply_permutation_generic`].
pub fn apply_permutation_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    dst: &[u32],
    phase: &[Complex64],
) {
    let k = qubits.len();
    let dim = 1usize << k;
    assert_eq!(dst.len(), dim);
    assert_eq!(phase.len(), dim);
    let (bufs, tables) = scratch.split();
    let table = tables.lookup(qubits);
    bufs.inbuf.clear();
    bufs.inbuf.resize(dim, Complex64::ZERO);
    if table.low_window {
        // Gather and scaled scatter both stay inside the contiguous chunk.
        for chunk in amps.chunks_exact_mut(dim) {
            for (x, &off) in table.offsets.iter().enumerate() {
                bufs.inbuf[x] = chunk[off as usize];
            }
            for (x, &d) in dst.iter().enumerate() {
                chunk[table.offsets[d as usize] as usize] = phase[x] * bufs.inbuf[x];
            }
        }
        return;
    }
    bufs.out_off.clear();
    bufs.out_off
        .extend(dst.iter().map(|&d| table.offsets[d as usize]));
    let groups = amps.len() >> k;
    for g in 0..groups as u64 {
        let base = insert_bits(g, &table.sorted);
        for (x, off) in table.offsets.iter().enumerate() {
            bufs.inbuf[x] = amps[(base | off) as usize];
        }
        for (x, off) in bufs.out_off.iter().enumerate() {
            amps[(base | off) as usize] = phase[x] * bufs.inbuf[x];
        }
    }
}

/// Applies unitary `m` over `targets`, controlled on every qubit in
/// `controls` being 1. Groups whose control bits are not all set are
/// untouched, so the dense multiply runs on a `2^|controls|`-times smaller
/// subspace than the equivalent full `expand_to_kernel` matrix. Uses the
/// calling thread's scratch arena.
pub fn apply_controlled_matrix(
    amps: &mut [Complex64],
    controls: &[u32],
    targets: &[u32],
    m: &Matrix,
) {
    scratch::with_thread(|s| apply_controlled_matrix_with(s, amps, controls, targets, m));
}

/// The allocation-per-call reference oracle for
/// [`apply_controlled_matrix`].
pub fn apply_controlled_matrix_generic(
    amps: &mut [Complex64],
    controls: &[u32],
    targets: &[u32],
    m: &Matrix,
) {
    let kt = targets.len();
    assert_eq!(m.rows(), 1 << kt, "matrix size does not match target count");
    let cmask: u64 = controls.iter().fold(0, |acc, &c| acc | (1u64 << c));
    // Iterate the subspace directly: groups enumerate the bits outside
    // controls ∪ targets, with every control bit forced to 1.
    let mut all: Vec<u32> = controls.iter().chain(targets).copied().collect();
    all.sort_unstable();
    let dim = 1usize << kt;
    let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, targets)).collect();
    let groups = amps.len() >> all.len();
    let mut inbuf = vec![Complex64::ZERO; dim];
    let mut outbuf = vec![Complex64::ZERO; dim];
    for g in 0..groups as u64 {
        let base = insert_bits(g, &all) | cmask;
        for (x, off) in offsets.iter().enumerate() {
            inbuf[x] = amps[(base | off) as usize];
        }
        m.mul_vec_into(&inbuf, &mut outbuf);
        for (x, off) in offsets.iter().enumerate() {
            amps[(base | off) as usize] = outbuf[x];
        }
    }
}

/// [`apply_controlled_matrix`] with an explicit scratch arena (memoized
/// target-offset table, pooled qubit buffer for the control ∪ target
/// set). Byte-identical to [`apply_controlled_matrix_generic`]; the
/// subspace skip already makes this kernel cheap, so there is no further
/// layout specialization.
pub fn apply_controlled_matrix_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    controls: &[u32],
    targets: &[u32],
    m: &Matrix,
) {
    let kt = targets.len();
    assert_eq!(m.rows(), 1 << kt, "matrix size does not match target count");
    let cmask: u64 = controls.iter().fold(0, |acc, &c| acc | (1u64 << c));
    let mut all = scratch.take_qubits();
    all.extend(controls.iter().chain(targets).copied());
    all.sort_unstable();
    let dim = 1usize << kt;
    let (bufs, tables) = scratch.split();
    let table = tables.lookup(targets);
    bufs.inbuf.clear();
    bufs.inbuf.resize(dim, Complex64::ZERO);
    bufs.outbuf.clear();
    bufs.outbuf.resize(dim, Complex64::ZERO);
    let groups = amps.len() >> all.len();
    for g in 0..groups as u64 {
        let base = insert_bits(g, &all) | cmask;
        for (x, off) in table.offsets.iter().enumerate() {
            bufs.inbuf[x] = amps[(base | off) as usize];
        }
        m.mul_vec_into(&bufs.inbuf, &mut bufs.outbuf);
        for (x, off) in table.offsets.iter().enumerate() {
            amps[(base | off) as usize] = bufs.outbuf[x];
        }
    }
    scratch.put_qubits(all);
}

/// Swaps qubits `a` and `b`.
pub fn apply_swap(amps: &mut [Complex64], a: u32, b: u32) {
    let abit = 1usize << a;
    let bbit = 1usize << b;
    for i in 0..amps.len() {
        // Visit each mismatched pair once: a-bit set, b-bit clear.
        if i & abit != 0 && i & bbit == 0 {
            amps.swap(i, (i & !abit) | bbit);
        }
    }
}

/// Extracts the diagonal of a matrix if it is diagonal; `None` otherwise.
pub(crate) fn diagonal_of(m: &Matrix) -> Option<Vec<Complex64>> {
    if !m.is_diagonal(1e-14) {
        return None;
    }
    Some((0..m.rows()).map(|i| m[(i, i)]).collect())
}

/// Applies a gate, dispatching to the most specialized kernel available.
pub fn apply_gate(amps: &mut [Complex64], gate: &Gate) {
    use GateKind::*;
    let qs = gate.qubits.as_slice();
    match gate.kind {
        Swap => apply_swap(amps, qs[0], qs[1]),
        CX => apply_controlled_1q(amps, 1 << qs[0], qs[1], &X.matrix()),
        CY => apply_controlled_1q(amps, 1 << qs[0], qs[1], &Y.matrix()),
        CH => apply_controlled_1q(amps, 1 << qs[0], qs[1], &H.matrix()),
        CRX(t) => apply_controlled_1q(amps, 1 << qs[0], qs[1], &RX(t).matrix()),
        CRY(t) => apply_controlled_1q(amps, 1 << qs[0], qs[1], &RY(t).matrix()),
        CCX => apply_controlled_1q(amps, (1 << qs[0]) | (1 << qs[1]), qs[2], &X.matrix()),
        CSwap => {
            // Fredkin: swap conditioned on control — use the general path.
            apply_matrix(amps, qs, &gate.matrix());
        }
        _ => {
            let m = gate.matrix();
            if let Some(diag) = diagonal_of(&m) {
                if qs.len() == 1 {
                    apply_1q_diag(amps, qs[0], diag[0], diag[1]);
                } else {
                    apply_diag(amps, qs, &diag);
                }
            } else if qs.len() == 1 {
                apply_1q(amps, qs[0], &m);
            } else {
                apply_matrix(amps, qs, &m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use atlas_circuit::{Circuit, Gate, GateKind};

    fn run(c: &Circuit) -> StateVector {
        let mut sv = StateVector::zero_state(c.num_qubits());
        for g in c.gates() {
            apply_gate(sv.amplitudes_mut(), g);
        }
        sv
    }

    /// Applies every gate through the *generic oracle* path only.
    fn run_general(c: &Circuit) -> StateVector {
        let mut sv = StateVector::zero_state(c.num_qubits());
        for g in c.gates() {
            apply_matrix_generic(sv.amplitudes_mut(), g.qubits.as_slice(), &g.matrix());
        }
        sv
    }

    #[test]
    fn h_creates_superposition() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = run(&c);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitudes()[0].approx_eq(Complex64::real(s), 1e-12));
        assert!(sv.amplitudes()[1].approx_eq(Complex64::real(s), 1e-12));
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = run(&c);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
        assert!(sv.probability(1) < 1e-12);
        assert!(sv.probability(2) < 1e-12);
    }

    #[test]
    fn ghz_on_five_qubits() {
        let c = atlas_circuit::generators::ghz(5);
        let sv = run(&c);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(31) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn specialized_paths_match_general_path() {
        use GateKind::*;
        let kinds: Vec<(GateKind, Vec<u32>)> = vec![
            (H, vec![2]),
            (X, vec![0]),
            (Z, vec![3]),
            (T, vec![1]),
            (RZ(0.77), vec![2]),
            (P(1.3), vec![0]),
            (RX(0.4), vec![1]),
            (CX, vec![0, 3]),
            (CX, vec![3, 1]),
            (CZ, vec![1, 2]),
            (CP(0.9), vec![2, 0]),
            (CRY(1.7), vec![0, 2]),
            (CRZ(0.33), vec![3, 0]),
            (Swap, vec![0, 3]),
            (RZZ(0.5), vec![1, 3]),
            (RXX(0.8), vec![0, 2]),
            (CCX, vec![0, 2, 3]),
            (CCZ, vec![1, 2, 0]),
            (CSwap, vec![2, 0, 3]),
        ];
        // Build one circuit that layers everything, preceded by H-walls so
        // the state is dense.
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
            c.t(q);
        }
        for (k, qs) in kinds {
            c.push(Gate::new(k, &qs));
        }
        let fast = run(&c);
        let gen = run_general(&c);
        assert!(
            fast.approx_eq(&gen, 1e-10),
            "specialized dispatch diverged from general path: max diff {}",
            fast.max_abs_diff(&gen)
        );
        assert!(fast.is_normalized(1e-9));
    }

    #[test]
    fn gate_order_convention_control_is_bit0() {
        // CX with control=1, target=0 applied to |01⟩ (qubit0=1? no:
        // index 2 = qubit1 set) must flip qubit 0.
        let mut sv = StateVector::basis_state(2, 2); // qubit1 = 1
        let g = Gate::new(GateKind::CX, &[1, 0]);
        apply_gate(sv.amplitudes_mut(), &g);
        assert!((sv.probability(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_matrix_respects_qubit_order() {
        // CRY with qubits given in (control, target) order where control >
        // target: both orderings of the qubit slice must agree with the
        // controlled semantics.
        let mut a = StateVector::basis_state(2, 2); // control (q1) = 1
        let g = Gate::new(GateKind::CRY(0.9), &[1, 0]);
        apply_matrix(a.amplitudes_mut(), g.qubits.as_slice(), &g.matrix());
        // control set → rotation applied to target.
        assert!(a.probability(2) < 1.0 - 1e-6);
        let mut b = StateVector::basis_state(2, 1); // control (q1) = 0
        apply_matrix(b.amplitudes_mut(), g.qubits.as_slice(), &g.matrix());
        assert!((b.probability(1) - 1.0).abs() < 1e-12); // untouched
    }

    #[test]
    fn apply_permutation_matches_matrix_for_cx() {
        // CX over (control=q2, target=q5) as an explicit permutation:
        // basis |c t⟩ → |c, t ⊕ c⟩, i.e. 0→0, 1→3, 2→2, 3→1 with control
        // on matrix bit 0.
        let g = Gate::new(GateKind::CX, &[2, 5]);
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.h(q);
            prep.rz(0.11 * (q + 1) as f64, q);
        }
        let mut a = run(&prep);
        let mut b = a.clone();
        apply_matrix(a.amplitudes_mut(), &[2, 5], &g.matrix());
        let dst = [0u32, 3, 2, 1];
        let phase = [Complex64::ONE; 4];
        apply_permutation(b.amplitudes_mut(), &[2, 5], &dst, &phase);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn apply_controlled_matrix_matches_general_path() {
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.h(q);
            prep.t(q);
        }
        let mut a = run(&prep);
        let mut b = a.clone();
        // CCRY-style: RY(0.8) on q1, controlled on q4 and q0. Build the
        // doubly-controlled matrix by hand — identity unless bits 0 (q0)
        // and 1 (q4) of the kernel index are set — and compare against
        // the subspace-skipping controlled kernel.
        let ry = GateKind::RY(0.8).matrix();
        let mut ccry = atlas_qmath::Matrix::identity(8);
        for r in 0..2 {
            for c in 0..2 {
                ccry[(3 | (r << 2), 3 | (c << 2))] = ry[(r, c)];
            }
        }
        apply_matrix(a.amplitudes_mut(), &[0, 4, 1], &ccry);
        apply_controlled_matrix(b.amplitudes_mut(), &[0, 4], &[1], &ry);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn dispatched_apply_matrix_is_bitwise_equal_to_generic() {
        // One case per dispatch branch: unrolled k=1 (contiguous and
        // strided), unrolled k=2 (both orders), identity-order window,
        // permuted low window, and the strided generic fallback.
        let mut prep = Circuit::new(8);
        for q in 0..8 {
            prep.h(q).rz(0.13 * (q + 1) as f64, q).t(q);
        }
        let base = run(&prep);
        let cases: Vec<Vec<u32>> = vec![
            vec![0],
            vec![5],
            vec![0, 1],
            vec![1, 0],
            vec![3, 6],
            vec![0, 1, 2],
            vec![2, 0, 1],
            vec![1, 4, 7],
            vec![6, 2, 4, 0],
        ];
        for qs in cases {
            let mut kc = Circuit::new(8);
            for (i, &q) in qs.iter().enumerate() {
                kc.h(q).rz(0.3 + i as f64, q);
                if i > 0 {
                    kc.cx(qs[i - 1], q);
                }
            }
            let m = crate::fused::fuse_gates(&qs, kc.gates());
            let mut fast = base.clone();
            let mut gen = base.clone();
            apply_matrix(fast.amplitudes_mut(), &qs, &m);
            apply_matrix_generic(gen.amplitudes_mut(), &qs, &m);
            for (a, b) in fast.amplitudes().iter().zip(gen.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{qs:?}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{qs:?}");
            }
        }
    }

    #[test]
    fn norm_preserved_across_families() {
        for fam in atlas_circuit::generators::Family::table1() {
            let c = fam.generate(6);
            let sv = run(&c);
            assert!(sv.is_normalized(1e-8), "{fam:?} broke normalization");
        }
    }
}
