//! Measurement reduction kernels: probability prefix sums, partial
//! norms, signed (Pauli-diagonal) norms, and off-diagonal Pauli pair
//! sums — the per-shard building blocks of the `atlas-sampler`
//! measurement engine.
//!
//! ## Determinism contract
//!
//! Every reduction here is **chunked**: the input is cut into fixed
//! [`MEASURE_CHUNK`]-amplitude chunks, each chunk is summed serially in
//! index order, and the per-chunk partials are combined serially in chunk
//! order. The chunk boundaries depend only on the slice length — never on
//! the thread count — so each `*_parallel` twin is **bit-identical** to
//! its serial twin (the same floating-point additions in the same order,
//! mirroring the contract of [`crate::parallel`]). The chunked partials
//! are also exposed directly ([`chunk_norms`]) because they double as the
//! coarse CDF ("probability prefix sum") that inverse-transform shot
//! sampling binary-searches before scanning a single chunk.

use atlas_qmath::Complex64;

/// Fixed reduction granularity (amplitudes per chunk).
///
/// Small enough that a chunk-level CDF over a `2^28`-amplitude shard
/// stays tiny (`2^16` entries), large enough that the serial per-chunk
/// scan dominates the per-chunk bookkeeping. Changing this constant
/// changes floating-point association (and therefore last-ulp results);
/// it is deliberately a single global knob so serial and parallel paths
/// can never disagree.
pub const MEASURE_CHUNK: usize = 1 << 12;

/// Number of chunks a slice of `len` amplitudes reduces to.
#[inline]
pub fn num_chunks(len: usize) -> usize {
    len.div_ceil(MEASURE_CHUNK).max(1)
}

/// Computes per-chunk values `eval(chunk_index, chunk_slice)` for every
/// [`MEASURE_CHUNK`]-sized chunk of `amps`, on up to `threads` threads.
/// The output order (and each value, for a deterministic `eval`) is
/// independent of `threads`.
fn map_chunks<T: Send>(
    amps: &[Complex64],
    threads: usize,
    eval: &(dyn Fn(usize, &[Complex64]) -> T + Sync),
) -> Vec<T> {
    let chunks: Vec<&[Complex64]> = if amps.is_empty() {
        vec![amps]
    } else {
        amps.chunks(MEASURE_CHUNK).collect()
    };
    let n = chunks.len();
    let threads = if n < 2 { 1 } else { threads.clamp(1, n) };
    if threads == 1 {
        return chunks.iter().enumerate().map(|(i, c)| eval(i, c)).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let span = n.div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the output into disjoint per-thread windows — safe
        // parallel writes without interior mutability.
        let mut rest: &mut [Option<T>] = &mut out;
        for t in 0..threads {
            let lo = t * span;
            let hi = ((t + 1) * span).min(n);
            if lo >= hi {
                break;
            }
            let (window, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let chunks = &chunks;
            scope.spawn(move || {
                for (w, slot) in window.iter_mut().enumerate() {
                    *slot = Some(eval(lo + w, chunks[lo + w]));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("chunk computed"))
        .collect()
}

/// Per-chunk probability masses `Σ|aᵢ|²` over fixed
/// [`MEASURE_CHUNK`]-sized chunks — the coarse row of a probability
/// prefix sum (its running total is the chunk-level CDF).
pub fn chunk_norms(amps: &[Complex64]) -> Vec<f64> {
    chunk_norms_parallel(amps, 1)
}

/// Parallel twin of [`chunk_norms`]; bit-identical for every `threads`.
pub fn chunk_norms_parallel(amps: &[Complex64], threads: usize) -> Vec<f64> {
    map_chunks(amps, threads, &|_, c| {
        c.iter().map(|a| a.norm_sqr()).sum::<f64>()
    })
}

/// Partial norm `Σ|aᵢ|²` of a slice, chunk-combined in index order.
pub fn norm_sqr_slice(amps: &[Complex64]) -> f64 {
    norm_sqr_slice_parallel(amps, 1)
}

/// Parallel twin of [`norm_sqr_slice`]; bit-identical for every `threads`.
pub fn norm_sqr_slice_parallel(amps: &[Complex64], threads: usize) -> f64 {
    chunk_norms_parallel(amps, threads).iter().sum()
}

/// Sign of `(-1)^{popcount(x & mask)}` as `+1.0` / `-1.0`.
#[inline(always)]
fn sign(x: u64, mask: u64) -> f64 {
    if (x & mask).count_ones() & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Diagonal Pauli reduction over one shard:
/// `Σᵢ (-1)^{popcount((base|i) & sign_mask)} · |aᵢ|²`, where `base` is
/// the shard's global index offset. With `sign_mask = 0` this degrades to
/// the partial norm.
pub fn signed_norm(amps: &[Complex64], base: u64, sign_mask: u64) -> f64 {
    signed_norm_parallel(amps, base, sign_mask, 1)
}

/// Parallel twin of [`signed_norm`]; bit-identical for every `threads`.
pub fn signed_norm_parallel(amps: &[Complex64], base: u64, sign_mask: u64, threads: usize) -> f64 {
    map_chunks(amps, threads, &|ci, c| {
        let chunk_base = base | (ci * MEASURE_CHUNK) as u64;
        c.iter()
            .enumerate()
            .map(|(i, a)| sign(chunk_base | i as u64, sign_mask) * a.norm_sqr())
            .sum::<f64>()
    })
    .iter()
    .sum()
}

/// Off-diagonal Pauli reduction over one shard:
/// `Σᵢ conj(b[i ^ local_flip]) · (-1)^{popcount((base|i) & sign_mask)} · a[i]`
/// where `a` is the shard's amplitudes, `b` the partner shard holding the
/// flipped-index amplitudes (equal to `a` when the flip stays local), and
/// `base` the shard's global index offset.
pub fn signed_pair_sum(
    a: &[Complex64],
    b: &[Complex64],
    local_flip: usize,
    base: u64,
    sign_mask: u64,
) -> Complex64 {
    signed_pair_sum_parallel(a, b, local_flip, base, sign_mask, 1)
}

/// Parallel twin of [`signed_pair_sum`]; bit-identical for every
/// `threads`.
pub fn signed_pair_sum_parallel(
    a: &[Complex64],
    b: &[Complex64],
    local_flip: usize,
    base: u64,
    sign_mask: u64,
    threads: usize,
) -> Complex64 {
    assert_eq!(a.len(), b.len());
    // `i ^ local_flip` only stays in range on power-of-two shards, which
    // is the only shape `atlas-machine` allocates.
    assert!(a.len().is_power_of_two(), "shard length must be 2^L");
    assert!(local_flip < a.len(), "flip must stay in the shard");
    map_chunks(a, threads, &|ci, c| {
        let start = ci * MEASURE_CHUNK;
        let chunk_base = base | start as u64;
        let mut acc = Complex64::ZERO;
        for (i, &ai) in c.iter().enumerate() {
            let s = sign(chunk_base | i as u64, sign_mask);
            let partner = b[(start + i) ^ local_flip];
            acc += partner.conj() * ai * s;
        }
        acc
    })
    .iter()
    .fold(Complex64::ZERO, |acc, &v| acc + v)
}

/// A bounded top-`k` selector over `(index, probability)` outcomes.
///
/// Keeps the `k` most probable entries seen so far in a min-heap —
/// `O(log k)` per push, `O(N log k)` for a full `N`-outcome stream —
/// with a pinned total order: descending probability, ties broken by
/// ascending index. Feeding outcomes in any order yields the same final
/// set *except* for ties straddling the `k` boundary, so callers that
/// need exact tie stability feed indices in ascending order.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    /// Min-heap (via `Reverse`): the root is the current worst keeper.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<TopEntry>>,
}

/// Heap entry ordered "better = greater": higher probability wins, equal
/// probabilities prefer the smaller index.
#[derive(Clone, Debug, PartialEq)]
struct TopEntry {
    p: f64,
    idx: u64,
}

impl Eq for TopEntry {}

impl Ord for TopEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.p
            .total_cmp(&other.p)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for TopEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    /// An empty selector keeping at most `k` outcomes.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one outcome.
    pub fn push(&mut self, idx: u64, p: f64) {
        if self.k == 0 {
            return;
        }
        let entry = TopEntry { p, idx };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(entry));
        } else if self.heap.peek().is_some_and(|worst| entry > worst.0) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(entry));
        }
    }

    /// Merges another selector's keepers into this one.
    pub fn merge(&mut self, other: TopK) {
        for std::cmp::Reverse(e) in other.heap {
            self.push(e.idx, e.p);
        }
    }

    /// The kept outcomes, best first (descending probability, ascending
    /// index on ties).
    pub fn into_sorted_vec(self) -> Vec<(u64, f64)> {
        let mut v: Vec<TopEntry> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_by(|a, b| b.cmp(a));
        v.into_iter().map(|e| (e.idx, e.p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(len: usize) -> Vec<Complex64> {
        (0..len)
            .map(|i| Complex64::new(0.01 * i as f64, -0.003 * i as f64))
            .collect()
    }

    #[test]
    fn parallel_reductions_are_bit_identical() {
        // Longer than one chunk so the parallel split is real.
        let amps = ramp(MEASURE_CHUNK * 3 + 17);
        for threads in [2usize, 5, 8] {
            assert_eq!(
                norm_sqr_slice(&amps).to_bits(),
                norm_sqr_slice_parallel(&amps, threads).to_bits()
            );
            assert_eq!(
                chunk_norms(&amps)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                chunk_norms_parallel(&amps, threads)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            let (s1, s2) = (
                signed_norm(&amps, 1 << 20, 0b1011),
                signed_norm_parallel(&amps, 1 << 20, 0b1011, threads),
            );
            assert_eq!(s1.to_bits(), s2.to_bits());
            // Pair sums require a power-of-two (shard-shaped) slice.
            let pow2 = ramp(MEASURE_CHUNK * 4);
            let b = ramp(pow2.len());
            let (p1, p2) = (
                signed_pair_sum(&pow2, &b, 3, 0, 0b110),
                signed_pair_sum_parallel(&pow2, &b, 3, 0, 0b110, threads),
            );
            assert_eq!(p1.re.to_bits(), p2.re.to_bits());
            assert_eq!(p1.im.to_bits(), p2.im.to_bits());
        }
    }

    #[test]
    fn chunk_norms_sum_to_norm() {
        let amps = ramp(MEASURE_CHUNK + 100);
        let direct: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        let chunked: f64 = chunk_norms(&amps).iter().sum();
        assert!((direct - chunked).abs() < 1e-9);
        assert_eq!(chunk_norms(&amps).len(), 2);
    }

    #[test]
    fn signed_norm_flips_sign_on_masked_bits() {
        // Two amplitudes: |0⟩ weight 0.25, |1⟩ weight 0.75.
        let amps = vec![Complex64::real(0.5), Complex64::real(0.75f64.sqrt())];
        // Z on bit 0: 0.25 - 0.75 = -0.5.
        assert!((signed_norm(&amps, 0, 1) + 0.5).abs() < 1e-12);
        // Base offset with a masked high bit flips everything.
        assert!((signed_norm(&amps, 0b100, 0b100) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_sum_matches_manual_x_expectation() {
        // |ψ⟩ = α|0⟩ + β|1⟩ ; ⟨X⟩ = 2·Re(α* β).
        let (alpha, beta) = (Complex64::new(0.6, 0.1), Complex64::new(0.2, -0.7));
        let amps = vec![alpha, beta];
        let got = signed_pair_sum(&amps, &amps, 1, 0, 0);
        let want = alpha.conj() * beta + beta.conj() * alpha;
        assert!((got - want).norm() < 1e-12);
    }

    #[test]
    fn topk_orders_and_breaks_ties_by_index() {
        let mut t = TopK::new(3);
        // Feed out of order, with a tie at p = 0.2 and more entries than k.
        for (idx, p) in [(5u64, 0.2), (1, 0.5), (9, 0.2), (2, 0.05), (0, 0.2)] {
            t.push(idx, p);
        }
        // Keepers: 0.5@1, then the tie 0.2 kept at the two smallest
        // indices (0 and 5), 9 evicted, 0.05 never admitted.
        assert_eq!(t.into_sorted_vec(), vec![(1, 0.5), (0, 0.2), (5, 0.2)]);
    }

    #[test]
    fn topk_merge_equals_single_stream() {
        let outcomes: Vec<(u64, f64)> = (0..100u64).map(|i| (i, ((i * 37) % 101) as f64)).collect();
        let mut whole = TopK::new(7);
        for &(i, p) in &outcomes {
            whole.push(i, p);
        }
        let mut left = TopK::new(7);
        let mut right = TopK::new(7);
        for &(i, p) in &outcomes[..50] {
            left.push(i, p);
        }
        for &(i, p) in &outcomes[50..] {
            right.push(i, p);
        }
        left.merge(right);
        assert_eq!(whole.into_sorted_vec(), left.into_sorted_vec());
    }
}
