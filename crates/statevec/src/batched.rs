//! Shared-memory-style batched execution.
//!
//! Atlas shared-memory kernels (§VI-B, approach 2) load a micro-batch of
//! amplitudes into GPU shared memory, apply the kernel's gates one by one
//! inside the fast memory, and write the batch back. The CPU analogue loads
//! the batch into a small stack-local buffer (which lives in L1/L2), giving
//! the same memory-traffic structure: one read + one write of the state
//! per *kernel* instead of per *gate*.
//!
//! The paper (and HyQuas) require the three least significant qubits of the
//! state vector to be active in every shared-memory kernel so each load
//! moves at least 8 contiguous amplitudes (128 bytes); the same constraint
//! is enforced by the kernelizer's cost model and validated here.

use atlas_circuit::Gate;
use atlas_qmath::{deposit_bits, insert_bits, Complex64};

use crate::apply::apply_gate;

/// Applies `gates` to the amplitude slice by batching over `active_qubits`.
///
/// Every gate's qubits must lie inside `active_qubits`. The slice length
/// must be `2^n` with `n ≥ |active_qubits|`.
///
/// Complexity: one read + one write of the full state per **kernel**
/// (2 × 2^n amplitude moves) plus the per-gate work inside the
/// `2^b`-element buffer — versus one read + write per **gate** on the
/// unbatched path, which is the entire point of shared-memory grouping.
///
/// # Panics
/// If a gate touches a qubit outside the active set.
pub fn apply_batched(amps: &mut [Complex64], active_qubits: &[u32], gates: &[Gate]) {
    let b = active_qubits.len();
    let mut sorted: Vec<u32> = active_qubits.to_vec();
    sorted.sort_unstable();

    // Remap every gate onto batch-local qubit positions 0..b.
    let remapped: Vec<Gate> = gates
        .iter()
        .map(|g| {
            let local: Vec<u32> = g
                .qubits
                .iter()
                .map(|q| {
                    sorted
                        .iter()
                        .position(|&aq| aq == q)
                        .unwrap_or_else(|| panic!("gate qubit {q} outside active set"))
                        as u32
                })
                .collect();
            Gate::new(g.kind, &local)
        })
        .collect();

    let dim = 1usize << b;
    let groups = amps.len() >> b;
    let mut buf = vec![Complex64::ZERO; dim];
    let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, &sorted)).collect();
    for g in 0..groups as u64 {
        let base = insert_bits(g, &sorted);
        // Load the micro-batch ("shared memory" fill).
        for (x, off) in offsets.iter().enumerate() {
            buf[x] = amps[(base | off) as usize];
        }
        // Apply every gate inside the fast buffer.
        for gate in &remapped {
            apply_gate(&mut buf, gate);
        }
        // Write back.
        for (x, off) in offsets.iter().enumerate() {
            amps[(base | off) as usize] = buf[x];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use atlas_circuit::Circuit;

    #[test]
    fn batched_matches_sequential() {
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.h(q).rz(0.1 * (q + 1) as f64, q);
        }
        let mut kernel = Circuit::new(6);
        kernel.cx(1, 4).t(4).cp(0.9, 5, 1).h(5).cz(4, 5);

        let mut sv_a = StateVector::zero_state(6);
        for g in prep.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        let mut sv_b = sv_a.clone();

        for g in kernel.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        apply_batched(sv_b.amplitudes_mut(), &[1, 4, 5], kernel.gates());

        assert!(
            sv_a.approx_eq(&sv_b, 1e-10),
            "batched diverged: {}",
            sv_a.max_abs_diff(&sv_b)
        );
    }

    #[test]
    fn batched_with_full_active_set_is_plain_application() {
        let mut kernel = Circuit::new(3);
        kernel.h(0).cx(0, 1).cx(1, 2);
        let mut sv_a = StateVector::zero_state(3);
        for g in kernel.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        let mut sv_b = StateVector::zero_state(3);
        apply_batched(sv_b.amplitudes_mut(), &[0, 1, 2], kernel.gates());
        assert!(sv_a.approx_eq(&sv_b, 1e-12));
    }

    #[test]
    #[should_panic(expected = "outside active set")]
    fn gate_outside_active_set_panics() {
        let mut kernel = Circuit::new(4);
        kernel.cx(0, 3);
        let mut sv = StateVector::zero_state(4);
        apply_batched(sv.amplitudes_mut(), &[0, 1], kernel.gates());
    }

    #[test]
    fn active_order_does_not_matter() {
        let mut kernel = Circuit::new(5);
        kernel.h(2).cx(2, 4).rz(0.5, 4);
        let mut a = StateVector::basis_state(5, 7);
        let mut b = a.clone();
        apply_batched(a.amplitudes_mut(), &[2, 4, 0], kernel.gates());
        apply_batched(b.amplitudes_mut(), &[0, 4, 2], kernel.gates());
        assert!(a.approx_eq(&b, 1e-12));
    }
}
