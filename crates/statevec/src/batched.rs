//! Shared-memory-style batched execution.
//!
//! Atlas shared-memory kernels (§VI-B, approach 2) load a micro-batch of
//! amplitudes into GPU shared memory, apply the kernel's gates one by one
//! inside the fast memory, and write the batch back. The CPU analogue loads
//! the batch into a small stack-local buffer (which lives in L1/L2), giving
//! the same memory-traffic structure: one read + one write of the state
//! per *kernel* instead of per *gate*.
//!
//! The paper (and HyQuas) require the three least significant qubits of the
//! state vector to be active in every shared-memory kernel so each load
//! moves at least 8 contiguous amplitudes (128 bytes); the same constraint
//! is enforced by the kernelizer's cost model and validated here.
//!
//! The gate list is compiled **once per call** before the group sweep:
//! qubit remapping uses an O(1) position lookup (not a per-qubit linear
//! scan), and each gate's dispatch decision and unitary are resolved into
//! a private `CompiledGate` up front, so the per-group loop applies gates
//! with no allocation and no re-dispatch — previously `Gate::matrix()`
//! was rebuilt inside the group loop for every non-specialized gate.

use atlas_circuit::{Gate, GateKind};
use atlas_qmath::{insert_bits, Complex64, Matrix};

use crate::apply::{
    apply_1q, apply_1q_diag, apply_controlled_1q, apply_diag, apply_matrix_with, apply_swap,
    diagonal_of,
};
use crate::scratch::{self, Scratch};

/// A gate resolved to its batch-local kernel form: dispatch decided and
/// unitary built once, before the group sweep.
enum CompiledGate {
    /// Qubit swap.
    Swap(u32, u32),
    /// Single-qubit unitary on `q`, controlled on all bits of `mask`.
    Ctrl1 { mask: u64, t: u32, m: Matrix },
    /// Diagonal single-qubit gate.
    Diag1 {
        q: u32,
        d0: Complex64,
        d1: Complex64,
    },
    /// General diagonal gate.
    Diag { qs: Vec<u32>, diag: Vec<Complex64> },
    /// Dense single-qubit unitary.
    OneQ { q: u32, m: Matrix },
    /// Dense multi-qubit unitary.
    Dense { qs: Vec<u32>, m: Matrix },
}

impl CompiledGate {
    /// Mirrors [`crate::apply::apply_gate`]'s dispatch exactly, so batched
    /// execution computes the same floating-point operations as applying
    /// the remapped gates one by one.
    fn new(kind: GateKind, qs: &[u32]) -> Self {
        use GateKind::*;
        match kind {
            Swap => CompiledGate::Swap(qs[0], qs[1]),
            CX => CompiledGate::ctrl1(1 << qs[0], qs[1], X),
            CY => CompiledGate::ctrl1(1 << qs[0], qs[1], Y),
            CH => CompiledGate::ctrl1(1 << qs[0], qs[1], H),
            CRX(t) => CompiledGate::ctrl1(1 << qs[0], qs[1], RX(t)),
            CRY(t) => CompiledGate::ctrl1(1 << qs[0], qs[1], RY(t)),
            CCX => CompiledGate::ctrl1((1 << qs[0]) | (1 << qs[1]), qs[2], X),
            CSwap => CompiledGate::Dense {
                qs: qs.to_vec(),
                m: kind.matrix(),
            },
            _ => {
                let m = kind.matrix();
                if let Some(diag) = diagonal_of(&m) {
                    if qs.len() == 1 {
                        CompiledGate::Diag1 {
                            q: qs[0],
                            d0: diag[0],
                            d1: diag[1],
                        }
                    } else {
                        CompiledGate::Diag {
                            qs: qs.to_vec(),
                            diag,
                        }
                    }
                } else if qs.len() == 1 {
                    CompiledGate::OneQ { q: qs[0], m }
                } else {
                    CompiledGate::Dense { qs: qs.to_vec(), m }
                }
            }
        }
    }

    fn ctrl1(mask: u64, t: u32, kind: GateKind) -> Self {
        CompiledGate::Ctrl1 {
            mask,
            t,
            m: kind.matrix(),
        }
    }

    /// Applies the compiled gate to the batch buffer.
    fn apply(&self, buf: &mut [Complex64], scratch: &mut Scratch) {
        match self {
            CompiledGate::Swap(a, b) => apply_swap(buf, *a, *b),
            CompiledGate::Ctrl1 { mask, t, m } => apply_controlled_1q(buf, *mask, *t, m),
            CompiledGate::Diag1 { q, d0, d1 } => apply_1q_diag(buf, *q, *d0, *d1),
            CompiledGate::Diag { qs, diag } => apply_diag(buf, qs, diag),
            CompiledGate::OneQ { q, m } => apply_1q(buf, *q, m),
            CompiledGate::Dense { qs, m } => apply_matrix_with(scratch, buf, qs, m),
        }
    }
}

/// Applies `gates` to the amplitude slice by batching over `active_qubits`,
/// using the calling thread's scratch arena.
///
/// Every gate's qubits must lie inside `active_qubits`. The slice length
/// must be `2^n` with `n ≥ |active_qubits|`.
///
/// Complexity: one read + one write of the full state per **kernel**
/// (2 × 2^n amplitude moves) plus the per-gate work inside the
/// `2^b`-element buffer — versus one read + write per **gate** on the
/// unbatched path, which is the entire point of shared-memory grouping.
///
/// # Panics
/// If a gate touches a qubit outside the active set.
pub fn apply_batched(amps: &mut [Complex64], active_qubits: &[u32], gates: &[Gate]) {
    scratch::with_thread(|s| apply_batched_with(s, amps, active_qubits, gates));
}

/// [`apply_batched`] with an explicit scratch arena. The batch buffer and
/// offset table come from the arena's pools (the gate compilation itself
/// builds its unitaries fresh — that is once per *kernel*, not per group).
pub fn apply_batched_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    active_qubits: &[u32],
    gates: &[Gate],
) {
    let b = active_qubits.len();
    let mut sorted = scratch.take_qubits();
    sorted.extend_from_slice(active_qubits);
    sorted.sort_unstable();

    // O(1) qubit → batch position lookup (qubit ids are < 64 by the
    // `u64` index-space invariant), replacing the old O(b) scan per qubit.
    let mut pos = [u32::MAX; 64];
    for (t, &q) in sorted.iter().enumerate() {
        pos[q as usize] = t as u32;
    }
    let remap = |q: u32| -> u32 {
        let p = pos.get(q as usize).copied().unwrap_or(u32::MAX);
        if p == u32::MAX {
            panic!("gate qubit {q} outside active set");
        }
        p
    };

    // Compile every gate onto batch-local positions, resolving dispatch
    // and unitaries once — hoisted out of the per-group loop.
    let compiled: Vec<CompiledGate> = gates
        .iter()
        .map(|g| {
            // Sized to `Qubits`' maximum arity (4), not the current gate
            // alphabet's (3), so a wider future gate remaps instead of
            // indexing out of bounds.
            let mut local = [0u32; 4];
            for (t, q) in g.qubits.iter().enumerate() {
                local[t] = remap(q);
            }
            CompiledGate::new(g.kind, &local[..g.qubits.len()])
        })
        .collect();

    let dim = 1usize << b;
    let groups = amps.len() >> b;
    let mut buf = scratch.take_amps();
    buf.resize(dim, Complex64::ZERO);
    let mut offsets = scratch.take_offsets();
    {
        let (_, tables) = scratch.split();
        offsets.extend_from_slice(&tables.lookup(&sorted).offsets);
    }
    for g in 0..groups as u64 {
        let base = insert_bits(g, &sorted);
        // Load the micro-batch ("shared memory" fill).
        for (x, off) in offsets.iter().enumerate() {
            buf[x] = amps[(base | off) as usize];
        }
        // Apply every gate inside the fast buffer.
        for gate in &compiled {
            gate.apply(&mut buf, scratch);
        }
        // Write back.
        for (x, off) in offsets.iter().enumerate() {
            amps[(base | off) as usize] = buf[x];
        }
    }
    scratch.put_offsets(offsets);
    scratch.put_amps(buf);
    scratch.put_qubits(sorted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_gate;
    use crate::state::StateVector;
    use atlas_circuit::Circuit;
    use atlas_qmath::deposit_bits;

    #[test]
    fn batched_matches_sequential() {
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.h(q).rz(0.1 * (q + 1) as f64, q);
        }
        let mut kernel = Circuit::new(6);
        kernel.cx(1, 4).t(4).cp(0.9, 5, 1).h(5).cz(4, 5);

        let mut sv_a = StateVector::zero_state(6);
        for g in prep.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        let mut sv_b = sv_a.clone();

        for g in kernel.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        apply_batched(sv_b.amplitudes_mut(), &[1, 4, 5], kernel.gates());

        assert!(
            sv_a.approx_eq(&sv_b, 1e-10),
            "batched diverged: {}",
            sv_a.max_abs_diff(&sv_b)
        );
    }

    /// The hand-rolled reference: gather the batch, apply the remapped
    /// gates through `apply_gate`, scatter — what `apply_batched` did
    /// before gate compilation was hoisted. The compiled path must match
    /// it **bitwise** (same kernels, same unitaries, same order).
    fn batched_reference(amps: &mut [Complex64], active: &[u32], gates: &[Gate]) {
        let b = active.len();
        let mut sorted: Vec<u32> = active.to_vec();
        sorted.sort_unstable();
        let remapped: Vec<Gate> = gates
            .iter()
            .map(|g| {
                let local: Vec<u32> = g
                    .qubits
                    .iter()
                    .map(|q| sorted.iter().position(|&aq| aq == q).unwrap() as u32)
                    .collect();
                Gate::new(g.kind, &local)
            })
            .collect();
        let dim = 1usize << b;
        let mut buf = vec![Complex64::ZERO; dim];
        let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, &sorted)).collect();
        for g in 0..(amps.len() >> b) as u64 {
            let base = insert_bits(g, &sorted);
            for (x, off) in offsets.iter().enumerate() {
                buf[x] = amps[(base | off) as usize];
            }
            for gate in &remapped {
                apply_gate(&mut buf, gate);
            }
            for (x, off) in offsets.iter().enumerate() {
                amps[(base | off) as usize] = buf[x];
            }
        }
    }

    #[test]
    fn compiled_gates_are_bitwise_equal_to_per_group_dispatch() {
        let mut prep = Circuit::new(6);
        for q in 0..6 {
            prep.h(q).rz(0.17 * (q + 1) as f64, q).t(q);
        }
        let mut kernel = Circuit::new(6);
        kernel
            .cx(1, 4)
            .t(4)
            .cp(0.9, 5, 1)
            .h(5)
            .swap(1, 5)
            .rx(0.4, 4)
            .cz(4, 5);
        let mut a = StateVector::zero_state(6);
        for g in prep.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        let mut b = a.clone();
        apply_batched(a.amplitudes_mut(), &[1, 4, 5], kernel.gates());
        batched_reference(b.amplitudes_mut(), &[1, 4, 5], kernel.gates());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn batched_with_full_active_set_is_plain_application() {
        let mut kernel = Circuit::new(3);
        kernel.h(0).cx(0, 1).cx(1, 2);
        let mut sv_a = StateVector::zero_state(3);
        for g in kernel.gates() {
            apply_gate(sv_a.amplitudes_mut(), g);
        }
        let mut sv_b = StateVector::zero_state(3);
        apply_batched(sv_b.amplitudes_mut(), &[0, 1, 2], kernel.gates());
        assert!(sv_a.approx_eq(&sv_b, 1e-12));
    }

    #[test]
    #[should_panic(expected = "gate qubit 3 outside active set")]
    fn gate_outside_active_set_panics_naming_the_qubit() {
        let mut kernel = Circuit::new(4);
        kernel.cx(0, 3);
        let mut sv = StateVector::zero_state(4);
        apply_batched(sv.amplitudes_mut(), &[0, 1], kernel.gates());
    }

    #[test]
    fn active_order_does_not_matter() {
        let mut kernel = Circuit::new(5);
        kernel.h(2).cx(2, 4).rz(0.5, 4);
        let mut a = StateVector::basis_state(5, 7);
        let mut b = a.clone();
        apply_batched(a.amplitudes_mut(), &[2, 4, 0], kernel.gates());
        apply_batched(b.amplitudes_mut(), &[0, 4, 2], kernel.gates());
        assert!(a.approx_eq(&b, 1e-12));
    }
}
