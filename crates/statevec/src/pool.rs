//! A persistent scoped worker pool for shard-parallel execution.
//!
//! The executor in `atlas-core` runs every simulated GPU's shard kernels
//! concurrently. Spawning OS threads per stage would cost ~10–50 µs per
//! spawn × shards × stages, so the pool spawns its workers **once** per
//! `EXECUTE` call (inside [`with_pool`]) and keeps them parked on a
//! condition variable between stages; each [`Pool::run`] call is a
//! dispatch + barrier, which is exactly the bulk-synchronous shape of
//! Algorithm 1 — the all-to-all reshuffle between stages runs on the
//! submitting thread while the workers are parked, acting as the stage
//! barrier.
//!
//! No dependencies beyond `std`: the registry is offline, so this is a
//! deliberately small `Mutex` + `Condvar` work queue rather than a rayon
//! import. Work items are indices `0..count` claimed atomically under the
//! lock; the closure reference is type-erased to a raw pointer that is
//! only dereferenced while the submitting `run` call blocks, which keeps
//! the lifetime sound.
//!
//! Worker persistence is also what makes the per-thread
//! [`crate::scratch`] arenas effective: each worker's arena (gather
//! buffers, memoized offset tables) is populated during the first stage
//! it executes and reused for every later `run` barrier of the same
//! `with_pool` scope, so steady-state kernel execution allocates nothing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Type-erased pointer to the job closure of the in-flight [`Pool::run`]
/// call. Valid only while that call blocks; never stored past completion.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-call-safe) and outlives every
// dereference because `Pool::run` blocks until the job is cleared.
unsafe impl Send for JobPtr {}

/// Queue state guarded by [`Shared::slot`].
struct JobSlot {
    /// The active job, if any.
    job: Option<JobPtr>,
    /// Next unclaimed item index.
    next: usize,
    /// Total item count of the active job.
    count: usize,
    /// Items currently executing on workers.
    in_flight: usize,
    /// First panic payload caught on a worker; re-raised by `run` so the
    /// original assertion message and location survive.
    panic_payload: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// Set by [`with_pool`] on exit; workers return.
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    /// Signals workers that a job arrived (or shutdown).
    work: Condvar,
    /// Signals the submitter that the active job completed.
    done: Condvar,
}

/// Handle to the worker pool, passed to the body of [`with_pool`].
///
/// A pool created with `threads == 1` has no workers: [`Pool::run`]
/// executes items inline on the calling thread, so serial and parallel
/// callers share one code path.
pub struct Pool<'a> {
    shared: Option<&'a Shared>,
    threads: usize,
}

impl Pool<'_> {
    /// A pool with no workers: `run` executes inline. Useful as a default
    /// argument for APIs that accept a pool.
    pub const SERIAL: Pool<'static> = Pool {
        shared: None,
        threads: 1,
    };

    /// A workerless pool advertising a thread budget: `run` executes
    /// inline, but [`Pool::threads`] reports `threads` so callers that
    /// parallelize *inside* items (intra-shard kernels) know their
    /// budget. Used when there are fewer independent items than threads —
    /// spawning parked workers would only waste a thread per core.
    pub const fn inline(threads: usize) -> Pool<'static> {
        Pool {
            shared: None,
            threads: if threads == 0 { 1 } else { threads },
        }
    }

    /// Number of threads available to this pool (1 for the serial pool).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i` in `0..count` and blocks until all items
    /// complete (a barrier). Items run concurrently on the pool's workers;
    /// with the serial pool they run in index order on the caller.
    ///
    /// Panics in `f` are caught on the worker, the remaining items still
    /// drain, and the panic is re-raised here on the submitting thread.
    pub fn run(&self, count: usize, f: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = self.shared else {
            for i in 0..count {
                f(i);
            }
            return;
        };
        if count == 0 {
            return;
        }
        let mut slot = shared.slot.lock().unwrap();
        // Hard assert: a second submission while a job is live would
        // overwrite the pointer workers are dereferencing. One branch per
        // `run` call, so there is no reason to make it debug-only.
        assert!(
            slot.job.is_none(),
            "nested or concurrent Pool::run is not supported"
        );
        // SAFETY: we erase the closure's lifetime to park it in the shared
        // slot; the wait loop below does not return until every worker is
        // done with it and the slot is cleared.
        slot.job = Some(JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        }));
        slot.next = 0;
        slot.count = count;
        slot.panic_payload = None;
        shared.work.notify_all();
        while slot.job.is_some() {
            slot = shared.done.wait(slot).unwrap();
        }
        if let Some(payload) = slot.panic_payload.take() {
            drop(slot);
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker(shared: &Shared) {
    let mut slot = shared.slot.lock().unwrap();
    loop {
        if slot.shutdown {
            return;
        }
        match slot.job {
            Some(job) if slot.next < slot.count => {
                let i = slot.next;
                slot.next += 1;
                slot.in_flight += 1;
                drop(slot);
                // SAFETY: the submitter blocks in `run` until this job is
                // cleared, so the closure pointer is live.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(i) }));
                slot = shared.slot.lock().unwrap();
                slot.in_flight -= 1;
                if let Err(payload) = result {
                    // Keep the first payload; later ones are dropped.
                    slot.panic_payload.get_or_insert(payload);
                }
                if slot.next >= slot.count && slot.in_flight == 0 {
                    slot.job = None;
                    shared.done.notify_all();
                }
            }
            _ => slot = shared.work.wait(slot).unwrap(),
        }
    }
}

/// Spawns `threads` scoped workers, runs `body` with a [`Pool`] handle,
/// then shuts the workers down. With `threads <= 1` no threads are
/// spawned and the body gets the inline serial pool.
///
/// The workers persist for the whole body — across every `Pool::run`
/// barrier — which is what makes per-stage dispatch cheap.
pub fn with_pool<R>(threads: usize, body: impl FnOnce(&Pool) -> R) -> R {
    let threads = threads.max(1);
    if threads == 1 {
        return body(&Pool::SERIAL);
    }
    let shared = Shared {
        slot: Mutex::new(JobSlot {
            job: None,
            next: 0,
            count: 0,
            in_flight: 0,
            panic_payload: None,
            shutdown: false,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
    };
    /// Signals shutdown on drop, so workers are released even when the
    /// body unwinds (e.g. a re-raised job panic) — `thread::scope` joins
    /// every worker before returning, and without this the join would
    /// wait forever on parked workers.
    struct ShutdownGuard<'a>(&'a Shared);
    impl Drop for ShutdownGuard<'_> {
        fn drop(&mut self) {
            self.0
                .slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .shutdown = true;
            self.0.work.notify_all();
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(&shared));
        }
        let _guard = ShutdownGuard(&shared);
        body(&Pool {
            shared: Some(&shared),
            threads,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let order = Mutex::new(Vec::new());
        Pool::SERIAL.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_runs_every_item_exactly_once() {
        let hits = [const { AtomicUsize::new(0) }; 64];
        with_pool(4, |pool| {
            pool.run(64, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_persists_across_barriers() {
        let total = AtomicUsize::new(0);
        with_pool(3, |pool| {
            for _ in 0..10 {
                pool.run(7, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                // Barrier: every item of the previous round is complete.
                assert_eq!(total.load(Ordering::Relaxed) % 7, 0);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 70);
    }

    #[test]
    fn empty_job_returns_immediately() {
        with_pool(2, |pool| pool.run(0, &|_| unreachable!()));
    }

    // The original payload must survive the worker → submitter hand-off.
    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_to_submitter() {
        with_pool(2, |pool| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        });
    }
}
