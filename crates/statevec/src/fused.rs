//! Gate fusion: combining a kernel's gate list into one dense unitary.
//!
//! Atlas fusion kernels (§VI-B, approach 1) pre-multiply the gate matrices
//! of a kernel into a single `2^k × 2^k` unitary and apply it in one pass —
//! the same thing cuQuantum's apply-matrix does on a real GPU.

use atlas_circuit::Gate;
use atlas_qmath::{extract_bits, Matrix};

/// Embeds a gate unitary `m` (over `gate_qubits`, matrix bit `t` =
/// `gate_qubits[t]`) into the space of `kernel_qubits` (kernel bit `t` =
/// `kernel_qubits[t]`). Every gate qubit must appear in the kernel set.
pub fn expand_to_kernel(kernel_qubits: &[u32], gate_qubits: &[u32], m: &Matrix) -> Matrix {
    let kk = kernel_qubits.len();
    let kg = gate_qubits.len();
    assert_eq!(m.rows(), 1 << kg);
    // Position of each gate qubit inside the kernel index.
    let pos: Vec<u32> = gate_qubits
        .iter()
        .map(|q| {
            kernel_qubits
                .iter()
                .position(|kq| kq == q)
                .expect("gate qubit not in kernel") as u32
        })
        .collect();
    let dim = 1usize << kk;
    let mut out = Matrix::zeros(dim, dim);
    let gate_mask: u64 = pos.iter().fold(0, |acc, &p| acc | (1u64 << p));
    for row in 0..dim as u64 {
        let r_sub = extract_bits(row, &pos) as usize;
        let fixed = row & !gate_mask;
        for c_sub in 0..1u64 << kg {
            // Scatter c_sub back onto the gate bit positions.
            let mut col = fixed;
            for (t, &p) in pos.iter().enumerate() {
                col |= ((c_sub >> t) & 1) << p;
            }
            out[(row as usize, col as usize)] = m[(r_sub, c_sub as usize)];
        }
    }
    out
}

/// Multiplies the gates of a kernel (in program order) into a single
/// unitary over `kernel_qubits`. Applying the result is equivalent to
/// applying the gates in sequence.
pub fn fuse_gates(kernel_qubits: &[u32], gates: &[Gate]) -> Matrix {
    let mut acc = Matrix::identity(1 << kernel_qubits.len());
    for g in gates {
        let expanded = expand_to_kernel(kernel_qubits, g.qubits.as_slice(), &g.matrix());
        acc = &expanded * &acc;
    }
    acc
}

/// Fuses pre-expanded/reduced unitaries (already paired with their qubit
/// lists) — used by the executor when insular specialization has replaced
/// gates with reduced matrices.
pub fn fuse_matrices(kernel_qubits: &[u32], parts: &[(Vec<u32>, Matrix)]) -> Matrix {
    let mut acc = Matrix::identity(1 << kernel_qubits.len());
    for (qs, m) in parts {
        let expanded = expand_to_kernel(kernel_qubits, qs, m);
        acc = &expanded * &acc;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_gate, apply_matrix};
    use crate::state::StateVector;
    use atlas_circuit::{Circuit, GateKind};

    #[test]
    fn expand_identity_gate() {
        let id = Matrix::identity(2);
        let big = expand_to_kernel(&[4, 7, 9], &[7], &id);
        assert!(big.approx_eq(&Matrix::identity(8), 1e-12));
    }

    #[test]
    fn expanded_gate_is_unitary() {
        let m = GateKind::CRY(0.7).matrix();
        let big = expand_to_kernel(&[1, 3, 5, 8], &[5, 1], &m);
        assert!(big.is_unitary(1e-9));
    }

    #[test]
    fn fused_application_matches_sequential() {
        // A 3-qubit kernel from a realistic gate mix.
        let mut c = Circuit::new(5);
        c.h(1)
            .cx(1, 3)
            .t(3)
            .cp(0.8, 4, 1)
            .h(4)
            .swap(1, 4)
            .rz(0.3, 3);
        let kernel_qubits = [1u32, 3, 4];
        let fused = fuse_gates(&kernel_qubits, c.gates());
        assert!(fused.is_unitary(1e-9));

        // Dense random-ish state.
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q).t(q).rx(0.3 + q as f64, q);
        }
        let mut sv_seq = StateVector::zero_state(5);
        for g in prep.gates() {
            apply_gate(sv_seq.amplitudes_mut(), g);
        }
        let mut sv_fused = sv_seq.clone();

        for g in c.gates() {
            apply_gate(sv_seq.amplitudes_mut(), g);
        }
        apply_matrix(sv_fused.amplitudes_mut(), &kernel_qubits, &fused);

        assert!(
            sv_seq.approx_eq(&sv_fused, 1e-9),
            "fused vs sequential max diff = {}",
            sv_seq.max_abs_diff(&sv_fused)
        );
    }

    #[test]
    fn fuse_matrices_matches_fuse_gates() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 2).cp(0.4, 2, 0);
        let kq = [0u32, 2];
        let a = fuse_gates(&kq, c.gates());
        let parts: Vec<(Vec<u32>, Matrix)> = c
            .gates()
            .iter()
            .map(|g| (g.qubits.as_slice().to_vec(), g.matrix()))
            .collect();
        let b = fuse_matrices(&kq, &parts);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    #[should_panic(expected = "not in kernel")]
    fn gate_outside_kernel_panics() {
        let m = GateKind::H.matrix();
        let _ = expand_to_kernel(&[0, 1], &[2], &m);
    }
}
