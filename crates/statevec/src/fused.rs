//! Gate fusion: combining a kernel's gate list into one dense unitary.
//!
//! Atlas fusion kernels (§VI-B, approach 1) pre-multiply the gate matrices
//! of a kernel into a single `2^k × 2^k` unitary and apply it in one pass —
//! the same thing cuQuantum's apply-matrix does on a real GPU.

use atlas_circuit::Gate;
use atlas_qmath::{extract_bits, Complex64, Matrix};

/// Embeds a gate unitary `m` (over `gate_qubits`, matrix bit `t` =
/// `gate_qubits[t]`) into the space of `kernel_qubits` (kernel bit `t` =
/// `kernel_qubits[t]`). Every gate qubit must appear in the kernel set.
pub fn expand_to_kernel(kernel_qubits: &[u32], gate_qubits: &[u32], m: &Matrix) -> Matrix {
    let kk = kernel_qubits.len();
    let kg = gate_qubits.len();
    assert_eq!(m.rows(), 1 << kg);
    // Position of each gate qubit inside the kernel index.
    let pos: Vec<u32> = gate_qubits
        .iter()
        .map(|q| {
            kernel_qubits
                .iter()
                .position(|kq| kq == q)
                .expect("gate qubit not in kernel") as u32
        })
        .collect();
    let dim = 1usize << kk;
    let mut out = Matrix::zeros(dim, dim);
    let gate_mask: u64 = pos.iter().fold(0, |acc, &p| acc | (1u64 << p));
    for row in 0..dim as u64 {
        let r_sub = extract_bits(row, &pos) as usize;
        let fixed = row & !gate_mask;
        for c_sub in 0..1u64 << kg {
            // Scatter c_sub back onto the gate bit positions.
            let mut col = fixed;
            for (t, &p) in pos.iter().enumerate() {
                col |= ((c_sub >> t) & 1) << p;
            }
            out[(row as usize, col as usize)] = m[(r_sub, c_sub as usize)];
        }
    }
    out
}

/// Multiplies the gates of a kernel (in program order) into a single
/// unitary over `kernel_qubits`. Applying the result is equivalent to
/// applying the gates in sequence.
pub fn fuse_gates(kernel_qubits: &[u32], gates: &[Gate]) -> Matrix {
    let mut acc = Matrix::identity(1 << kernel_qubits.len());
    for g in gates {
        let expanded = expand_to_kernel(kernel_qubits, g.qubits.as_slice(), &g.matrix());
        acc = &expanded * &acc;
    }
    acc
}

/// Fuses pre-expanded/reduced unitaries (already paired with their qubit
/// lists) — used by the executor when insular specialization has replaced
/// gates with reduced matrices.
pub fn fuse_matrices(kernel_qubits: &[u32], parts: &[(Vec<u32>, Matrix)]) -> Matrix {
    let mut acc = Matrix::identity(1 << kernel_qubits.len());
    for (qs, m) in parts {
        let expanded = expand_to_kernel(kernel_qubits, qs, m);
        acc = &expanded * &acc;
    }
    acc
}

/// Absolute tolerance for structure detection in [`classify_kernel`].
///
/// Fused matrices are products of exact gate unitaries, so structural
/// zeros are either exactly 0.0 or rounding residue a few ulps above it;
/// 1e-12 is far above any residue a ≤ 7-qubit product can accumulate and
/// far below any genuine matrix entry (gate entries are O(1)).
pub const KERNEL_CLASSIFY_TOL: f64 = 1e-12;

/// A fused kernel matrix compiled into the cheapest applicable form.
///
/// Atlas fusion kernels are dense `2^k × 2^k` products, but real circuits
/// produce heavily structured products — diagonal (phase-only gate runs),
/// permutation-with-phases (X/CX/swap-like), and controlled blocks — for
/// which the dense `O(4^k)`-per-group multiply is mostly wasted work.
/// [`classify_kernel`] inspects the matrix once at plan-specialization
/// time; [`apply_kernel`] then dispatches to the matching fast path in
/// [`crate::apply`] / [`crate::parallel`].
#[derive(Clone, Debug)]
pub enum FastKernel {
    /// The identity — applying it is a no-op.
    Identity,
    /// Diagonal matrix: amplitude `i` is scaled by `diag[bits(i)]`.
    /// One multiply per amplitude, no gather/scatter.
    Diagonal(
        /// The diagonal entries, indexed by the kernel basis state.
        Vec<Complex64>,
    ),
    /// Permutation with phases: basis state `x` maps to `dst[x]` with
    /// factor `phase[x]`. `O(2^k)` per group instead of `O(4^k)`.
    Permutation {
        /// Destination basis index for each source basis index.
        dst: Vec<u32>,
        /// Phase factor applied to each source basis index.
        phase: Vec<Complex64>,
    },
    /// Identity unless every control bit is set; then `matrix` acts on the
    /// target bits. Skips a `2^|controls|` fraction of the state.
    Controlled {
        /// Kernel-bit positions acting as controls.
        controls: Vec<u32>,
        /// Kernel-bit positions the sub-matrix acts on.
        targets: Vec<u32>,
        /// The unitary over `targets`, already projected.
        matrix: Matrix,
    },
    /// No exploitable *algebraic* structure — dense multiply. At apply
    /// time this still dispatches on **layout** (unrolled `k ≤ 2`,
    /// contiguous low-window chunks, generic gather; see
    /// [`crate::apply::apply_matrix_with`]).
    Dense(Matrix),
}

impl FastKernel {
    /// `true` if a per-shard scalar can be folded into this kernel's
    /// entries for free (everything but `Controlled`, whose untouched
    /// subspace must not be scaled).
    pub fn can_fold_scale(&self) -> bool {
        !matches!(self, FastKernel::Controlled { .. })
    }
}

/// `true` if bit `p` of the kernel index acts as a control for `m`: the
/// matrix is identity on the `p = 0` subspace and never mixes the two
/// halves.
fn is_control_bit(m: &Matrix, p: u32) -> bool {
    let dim = m.rows();
    let pbit = 1usize << p;
    for r in 0..dim {
        for c in 0..dim {
            if r & pbit != 0 && c & pbit != 0 {
                continue; // the controlled block is unconstrained
            }
            let want = if r == c {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            if !m[(r, c)].approx_eq(want, KERNEL_CLASSIFY_TOL) {
                return false;
            }
        }
    }
    true
}

/// Inspects a fused kernel matrix and compiles it to its fast form.
///
/// Detection order matters: diagonal ⊂ is checked before permutation
/// (every diagonal is a trivial permutation, but the diagonal path is
/// cheaper), and controlled last (a fully-controlled phase is diagonal, a
/// controlled-X is a permutation — both already caught).
pub fn classify_kernel(m: &Matrix) -> FastKernel {
    let dim = m.rows();
    debug_assert_eq!(dim, m.cols());
    let k = dim.trailing_zeros();
    if m.is_diagonal(KERNEL_CLASSIFY_TOL) {
        let diag: Vec<Complex64> = (0..dim).map(|i| m[(i, i)]).collect();
        if diag
            .iter()
            .all(|d| d.approx_eq(Complex64::ONE, KERNEL_CLASSIFY_TOL))
        {
            return FastKernel::Identity;
        }
        return FastKernel::Diagonal(diag);
    }
    // Permutation: exactly one non-negligible entry per column (unitarity
    // then guarantees one per row).
    let mut dst = Vec::with_capacity(dim);
    let mut phase = Vec::with_capacity(dim);
    let mut seen_rows = vec![false; dim];
    let mut is_perm = true;
    'cols: for c in 0..dim {
        let mut hit: Option<usize> = None;
        for r in 0..dim {
            if !m[(r, c)].is_zero(KERNEL_CLASSIFY_TOL) {
                if hit.is_some() {
                    is_perm = false;
                    break 'cols;
                }
                hit = Some(r);
            }
        }
        match hit {
            Some(r) if !seen_rows[r] => {
                seen_rows[r] = true;
                dst.push(r as u32);
                phase.push(m[(r, c)]);
            }
            _ => {
                is_perm = false;
                break;
            }
        }
    }
    if is_perm {
        return FastKernel::Permutation { dst, phase };
    }
    // Controlled structure: collect every kernel bit acting as a control.
    let controls: Vec<u32> = (0..k).filter(|&p| is_control_bit(m, p)).collect();
    if !controls.is_empty() {
        let cmask: usize = controls.iter().fold(0, |acc, &p| acc | (1usize << p));
        let targets: Vec<u32> = (0..k).filter(|p| !controls.contains(p)).collect();
        let tdim = 1usize << targets.len();
        let expand = |sub: usize| -> usize {
            let mut full = cmask;
            for (t, &p) in targets.iter().enumerate() {
                full |= ((sub >> t) & 1) << p;
            }
            full
        };
        let mut sub = Matrix::zeros(tdim, tdim);
        for r in 0..tdim {
            for c in 0..tdim {
                sub[(r, c)] = m[(expand(r), expand(c))];
            }
        }
        return FastKernel::Controlled {
            controls,
            targets,
            matrix: sub,
        };
    }
    FastKernel::Dense(m.clone())
}

/// Applies a compiled kernel over physical qubit positions `qubits`,
/// folding the scalar `scale` in for free where the form allows it, with
/// up to `threads` threads of intra-shard parallelism. Uses the calling
/// thread's scratch arena.
///
/// `scale != ONE` requires [`FastKernel::can_fold_scale`]; callers emit a
/// separate scale pass for `Controlled` kernels.
pub fn apply_kernel(
    amps: &mut [Complex64],
    qubits: &[u32],
    kernel: &FastKernel,
    scale: Complex64,
    threads: usize,
) {
    crate::scratch::with_thread(|s| apply_kernel_with(s, amps, qubits, kernel, scale, threads));
}

/// [`apply_kernel`] with an explicit scratch arena: scaled diagonals,
/// phases and matrices go into pooled buffers instead of per-call
/// allocations, and the dense/permutation/controlled sub-kernels reuse
/// the arena's offset tables.
pub fn apply_kernel_with(
    scratch: &mut crate::scratch::Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    kernel: &FastKernel,
    scale: Complex64,
    threads: usize,
) {
    let fold = !scale.approx_eq(Complex64::ONE, 0.0);
    match kernel {
        FastKernel::Identity => {
            if fold {
                crate::parallel::scale_parallel(amps, scale, threads);
            }
        }
        FastKernel::Diagonal(diag) => {
            if fold {
                let mut scaled = scratch.take_amps();
                scaled.extend(diag.iter().map(|&d| d * scale));
                crate::parallel::apply_diag_parallel(amps, qubits, &scaled, threads);
                scratch.put_amps(scaled);
            } else {
                crate::parallel::apply_diag_parallel(amps, qubits, diag, threads);
            }
        }
        FastKernel::Permutation { dst, phase } => {
            if fold {
                let mut scaled = scratch.take_amps();
                scaled.extend(phase.iter().map(|&p| p * scale));
                crate::parallel::apply_permutation_parallel_with(
                    scratch, amps, qubits, dst, &scaled, threads,
                );
                scratch.put_amps(scaled);
            } else {
                crate::parallel::apply_permutation_parallel_with(
                    scratch, amps, qubits, dst, phase, threads,
                );
            }
        }
        FastKernel::Controlled {
            controls,
            targets,
            matrix,
        } => {
            if fold {
                // A scalar cannot fold into the kernel entries (the
                // untouched control-0 subspace must be scaled too), so it
                // costs a real extra pass here — callers that can emit a
                // shared scale op elsewhere should check can_fold_scale()
                // first, but a fold request must never be dropped.
                crate::parallel::scale_parallel(amps, scale, threads);
            }
            let mut cphys = scratch.take_qubits();
            cphys.extend(controls.iter().map(|&p| qubits[p as usize]));
            let mut tphys = scratch.take_qubits();
            tphys.extend(targets.iter().map(|&p| qubits[p as usize]));
            crate::parallel::apply_controlled_parallel_with(
                scratch, amps, &cphys, &tphys, matrix, threads,
            );
            scratch.put_qubits(tphys);
            scratch.put_qubits(cphys);
        }
        FastKernel::Dense(m) => {
            if fold {
                let mut scaled = scratch.take_matrix();
                scaled.clone_scaled_from(m, scale);
                crate::parallel::apply_matrix_parallel_with(
                    scratch, amps, qubits, &scaled, threads,
                );
                scratch.put_matrix(scaled);
            } else {
                crate::parallel::apply_matrix_parallel_with(scratch, amps, qubits, m, threads);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_gate, apply_matrix};
    use crate::state::StateVector;
    use atlas_circuit::{Circuit, GateKind};

    #[test]
    fn expand_identity_gate() {
        let id = Matrix::identity(2);
        let big = expand_to_kernel(&[4, 7, 9], &[7], &id);
        assert!(big.approx_eq(&Matrix::identity(8), 1e-12));
    }

    #[test]
    fn expanded_gate_is_unitary() {
        let m = GateKind::CRY(0.7).matrix();
        let big = expand_to_kernel(&[1, 3, 5, 8], &[5, 1], &m);
        assert!(big.is_unitary(1e-9));
    }

    #[test]
    fn fused_application_matches_sequential() {
        // A 3-qubit kernel from a realistic gate mix.
        let mut c = Circuit::new(5);
        c.h(1)
            .cx(1, 3)
            .t(3)
            .cp(0.8, 4, 1)
            .h(4)
            .swap(1, 4)
            .rz(0.3, 3);
        let kernel_qubits = [1u32, 3, 4];
        let fused = fuse_gates(&kernel_qubits, c.gates());
        assert!(fused.is_unitary(1e-9));

        // Dense random-ish state.
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q).t(q).rx(0.3 + q as f64, q);
        }
        let mut sv_seq = StateVector::zero_state(5);
        for g in prep.gates() {
            apply_gate(sv_seq.amplitudes_mut(), g);
        }
        let mut sv_fused = sv_seq.clone();

        for g in c.gates() {
            apply_gate(sv_seq.amplitudes_mut(), g);
        }
        apply_matrix(sv_fused.amplitudes_mut(), &kernel_qubits, &fused);

        assert!(
            sv_seq.approx_eq(&sv_fused, 1e-9),
            "fused vs sequential max diff = {}",
            sv_seq.max_abs_diff(&sv_fused)
        );
    }

    #[test]
    fn fuse_matrices_matches_fuse_gates() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 2).cp(0.4, 2, 0);
        let kq = [0u32, 2];
        let a = fuse_gates(&kq, c.gates());
        let parts: Vec<(Vec<u32>, Matrix)> = c
            .gates()
            .iter()
            .map(|g| (g.qubits.as_slice().to_vec(), g.matrix()))
            .collect();
        let b = fuse_matrices(&kq, &parts);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    #[should_panic(expected = "not in kernel")]
    fn gate_outside_kernel_panics() {
        let m = GateKind::H.matrix();
        let _ = expand_to_kernel(&[0, 1], &[2], &m);
    }

    #[test]
    fn classify_detects_identity_diagonal_permutation_controlled_dense() {
        // Identity: X · X.
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let m = fuse_gates(&[0], c.gates());
        assert!(matches!(classify_kernel(&m), FastKernel::Identity));

        // Diagonal: a run of phase gates.
        let mut c = Circuit::new(2);
        c.t(0).cp(0.7, 0, 1).rz(0.3, 1);
        let m = fuse_gates(&[0, 1], c.gates());
        assert!(matches!(classify_kernel(&m), FastKernel::Diagonal(_)));

        // Permutation: CX (with a phase-free X mixed in).
        let mut c = Circuit::new(2);
        c.cx(0, 1).x(0);
        let m = fuse_gates(&[0, 1], c.gates());
        assert!(matches!(
            classify_kernel(&m),
            FastKernel::Permutation { .. }
        ));

        // Controlled: CRY — identity on the control-0 half, dense block on
        // the control-1 half.
        let m = GateKind::CRY(0.9).matrix();
        match classify_kernel(&m) {
            FastKernel::Controlled {
                controls, targets, ..
            } => {
                assert_eq!(controls, vec![0]);
                assert_eq!(targets, vec![1]);
            }
            other => panic!("CRY classified as {other:?}"),
        }

        // Dense: H mixes everything.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let m = fuse_gates(&[0, 1], c.gates());
        assert!(matches!(classify_kernel(&m), FastKernel::Dense(_)));
    }

    #[test]
    fn apply_kernel_matches_dense_apply_for_every_class() {
        // One kernel per class, all applied both ways on a dense state.
        let kernels: Vec<Circuit> = {
            let mut v = Vec::new();
            let mut c = Circuit::new(5);
            c.x(1).x(1); // identity
            v.push(c);
            let mut c = Circuit::new(5);
            c.t(1).cp(0.7, 1, 3).rz(0.4, 3); // diagonal
            v.push(c);
            let mut c = Circuit::new(5);
            c.cx(1, 3).x(3).swap(1, 4); // permutation
            v.push(c);
            let mut c = Circuit::new(5);
            c.add(GateKind::CRY(0.8), &[4, 1]); // controlled
            v.push(c);
            let mut c = Circuit::new(5);
            c.h(1).cx(1, 3).h(3); // dense
            v.push(c);
            v
        };
        let mut prep = Circuit::new(5);
        for q in 0..5 {
            prep.h(q).t(q).rx(0.2 + q as f64, q);
        }
        for kc in &kernels {
            let kq: Vec<u32> = (0..5)
                .filter(|&q| kc.gates().iter().any(|g| g.qubits.contains(q)))
                .collect();
            let fused = fuse_gates(&kq, kc.gates());
            let fast = classify_kernel(&fused);

            let mut a = StateVector::zero_state(5);
            for g in prep.gates() {
                apply_gate(a.amplitudes_mut(), g);
            }
            let mut b = a.clone();
            apply_matrix(a.amplitudes_mut(), &kq, &fused);
            apply_kernel(b.amplitudes_mut(), &kq, &fast, Complex64::ONE, 1);
            assert!(
                a.approx_eq(&b, 1e-10),
                "{fast:?} diverged from dense apply: {}",
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn apply_kernel_folds_scale() {
        let mut c = Circuit::new(3);
        c.t(0).cp(0.5, 0, 2);
        let kq = [0u32, 2];
        let fused = fuse_gates(&kq, c.gates());
        let fast = classify_kernel(&fused);
        assert!(fast.can_fold_scale());
        let s = Complex64::cis(0.9);

        let mut prep = Circuit::new(3);
        prep.h(0).h(1).h(2).t(1);
        let mut a = StateVector::zero_state(3);
        for g in prep.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        let mut b = a.clone();
        apply_matrix(a.amplitudes_mut(), &kq, &fused);
        for amp in a.amplitudes_mut() {
            *amp *= s;
        }
        apply_kernel(b.amplitudes_mut(), &kq, &fast, s, 1);
        assert!(a.approx_eq(&b, 1e-12));
    }
}
