//! Multi-threaded gate application within a single shard.
//!
//! A `k`-qubit gate partitions the index space into `2^{n-k}` independent
//! groups; threads process disjoint group ranges, so the only unsafe
//! ingredient is a `Sync` wrapper around the shared amplitude pointer.
//! Safety argument: group `g` touches exactly the indices
//! `insert_bits(g, qubits) | deposit_bits(x, qubits)` for `x < 2^k`, and
//! those sets are disjoint for distinct `g` (the non-gate bits differ).
//!
//! Every parallel kernel here computes **bit-identical** results to its
//! serial twin in [`crate::apply`]: each amplitude is produced by the same
//! floating-point operations in the same order regardless of how groups
//! are divided among threads — there are no cross-group reductions. The
//! thread-count determinism test in the integration suite relies on this.

use crate::scratch::{self, Scratch};
use atlas_circuit::Gate;
use atlas_qmath::{insert_bits, Complex64, Matrix};
use std::cell::UnsafeCell;

/// Minimum number of independent groups before a kernel is worth
/// multi-threading.
///
/// Rationale: the scoped spawn + join of a parallel region costs on the
/// order of 10–50 µs, while a group of a small-`k` kernel costs tens of
/// nanoseconds; at fewer than ~2^10 groups the dispatch overhead rivals
/// the whole serial kernel, so small problems stay on one thread. The
/// constant is deliberately conservative — crossing it early only wastes
/// microseconds, crossing it late leaves real parallelism unused on big
/// shards (2^20+ amplitudes), which sit far above the cutoff anyway.
pub const PARALLEL_GROUP_CUTOFF: usize = 1024;

/// Minimum element count before a purely element-wise pass (diagonal
/// multiply, whole-slice scale) is worth multi-threading.
///
/// Much higher than [`PARALLEL_GROUP_CUTOFF`] because the unit of work
/// differs: a dense kernel's group costs `O(4^k)` complex MACs, while an
/// element-wise "group" is a single complex multiply (~1 ns). At 2^16
/// elements the serial pass costs ~100 µs, comfortably above the scoped
/// spawn + join overhead; below it, threading is a net loss.
pub const PARALLEL_ELEMENT_CUTOFF: usize = 1 << 16;

/// Shared mutable amplitude slice for provably disjoint writes.
struct AmpCell<'a>(&'a [UnsafeCell<Complex64>]);
// SAFETY: sharing is sound because all access goes through `read`/`write`,
// whose contracts require callers to touch only indices of groups they own
// — the group ranges handed to threads are disjoint, and a kernel's groups
// partition the slice (each amplitude is in exactly one group because a
// duplicate-free qubit set decomposes the index space). `atlas-analyze`
// checks that duplicate-freedom on every compiled op (`effect_of`).
unsafe impl Sync for AmpCell<'_> {}

impl<'a> AmpCell<'a> {
    fn new(amps: &'a mut [Complex64]) -> Self {
        // SAFETY: Complex64 and UnsafeCell<Complex64> have identical layout.
        let ptr = amps.as_mut_ptr() as *const UnsafeCell<Complex64>;
        AmpCell(unsafe { std::slice::from_raw_parts(ptr, amps.len()) })
    }

    /// # Safety
    /// Caller must guarantee `idx` is not accessed concurrently.
    #[inline(always)]
    unsafe fn read(&self, idx: usize) -> Complex64 {
        // SAFETY: caller contract — no concurrent access to `idx`.
        unsafe { *self.0[idx].get() }
    }

    /// # Safety
    /// Caller must guarantee `idx` is not accessed concurrently.
    #[inline(always)]
    unsafe fn write(&self, idx: usize, v: Complex64) {
        // SAFETY: caller contract — no concurrent access to `idx`.
        unsafe { *self.0[idx].get() = v }
    }
}

/// Splits `0..groups` into `threads` contiguous ranges and runs `body`
/// on each range concurrently (scoped threads, joined before returning).
/// `body(lo, hi)` must only touch state owned by groups in `lo..hi`.
fn run_group_ranges(groups: usize, threads: usize, body: &(dyn Fn(u64, u64) + Sync)) {
    let chunk = groups.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(groups);
            if lo >= hi {
                continue;
            }
            scope.spawn(move || body(lo as u64, hi as u64));
        }
    });
}

/// Clamps a requested thread count to what `groups` can keep busy, and to
/// 1 below [`PARALLEL_GROUP_CUTOFF`].
fn effective_threads(threads: usize, groups: usize) -> usize {
    if groups < PARALLEL_GROUP_CUTOFF {
        1
    } else {
        threads.clamp(1, groups)
    }
}

/// [`effective_threads`] for element-wise passes, using the higher
/// [`PARALLEL_ELEMENT_CUTOFF`].
fn effective_threads_elementwise(threads: usize, elements: usize) -> usize {
    if elements < PARALLEL_ELEMENT_CUTOFF {
        1
    } else {
        threads.clamp(1, elements)
    }
}

/// Applies unitary `m` over `qubits` using up to `threads` OS threads,
/// with the calling thread's scratch arena. Bit-exact against the serial
/// [`crate::apply::apply_matrix`], not just approximately equal.
pub fn apply_matrix_parallel(amps: &mut [Complex64], qubits: &[u32], m: &Matrix, threads: usize) {
    scratch::with_thread(|s| apply_matrix_parallel_with(s, amps, qubits, m, threads));
}

/// [`apply_matrix_parallel`] with an explicit scratch arena. The serial
/// fallback reuses the arena; the threaded path reads the memoized offset
/// table from it (worker-local gather buffers are allocated per spawn —
/// amortized by the thread launch itself) and takes a contiguous
/// split-the-slice path for identity-order low windows.
pub fn apply_matrix_parallel_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    m: &Matrix,
    threads: usize,
) {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k);
    let groups = amps.len() >> k;
    let threads = effective_threads(threads, groups);
    if threads == 1 {
        crate::apply::apply_matrix_with(scratch, amps, qubits, m);
        return;
    }
    let dim = 1usize << k;
    let (_, tables) = scratch.split();
    let table = tables.lookup(qubits);
    if table.identity_order {
        // Groups are contiguous chunks, so a thread's group range is a
        // contiguous subslice: hand each worker a real `&mut` split
        // instead of going through the shared-cell wrapper.
        let chunk_amps = groups.div_ceil(threads) << k;
        std::thread::scope(|scope| {
            let mut rest: &mut [Complex64] = amps;
            while !rest.is_empty() {
                let take = chunk_amps.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                scope.spawn(move || {
                    let mut outbuf = vec![Complex64::ZERO; dim];
                    for chunk in head.chunks_exact_mut(dim) {
                        m.mul_vec_into(chunk, &mut outbuf);
                        chunk.copy_from_slice(&outbuf);
                    }
                });
            }
        });
        return;
    }
    let sorted = &table.sorted;
    let offsets = &table.offsets;
    let cell = AmpCell::new(amps);
    run_group_ranges(groups, threads, &|lo, hi| {
        let mut inbuf = vec![Complex64::ZERO; dim];
        let mut outbuf = vec![Complex64::ZERO; dim];
        for g in lo..hi {
            let base = insert_bits(g, sorted);
            for (x, off) in offsets.iter().enumerate() {
                // SAFETY: distinct groups touch disjoint indices.
                inbuf[x] = unsafe { cell.read((base | off) as usize) };
            }
            m.mul_vec_into(&inbuf, &mut outbuf);
            for (x, off) in offsets.iter().enumerate() {
                // SAFETY: as above.
                unsafe { cell.write((base | off) as usize, outbuf[x]) };
            }
        }
    });
}

/// Parallel twin of [`crate::apply::apply_diag`]: scales amplitude `i` by
/// `diag[extract_bits(i, qubits)]`, chunking the flat amplitude array.
/// Bit-exact against the serial version (pure element-wise multiply).
pub fn apply_diag_parallel(
    amps: &mut [Complex64],
    qubits: &[u32],
    diag: &[Complex64],
    threads: usize,
) {
    assert_eq!(diag.len(), 1 << qubits.len());
    // Element-wise pass: "groups" are single amplitudes.
    let threads = effective_threads_elementwise(threads, amps.len());
    if threads == 1 {
        crate::apply::apply_diag(amps, qubits, diag);
        return;
    }
    let cell = AmpCell::new(amps);
    let n = cell.0.len();
    run_group_ranges(n, threads, &|lo, hi| {
        for i in lo..hi {
            // SAFETY: ranges are disjoint and each index is touched once.
            unsafe {
                let v = cell.read(i as usize);
                let d = diag[atlas_qmath::extract_bits(i, qubits) as usize];
                cell.write(i as usize, v * d);
            }
        }
    });
}

/// Parallel twin of [`crate::apply::apply_permutation`]. Bit-exact. Uses
/// the calling thread's scratch arena.
pub fn apply_permutation_parallel(
    amps: &mut [Complex64],
    qubits: &[u32],
    dst: &[u32],
    phase: &[Complex64],
    threads: usize,
) {
    scratch::with_thread(|s| apply_permutation_parallel_with(s, amps, qubits, dst, phase, threads));
}

/// [`apply_permutation_parallel`] with an explicit scratch arena.
pub fn apply_permutation_parallel_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    dst: &[u32],
    phase: &[Complex64],
    threads: usize,
) {
    let k = qubits.len();
    let dim = 1usize << k;
    assert_eq!(dst.len(), dim);
    assert_eq!(phase.len(), dim);
    let groups = amps.len() >> k;
    let threads = effective_threads(threads, groups);
    if threads == 1 {
        crate::apply::apply_permutation_with(scratch, amps, qubits, dst, phase);
        return;
    }
    let (bufs, tables) = scratch.split();
    let table = tables.lookup(qubits);
    bufs.out_off.clear();
    bufs.out_off
        .extend(dst.iter().map(|&d| table.offsets[d as usize]));
    let sorted = &table.sorted;
    let offsets = &table.offsets;
    let out_off = &bufs.out_off;
    let cell = AmpCell::new(amps);
    run_group_ranges(groups, threads, &|lo, hi| {
        let mut inbuf = vec![Complex64::ZERO; dim];
        for g in lo..hi {
            let base = insert_bits(g, sorted);
            for (x, off) in offsets.iter().enumerate() {
                // SAFETY: distinct groups touch disjoint indices.
                inbuf[x] = unsafe { cell.read((base | off) as usize) };
            }
            for (x, off) in out_off.iter().enumerate() {
                // SAFETY: as above.
                unsafe { cell.write((base | off) as usize, phase[x] * inbuf[x]) };
            }
        }
    });
}

/// Parallel twin of [`crate::apply::apply_controlled_matrix`]. Bit-exact.
/// Uses the calling thread's scratch arena.
pub fn apply_controlled_parallel(
    amps: &mut [Complex64],
    controls: &[u32],
    targets: &[u32],
    m: &Matrix,
    threads: usize,
) {
    scratch::with_thread(|s| {
        apply_controlled_parallel_with(s, amps, controls, targets, m, threads)
    });
}

/// [`apply_controlled_parallel`] with an explicit scratch arena.
pub fn apply_controlled_parallel_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    controls: &[u32],
    targets: &[u32],
    m: &Matrix,
    threads: usize,
) {
    let kt = targets.len();
    assert_eq!(m.rows(), 1 << kt);
    let groups = amps.len() >> (controls.len() + kt);
    let threads = effective_threads(threads, groups);
    if threads == 1 {
        crate::apply::apply_controlled_matrix_with(scratch, amps, controls, targets, m);
        return;
    }
    let cmask: u64 = controls.iter().fold(0, |acc, &c| acc | (1u64 << c));
    let mut all = scratch.take_qubits();
    all.extend(controls.iter().chain(targets).copied());
    all.sort_unstable();
    let dim = 1usize << kt;
    let (_, tables) = scratch.split();
    let offsets = &tables.lookup(targets).offsets;
    let all_ref = &all;
    let cell = AmpCell::new(amps);
    run_group_ranges(groups, threads, &|lo, hi| {
        let mut inbuf = vec![Complex64::ZERO; dim];
        let mut outbuf = vec![Complex64::ZERO; dim];
        for g in lo..hi {
            let base = insert_bits(g, all_ref) | cmask;
            for (x, off) in offsets.iter().enumerate() {
                // SAFETY: distinct groups touch disjoint indices.
                inbuf[x] = unsafe { cell.read((base | off) as usize) };
            }
            m.mul_vec_into(&inbuf, &mut outbuf);
            for (x, off) in offsets.iter().enumerate() {
                // SAFETY: as above.
                unsafe { cell.write((base | off) as usize, outbuf[x]) };
            }
        }
    });
    scratch.put_qubits(all);
}

/// Multiplies every amplitude by `factor` using up to `threads` threads.
pub fn scale_parallel(amps: &mut [Complex64], factor: Complex64, threads: usize) {
    let threads = effective_threads_elementwise(threads, amps.len());
    if threads == 1 {
        for a in amps.iter_mut() {
            *a *= factor;
        }
        return;
    }
    let cell = AmpCell::new(amps);
    let n = cell.0.len();
    run_group_ranges(n, threads, &|lo, hi| {
        for i in lo..hi {
            // SAFETY: ranges are disjoint.
            unsafe { cell.write(i as usize, cell.read(i as usize) * factor) };
        }
    });
}

/// Applies a full gate with thread-level parallelism (general path only —
/// the dispatcher in `apply` remains the single-thread entry point).
pub fn apply_gate_parallel(amps: &mut [Complex64], gate: &Gate, threads: usize) {
    apply_matrix_parallel(amps, gate.qubits.as_slice(), &gate.matrix(), threads);
}

/// Applies a reduced shared-memory kernel part `m` over `qubits` with a
/// cheap structure dispatch: `1×1` scalar → whole-slice scale, diagonal →
/// diagonal pass, otherwise the dense path. Parts are tiny per-shard
/// specializations, so full [`crate::fused::classify_kernel`] treatment
/// would cost more than it saves. Uses the calling thread's scratch arena.
pub fn apply_reduced(amps: &mut [Complex64], qubits: &[u32], m: &Matrix, threads: usize) {
    scratch::with_thread(|s| apply_reduced_with(s, amps, qubits, m, threads));
}

/// [`apply_reduced`] with an explicit scratch arena (the diagonal is
/// extracted into a pooled buffer instead of a fresh allocation).
pub fn apply_reduced_with(
    scratch: &mut Scratch,
    amps: &mut [Complex64],
    qubits: &[u32],
    m: &Matrix,
    threads: usize,
) {
    if m.rows() == 1 {
        scale_parallel(amps, m[(0, 0)], threads);
    } else if m.is_diagonal(crate::fused::KERNEL_CLASSIFY_TOL) {
        let mut diag = scratch.take_amps();
        diag.extend((0..m.rows()).map(|i| m[(i, i)]));
        apply_diag_parallel(amps, qubits, &diag, threads);
        scratch.put_amps(diag);
    } else {
        apply_matrix_parallel_with(scratch, amps, qubits, m, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_gate;
    use crate::state::StateVector;
    use atlas_circuit::Circuit;

    #[test]
    fn parallel_matches_sequential() {
        let n = 12;
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.h(q).rz(0.05 * (q + 1) as f64, q);
        }
        let mut a = StateVector::zero_state(n);
        for g in prep.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        let mut b = a.clone();

        let mut work = Circuit::new(n);
        work.cx(3, 9).h(11).cp(0.7, 0, 10).swap(2, 8);
        for g in work.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        for g in work.gates() {
            apply_gate_parallel(b.amplitudes_mut(), g, 4);
        }
        assert!(
            a.approx_eq(&b, 1e-10),
            "parallel diverged: {}",
            a.max_abs_diff(&b)
        );
    }

    #[test]
    fn single_thread_falls_back() {
        let mut a = StateVector::basis_state(4, 5);
        let mut b = a.clone();
        let mut c = Circuit::new(4);
        c.h(1).cx(1, 3);
        for g in c.gates() {
            apply_gate(a.amplitudes_mut(), g);
            apply_gate_parallel(b.amplitudes_mut(), g, 1);
        }
        assert!(a.approx_eq(&b, 1e-12));
    }

    /// Regression test pinning the serial cutoff at its boundary: one group
    /// below [`PARALLEL_GROUP_CUTOFF`] stays serial, exactly at the cutoff
    /// goes parallel, and both sides must be **bit-identical** to the
    /// serial kernel.
    #[test]
    fn cutoff_boundary_is_bit_exact_on_both_sides() {
        assert!(PARALLEL_GROUP_CUTOFF.is_power_of_two());
        let k = 1u32; // single-qubit gate → groups = 2^(n-1)
        let cutoff_n = PARALLEL_GROUP_CUTOFF.trailing_zeros() + k;
        // groups = cutoff/2 (stays serial) then exactly = cutoff (the first
        // size the parallel dispatch engages).
        for n in [cutoff_n - 1, cutoff_n] {
            let mut prep = Circuit::new(n);
            for q in 0..n {
                prep.h(q).rz(0.03 * (q + 1) as f64, q);
            }
            let mut serial = StateVector::zero_state(n);
            for g in prep.gates() {
                apply_gate(serial.amplitudes_mut(), g);
            }
            let mut parallel = serial.clone();
            let h = atlas_circuit::Gate::new(atlas_circuit::GateKind::H, &[3]);
            crate::apply::apply_matrix(serial.amplitudes_mut(), &[3], &h.matrix());
            apply_matrix_parallel(parallel.amplitudes_mut(), &[3], &h.matrix(), 4);
            let groups = parallel.amplitudes().len() >> k;
            assert_eq!(groups >= PARALLEL_GROUP_CUTOFF, n == cutoff_n);
            for (a, b) in serial.amplitudes().iter().zip(parallel.amplitudes()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn specialized_parallel_kernels_are_bit_exact() {
        let n = 13;
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.h(q).rz(0.07 * (q + 1) as f64, q);
        }
        let mut base = StateVector::zero_state(n);
        for g in prep.gates() {
            apply_gate(base.amplitudes_mut(), g);
        }

        // Diagonal.
        let diag: Vec<Complex64> = (0..4).map(|i| Complex64::cis(0.2 * i as f64)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        crate::apply::apply_diag(a.amplitudes_mut(), &[2, 9], &diag);
        apply_diag_parallel(b.amplitudes_mut(), &[2, 9], &diag, 4);
        assert_bits_eq(&a, &b);

        // Permutation (CX as a permutation over its two qubits).
        let dst = [0u32, 3, 2, 1];
        let phase = [Complex64::ONE; 4];
        let mut a = base.clone();
        let mut b = base.clone();
        crate::apply::apply_permutation(a.amplitudes_mut(), &[4, 10], &dst, &phase);
        apply_permutation_parallel(b.amplitudes_mut(), &[4, 10], &dst, &phase, 4);
        assert_bits_eq(&a, &b);

        // Controlled.
        let ry = atlas_circuit::GateKind::RY(0.8).matrix();
        let mut a = base.clone();
        let mut b = base.clone();
        crate::apply::apply_controlled_matrix(a.amplitudes_mut(), &[1], &[8], &ry);
        apply_controlled_parallel(b.amplitudes_mut(), &[1], &[8], &ry, 4);
        assert_bits_eq(&a, &b);

        // Scale.
        let f = Complex64::cis(0.4);
        let mut a = base.clone();
        let mut b = base.clone();
        for amp in a.amplitudes_mut() {
            *amp *= f;
        }
        scale_parallel(b.amplitudes_mut(), f, 4);
        assert_bits_eq(&a, &b);
    }

    fn assert_bits_eq(a: &StateVector, b: &StateVector) {
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
