//! Multi-threaded gate application.
//!
//! A `k`-qubit gate partitions the index space into `2^{n-k}` independent
//! groups; threads process disjoint group ranges, so the only unsafe
//! ingredient is a `Sync` wrapper around the shared amplitude pointer.
//! Safety argument: group `g` touches exactly the indices
//! `insert_bits(g, qubits) | deposit_bits(x, qubits)` for `x < 2^k`, and
//! those sets are disjoint for distinct `g` (the non-gate bits differ).

use atlas_circuit::Gate;
use atlas_qmath::{deposit_bits, insert_bits, Complex64, Matrix};
use std::cell::UnsafeCell;

/// Shared mutable amplitude slice for provably disjoint writes.
struct AmpCell<'a>(&'a [UnsafeCell<Complex64>]);
unsafe impl Sync for AmpCell<'_> {}

impl<'a> AmpCell<'a> {
    fn new(amps: &'a mut [Complex64]) -> Self {
        // SAFETY: Complex64 and UnsafeCell<Complex64> have identical layout.
        let ptr = amps.as_mut_ptr() as *const UnsafeCell<Complex64>;
        AmpCell(unsafe { std::slice::from_raw_parts(ptr, amps.len()) })
    }

    /// # Safety
    /// Caller must guarantee `idx` is not accessed concurrently.
    #[inline(always)]
    unsafe fn read(&self, idx: usize) -> Complex64 {
        *self.0[idx].get()
    }

    /// # Safety
    /// Caller must guarantee `idx` is not accessed concurrently.
    #[inline(always)]
    unsafe fn write(&self, idx: usize, v: Complex64) {
        *self.0[idx].get() = v;
    }
}

/// Applies unitary `m` over `qubits` using up to `threads` OS threads.
/// Functionally identical to [`crate::apply::apply_matrix`].
pub fn apply_matrix_parallel(amps: &mut [Complex64], qubits: &[u32], m: &Matrix, threads: usize) {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k);
    let groups = amps.len() >> k;
    let threads = threads.clamp(1, groups.max(1));
    if threads == 1 || groups < 1024 {
        crate::apply::apply_matrix(amps, qubits, m);
        return;
    }
    let mut sorted: Vec<u32> = qubits.to_vec();
    sorted.sort_unstable();
    let dim = 1usize << k;
    let offsets: Vec<u64> = (0..dim as u64).map(|x| deposit_bits(x, qubits)).collect();
    let cell = AmpCell::new(amps);
    let chunk = groups.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cell = &cell;
            let sorted = &sorted;
            let offsets = &offsets;
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(groups);
            if lo >= hi {
                continue;
            }
            scope.spawn(move || {
                let mut inbuf = vec![Complex64::ZERO; dim];
                let mut outbuf = vec![Complex64::ZERO; dim];
                for g in lo as u64..hi as u64 {
                    let base = insert_bits(g, sorted);
                    for (x, off) in offsets.iter().enumerate() {
                        // SAFETY: distinct groups touch disjoint indices.
                        inbuf[x] = unsafe { cell.read((base | off) as usize) };
                    }
                    m.mul_vec_into(&inbuf, &mut outbuf);
                    for (x, off) in offsets.iter().enumerate() {
                        // SAFETY: as above.
                        unsafe { cell.write((base | off) as usize, outbuf[x]) };
                    }
                }
            });
        }
    });
}

/// Applies a full gate with thread-level parallelism (general path only —
/// the dispatcher in `apply` remains the single-thread entry point).
pub fn apply_gate_parallel(amps: &mut [Complex64], gate: &Gate, threads: usize) {
    apply_matrix_parallel(amps, gate.qubits.as_slice(), &gate.matrix(), threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_gate;
    use crate::state::StateVector;
    use atlas_circuit::Circuit;

    #[test]
    fn parallel_matches_sequential() {
        let n = 12;
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.h(q).rz(0.05 * (q + 1) as f64, q);
        }
        let mut a = StateVector::zero_state(n);
        for g in prep.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        let mut b = a.clone();

        let mut work = Circuit::new(n);
        work.cx(3, 9).h(11).cp(0.7, 0, 10).swap(2, 8);
        for g in work.gates() {
            apply_gate(a.amplitudes_mut(), g);
        }
        for g in work.gates() {
            apply_gate_parallel(b.amplitudes_mut(), g, 4);
        }
        assert!(
            a.approx_eq(&b, 1e-10),
            "parallel diverged: {}",
            a.max_abs_diff(&b)
        );
    }

    #[test]
    fn single_thread_falls_back() {
        let mut a = StateVector::basis_state(4, 5);
        let mut b = a.clone();
        let mut c = Circuit::new(4);
        c.h(1).cx(1, 3);
        for g in c.gates() {
            apply_gate(a.amplitudes_mut(), g);
            apply_gate_parallel(b.amplitudes_mut(), g, 1);
        }
        assert!(a.approx_eq(&b, 1e-12));
    }
}
