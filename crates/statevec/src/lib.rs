//! # atlas-statevec
//!
//! The Schrödinger-style state-vector engine: amplitude storage, gate
//! application kernels (general `k`-qubit plus specialized single-qubit /
//! diagonal / permutation / controlled paths), gate fusion into dense
//! kernel matrices with structure-aware classification ([`FastKernel`]),
//! shared-memory-style batched execution (the CPU analogue of HyQuas
//! SHM-GROUPING that Atlas' shared-memory kernels model), a
//! multi-threaded apply path, the per-worker [`scratch`] arena that makes
//! steady-state kernel execution allocation-free, and the persistent
//! worker [`pool`] the distributed executor schedules shard kernels on.
//! See `docs/PERFORMANCE.md` for the kernel dispatch table and the
//! scratch-arena lifecycle.
//!
//! All apply functions operate on raw `&mut [Complex64]` amplitude slices so
//! that `atlas-machine` device memories and `atlas-core` shards can reuse
//! them without copies.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod apply;
pub mod batched;
pub mod fused;
pub mod measure;
pub mod parallel;
pub mod pool;
pub mod scratch;
pub mod state;

pub use apply::{apply_gate, apply_matrix, apply_matrix_generic, apply_matrix_with};
pub use batched::{apply_batched, apply_batched_with};
pub use fused::{
    apply_kernel, apply_kernel_with, classify_kernel, expand_to_kernel, fuse_gates, FastKernel,
};
pub use measure::{chunk_norms, norm_sqr_slice, signed_norm, signed_pair_sum, TopK, MEASURE_CHUNK};
pub use parallel::{apply_matrix_parallel, apply_matrix_parallel_with, PARALLEL_GROUP_CUTOFF};
pub use pool::{with_pool, Pool};
pub use scratch::Scratch;
pub use state::StateVector;

use atlas_circuit::Circuit;

/// Reference simulation: applies every gate of `circuit` in order to the
/// `|0…0⟩` state, single-threaded. This is the golden model the distributed
/// executor is validated against.
pub fn simulate_reference(circuit: &Circuit) -> StateVector {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    for g in circuit.gates() {
        apply_gate(sv.amplitudes_mut(), g);
    }
    sv
}
