//! # atlas-statevec
//!
//! The Schrödinger-style state-vector engine: amplitude storage, gate
//! application kernels (general `k`-qubit plus specialized single-qubit /
//! diagonal / controlled paths), gate fusion into dense kernel matrices,
//! shared-memory-style batched execution (the CPU analogue of HyQuas
//! SHM-GROUPING that Atlas' shared-memory kernels model), and a
//! multi-threaded apply path.
//!
//! All apply functions operate on raw `&mut [Complex64]` amplitude slices so
//! that `atlas-machine` device memories and `atlas-core` shards can reuse
//! them without copies.

pub mod apply;
pub mod batched;
pub mod fused;
pub mod parallel;
pub mod state;

pub use apply::{apply_gate, apply_matrix};
pub use batched::apply_batched;
pub use fused::{expand_to_kernel, fuse_gates};
pub use state::StateVector;

use atlas_circuit::Circuit;

/// Reference simulation: applies every gate of `circuit` in order to the
/// `|0…0⟩` state, single-threaded. This is the golden model the distributed
/// executor is validated against.
pub fn simulate_reference(circuit: &Circuit) -> StateVector {
    let mut sv = StateVector::zero_state(circuit.num_qubits());
    for g in circuit.gates() {
        apply_gate(sv.amplitudes_mut(), g);
    }
    sv
}
