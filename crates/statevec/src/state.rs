//! Owned state vectors and measurement utilities.

use atlas_qmath::{Complex64, EPS};

/// A full state vector over `n` qubits: `2^n` complex amplitudes, index bit
/// `j` = qubit `j`.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n: u32,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// `|0…0⟩` over `n` qubits.
    pub fn zero_state(n: u32) -> Self {
        assert!(
            n <= 30,
            "allocating 2^{n} amplitudes exceeds sane host memory"
        );
        let mut amps = vec![Complex64::ZERO; 1usize << n];
        amps[0] = Complex64::ONE;
        StateVector { n, amps }
    }

    /// The computational basis state `|index⟩`.
    pub fn basis_state(n: u32, index: u64) -> Self {
        let mut sv = StateVector::zero_state(n);
        sv.amps[0] = Complex64::ZERO;
        sv.amps[index as usize] = Complex64::ONE;
        sv
    }

    /// Wraps an existing amplitude vector (length must be a power of two).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let n = amps.len().trailing_zeros();
        StateVector { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// Immutable amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitudes.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Consumes the state, returning the amplitude vector.
    pub fn into_amplitudes(self) -> Vec<Complex64> {
        self.amps
    }

    /// Σ|αᵢ|² — should be 1 for a physical state.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Probability of measuring the basis state `index`.
    pub fn probability(&self, index: u64) -> f64 {
        self.amps[index as usize].norm_sqr()
    }

    /// Marginal probability that qubit `q` measures `1`.
    pub fn qubit_probability(&self, q: u32) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// `true` if every amplitude matches `other` within `eps`.
    pub fn approx_eq(&self, other: &StateVector, eps: f64) -> bool {
        self.n == other.n
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Largest absolute amplitude difference against `other`.
    pub fn max_abs_diff(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// `true` if the state is normalized within `eps`.
    pub fn is_normalized(&self, eps: f64) -> bool {
        (self.norm_sqr() - 1.0).abs() <= eps
    }

    /// The `k` most probable basis states as `(index, probability)`,
    /// descending, ties broken by ascending index.
    ///
    /// Selection runs through a bounded min-heap ([`crate::measure::TopK`])
    /// in `O(2^n log k)` — it never sorts the full `2^n` outcome list, so
    /// the common `k ≪ 2^n` case costs one streaming pass. Outcomes with
    /// probability at or below [`EPS`] are skipped.
    pub fn top_probabilities(&self, k: usize) -> Vec<(u64, f64)> {
        let mut top = crate::measure::TopK::new(k);
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > EPS {
                top.push(i as u64, p);
            }
        }
        top.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_is_basis_zero() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert_eq!(sv.probability(0), 1.0);
        assert!(sv.is_normalized(1e-12));
    }

    #[test]
    fn basis_state_places_amplitude() {
        let sv = StateVector::basis_state(3, 5);
        assert_eq!(sv.probability(5), 1.0);
        assert_eq!(sv.probability(0), 0.0);
        assert_eq!(sv.qubit_probability(0), 1.0); // 5 = 0b101
        assert_eq!(sv.qubit_probability(1), 0.0);
        assert_eq!(sv.qubit_probability(2), 1.0);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let a = StateVector::basis_state(2, 3);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
        let b = StateVector::basis_state(2, 1);
        assert!(a.fidelity(&b) < 1e-12);
    }

    #[test]
    fn top_probabilities_sorted() {
        let amps = vec![
            Complex64::real(0.8),
            Complex64::real(0.6),
            Complex64::ZERO,
            Complex64::ZERO,
        ];
        let sv = StateVector::from_amplitudes(amps);
        let top = sv.top_probabilities(2);
        assert_eq!(top[0].0, 0);
        assert!((top[0].1 - 0.64).abs() < 1e-12);
        assert_eq!(top[1].0, 1);
    }

    /// Pins the selection order of the bounded-heap `top_probabilities`:
    /// descending probability, ascending index on exact ties, and a `k`
    /// boundary that cuts through a tie group keeps the smallest indices.
    #[test]
    fn top_probabilities_pins_order_and_ties() {
        // Uniform state: every outcome ties at p = 1/8.
        let uniform = StateVector::from_amplitudes(vec![Complex64::real(1.0 / 8f64.sqrt()); 8]);
        assert_eq!(
            uniform
                .top_probabilities(3)
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>(),
            vec![0, 1, 2],
            "ties must keep the smallest indices"
        );
        // Mixed: distinct probabilities interleaved with a tie pair, and
        // amplitudes whose phases differ but probabilities tie exactly.
        let amps = vec![
            Complex64::real(0.1),      // p = 0.01
            Complex64::new(0.0, 0.5),  // p = 0.25  (tie, idx 1)
            Complex64::real(0.7),      // p = 0.49
            Complex64::real(-0.5),     // p = 0.25  (tie, idx 3)
            Complex64::ZERO,           // skipped
            Complex64::real(0.4),      // p = 0.16
            Complex64::ZERO,           // skipped
            Complex64::new(0.3, -0.3), // p = 0.18
        ];
        let sv = StateVector::from_amplitudes(amps);
        let idx: Vec<u64> = sv.top_probabilities(4).iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![2, 1, 3, 7]);
        // k larger than the non-negligible support returns everything.
        assert_eq!(sv.top_probabilities(100).len(), 6);
        // k = 0 is empty, not a panic.
        assert!(sv.top_probabilities(0).is_empty());
    }
}
