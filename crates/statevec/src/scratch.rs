//! Reusable per-worker scratch arena for the gate-application hot path.
//!
//! Every generic apply kernel needs the same transient state per call: a
//! gather buffer, an output buffer, and the group-offset table derived
//! from the gate's qubit set (`deposit_bits` over every in-group basis
//! index). Allocating those per gate is pure overhead on the `2^n` sweep —
//! a steady-state `EXECUTE` applies thousands of kernels whose qubit sets
//! repeat stage after stage. A [`Scratch`] owns all of it:
//!
//! * **buffers** (`inbuf`/`outbuf`/`out_off`) are `clear()` + `resize()`d
//!   per call, which never reallocates once capacity covers the largest
//!   kernel seen (kernels are ≤ 7 qubits, so ≤ 128 entries);
//! * **offset tables** are memoized per distinct qubit list in a map, so
//!   the `deposit_bits` scatter arithmetic runs once per (qubit set) and
//!   the table also records the layout facts the dispatcher needs
//!   (contiguous low window? identity order?);
//! * **pools** hand out owned buffers (`take_*`/`put_*`) for callers that
//!   nest scratch-using kernels (batched execution, scale folding) and
//!   therefore cannot share the flat buffers.
//!
//! The executor threads one `Scratch` per worker thread through the shard
//! programs via [`with_thread`]: pool workers persist across stages (see
//! [`crate::pool`]), so after the first stage warms the arena, kernel
//! execution performs **zero heap allocations per gate** — asserted by the
//! counting-allocator test in `tests/hotpath_alloc.rs`.

use atlas_qmath::{deposit_bits, Complex64, Matrix};
use std::cell::RefCell;
use std::collections::HashMap;

/// Memoized per-qubit-set addressing: the sorted qubit list (for
/// `insert_bits` group enumeration), the in-group offsets (`deposit_bits`
/// of every basis index over the qubit list *in gate order*), and the two
/// layout facts the kernel dispatcher branches on.
pub struct OffsetTable {
    /// The qubit list sorted ascending — the `insert_bits` argument.
    pub sorted: Vec<u32>,
    /// `offsets[x] = deposit_bits(x, qubits)` for `x < 2^k` (gate order).
    pub offsets: Vec<u64>,
    /// `qubits == [0, 1, …, k-1]` exactly: every group is a contiguous
    /// `2^k` chunk **and** `offsets[x] == x` — no gather at all.
    pub identity_order: bool,
    /// The qubit *set* is `{0, …, k-1}` (any order): groups are contiguous
    /// `2^k` chunks and every offset stays inside the chunk.
    pub low_window: bool,
}

/// Flat reusable buffers for the non-nesting apply kernels.
pub(crate) struct Bufs {
    /// Gather buffer (one kernel group of amplitudes).
    pub inbuf: Vec<Complex64>,
    /// Output buffer for the dense multiply.
    pub outbuf: Vec<Complex64>,
    /// Destination offsets for permutation kernels.
    pub out_off: Vec<u64>,
}

/// Memo of [`OffsetTable`]s with hit/miss/eviction counters.
///
/// Entries carry a last-use tick; at capacity the least-recently-used
/// entry is evicted, so a long-lived serve process cycling through more
/// than [`MEMO_MAX_ENTRIES`] distinct qubit sets keeps its hot tables
/// warm instead of rebuilding the whole memo forever. All three
/// counters are monotonic across evictions.
pub(crate) struct Tables {
    map: HashMap<Vec<u32>, (u64, OffsetTable)>,
    /// Home for tables too wide to be worth memoizing (`k` above
    /// [`MEMO_MAX_QUBITS`]): rebuilt per call, never inserted in `map`.
    transient: Option<OffsetTable>,
    /// Logical clock: bumped per lookup, stamped on the entry used.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Widest qubit list the memo retains. Fusion/shm kernels are ≤ 7 qubits,
/// so anything wider comes from ad-hoc public `apply_matrix` calls whose
/// `2^k`-entry tables are not worth pinning in thread-local storage.
const MEMO_MAX_QUBITS: usize = 11;

/// Hard cap on memoized qubit lists. A plan's distinct kernel qubit sets
/// number in the dozens; a long-lived process cycling through many
/// structurally different circuits must not grow the memo without bound,
/// so at capacity each new list evicts the least-recently-used entry
/// (cold sets churn through one slot; hot sets stay resident).
const MEMO_MAX_ENTRIES: usize = 256;

fn build_table(qubits: &[u32]) -> OffsetTable {
    let k = qubits.len();
    let mut sorted = qubits.to_vec();
    sorted.sort_unstable();
    let offsets: Vec<u64> = (0..1u64 << k).map(|x| deposit_bits(x, qubits)).collect();
    let low_window = sorted.iter().enumerate().all(|(i, &q)| q == i as u32);
    let identity_order = low_window && qubits.iter().enumerate().all(|(i, &q)| q == i as u32);
    OffsetTable {
        sorted,
        offsets,
        identity_order,
        low_window,
    }
}

impl Tables {
    /// Returns the table for `qubits`, building it on first sight. Memory
    /// is bounded: over-wide lists are served transiently and past
    /// [`MEMO_MAX_ENTRIES`] distinct lists each new one evicts the
    /// least-recently-used entry.
    pub(crate) fn lookup(&mut self, qubits: &[u32]) -> &OffsetTable {
        // Drop any previously served over-wide table — it must not stay
        // pinned in a thread-local arena past its one call.
        self.transient = None;
        if qubits.len() > MEMO_MAX_QUBITS {
            self.misses += 1;
            self.transient = Some(build_table(qubits));
            return self.transient.as_ref().expect("just set");
        }
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(qubits) {
            // Hit: re-stamp and serve. No allocation on this path — the
            // zero-alloc steady state of `tests/hotpath_alloc.rs` rides
            // on it.
            self.hits += 1;
            entry.0 = self.tick;
        } else {
            self.misses += 1;
            if self.map.len() >= MEMO_MAX_ENTRIES {
                // Evict the coldest entry, not the whole memo: a server
                // cycling through > MEMO_MAX_ENTRIES distinct qubit sets
                // must not rebuild its hot tables forever. The O(cap)
                // scan runs only on at-capacity misses, which already
                // pay a table build.
                let cold = self
                    .map
                    .iter()
                    .min_by_key(|(_, (t, _))| *t)
                    .map(|(k, _)| k.clone())
                    .expect("memo at capacity is non-empty");
                self.map.remove(&cold);
                self.evictions += 1;
            }
            self.map
                .insert(qubits.to_vec(), (self.tick, build_table(qubits)));
        }
        &self.map.get(qubits).expect("table just ensured").1
    }
}

/// The per-worker scratch arena. See the module docs for the lifecycle.
pub struct Scratch {
    pub(crate) bufs: Bufs,
    pub(crate) tables: Tables,
    amp_pool: Vec<Vec<Complex64>>,
    offset_pool: Vec<Vec<u64>>,
    qubit_pool: Vec<Vec<u32>>,
    mat_pool: Vec<Matrix>,
}

impl Scratch {
    /// An empty arena. Buffers and tables grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Scratch {
            bufs: Bufs {
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                out_off: Vec::new(),
            },
            tables: Tables {
                map: HashMap::new(),
                transient: None,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            },
            amp_pool: Vec::new(),
            offset_pool: Vec::new(),
            qubit_pool: Vec::new(),
            mat_pool: Vec::new(),
        }
    }

    /// Splits the arena into the flat buffers and the offset-table memo so
    /// a kernel can hold both mutably at once.
    pub(crate) fn split(&mut self) -> (&mut Bufs, &mut Tables) {
        (&mut self.bufs, &mut self.tables)
    }

    /// Offset-table cache hits so far (one per kernel application whose
    /// qubit set was seen before).
    pub fn table_hits(&self) -> u64 {
        self.tables.hits
    }

    /// Offset-table cache misses so far (one per *distinct* qubit list,
    /// plus one per rebuild of a previously evicted list).
    pub fn table_misses(&self) -> u64 {
        self.tables.misses
    }

    /// Offset-table LRU evictions so far (cold entries displaced once
    /// the memo reached capacity). Like hits and misses, monotonic for
    /// the lifetime of the arena — serve-mode cache-stats reports diff
    /// snapshots of all three.
    pub fn table_evictions(&self) -> u64 {
        self.tables.evictions
    }

    /// Takes an owned amplitude buffer from the pool (empty, capacity
    /// retained from previous use). Return it with [`Scratch::put_amps`].
    pub fn take_amps(&mut self) -> Vec<Complex64> {
        let mut v = self.amp_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns an amplitude buffer to the pool.
    pub fn put_amps(&mut self, v: Vec<Complex64>) {
        self.amp_pool.push(v);
    }

    /// Takes an owned offset buffer from the pool.
    pub fn take_offsets(&mut self) -> Vec<u64> {
        let mut v = self.offset_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns an offset buffer to the pool.
    pub fn put_offsets(&mut self, v: Vec<u64>) {
        self.offset_pool.push(v);
    }

    /// Takes an owned qubit-index buffer from the pool.
    pub fn take_qubits(&mut self) -> Vec<u32> {
        let mut v = self.qubit_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a qubit-index buffer to the pool.
    pub fn put_qubits(&mut self, v: Vec<u32>) {
        self.qubit_pool.push(v);
    }

    /// Takes an owned matrix from the pool (dimensions unspecified; fill
    /// it with [`Matrix::clone_scaled_from`] before use).
    pub fn take_matrix(&mut self) -> Matrix {
        self.mat_pool.pop().unwrap_or_else(|| Matrix::zeros(0, 0))
    }

    /// Returns a matrix to the pool.
    pub fn put_matrix(&mut self, m: Matrix) {
        self.mat_pool.push(m);
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

thread_local! {
    /// One arena per thread. Pool workers live for a whole `EXECUTE`
    /// (see [`crate::pool::with_pool`]), so their arenas stay warm across
    /// every stage of a run — and across runs on the main thread.
    static TLS: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Runs `f` with this thread's scratch arena.
///
/// Re-entrant calls (an apply wrapper invoked while the arena is already
/// borrowed) fall back to a fresh throwaway arena instead of panicking —
/// correctness never depends on reuse, only steady-state allocation
/// behavior does. Crate-internal hot paths thread an explicit `&mut
/// Scratch` precisely so this fallback never triggers for them.
pub fn with_thread<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    TLS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut Scratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_memoize_by_exact_qubit_order() {
        let mut s = Scratch::new();
        let (_, tables) = s.split();
        let a = tables.lookup(&[2, 0]).offsets.clone();
        let b = tables.lookup(&[0, 2]).offsets.clone();
        assert_eq!(a, vec![0, 4, 1, 5]);
        assert_eq!(b, vec![0, 1, 4, 5]);
        assert_eq!(s.table_misses(), 2);
        let _ = s.split().1.lookup(&[2, 0]);
        assert_eq!(s.table_hits(), 1);
        assert_eq!(s.table_misses(), 2);
    }

    #[test]
    fn layout_flags_classify_windows() {
        let mut s = Scratch::new();
        let (_, tables) = s.split();
        assert!(tables.lookup(&[0, 1, 2]).identity_order);
        assert!(tables.lookup(&[0, 1, 2]).low_window);
        let t = tables.lookup(&[1, 0]);
        assert!(!t.identity_order);
        assert!(t.low_window);
        let t = tables.lookup(&[0, 2]);
        assert!(!t.identity_order);
        assert!(!t.low_window);
    }

    #[test]
    fn memo_is_bounded() {
        let mut s = Scratch::new();
        let (_, tables) = s.split();
        // Over-wide lists are served transiently, not retained.
        let wide: Vec<u32> = (0..(MEMO_MAX_QUBITS as u32 + 1)).collect();
        let t = tables.lookup(&wide);
        assert!(t.identity_order);
        assert!(tables.map.is_empty());
        // Exceeding the entry cap evicts per insert instead of growing
        // (distinct 2-qubit lists, all positions < 64).
        for i in 0..(MEMO_MAX_ENTRIES as u32 + 8) {
            let _ = tables.lookup(&[i % 32, 32 + i / 32]);
        }
        assert_eq!(tables.map.len(), MEMO_MAX_ENTRIES);
        assert_eq!(s.table_hits(), 0);
        assert_eq!(s.table_evictions(), 8);
    }

    #[test]
    fn memo_evicts_cold_entries_and_keeps_hot_ones() {
        // The serve-mode churn scenario: one qubit set stays hot while a
        // stream of distinct cold sets overflows the memo. The hot entry
        // must hit on every round — pre-fix, the memo was cleared
        // wholesale at capacity, rebuilding the hot table forever.
        let mut s = Scratch::new();
        let (_, tables) = s.split();
        let hot = [0u32, 1];
        tables.lookup(&hot);
        let rounds = (MEMO_MAX_ENTRIES as u32) * 2;
        for i in 0..rounds {
            let _ = tables.lookup(&[i % 32, 32 + i / 32]); // distinct cold set
            let _ = tables.lookup(&hot);
        }
        // One hit per round: the hot entry was never evicted.
        assert_eq!(s.table_hits(), rounds as u64);
        // Every cold set missed exactly once (plus the hot warm-up miss).
        assert_eq!(s.table_misses(), rounds as u64 + 1);
        // Evictions: inserts beyond capacity, all of them cold.
        assert_eq!(
            s.table_evictions(),
            rounds as u64 + 1 - MEMO_MAX_ENTRIES as u64
        );
        assert_eq!(s.table_hits() + s.table_misses(), 1 + 2 * rounds as u64);
    }

    #[test]
    fn pools_recycle_capacity() {
        let mut s = Scratch::new();
        let mut v = s.take_amps();
        v.resize(64, Complex64::ZERO);
        let ptr = v.as_ptr();
        s.put_amps(v);
        let v2 = s.take_amps();
        assert_eq!(v2.as_ptr(), ptr);
        assert!(v2.capacity() >= 64);
        s.put_amps(v2);
    }

    #[test]
    fn with_thread_is_reentrancy_safe() {
        with_thread(|outer| {
            outer.split().1.lookup(&[0]);
            with_thread(|inner| {
                // The inner arena is fresh, not the borrowed outer one.
                assert_eq!(inner.table_misses(), 0);
            });
        });
    }
}
