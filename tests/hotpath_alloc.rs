//! Zero-allocation guarantee of the steady-state execution hot path.
//!
//! A counting global allocator wraps the system allocator; each test warms
//! the relevant scratch state with one pass, snapshots the allocation
//! counter, repeats the identical work, and asserts the second pass
//! allocated **nothing** (kernel level) or nothing amplitude-sized
//! (machine level, where per-step clock bookkeeping may grow a tiny
//! `Vec<StageTiming>`). This file is its own test binary on purpose: the
//! counter is process-global, so no unrelated test may run concurrently.

use atlas::machine::{CostModel, Machine, MachineSpec, ShardOp, ShardProgram};
use atlas::prelude::*;
use atlas::qmath::{Complex64, QubitPermutation};
use atlas::statevec::{
    apply_batched_with, apply_kernel_with, apply_matrix_with, classify_kernel, fuse_gates,
    simulate_reference, Pool, Scratch, StateVector,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Threshold above which an allocation counts as "large" (amplitude-buffer
/// sized, as opposed to clock-bookkeeping noise).
const LARGE: usize = 4096;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if layout.size() >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if new_size >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

fn large_allocs() -> u64 {
    LARGE_ALLOCS.load(Ordering::SeqCst)
}

fn dense_state(n: u32) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q).rz(0.1 * (q + 1) as f64, q);
    }
    simulate_reference(&c)
}

#[test]
fn warm_scratch_apply_layer_allocates_nothing() {
    let n = 12u32;
    let mut sv = dense_state(n);
    let mut scratch = Scratch::new();

    // One fused kernel per structural class, plus raw dense applies over
    // every dispatch layout (unrolled 1q/2q, low window, strided generic).
    let dense_qs: Vec<Vec<u32>> = vec![
        vec![0],
        vec![7],
        vec![0, 1],
        vec![5, 2],
        vec![0, 1, 2],
        vec![2, 0, 1],
        vec![1, 5, 9],
        vec![8, 3, 6, 11],
    ];
    let mats: Vec<(Vec<u32>, atlas::qmath::Matrix)> = dense_qs
        .iter()
        .map(|qs| {
            let mut kc = Circuit::new(n);
            for (i, &q) in qs.iter().enumerate() {
                kc.h(q).rz(0.2 + i as f64, q);
                if i > 0 {
                    kc.cx(qs[i - 1], q);
                }
            }
            (qs.clone(), fuse_gates(qs, kc.gates()))
        })
        .collect();

    let mut diag_c = Circuit::new(n);
    diag_c.t(1).cp(0.7, 1, 3).rz(0.3, 3);
    let diag_kernel = classify_kernel(&fuse_gates(&[1, 3], diag_c.gates()));
    let mut perm_c = Circuit::new(n);
    perm_c.cx(2, 6).x(6).swap(2, 9);
    let perm_kernel = classify_kernel(&fuse_gates(&[2, 6, 9], perm_c.gates()));
    let ctrl_kernel = classify_kernel(&GateKind::CRY(0.8).matrix());
    let mut dense_c = Circuit::new(n);
    dense_c.h(1).cx(1, 4).h(4);
    let dense_kernel = classify_kernel(&fuse_gates(&[1, 4], dense_c.gates()));

    let scale = Complex64::cis(0.37);

    let pass = |scratch: &mut Scratch, sv: &mut StateVector| {
        for (qs, m) in &mats {
            apply_matrix_with(scratch, sv.amplitudes_mut(), qs, m);
        }
        apply_kernel_with(
            scratch,
            sv.amplitudes_mut(),
            &[1, 3],
            &diag_kernel,
            scale,
            1,
        );
        apply_kernel_with(
            scratch,
            sv.amplitudes_mut(),
            &[2, 6, 9],
            &perm_kernel,
            scale,
            1,
        );
        apply_kernel_with(
            scratch,
            sv.amplitudes_mut(),
            &[5, 10],
            &ctrl_kernel,
            scale,
            1,
        );
        apply_kernel_with(
            scratch,
            sv.amplitudes_mut(),
            &[1, 4],
            &dense_kernel,
            scale,
            1,
        );
    };

    // Warm-up pass populates the arena (tables, pooled buffers).
    pass(&mut scratch, &mut sv);
    let misses = scratch.table_misses();

    let before = allocs();
    pass(&mut scratch, &mut sv);
    let delta = allocs() - before;
    assert_eq!(
        delta, 0,
        "steady-state apply layer performed {delta} heap allocations"
    );
    // Every qubit set was served from the memoized tables.
    assert_eq!(scratch.table_misses(), misses);
    assert!(scratch.table_hits() > 0);
}

#[test]
fn batched_allocations_are_independent_of_group_count() {
    // `apply_batched_with` compiles its gate list once per call (a
    // bounded number of small allocations); the per-group sweep itself
    // must allocate nothing. Compare a warm call over 2^3 groups with one
    // over 2^9 groups: identical allocation counts ⇒ nothing allocates
    // inside the group loop.
    let mut shm = Circuit::new(6);
    shm.cx(0, 2).t(2).h(1).cp(0.4, 1, 0);
    let mut scratch = Scratch::new();
    let mut small = dense_state(6);
    let mut big = dense_state(12);
    // Warm both state sizes once (pools, tables).
    apply_batched_with(
        &mut scratch,
        small.amplitudes_mut(),
        &[0, 1, 2],
        shm.gates(),
    );
    apply_batched_with(&mut scratch, big.amplitudes_mut(), &[0, 1, 2], shm.gates());

    let before = allocs();
    apply_batched_with(
        &mut scratch,
        small.amplitudes_mut(),
        &[0, 1, 2],
        shm.gates(),
    );
    let small_delta = allocs() - before;
    let before = allocs();
    apply_batched_with(&mut scratch, big.amplitudes_mut(), &[0, 1, 2], shm.gates());
    let big_delta = allocs() - before;
    assert_eq!(
        small_delta, big_delta,
        "group sweep allocates: {small_delta} allocs over 8 groups vs {big_delta} over 512"
    );
}

#[test]
fn warm_machine_execute_and_relayout_allocate_no_buffers() {
    let n = 10u32;
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 7,
    };
    let reference = dense_state(n);
    let mut machine = Machine::with_state(spec, CostModel::default(), &reference);

    let h = Gate::new(GateKind::H, &[1]).matrix();
    let cp = Gate::new(GateKind::CP(0.6), &[0, 2]).matrix();
    let shm_parts: Arc<Vec<(Vec<u32>, atlas::qmath::Matrix)>> = Arc::new(vec![
        (vec![3u32], GateKind::T.matrix()),
        (vec![0u32, 4], GateKind::CP(0.3).matrix()),
    ]);
    let programs: Vec<ShardProgram> = (0..machine.num_shards())
        .map(|_| {
            vec![
                ShardOp::Fusion {
                    qubits: Arc::new(vec![1]),
                    kernel: Arc::new(classify_kernel(&h)),
                    scale: Complex64::cis(0.21),
                },
                ShardOp::Fusion {
                    qubits: Arc::new(vec![0, 2]),
                    kernel: Arc::new(classify_kernel(&cp)),
                    scale: Complex64::ONE,
                },
                ShardOp::ShmParts {
                    parts: shm_parts.clone(),
                    per_amp_ns: 1.0,
                    scale: Complex64::cis(0.11),
                },
                ShardOp::Scale(Complex64::cis(0.05)),
            ]
        })
        .collect();

    let mut map: Vec<u32> = (0..n).collect();
    map.swap(2, 8); // crosses the shard boundary → general ping-pong path
    let perm = QubitPermutation::from_map(map);

    // Warm-up: first program run builds the thread-local arena, first
    // permute allocates the ping-pong spare.
    machine.run_shard_programs(&programs, &Pool::SERIAL);
    machine.permute_state(&perm, 0);
    machine.permute_state(&perm, 0); // back to the original layout

    let before_large = large_allocs();
    let before_all = allocs();
    machine.run_shard_programs(&programs, &Pool::SERIAL);
    let kernel_delta = allocs() - before_all;
    machine.permute_state(&perm, 0);
    machine.permute_state(&perm, 0);
    machine.stage_barrier();
    let large_delta = large_allocs() - before_large;
    assert_eq!(
        kernel_delta, 0,
        "steady-state shard-program execution performed {kernel_delta} heap allocations"
    );
    assert_eq!(
        large_delta, 0,
        "steady-state relayout allocated {large_delta} amplitude-sized buffers"
    );

    // And the engine still computes the right amplitudes.
    assert!(machine.gather_state().is_normalized(1e-9));
}

#[test]
fn enabled_recorder_steady_state_records_without_allocating() {
    // The telemetry contract: attaching a live recorder keeps the warm
    // execution hot path at ZERO heap allocations — events go into
    // fixed-capacity thread-local buffers and drain into a pre-reserved
    // sink, and metric republication only updates counter slots the
    // warm-up pass created. Relayout keeps the same bar as the
    // recorder-off test above: no amplitude-sized buffers.
    let n = 10u32;
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 7,
    };
    let reference = dense_state(n);
    let mut machine = Machine::with_state(spec, CostModel::default(), &reference);
    let recorder = Recorder::enabled();
    machine.set_recorder(recorder.clone());

    let h = Gate::new(GateKind::H, &[1]).matrix();
    let programs: Vec<ShardProgram> = (0..machine.num_shards())
        .map(|_| {
            vec![ShardOp::Fusion {
                qubits: Arc::new(vec![1]),
                kernel: Arc::new(classify_kernel(&h)),
                scale: Complex64::ONE,
            }]
        })
        .collect();
    let mut map: Vec<u32> = (0..n).collect();
    map.swap(2, 8);
    let perm = QubitPermutation::from_map(map);

    // Warm-up: builds the scratch arena, the recorder's thread-local
    // event buffer, and the metric registry's counter slots.
    machine.run_shard_programs(&programs, &Pool::SERIAL);
    machine.permute_state(&perm, 0);
    machine.permute_state(&perm, 0);
    machine.stage_barrier();

    let before_large = large_allocs();
    let before = allocs();
    machine.run_shard_programs(&programs, &Pool::SERIAL);
    let kernel_delta = allocs() - before;
    machine.permute_state(&perm, 0);
    machine.permute_state(&perm, 0);
    let large_delta = large_allocs() - before_large;
    assert_eq!(
        kernel_delta, 0,
        "recording-enabled steady state performed {kernel_delta} heap allocations"
    );
    assert_eq!(
        large_delta, 0,
        "recording-enabled relayout allocated {large_delta} amplitude-sized buffers"
    );

    // The measured region really recorded: every second-pass event is in
    // the sink (nothing overflowed), alongside the warm-up pass's.
    assert_eq!(recorder.dropped(), 0);
    let events = recorder.drain();
    let kernel_spans = events.iter().filter(|e| e.name == "kernel.apply").count();
    let reshuffles = events
        .iter()
        .filter(|e| e.name == "machine.reshuffle")
        .count();
    assert_eq!(kernel_spans, 2 * machine.num_shards());
    assert_eq!(reshuffles, 4);
}
