//! Integration tests of the multi-tenant session pool (`atlas-serve`):
//! cache-hit/cache-miss differential (byte-identical outputs), tenant
//! round-robin fairness, bounded-queue backpressure, cancellation, and
//! a many-client stress run whose accounting must balance exactly.
//!
//! The plan-*once* property (the staging-invocation counter across
//! tenants) lives in `tests/serve_plan_once.rs`, its own process, so
//! the global counter is not shared with unrelated tests.

use atlas::prelude::*;
use atlas::serve::{JobOutcome, JobOutput, JobRequest, ServeConfig, SessionPool};

fn spec() -> MachineSpec {
    MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    }
}

/// Single-threaded jobs; gather the state so the differential can
/// compare amplitudes bit-for-bit.
fn cfg() -> AtlasConfig {
    AtlasConfig {
        threads: 1,
        final_unpermute: true,
        ..AtlasConfig::default()
    }
}

fn pool(serve: ServeConfig) -> SessionPool {
    SessionPool::new(spec(), CostModel::default(), cfg(), serve).unwrap()
}

fn executed(outcome: Result<JobOutcome, AtlasError>) -> JobOutput {
    match outcome.expect("job failed") {
        JobOutcome::Output(out) => out,
        JobOutcome::Cancelled => panic!("job unexpectedly cancelled"),
        JobOutcome::DeadlineExceeded => panic!("job unexpectedly hit a deadline"),
    }
}

/// Acceptance criterion: a cache **hit** must produce byte-identical
/// results to a cache **miss** — same model clock, same kernel count,
/// same amplitudes to the last bit. (This is exactly what the fixed
/// fingerprint protects: an aliased fingerprint would hand a tenant
/// some *other* circuit's plan.)
#[test]
fn cache_hit_is_byte_identical_to_cache_miss() {
    let circuit = atlas::circuit::generators::qaoa(8);

    // Fresh pool, fresh cache: this run PLANs (miss).
    let cold = pool(ServeConfig::default());
    let miss = executed(
        cold.submit("a", circuit.clone(), JobRequest::Execute)
            .unwrap()
            .wait(),
    );
    // Same pool, same fingerprint: this run reuses the plan (hit).
    let hit = executed(
        cold.submit("b", circuit.clone(), JobRequest::Execute)
            .unwrap()
            .wait(),
    );
    let stats = cold.shutdown();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);

    let (
        JobOutput::Executed {
            model_secs: m0,
            kernels: k0,
            norm: n0,
            top: t0,
            state: s0,
        },
        JobOutput::Executed {
            model_secs: m1,
            kernels: k1,
            norm: n1,
            top: t1,
            state: s1,
        },
    ) = (miss, hit)
    else {
        panic!("expected Executed outputs");
    };
    assert_eq!(m0.to_bits(), m1.to_bits(), "model clock drifted on a hit");
    assert_eq!(k0, k1);
    assert_eq!(n0.to_bits(), n1.to_bits());
    assert_eq!(t0.len(), t1.len());
    for ((b0, p0), (b1, p1)) in t0.iter().zip(&t1) {
        assert_eq!(b0, b1);
        assert_eq!(p0.to_bits(), p1.to_bits());
    }
    let (s0, s1) = (s0.expect("state gathered"), s1.expect("state gathered"));
    for (x, y) in s0.amplitudes().iter().zip(s1.amplitudes()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}

/// Sampling through the pool equals sampling through the session API
/// directly — the pool adds scheduling, not physics.
#[test]
fn pooled_sampling_matches_direct_session() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let p = pool(ServeConfig::default());
    let out = executed(
        p.submit(
            "t",
            circuit.clone(),
            JobRequest::Sample { shots: 64, seed: 9 },
        )
        .unwrap()
        .wait(),
    );
    let JobOutput::Sampled { counts } = out else {
        panic!("expected Sampled");
    };
    let direct = Planner::new(spec(), CostModel::default(), cfg())
        .plan(&circuit)
        .unwrap()
        .execute(&circuit)
        .unwrap();
    assert_eq!(counts, direct.measurements.sample_counts(64, 9));
}

/// Worker-count invariance: the pool's concurrency knob is scheduling,
/// not physics, so fixed-seed outputs of the deterministic Clifford
/// families must be **byte-identical** whether one worker or four drain
/// the queue — even with several tenants' jobs in flight at once.
#[test]
fn fixed_seed_outputs_are_identical_across_worker_counts() {
    let families = [
        atlas::circuit::generators::ghz(9),
        atlas::circuit::generators::clifford(8),
    ];
    let run_all = |workers: usize| -> Vec<(Vec<(u64, u64)>, u64)> {
        let p = pool(ServeConfig {
            workers,
            ..ServeConfig::default()
        });
        // Enqueue everything before waiting so multi-worker pools
        // genuinely execute jobs concurrently.
        let mut handles = Vec::new();
        for (i, c) in families.iter().enumerate() {
            for j in 0..3u64 {
                handles.push(
                    p.submit(
                        format!("tenant-{i}-{j}").as_str(),
                        c.clone(),
                        JobRequest::Sample {
                            shots: 64,
                            seed: 7 + j,
                        },
                    )
                    .unwrap(),
                );
            }
        }
        let outs: Vec<(Vec<(u64, u64)>, u64)> = handles
            .into_iter()
            .map(|h| {
                let JobOutput::Sampled { counts } = executed(h.wait()) else {
                    panic!("expected Sampled");
                };
                let total = counts.iter().map(|(_, c)| c).sum();
                (counts, total)
            })
            .collect();
        p.shutdown();
        outs
    };
    let baseline = run_all(1);
    for (counts, total) in &baseline {
        assert_eq!(*total, 64);
        assert!(!counts.is_empty());
    }
    for workers in [2, 4] {
        assert_eq!(
            baseline,
            run_all(workers),
            "sampled counts drifted at workers = {workers}"
        );
    }
}

/// Round-robin across tenants: one flooding tenant cannot starve the
/// others. Submission order a0,a1,a2,b0,c0 must dispatch as
/// a0,b0,c0,a1,a2 (one job per tenant per ring pass; FIFO per tenant).
#[test]
fn tenants_are_scheduled_round_robin() {
    let p = pool(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    p.pause(); // line the queue up deterministically
    let circuit = atlas::circuit::generators::qaoa(8);
    let ids: Vec<u64> = [("alice", 3), ("bob", 1), ("carol", 1)]
        .iter()
        .flat_map(|&(tenant, jobs)| {
            (0..jobs)
                .map(|_| {
                    p.submit(tenant, circuit.clone(), JobRequest::Plan)
                        .unwrap()
                        .id()
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let (a0, a1, a2, b0, c0) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
    p.resume();
    p.wait_idle();
    assert_eq!(
        p.dequeue_log(),
        vec![a0, b0, c0, a1, a2],
        "round-robin must interleave tenants, FIFO within a tenant"
    );
}

/// Backpressure: a full queue fast-fails with the typed
/// [`AtlasError::Overloaded`] carrying the exact depth and capacity,
/// and counts the rejection; draining reopens the pool.
#[test]
fn full_queue_rejects_with_typed_overloaded() {
    let p = pool(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 4,
        ..ServeConfig::default()
    });
    p.pause();
    let circuit = atlas::circuit::generators::qaoa(8);
    let h0 = p.submit("t", circuit.clone(), JobRequest::Plan).unwrap();
    let h1 = p.submit("t", circuit.clone(), JobRequest::Plan).unwrap();
    match p.submit("t", circuit.clone(), JobRequest::Plan) {
        Err(AtlasError::Overloaded {
            queued: 2,
            capacity: 2,
        }) => {}
        other => panic!("expected Overloaded{{2,2}}, got {other:?}"),
    }
    p.resume();
    executed(h0.wait());
    executed(h1.wait());
    p.wait_idle();
    // Space again: accepted.
    let h2 = p.submit("t", circuit, JobRequest::Plan).unwrap();
    executed(h2.wait());
    let stats = p.shutdown();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_submitted, 3);
    assert_eq!(stats.max_queued, 2, "queue never exceeds its capacity");
}

/// A token cancelled while the job is still queued answers
/// `Cancelled` without running EXECUTE.
#[test]
fn queued_jobs_cancel_cleanly() {
    let p = pool(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    p.pause();
    let circuit = atlas::circuit::generators::qaoa(8);
    let keep = p.submit("t", circuit.clone(), JobRequest::Execute).unwrap();
    let drop_ = p.submit("t", circuit, JobRequest::Execute).unwrap();
    drop_.cancel();
    assert!(drop_.cancel_token().is_cancelled());
    p.resume();
    executed(keep.wait());
    match drop_.wait() {
        Ok(JobOutcome::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let stats = p.shutdown();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_completed, 1);
}

/// Job-level failures come back typed on the handle, in-band — they
/// don't poison the pool or other tenants.
#[test]
fn typed_errors_are_answered_in_band() {
    let p = pool(ServeConfig::default());
    // 4 qubits < L + G = 6.
    let tiny = atlas::circuit::generators::ghz(4);
    match p.submit("t", tiny, JobRequest::Execute).unwrap().wait() {
        Err(AtlasError::CircuitTooSmall { qubits: 4, .. }) => {}
        other => panic!("expected CircuitTooSmall, got {other:?}"),
    }
    // Mismatched Pauli width is caught before EXECUTE.
    let circuit = atlas::circuit::generators::qaoa(8);
    let pauli: PauliString = "ZZ".parse().unwrap();
    match p
        .submit("t", circuit.clone(), JobRequest::Expect { pauli })
        .unwrap()
        .wait()
    {
        Err(AtlasError::InvalidConfig { reason }) => {
            assert!(reason.contains("Pauli"), "unhelpful reason: {reason}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // The pool still serves healthy jobs afterwards.
    executed(p.submit("t", circuit, JobRequest::Plan).unwrap().wait());
    let stats = p.shutdown();
    assert_eq!(stats.jobs_failed, 2);
    assert_eq!(stats.jobs_completed, 1);
}

/// The LRU plan cache is bounded: distinct fingerprints beyond the
/// capacity evict the coldest plan, and the counters stay consistent.
#[test]
fn plan_cache_is_bounded_lru() {
    let p = pool(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 2,
        ..ServeConfig::default()
    });
    // Three structurally distinct circuits (different gate counts).
    let mut circuits = Vec::new();
    for extra in 0..3 {
        let mut c = atlas::circuit::generators::ghz(8);
        for q in 0..extra {
            c.h(q);
        }
        circuits.push(c);
    }
    for c in &circuits {
        executed(p.submit("t", c.clone(), JobRequest::Plan).unwrap().wait());
    }
    // Re-run the most recent one: still cached. The oldest was evicted.
    executed(
        p.submit("t", circuits[2].clone(), JobRequest::Plan)
            .unwrap()
            .wait(),
    );
    executed(
        p.submit("t", circuits[0].clone(), JobRequest::Plan)
            .unwrap()
            .wait(),
    );
    let stats = p.shutdown();
    assert_eq!(stats.cache_entries, 2);
    assert_eq!(
        stats.cache_misses, 4,
        "circuits[0] re-planned after eviction"
    );
    assert_eq!(stats.cache_hits, 1, "circuits[2] was still resident");
    assert_eq!(stats.cache_evictions, 2);
}

/// Many-client stress: concurrent tenants over a tight queue with
/// scattered cancellations. Every handle resolves, the queue never
/// overruns its bound, and the pool's accounting balances exactly.
#[test]
fn concurrent_tenants_with_cancellations_balance_exactly() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const TENANTS: usize = 4;
    const JOBS_PER_TENANT: usize = 6;
    let p = Arc::new(pool(ServeConfig {
        workers: 2,
        queue_capacity: 3,
        cache_capacity: 4,
        ..ServeConfig::default()
    }));
    let ok = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    let base = atlas::circuit::generators::qaoa(8);

    let clients: Vec<_> = (0..TENANTS)
        .map(|t| {
            let (p, ok, cancelled) = (p.clone(), ok.clone(), cancelled.clone());
            let base = base.clone();
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                for j in 0..JOBS_PER_TENANT {
                    // Shifted parameters: same fingerprint, shared plan.
                    let point = base.map_params(|_, _, x| x + 0.01 * (t * 7 + j) as f64);
                    // Blocking submit: backpressure, not job loss.
                    let h = p
                        .submit_blocking(&tenant, point, JobRequest::Execute)
                        .expect("submit_blocking never rejects");
                    if (t + j) % 3 == 0 {
                        h.cancel(); // may land before or after dispatch
                    }
                    match h.wait().expect("no typed failures in this workload") {
                        JobOutcome::Output(JobOutput::Executed { norm, .. }) => {
                            assert!((norm - 1.0).abs() < 1e-9);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        JobOutcome::Output(other) => panic!("unexpected output {other:?}"),
                        JobOutcome::Cancelled => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        JobOutcome::DeadlineExceeded => {
                            panic!("no deadlines in this workload")
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let p = Arc::into_inner(p).expect("all clients done");
    let stats = p.shutdown();
    let total = (TENANTS * JOBS_PER_TENANT) as u64;
    assert_eq!(stats.jobs_submitted, total);
    assert_eq!(stats.jobs_rejected, 0, "blocking submits never reject");
    assert_eq!(
        stats.jobs_completed + stats.jobs_cancelled,
        total,
        "every job terminates exactly once"
    );
    assert_eq!(stats.jobs_completed, ok.load(Ordering::Relaxed));
    assert_eq!(stats.jobs_cancelled, cancelled.load(Ordering::Relaxed));
    assert!(
        stats.max_queued <= 3,
        "queue depth {} exceeded its bound",
        stats.max_queued
    );
    // One structure: one plan, shared by everyone who executed. Jobs
    // cancelled *at dequeue* skip the cache lookup; jobs cancelled
    // after it don't — the split is timing-dependent, so the lookup
    // count is bracketed: every completed job looked up the cache,
    // every cancelled one may or may not have.
    assert_eq!(stats.cache_misses, 1);
    let lookups = stats.cache_hits + stats.cache_misses;
    assert!(
        lookups >= stats.jobs_completed && lookups <= total,
        "cache lookups {lookups} outside [{}, {total}]",
        stats.jobs_completed
    );
}
