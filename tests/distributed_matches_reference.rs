//! End-to-end functional validation: the full Atlas pipeline (staging ILP
//! → kernelization DP → insular specialization → sharded execution with
//! all-to-alls) must reproduce the reference simulator's amplitudes on
//! every benchmark family, machine shape, and on arbitrary random
//! circuits.

mod common;

use atlas::prelude::*;
use proptest::prelude::*;

#[test]
fn every_family_on_a_16_gpu_cluster() {
    // 4 nodes × 4 GPUs, L = n-4: all sixteen shards exercised.
    for fam in Family::table1() {
        let n = 10;
        let circuit = fam.generate(n);
        let spec = MachineSpec {
            nodes: 4,
            gpus_per_node: 4,
            local_qubits: n - 4,
        };
        let got = common::run_atlas(&circuit, spec);
        let want = simulate_reference(&circuit);
        let diff = got.max_abs_diff(&want);
        assert!(diff < 1e-9, "{fam:?}: diverged by {diff}");
    }
}

#[test]
fn hhl_case_study_circuit() {
    // The Table II workload (gates ≫ qubits), shrunk to a testable size.
    let circuit = atlas::circuit::generators::hhl_padded(5, 9);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    let got = common::run_atlas(&circuit, spec);
    let want = simulate_reference(&circuit);
    assert!(got.max_abs_diff(&want) < 1e-8);
}

#[test]
fn extreme_split_many_stages() {
    // L = 4 on 11 qubits: long stage chains, heavy remapping.
    for fam in [Family::Qft, Family::Su2Random, Family::Ae] {
        let circuit = fam.generate(11);
        let spec = MachineSpec {
            nodes: 4,
            gpus_per_node: 2,
            local_qubits: 4,
        };
        let got = common::run_atlas(&circuit, spec);
        let want = simulate_reference(&circuit);
        let diff = got.max_abs_diff(&want);
        assert!(diff < 1e-9, "{fam:?}: diverged by {diff}");
    }
}

#[test]
fn all_staging_algorithms_agree_functionally() {
    use atlas::core::config::StagingAlgo;
    let circuit = Family::QpeExact.generate(9);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    let want = simulate_reference(&circuit);
    for algo in [
        StagingAlgo::IlpSearch,
        StagingAlgo::GenericIlp,
        StagingAlgo::Snuqs,
    ] {
        let mut cfg = AtlasConfig::for_validation();
        cfg.staging = algo;
        let got = simulate(&circuit, spec, CostModel::default(), &cfg, false)
            .unwrap()
            .state
            .unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9, "{algo:?} diverged");
    }
}

#[test]
fn all_kernelizers_agree_functionally() {
    use atlas::core::config::KernelAlgo;
    let circuit = Family::Vqc.generate(9);
    let spec = MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 6,
    };
    let want = simulate_reference(&circuit);
    for algo in [
        KernelAlgo::Dp,
        KernelAlgo::Ordered,
        KernelAlgo::Greedy(5),
        KernelAlgo::GreedyHybrid(6),
    ] {
        let mut cfg = AtlasConfig::for_validation();
        cfg.kernelizer = algo;
        let got = simulate(&circuit, spec, CostModel::default(), &cfg, false)
            .unwrap()
            .state
            .unwrap();
        assert!(got.max_abs_diff(&want) < 1e-9, "{algo:?} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits over the full alphabet, random machine splits.
    #[test]
    fn random_circuits_match_reference(
        circuit in common::arb_circuit(7, 40),
        nodes_log in 0u32..3,
        l in 3u32..6,
    ) {
        let g = nodes_log.min(7 - l);
        let spec = MachineSpec {
            nodes: 1 << g,
            gpus_per_node: 2,
            local_qubits: l,
        };
        let got = common::run_atlas(&circuit, spec);
        let want = simulate_reference(&circuit);
        prop_assert!(got.max_abs_diff(&want) < 1e-9,
            "diverged by {}", got.max_abs_diff(&want));
    }
}
