//! Chaos tests: seeded fault storms against the session pool.
//!
//! The fault-injection harness ([`FaultPlan`]) decides, as a pure
//! function of `(seed, site, job id)`, which jobs panic, get force-
//! cancelled, hit deadline pressure, or fail allocation. These tests
//! drive multi-tenant storms through it and hold the pool to the
//! failure contract of `docs/SERVE.md`:
//!
//! * **exact accounting** — completed + cancelled + deadline-exceeded
//!   + panicked + failed = submitted, with rejections counted apart;
//! * **blast-radius zero** — jobs not selected by any fault site are
//!   byte-identical to a fault-free run;
//! * **scheduling-invariance** — the same seed produces the same
//!   per-job outcomes for any worker count;
//! * **poison recovery** — a panic under the plan-cache lock never
//!   wedges the pool for later jobs.

use std::time::{Duration, Instant};

use atlas::prelude::*;
use atlas::serve::{
    FaultPlan, FaultSite, JobOutcome, JobOutput, JobRequest, PoolStats, ServeConfig, SessionPool,
};

const TENANTS: [&str; 3] = ["alice", "bob", "carol"];
const STORM_JOBS: u64 = 24;

fn spec() -> MachineSpec {
    MachineSpec {
        nodes: 2,
        gpus_per_node: 2,
        local_qubits: 5,
    }
}

/// Single-threaded jobs with the state gathered, so "byte-identical"
/// below means amplitudes to the last bit, not just summaries.
fn cfg() -> AtlasConfig {
    AtlasConfig {
        threads: 1,
        final_unpermute: true,
        ..AtlasConfig::default()
    }
}

fn pool_with(fault: FaultPlan, workers: usize) -> SessionPool {
    SessionPool::new(
        spec(),
        CostModel::default(),
        cfg(),
        ServeConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 32,
            fault_plan: fault,
        },
    )
    .unwrap()
}

/// Storm job `i`: structurally *unique* (i + 1 trailing RZ gates), so
/// every job is a plan-cache miss no matter which worker ran first —
/// the [`FaultSite::PlanPanic`] schedule stays scheduling-invariant.
fn storm_circuit(i: u64) -> Circuit {
    let mut c = atlas::circuit::generators::qaoa(8);
    for k in 0..=i {
        c.rz(0.1 + 0.05 * k as f64, (k % 8) as u32);
    }
    c
}

/// Storm job `i`'s request: cycle through all four kinds.
fn storm_request(i: u64) -> JobRequest {
    match i % 4 {
        0 => JobRequest::Execute,
        1 => JobRequest::Sample { shots: 16, seed: 7 },
        2 => JobRequest::Expect {
            pauli: "IIIIIIZZ".parse().unwrap(),
        },
        _ => JobRequest::Plan,
    }
}

/// Mirror of the worker's fault priority order (`process_job_inner`):
/// the first site to claim a job decides its outcome.
fn expected_site(plan: &FaultPlan, id: u64) -> Option<FaultSite> {
    [
        FaultSite::WorkerPanic,
        FaultSite::ForceCancel,
        FaultSite::DeadlinePressure,
        FaultSite::PlanPanic,
        FaultSite::AllocFail,
    ]
    .into_iter()
    .find(|&site| plan.should_inject(site, id))
}

fn outcome_kind(r: &Result<JobOutcome, AtlasError>) -> &'static str {
    match r {
        Ok(JobOutcome::Output(_)) => "ok",
        Ok(JobOutcome::Cancelled) => "cancelled",
        Ok(JobOutcome::DeadlineExceeded) => "deadline-exceeded",
        Err(AtlasError::JobPanicked { .. }) => "panicked",
        Err(AtlasError::ResourceExhausted { .. }) => "resource-exhausted",
        Err(_) => "failed",
    }
}

fn expected_kind(site: Option<FaultSite>) -> &'static str {
    match site {
        None => "ok",
        Some(FaultSite::WorkerPanic) | Some(FaultSite::PlanPanic) => "panicked",
        Some(FaultSite::ForceCancel) => "cancelled",
        Some(FaultSite::DeadlinePressure) => "deadline-exceeded",
        Some(FaultSite::AllocFail) => "resource-exhausted",
    }
}

/// Runs the standard 24-job multi-tenant storm and returns, per job id,
/// the outcome kind and (for completed jobs) the full output rendered
/// via `Debug` — amplitudes included — plus the final pool counters.
fn run_storm(
    fault: FaultPlan,
    workers: usize,
) -> (Vec<&'static str>, Vec<Option<String>>, PoolStats) {
    let pool = pool_with(fault, workers);
    let mut handles = Vec::new();
    for i in 0..STORM_JOBS {
        let tenant = TENANTS[(i % 3) as usize];
        let h = pool
            .submit_blocking(tenant, storm_circuit(i), storm_request(i))
            .expect("storm jobs fit the budget and block for queue space");
        assert_eq!(h.id(), i, "accepted ids are dense in submission order");
        handles.push(h);
    }
    let mut kinds = Vec::new();
    let mut outputs = Vec::new();
    for h in handles {
        let r = h.wait();
        kinds.push(outcome_kind(&r));
        outputs.push(match r {
            Ok(JobOutcome::Output(out)) => Some(format!("{out:?}")),
            _ => None,
        });
    }
    let stats = pool.shutdown();
    (kinds, outputs, stats)
}

/// The tentpole invariant: a seeded storm over ≥ 3 fault kinds has
/// (a) outcomes exactly matching the schedule derived from the seed,
/// (b) exact accounting, (c) byte-identical outputs for fault-free
/// jobs, and (d) identical per-job outcomes across worker counts.
#[test]
fn seeded_storm_accounting_blast_radius_and_worker_invariance() {
    let fault = FaultPlan::seeded(2024, 200_000);

    // The expected schedule is a pure function of the seed — derive it
    // here, independently of the pool.
    let expected: Vec<_> = (0..STORM_JOBS).map(|i| expected_site(&fault, i)).collect();
    let distinct_kinds = {
        let mut kinds: Vec<_> = expected.iter().flatten().collect();
        kinds.sort_by_key(|s| format!("{s:?}"));
        kinds.dedup();
        kinds.len()
    };
    assert!(
        distinct_kinds >= 3,
        "storm seed must exercise >= 3 fault kinds, got {distinct_kinds}: {expected:?}"
    );
    let clean = expected.iter().filter(|s| s.is_none()).count();
    assert!(
        clean >= 4,
        "storm seed must leave some jobs fault-free, got {clean}"
    );

    let (kinds4, outputs4, stats4) = run_storm(fault.clone(), 4);

    // (a) Outcomes match the derived schedule exactly.
    for (i, site) in expected.iter().enumerate() {
        assert_eq!(
            kinds4[i],
            expected_kind(*site),
            "job {i}: expected {site:?}"
        );
    }

    // (b) Exact accounting: every accepted job reaches exactly one
    // terminal counter; nothing was rejected in this storm.
    assert_eq!(stats4.jobs_submitted, STORM_JOBS);
    assert_eq!(stats4.jobs_rejected, 0);
    assert_eq!(
        stats4.jobs_completed
            + stats4.jobs_cancelled
            + stats4.jobs_deadline_exceeded
            + stats4.jobs_panicked
            + stats4.jobs_failed,
        stats4.jobs_submitted,
        "terminal counters must sum to submissions: {stats4:?}"
    );
    assert!(stats4.jobs_panicked >= 1, "{stats4:?}");

    // (c) Blast radius: fault-free jobs are byte-identical to a run
    // with no fault plan at all.
    let (kinds0, outputs0, stats0) = run_storm(FaultPlan::disabled(), 4);
    assert!(kinds0.iter().all(|&k| k == "ok"), "{kinds0:?}");
    assert_eq!(stats0.jobs_completed, STORM_JOBS);
    for (i, site) in expected.iter().enumerate() {
        if site.is_none() {
            assert_eq!(
                outputs4[i], outputs0[i],
                "fault-free job {i} was perturbed by the storm"
            );
        }
    }

    // (d) Same seed, different worker count: identical per-job
    // outcomes and identical outputs.
    let (kinds1, outputs1, stats1) = run_storm(fault, 1);
    assert_eq!(kinds4, kinds1);
    assert_eq!(outputs4, outputs1);
    assert_eq!(stats4.jobs_panicked, stats1.jobs_panicked);
    assert_eq!(stats4.jobs_cancelled, stats1.jobs_cancelled);
    assert_eq!(stats4.jobs_deadline_exceeded, stats1.jobs_deadline_exceeded);
    assert_eq!(stats4.jobs_failed, stats1.jobs_failed);
}

/// A panic *under the plan-cache lock* (the poison case) must not wedge
/// the pool: the next job with the same circuit plans normally, and the
/// stats/dequeue-log accessors (which take the same locks) keep
/// working.
#[test]
fn plan_cache_lock_poison_recovers() {
    // Find a seed whose PlanPanic stream claims job 0 but not job 1 —
    // self-documenting, and independent of the RNG's internals.
    let seed = (0u64..)
        .find(|&s| {
            let p = FaultPlan::with_rates(s, [0, 500_000, 0, 0, 0]);
            p.should_inject(FaultSite::PlanPanic, 0) && !p.should_inject(FaultSite::PlanPanic, 1)
        })
        .unwrap();
    let fault = FaultPlan::with_rates(seed, [0, 500_000, 0, 0, 0]);
    let pool = pool_with(fault, 1);
    let circuit = atlas::circuit::generators::qaoa(8);

    // Job 0 panics while holding the cache lock.
    let h0 = pool
        .submit_blocking("alice", circuit.clone(), JobRequest::Plan)
        .unwrap();
    match h0.wait() {
        Err(AtlasError::JobPanicked {
            job,
            payload_summary,
        }) => {
            assert_eq!(job, 0);
            assert!(
                payload_summary.contains("plan-cache lock"),
                "summary should carry the panic message, got: {payload_summary}"
            );
        }
        other => panic!("expected JobPanicked, got {other:?}"),
    }

    // The poisoned lock recovers: same fingerprint plans cleanly now
    // (job 0 died before inserting, so this is a second miss).
    let h1 = pool
        .submit_blocking("bob", circuit.clone(), JobRequest::Execute)
        .unwrap();
    match h1.wait().expect("pool must keep serving after a panic") {
        JobOutcome::Output(JobOutput::Executed { norm, .. }) => {
            assert!((norm - 1.0).abs() < 1e-9);
        }
        other => panic!("expected Executed, got {other:?}"),
    }

    // Both lock-taking accessors still work, and the books balance.
    assert_eq!(pool.dequeue_log(), vec![0, 1]);
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_submitted, 2);
    assert_eq!(stats.jobs_panicked, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.cache_misses, 2, "the panicked miss never inserted");
    assert_eq!(stats.cache_entries, 1);
}

/// Resource admission at the pool boundary: an over-budget request is
/// rejected typed at submission — it never consumes a job id, a queue
/// slot, or (crucially) any amplitude memory.
#[test]
fn oversized_request_rejected_at_admission() {
    // Default budget = the engine ceiling: 40 qubits is over it by
    // three orders of magnitude. Building the Circuit is cheap; only
    // EXECUTE would allocate.
    let pool = pool_with(FaultPlan::disabled(), 1);
    let big = atlas::circuit::generators::ghz(40);
    match pool.submit("alice", big, JobRequest::Execute) {
        Err(AtlasError::ResourceExhausted { needed, budget }) => {
            assert_eq!(needed, MemoryBudget::peak_bytes(40, 5));
            assert_eq!(budget, MemoryBudget::ENGINE_CEILING);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    // A pool-accepted job is a budget decision, not a hardcoded width:
    // under a 1 KiB budget even 8 qubits is over.
    let tight = AtlasConfig {
        memory_budget: MemoryBudget::bytes(1 << 10),
        ..cfg()
    };
    let tight_pool =
        SessionPool::new(spec(), CostModel::default(), tight, ServeConfig::default()).unwrap();
    let small = atlas::circuit::generators::qaoa(8);
    assert!(matches!(
        tight_pool.submit("alice", small, JobRequest::Execute),
        Err(AtlasError::ResourceExhausted { .. })
    ));
    let stats = tight_pool.shutdown();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_submitted, 0, "rejected jobs are not submissions");

    let stats = pool.shutdown();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_submitted, 0);
}

/// `submit_timeout` is bounded backpressure: a stalled pool rejects
/// typed after the wait instead of holding the client forever.
#[test]
fn submit_timeout_rejects_after_bounded_wait() {
    let pool = pool_with(FaultPlan::disabled(), 1);
    pool.pause();
    let circuit = atlas::circuit::generators::qaoa(8);
    // Fill the queue to capacity while dispatch is paused.
    let queued: Vec<_> = (0..64)
        .map(|_| {
            pool.submit("alice", circuit.clone(), JobRequest::Plan)
                .unwrap()
        })
        .collect();
    let t0 = Instant::now();
    match pool.submit_timeout(
        "bob",
        circuit.clone(),
        JobRequest::Plan,
        Duration::from_millis(50),
    ) {
        Err(AtlasError::Overloaded { queued, capacity }) => {
            assert_eq!((queued, capacity), (64, 64));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "the wait must actually be waited out"
    );
    pool.resume();
    for h in queued {
        h.wait().expect("queued jobs still run");
    }
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_submitted, 64);
}

/// A zero deadline is deterministically expired at dispatch: the job
/// queues, runs nothing, and answers `DeadlineExceeded` — on every run,
/// for any worker count.
#[test]
fn zero_deadline_expires_at_dispatch() {
    for workers in [1, 4] {
        let pool = pool_with(FaultPlan::disabled(), workers);
        let circuit = atlas::circuit::generators::qaoa(8);
        let h = pool
            .submit_with_deadline("alice", circuit, JobRequest::Execute, Duration::ZERO)
            .unwrap();
        match h.wait() {
            Ok(JobOutcome::DeadlineExceeded) => {}
            other => panic!("workers={workers}: expected DeadlineExceeded, got {other:?}"),
        }
        let stats = pool.shutdown();
        assert_eq!(stats.jobs_deadline_exceeded, 1);
        assert_eq!(stats.jobs_completed, 0);
    }
}

/// A generous deadline never perturbs the result: byte-identical to an
/// undeadlined run.
#[test]
fn unexpired_deadline_is_invisible() {
    let circuit = atlas::circuit::generators::qaoa(8);
    let pool = pool_with(FaultPlan::disabled(), 1);
    let plain = pool
        .submit_blocking("alice", circuit.clone(), JobRequest::Execute)
        .unwrap()
        .wait()
        .unwrap();
    let dead = pool
        .submit_with_deadline(
            "alice",
            circuit,
            JobRequest::Execute,
            Duration::from_secs(3600),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(format!("{plain:?}"), format!("{dead:?}"));
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_deadline_exceeded, 0);
}
