//! Backend-vs-backend differential: on all-Clifford circuits the
//! sharded statevector pipeline and the CHP stabilizer tableau are two
//! independent implementations of the same physics, so they must agree
//! on every observable query — basis-state supports, single-qubit
//! marginals and Pauli expectations — to within `1e-9`.
//!
//! Coverage comes from three directions:
//!
//! * the fixed-seed Clifford regression families (GHZ and the seeded
//!   `clifford` generator) swept across every `StagingAlgo`, every
//!   `KernelAlgo` and the machine-shape ladder;
//! * random all-Clifford circuits from the proptest strategy in
//!   `tests/common`;
//! * the `atlas-sim` binary itself, where `--backend statevec` and
//!   `--backend stabilizer` must print byte-identical measurement lines
//!   for the `--family ghz`/`--family clifford` circuits.

mod common;

use atlas::prelude::*;
use proptest::prelude::*;

/// The full acceptance sweep: both fixed-seed Clifford families, every
/// staging algorithm x every kernelizer x the shape ladder. The machine
/// shape and algorithm choice must be invisible in the physics.
#[test]
fn clifford_families_agree_across_staging_kernel_and_shape_sweep() {
    for circuit in common::clifford_regression_circuits() {
        for staging in common::all_staging_algos() {
            for kernelizer in common::all_kernel_algos() {
                for spec in common::shapes_for(staging, circuit.num_qubits()) {
                    common::assert_backends_agree(&circuit, spec, staging, kernelizer);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random Clifford circuits on an inter-node shape: the tableau is
    /// the oracle for the distributed engine (and vice versa).
    #[test]
    fn random_clifford_circuits_agree(circuit in common::arb_clifford_circuit(6, 40)) {
        let spec = MachineSpec {
            nodes: 2,
            gpus_per_node: 2,
            local_qubits: 3,
        };
        common::assert_backends_agree(&circuit, spec, StagingAlgo::IlpSearch, KernelAlgo::Dp);
    }
}

mod cli {
    use std::process::{Command, Output};

    fn atlas_sim(args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_atlas-sim"))
            .args(args)
            .output()
            .expect("failed to launch atlas-sim")
    }

    fn stdout_ok(args: &[&str]) -> String {
        let out = atlas_sim(args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    }

    /// The measurement lines (`expect`/`top`/shot histograms) of a run,
    /// with the banner lines (which legitimately differ per backend)
    /// stripped.
    fn measurement_lines(stdout: &str) -> Vec<String> {
        stdout
            .lines()
            .filter(|l| {
                l.starts_with("expect") || l.starts_with("top outcomes") || l.starts_with("  |")
            })
            .map(str::to_string)
            .collect()
    }

    /// `atlas-sim --family ghz` must print byte-identical expectation
    /// and top-outcome lines under both forced backends.
    #[test]
    fn ghz_family_measurements_agree_between_backends() {
        let args = |backend: &'static str| {
            vec![
                "--family",
                "ghz",
                "-n",
                "10",
                "--backend",
                backend,
                "--expect",
                "ZIIIIIIIIZ",
                "--expect",
                "XXXXXXXXXX",
                "--expect",
                "ZIIIIIIIII",
                "--top",
                "2",
            ]
        };
        let sv = measurement_lines(&stdout_ok(&args("statevec")));
        let st = measurement_lines(&stdout_ok(&args("stabilizer")));
        assert!(
            sv.contains(&"expect  : <ZIIIIIIIIZ> = 1.000000000".to_string()),
            "{sv:?}"
        );
        assert_eq!(sv, st, "ghz measurement output differs between backends");
    }

    /// The seeded `clifford` family is deterministic, so the two
    /// backends see the same circuit; their exact expectations (always
    /// 0 or ±1 on a stabilizer state) must agree through the CLI too.
    #[test]
    fn clifford_family_expectations_agree_between_backends() {
        let probes = ["ZIIIIIII", "IIIZIIII", "IIIIIIIZ", "ZIIIIIIZ", "XXIIIIII"];
        let mut args_sv = vec!["--family", "clifford", "-n", "8", "--backend", "statevec"];
        let mut args_st = vec!["--family", "clifford", "-n", "8", "--backend", "stabilizer"];
        for p in &probes {
            args_sv.extend(["--expect", p]);
            args_st.extend(["--expect", p]);
        }
        let sv = measurement_lines(&stdout_ok(&args_sv));
        let st = measurement_lines(&stdout_ok(&args_st));
        assert_eq!(sv.len(), probes.len());
        assert_eq!(st.len(), probes.len());
        let value = |line: &str| -> f64 {
            line.rsplit('=')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap_or_else(|e| panic!("unparseable expectation '{line}': {e}"))
        };
        for (a, b) in sv.iter().zip(&st) {
            // Stabilizer-state expectations are exactly 0 or +/-1 on the
            // tableau; the statevector sum may sit within float noise of
            // them (its rendering of -2.8e-17 is "-0.000000000", so the
            // lines need not match byte-for-byte).
            let exact = value(b);
            assert!(
                exact == 0.0 || exact == 1.0 || exact == -1.0,
                "non-stabilizer expectation printed: {b}"
            );
            assert!(
                (value(a) - exact).abs() < 1e-9,
                "expectations diverge between backends: '{a}' vs '{b}'"
            );
        }
    }
}
